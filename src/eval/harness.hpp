/**
 * @file
 * End-to-end evaluation harness (paper Section 6.2): sweeps models x
 * batch sizes x GPUs, records measured (simulator) latency and each
 * predictor's forecast, applies the paper's memory screening, and
 * aggregates mean absolute percentage errors — end-to-end and per
 * operator family.
 */

#ifndef NEUSIGHT_EVAL_HARNESS_HPP
#define NEUSIGHT_EVAL_HARNESS_HPP

#include <map>
#include <string>
#include <vector>

#include "graph/latency_predictor.hpp"
#include "graph/models.hpp"

namespace neusight::eval {

/** One (model, batch, phase) evaluation point. */
struct WorkloadCase
{
    graph::ModelConfig model;
    uint64_t batch = 1;
    bool training = false;
    /** Model-level out-of-distribution flag (paper: GPT3-2.7B). */
    bool oodModel = false;
};

/** One evaluated (case, GPU) cell. */
struct CaseResult
{
    std::string modelName;
    uint64_t batch = 0;
    bool training = false;
    std::string gpuName;
    bool oodGpu = false;
    bool oodModel = false;
    double measuredMs = 0.0;
    /** Predictor display name -> predicted latency (ms). */
    std::map<std::string, double> predictedMs;
};

/**
 * The paper's Figure-7 sweep: Table-5 models at two batch sizes each,
 * inference or training.
 */
std::vector<WorkloadCase> paperEvaluationCases(bool training);

/**
 * Evaluate all cases on all GPUs with the given predictors. Applies the
 * paper's screening: configurations that exceed device memory are
 * skipped, and training is only measured on GPUs with >= 24 GB.
 */
std::vector<CaseResult>
evaluateCases(const std::vector<WorkloadCase> &cases,
              const std::vector<gpusim::GpuSpec> &gpus,
              const std::vector<const graph::LatencyPredictor *>
                  &predictors);

/** Mean absolute percentage error per predictor over a result set. */
std::map<std::string, double>
endToEndError(const std::vector<CaseResult> &results);

/** Error per predictor restricted to OOD (GPU or model) cells. */
std::map<std::string, double>
outOfDistributionError(const std::vector<CaseResult> &results);

/**
 * Kernel-level error per operator family per predictor (paper Figure 8):
 * every kernel of every case/GPU cell compared individually.
 */
std::map<gpusim::OpType, std::map<std::string, double>>
perOperatorErrors(const std::vector<WorkloadCase> &cases,
                  const std::vector<gpusim::GpuSpec> &gpus,
                  const std::vector<const graph::LatencyPredictor *>
                      &predictors);

/**
 * Contribution of each operator family to a model's measured end-to-end
 * latency on one GPU (paper Table 6), as fractions summing to 1.
 */
std::map<gpusim::OpType, double>
operatorContribution(const graph::KernelGraph &g,
                     const gpusim::GpuSpec &gpu);

} // namespace neusight::eval

#endif // NEUSIGHT_EVAL_HARNESS_HPP
