/**
 * @file
 * Simulator oracle: exposes the gpusim ground truth through the
 * LatencyPredictor interface so "measured" and "predicted" latencies flow
 * through identical aggregation code in the harness and benches.
 */

#ifndef NEUSIGHT_EVAL_ORACLE_HPP
#define NEUSIGHT_EVAL_ORACLE_HPP

#include "gpusim/device.hpp"
#include "graph/latency_predictor.hpp"

namespace neusight::eval {

/** Ground-truth "predictor" backed by the device simulator. */
class SimulatorOracle : public graph::LatencyPredictor
{
  public:
    std::string name() const override { return "Measured"; }

    double
    predictKernelMs(const gpusim::KernelDesc &desc,
                    const gpusim::GpuSpec &gpu) const override
    {
        return gpusim::Device(gpu).measureKernelMs(desc);
    }
};

} // namespace neusight::eval

#endif // NEUSIGHT_EVAL_ORACLE_HPP
