#include "eval/harness.hpp"

#include "common/logging.hpp"
#include "common/stats.hpp"
#include "eval/oracle.hpp"
#include "gpusim/device.hpp"

namespace neusight::eval {

using graph::KernelGraph;
using graph::ModelConfig;
using gpusim::GpuSpec;
using gpusim::OpType;

namespace {

/** Paper Section 6.1: training is measured on GPUs with >= 24 GB HBM. */
constexpr double kTrainingMinMemGB = 24.0;

/** Per-model evaluation batch sizes (larger models get smaller batches). */
std::vector<uint64_t>
batchesFor(const ModelConfig &model)
{
    if (model.name == "BERT-Large")
        return {8, 16};
    if (model.name == "GPT2-Large")
        return {4, 8};
    if (model.name == "SwitchTrans")
        return {4, 8};
    if (model.name == "GPT3-2.7B")
        return {1, 2};
    return {2, 4}; // GPT3-XL, OPT-1.3B.
}

/** Can this (case, GPU) cell be measured at all? */
bool
measurable(const WorkloadCase &c, const GpuSpec &gpu)
{
    if (c.training && gpu.memorySizeGB < kTrainingMinMemGB)
        return false;
    return graph::modelMemoryBytes(c.model, c.batch, c.training) <=
           gpu.memBytes();
}

KernelGraph
buildGraph(const WorkloadCase &c)
{
    return c.training ? graph::buildTrainingGraph(c.model, c.batch)
                      : graph::buildInferenceGraph(c.model, c.batch);
}

} // namespace

std::vector<WorkloadCase>
paperEvaluationCases(bool training)
{
    std::vector<WorkloadCase> cases;
    for (const auto &model : graph::paperWorkloads()) {
        for (uint64_t batch : batchesFor(model)) {
            WorkloadCase c;
            c.model = model;
            c.batch = batch;
            c.training = training;
            c.oodModel = model.name == "GPT3-2.7B";
            cases.push_back(std::move(c));
        }
    }
    return cases;
}

std::vector<CaseResult>
evaluateCases(const std::vector<WorkloadCase> &cases,
              const std::vector<GpuSpec> &gpus,
              const std::vector<const graph::LatencyPredictor *>
                  &predictors)
{
    const SimulatorOracle oracle;
    std::vector<CaseResult> results;
    for (const auto &c : cases) {
        const KernelGraph g = buildGraph(c);
        for (const auto &gpu : gpus) {
            if (!measurable(c, gpu))
                continue;
            CaseResult r;
            r.modelName = c.model.name;
            r.batch = c.batch;
            r.training = c.training;
            r.gpuName = gpu.name;
            r.oodGpu = !gpu.inTrainingSet;
            r.oodModel = c.oodModel;
            r.measuredMs = oracle.predictGraphMs(g, gpu);
            for (const auto *p : predictors)
                r.predictedMs[p->name()] = p->predictGraphMs(g, gpu);
            results.push_back(std::move(r));
        }
    }
    return results;
}

std::map<std::string, double>
endToEndError(const std::vector<CaseResult> &results)
{
    std::map<std::string, RunningMean> acc;
    for (const auto &r : results)
        for (const auto &[name, pred] : r.predictedMs)
            acc[name].add(absPercentageError(pred, r.measuredMs));
    std::map<std::string, double> out;
    for (const auto &[name, mean_acc] : acc)
        out[name] = mean_acc.value();
    return out;
}

std::map<std::string, double>
outOfDistributionError(const std::vector<CaseResult> &results)
{
    std::map<std::string, RunningMean> acc;
    for (const auto &r : results) {
        if (!r.oodGpu && !r.oodModel)
            continue;
        for (const auto &[name, pred] : r.predictedMs)
            acc[name].add(absPercentageError(pred, r.measuredMs));
    }
    std::map<std::string, double> out;
    for (const auto &[name, mean_acc] : acc)
        out[name] = mean_acc.value();
    return out;
}

std::map<OpType, std::map<std::string, double>>
perOperatorErrors(const std::vector<WorkloadCase> &cases,
                  const std::vector<GpuSpec> &gpus,
                  const std::vector<const graph::LatencyPredictor *>
                      &predictors)
{
    std::map<OpType, std::map<std::string, RunningMean>> acc;
    for (const auto &c : cases) {
        const KernelGraph g = buildGraph(c);
        for (const auto &gpu : gpus) {
            if (!measurable(c, gpu))
                continue;
            const gpusim::Device device(gpu);
            for (const auto &node : g.nodes) {
                if (node.kind != graph::NodeKind::Compute)
                    continue;
                const double measured =
                    device.measureKernelMs(node.kernel);
                for (const auto *p : predictors) {
                    const double pred =
                        p->predictKernelMs(node.kernel, gpu);
                    acc[node.kernel.type][p->name()].add(
                        absPercentageError(pred, measured));
                }
            }
        }
    }
    std::map<OpType, std::map<std::string, double>> out;
    for (const auto &[type, per_pred] : acc)
        for (const auto &[name, mean_acc] : per_pred)
            out[type][name] = mean_acc.value();
    return out;
}

std::map<OpType, double>
operatorContribution(const KernelGraph &g, const GpuSpec &gpu)
{
    const gpusim::Device device(gpu);
    std::map<OpType, double> ms_by_type;
    double total = 0.0;
    for (const auto &node : g.nodes) {
        if (node.kind != graph::NodeKind::Compute)
            continue;
        const double ms = device.measureKernelMs(node.kernel);
        ms_by_type[node.kernel.type] += ms;
        total += ms;
    }
    ensure(total > 0.0, "operatorContribution: empty graph");
    for (auto &[type, ms] : ms_by_type)
        ms /= total;
    return ms_by_type;
}

} // namespace neusight::eval
