#include "tensor/matrix.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace neusight {

Matrix::Matrix(size_t rows, size_t cols)
    : nRows(rows), nCols(cols), data(rows * cols, 0.0)
{
}

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : nRows(rows), nCols(cols), data(rows * cols, fill)
{
}

Matrix
Matrix::fromRows(const std::vector<std::vector<double>> &rows)
{
    ensure(!rows.empty(), "Matrix::fromRows: empty input");
    Matrix m(rows.size(), rows[0].size());
    for (size_t r = 0; r < rows.size(); ++r) {
        ensure(rows[r].size() == rows[0].size(),
               "Matrix::fromRows: ragged rows");
        for (size_t c = 0; c < rows[r].size(); ++c)
            m.at(r, c) = rows[r][c];
    }
    return m;
}

void
Matrix::setZero()
{
    std::fill(data.begin(), data.end(), 0.0);
}

void
Matrix::resize(size_t rows, size_t cols)
{
    nRows = rows;
    nCols = cols;
    data.resize(rows * cols);
}

MatrixF32::MatrixF32(size_t rows, size_t cols)
    : nRows(rows), nCols(cols), data(rows * cols, 0.0f)
{
}

MatrixF32
MatrixF32::fromMatrix(const Matrix &m)
{
    MatrixF32 out(m.rows(), m.cols());
    const double *NEUSIGHT_RESTRICT src = m.raw();
    float *NEUSIGHT_RESTRICT dst = out.raw();
    const size_t n = out.size();
    for (size_t i = 0; i < n; ++i)
        dst[i] = static_cast<float>(src[i]);
    return out;
}

Matrix
MatrixF32::toMatrix() const
{
    Matrix out(nRows, nCols);
    const float *NEUSIGHT_RESTRICT src = raw();
    double *NEUSIGHT_RESTRICT dst = out.raw();
    const size_t n = size();
    for (size_t i = 0; i < n; ++i)
        dst[i] = static_cast<double>(src[i]);
    return out;
}

MatrixF32
linearF32(const MatrixF32 &x, const MatrixF32 &w, const MatrixF32 &bias,
          bool applyRelu)
{
    ensure(x.cols() == w.rows(), "linearF32: inner dimensions differ");
    ensure(bias.rows() == 1 && bias.cols() == w.cols(),
           "linearF32: bias must be 1 x cols");
    const size_t m = x.rows();
    const size_t k = x.cols();
    const size_t n = w.cols();
    MatrixF32 y(m, n);
    const float *NEUSIGHT_RESTRICT brow0 = bias.raw();
    for (size_t i = 0; i < m; ++i) {
        float *NEUSIGHT_RESTRICT yrow = y.raw() + i * n;
        const float *NEUSIGHT_RESTRICT xrow = x.raw() + i * k;
        // Seed the accumulator row with the bias, then stream k
        // rank-one updates: unit stride on W and Y, no branches, so
        // each j-loop vectorizes to packed FMAs.
        for (size_t j = 0; j < n; ++j)
            yrow[j] = brow0[j];
        for (size_t p = 0; p < k; ++p) {
            const float xval = xrow[p];
            const float *NEUSIGHT_RESTRICT wrow = w.raw() + p * n;
#pragma omp simd
            for (size_t j = 0; j < n; ++j)
                yrow[j] += xval * wrow[j];
        }
        if (applyRelu) {
#pragma omp simd
            for (size_t j = 0; j < n; ++j)
                yrow[j] = yrow[j] > 0.0f ? yrow[j] : 0.0f;
        }
    }
    return y;
}

void
Matrix::fill(double value)
{
    std::fill(data.begin(), data.end(), value);
}

void
Matrix::apply(const std::function<double(double)> &fn)
{
    for (double &v : data)
        v = fn(v);
}

double
Matrix::sum() const
{
    double total = 0.0;
    for (double v : data)
        total += v;
    return total;
}

bool
Matrix::allClose(const Matrix &other, double tol) const
{
    if (nRows != other.nRows || nCols != other.nCols)
        return false;
    for (size_t i = 0; i < data.size(); ++i)
        if (std::abs(data[i] - other.data[i]) > tol)
            return false;
    return true;
}

Matrix
matmul(const Matrix &a, const Matrix &b)
{
    ensure(a.cols() == b.rows(), "matmul: inner dimensions differ");
    const size_t m = a.rows();
    const size_t k = a.cols();
    const size_t n = b.cols();
    Matrix c(m, n);
    // i-k-j loop order: unit-stride access on both B and C.
#pragma omp parallel for schedule(static) if (m * n * k > 1 << 16)
    for (size_t i = 0; i < m; ++i) {
        double *crow = c.raw() + i * n;
        const double *arow = a.raw() + i * k;
        for (size_t p = 0; p < k; ++p) {
            const double aval = arow[p];
            if (aval == 0.0)
                continue;
            const double *brow = b.raw() + p * n;
            for (size_t j = 0; j < n; ++j)
                crow[j] += aval * brow[j];
        }
    }
    return c;
}

Matrix
matmulNT(const Matrix &a, const Matrix &b)
{
    ensure(a.cols() == b.cols(), "matmulNT: inner dimensions differ");
    const size_t m = a.rows();
    const size_t k = a.cols();
    const size_t n = b.rows();
    Matrix c(m, n);
#pragma omp parallel for schedule(static) if (m * n * k > 1 << 16)
    for (size_t i = 0; i < m; ++i) {
        const double *arow = a.raw() + i * k;
        double *crow = c.raw() + i * n;
        for (size_t j = 0; j < n; ++j) {
            const double *brow = b.raw() + j * k;
            double acc = 0.0;
            for (size_t p = 0; p < k; ++p)
                acc += arow[p] * brow[p];
            crow[j] = acc;
        }
    }
    return c;
}

Matrix
matmulTN(const Matrix &a, const Matrix &b)
{
    ensure(a.rows() == b.rows(), "matmulTN: inner dimensions differ");
    const size_t m = a.cols();
    const size_t k = a.rows();
    const size_t n = b.cols();
    // A is consumed column-wise here; an O(m*k) transposed copy makes
    // every access of the O(m*k*n) accumulation unit-stride. The copy
    // lands in a thread-local scratch buffer so steady-state callers
    // (every Linear backward of every training step) stop paying a
    // malloc per call.
    thread_local Matrix at;
    transposeInto(a, at);
    Matrix c(m, n);
#pragma omp parallel for schedule(static) if (m * n * k > 1 << 16)
    for (size_t i = 0; i < m; ++i) {
        double *crow = c.raw() + i * n;
        const double *atrow = at.raw() + i * k;
        for (size_t p = 0; p < k; ++p) {
            const double aval = atrow[p];
            if (aval == 0.0)
                continue;
            const double *brow = b.raw() + p * n;
            for (size_t j = 0; j < n; ++j)
                crow[j] += aval * brow[j];
        }
    }
    return c;
}

namespace {

void
checkSameShape(const Matrix &a, const Matrix &b, const char *what)
{
    ensure(a.rows() == b.rows() && a.cols() == b.cols(),
           std::string(what) + ": shape mismatch");
}

} // namespace

Matrix
add(const Matrix &a, const Matrix &b)
{
    checkSameShape(a, b, "add");
    Matrix c = a;
    addInPlace(c, b);
    return c;
}

Matrix
sub(const Matrix &a, const Matrix &b)
{
    checkSameShape(a, b, "sub");
    Matrix c = a;
    axpyInPlace(c, -1.0, b);
    return c;
}

Matrix
mul(const Matrix &a, const Matrix &b)
{
    checkSameShape(a, b, "mul");
    Matrix c(a.rows(), a.cols());
    for (size_t i = 0; i < a.size(); ++i)
        c.raw()[i] = a.raw()[i] * b.raw()[i];
    return c;
}

Matrix
scale(const Matrix &a, double s)
{
    Matrix c = a;
    for (size_t i = 0; i < c.size(); ++i)
        c.raw()[i] *= s;
    return c;
}

Matrix
addRowBroadcast(const Matrix &a, const Matrix &bias)
{
    ensure(bias.rows() == 1 && bias.cols() == a.cols(),
           "addRowBroadcast: bias must be 1 x cols");
    Matrix c = a;
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < a.cols(); ++j)
            c.at(i, j) += bias.at(0, j);
    return c;
}

Matrix
colSum(const Matrix &a)
{
    Matrix c(1, a.cols());
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < a.cols(); ++j)
            c.at(0, j) += a.at(i, j);
    return c;
}

Matrix
transpose(const Matrix &a)
{
    Matrix c;
    transposeInto(a, c);
    return c;
}

void
transposeInto(const Matrix &a, Matrix &out)
{
    out.resize(a.cols(), a.rows());
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < a.cols(); ++j)
            out.at(j, i) = a.at(i, j);
}

void
addInPlace(Matrix &a, const Matrix &b)
{
    checkSameShape(a, b, "addInPlace");
    for (size_t i = 0; i < a.size(); ++i)
        a.raw()[i] += b.raw()[i];
}

void
axpyInPlace(Matrix &a, double s, const Matrix &b)
{
    checkSameShape(a, b, "axpyInPlace");
    for (size_t i = 0; i < a.size(); ++i)
        a.raw()[i] += s * b.raw()[i];
}

} // namespace neusight
