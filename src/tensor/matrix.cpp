#include "tensor/matrix.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace neusight {

Matrix::Matrix(size_t rows, size_t cols)
    : nRows(rows), nCols(cols), data(rows * cols, 0.0)
{
}

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : nRows(rows), nCols(cols), data(rows * cols, fill)
{
}

Matrix
Matrix::fromRows(const std::vector<std::vector<double>> &rows)
{
    ensure(!rows.empty(), "Matrix::fromRows: empty input");
    Matrix m(rows.size(), rows[0].size());
    for (size_t r = 0; r < rows.size(); ++r) {
        ensure(rows[r].size() == rows[0].size(),
               "Matrix::fromRows: ragged rows");
        for (size_t c = 0; c < rows[r].size(); ++c)
            m.at(r, c) = rows[r][c];
    }
    return m;
}

void
Matrix::setZero()
{
    std::fill(data.begin(), data.end(), 0.0);
}

void
Matrix::fill(double value)
{
    std::fill(data.begin(), data.end(), value);
}

void
Matrix::apply(const std::function<double(double)> &fn)
{
    for (double &v : data)
        v = fn(v);
}

double
Matrix::sum() const
{
    double total = 0.0;
    for (double v : data)
        total += v;
    return total;
}

bool
Matrix::allClose(const Matrix &other, double tol) const
{
    if (nRows != other.nRows || nCols != other.nCols)
        return false;
    for (size_t i = 0; i < data.size(); ++i)
        if (std::abs(data[i] - other.data[i]) > tol)
            return false;
    return true;
}

Matrix
matmul(const Matrix &a, const Matrix &b)
{
    ensure(a.cols() == b.rows(), "matmul: inner dimensions differ");
    const size_t m = a.rows();
    const size_t k = a.cols();
    const size_t n = b.cols();
    Matrix c(m, n);
    // i-k-j loop order: unit-stride access on both B and C.
#pragma omp parallel for schedule(static) if (m * n * k > 1 << 16)
    for (size_t i = 0; i < m; ++i) {
        double *crow = c.raw() + i * n;
        const double *arow = a.raw() + i * k;
        for (size_t p = 0; p < k; ++p) {
            const double aval = arow[p];
            if (aval == 0.0)
                continue;
            const double *brow = b.raw() + p * n;
            for (size_t j = 0; j < n; ++j)
                crow[j] += aval * brow[j];
        }
    }
    return c;
}

Matrix
matmulNT(const Matrix &a, const Matrix &b)
{
    ensure(a.cols() == b.cols(), "matmulNT: inner dimensions differ");
    const size_t m = a.rows();
    const size_t k = a.cols();
    const size_t n = b.rows();
    Matrix c(m, n);
#pragma omp parallel for schedule(static) if (m * n * k > 1 << 16)
    for (size_t i = 0; i < m; ++i) {
        const double *arow = a.raw() + i * k;
        double *crow = c.raw() + i * n;
        for (size_t j = 0; j < n; ++j) {
            const double *brow = b.raw() + j * k;
            double acc = 0.0;
            for (size_t p = 0; p < k; ++p)
                acc += arow[p] * brow[p];
            crow[j] = acc;
        }
    }
    return c;
}

Matrix
matmulTN(const Matrix &a, const Matrix &b)
{
    ensure(a.rows() == b.rows(), "matmulTN: inner dimensions differ");
    const size_t m = a.cols();
    const size_t k = a.rows();
    const size_t n = b.cols();
    // A is consumed column-wise here; an O(m*k) transposed copy makes
    // every access of the O(m*k*n) accumulation unit-stride.
    const Matrix at = transpose(a);
    Matrix c(m, n);
#pragma omp parallel for schedule(static) if (m * n * k > 1 << 16)
    for (size_t i = 0; i < m; ++i) {
        double *crow = c.raw() + i * n;
        const double *atrow = at.raw() + i * k;
        for (size_t p = 0; p < k; ++p) {
            const double aval = atrow[p];
            if (aval == 0.0)
                continue;
            const double *brow = b.raw() + p * n;
            for (size_t j = 0; j < n; ++j)
                crow[j] += aval * brow[j];
        }
    }
    return c;
}

namespace {

void
checkSameShape(const Matrix &a, const Matrix &b, const char *what)
{
    ensure(a.rows() == b.rows() && a.cols() == b.cols(),
           std::string(what) + ": shape mismatch");
}

} // namespace

Matrix
add(const Matrix &a, const Matrix &b)
{
    checkSameShape(a, b, "add");
    Matrix c = a;
    addInPlace(c, b);
    return c;
}

Matrix
sub(const Matrix &a, const Matrix &b)
{
    checkSameShape(a, b, "sub");
    Matrix c = a;
    axpyInPlace(c, -1.0, b);
    return c;
}

Matrix
mul(const Matrix &a, const Matrix &b)
{
    checkSameShape(a, b, "mul");
    Matrix c(a.rows(), a.cols());
    for (size_t i = 0; i < a.size(); ++i)
        c.raw()[i] = a.raw()[i] * b.raw()[i];
    return c;
}

Matrix
scale(const Matrix &a, double s)
{
    Matrix c = a;
    for (size_t i = 0; i < c.size(); ++i)
        c.raw()[i] *= s;
    return c;
}

Matrix
addRowBroadcast(const Matrix &a, const Matrix &bias)
{
    ensure(bias.rows() == 1 && bias.cols() == a.cols(),
           "addRowBroadcast: bias must be 1 x cols");
    Matrix c = a;
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < a.cols(); ++j)
            c.at(i, j) += bias.at(0, j);
    return c;
}

Matrix
colSum(const Matrix &a)
{
    Matrix c(1, a.cols());
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < a.cols(); ++j)
            c.at(0, j) += a.at(i, j);
    return c;
}

Matrix
transpose(const Matrix &a)
{
    Matrix c(a.cols(), a.rows());
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < a.cols(); ++j)
            c.at(j, i) = a.at(i, j);
    return c;
}

void
addInPlace(Matrix &a, const Matrix &b)
{
    checkSameShape(a, b, "addInPlace");
    for (size_t i = 0; i < a.size(); ++i)
        a.raw()[i] += b.raw()[i];
}

void
axpyInPlace(Matrix &a, double s, const Matrix &b)
{
    checkSameShape(a, b, "axpyInPlace");
    for (size_t i = 0; i < a.size(); ++i)
        a.raw()[i] += s * b.raw()[i];
}

} // namespace neusight
