/**
 * @file
 * Dense row-major matrix of doubles plus the handful of kernels the neural
 * network substrate needs (GEMM in NN/NT/TN layouts, broadcasting adds,
 * elementwise maps, reductions). Deliberately minimal: this is the linear
 * algebra that backs the NeuSight predictor MLPs, not a general BLAS.
 */

#ifndef NEUSIGHT_TENSOR_MATRIX_HPP
#define NEUSIGHT_TENSOR_MATRIX_HPP

#include <cstddef>
#include <functional>
#include <vector>

namespace neusight {

/** Dense row-major matrix. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** Zero-initialized matrix of the given shape. */
    Matrix(size_t rows, size_t cols);

    /** Matrix of the given shape filled with @p fill. */
    Matrix(size_t rows, size_t cols, double fill);

    /** Build from nested initializer-style data (row major). */
    static Matrix fromRows(const std::vector<std::vector<double>> &rows);

    /** Number of rows. */
    size_t rows() const { return nRows; }

    /** Number of columns. */
    size_t cols() const { return nCols; }

    /** Total number of elements. */
    size_t size() const { return data.size(); }

    /** Element access (row, col). */
    double &at(size_t r, size_t c) { return data[r * nCols + c]; }

    /** Element access (row, col), const. */
    double at(size_t r, size_t c) const { return data[r * nCols + c]; }

    /** Raw storage pointer (row major). */
    double *raw() { return data.data(); }

    /** Raw storage pointer (row major), const. */
    const double *raw() const { return data.data(); }

    /** Set every element to zero. */
    void setZero();

    /** Set every element to @p value. */
    void fill(double value);

    /** Elementwise in-place map. */
    void apply(const std::function<double(double)> &fn);

    /** Sum of all elements. */
    double sum() const;

    /** True when shapes match and all elements are within @p tol. */
    bool allClose(const Matrix &other, double tol = 1e-9) const;

  private:
    size_t nRows = 0;
    size_t nCols = 0;
    std::vector<double> data;
};

/** C = A(m,k) * B(k,n). */
Matrix matmul(const Matrix &a, const Matrix &b);

/** C = A(m,k) * B(n,k)^T -> (m,n). */
Matrix matmulNT(const Matrix &a, const Matrix &b);

/** C = A(k,m)^T * B(k,n) -> (m,n). */
Matrix matmulTN(const Matrix &a, const Matrix &b);

/** Elementwise sum; shapes must match. */
Matrix add(const Matrix &a, const Matrix &b);

/** Elementwise difference; shapes must match. */
Matrix sub(const Matrix &a, const Matrix &b);

/** Elementwise (Hadamard) product; shapes must match. */
Matrix mul(const Matrix &a, const Matrix &b);

/** Scalar multiple. */
Matrix scale(const Matrix &a, double s);

/** Add a 1-row bias to every row of @p a. */
Matrix addRowBroadcast(const Matrix &a, const Matrix &bias);

/** Column-wise sum producing a 1-row matrix. */
Matrix colSum(const Matrix &a);

/** Transposed copy. */
Matrix transpose(const Matrix &a);

/** a += b (elementwise, shapes must match). */
void addInPlace(Matrix &a, const Matrix &b);

/** a += s * b (elementwise axpy, shapes must match). */
void axpyInPlace(Matrix &a, double s, const Matrix &b);

} // namespace neusight

#endif // NEUSIGHT_TENSOR_MATRIX_HPP
