/**
 * @file
 * Dense row-major matrix of doubles plus the handful of kernels the neural
 * network substrate needs (GEMM in NN/NT/TN layouts, broadcasting adds,
 * elementwise maps, reductions). Deliberately minimal: this is the linear
 * algebra that backs the NeuSight predictor MLPs, not a general BLAS.
 */

#ifndef NEUSIGHT_TENSOR_MATRIX_HPP
#define NEUSIGHT_TENSOR_MATRIX_HPP

#include <cstddef>
#include <functional>
#include <vector>

/** Strict-aliasing hint for hot inner loops (GCC/Clang/MSVC). */
#if defined(__GNUC__) || defined(__clang__)
#define NEUSIGHT_RESTRICT __restrict__
#elif defined(_MSC_VER)
#define NEUSIGHT_RESTRICT __restrict
#else
#define NEUSIGHT_RESTRICT
#endif

namespace neusight {

/** Dense row-major matrix. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** Zero-initialized matrix of the given shape. */
    Matrix(size_t rows, size_t cols);

    /** Matrix of the given shape filled with @p fill. */
    Matrix(size_t rows, size_t cols, double fill);

    /** Build from nested initializer-style data (row major). */
    static Matrix fromRows(const std::vector<std::vector<double>> &rows);

    /** Number of rows. */
    size_t rows() const { return nRows; }

    /** Number of columns. */
    size_t cols() const { return nCols; }

    /** Total number of elements. */
    size_t size() const { return data.size(); }

    /** Element access (row, col). */
    double &at(size_t r, size_t c) { return data[r * nCols + c]; }

    /** Element access (row, col), const. */
    double at(size_t r, size_t c) const { return data[r * nCols + c]; }

    /** Raw storage pointer (row major). */
    double *raw() { return data.data(); }

    /** Raw storage pointer (row major), const. */
    const double *raw() const { return data.data(); }

    /** Set every element to zero. */
    void setZero();

    /**
     * Reshape to (rows, cols), reusing the existing allocation when it is
     * large enough. Contents are unspecified afterwards; scratch-buffer
     * helper for kernels that recycle a workspace across calls.
     */
    void resize(size_t rows, size_t cols);

    /** Set every element to @p value. */
    void fill(double value);

    /** Elementwise in-place map. */
    void apply(const std::function<double(double)> &fn);

    /** Sum of all elements. */
    double sum() const;

    /** True when shapes match and all elements are within @p tol. */
    bool allClose(const Matrix &other, double tol = 1e-9) const;

  private:
    size_t nRows = 0;
    size_t nCols = 0;
    std::vector<double> data;
};

/**
 * Dense row-major matrix of floats: the storage for the fp32 SIMD
 * inference lane. Carries only what that lane needs — conversion to and
 * from the double Matrix plus raw contiguous access for the fused
 * kernels below.
 */
class MatrixF32
{
  public:
    /** Empty 0x0 matrix. */
    MatrixF32() = default;

    /** Zero-initialized matrix of the given shape. */
    MatrixF32(size_t rows, size_t cols);

    /** Narrowing copy of a double matrix. */
    static MatrixF32 fromMatrix(const Matrix &m);

    /** Widening copy back to the double world. */
    Matrix toMatrix() const;

    /** Number of rows. */
    size_t rows() const { return nRows; }

    /** Number of columns. */
    size_t cols() const { return nCols; }

    /** Total number of elements. */
    size_t size() const { return data.size(); }

    /** Element access (row, col). */
    float &at(size_t r, size_t c) { return data[r * nCols + c]; }

    /** Element access (row, col), const. */
    float at(size_t r, size_t c) const { return data[r * nCols + c]; }

    /** Raw storage pointer (row major). */
    float *raw() { return data.data(); }

    /** Raw storage pointer (row major), const. */
    const float *raw() const { return data.data(); }

  private:
    size_t nRows = 0;
    size_t nCols = 0;
    std::vector<float> data;
};

/**
 * Fused fp32 linear layer: Y = X(m,k) * W(k,n) + bias(1,n), optionally
 * followed by ReLU. The inner loops are written for vectorization —
 * restrict-qualified contiguous rows, unit stride on W and Y, no
 * branches — so the compiler can emit packed SIMD at -O2.
 */
MatrixF32 linearF32(const MatrixF32 &x, const MatrixF32 &w,
                    const MatrixF32 &bias, bool applyRelu);

/** C = A(m,k) * B(k,n). */
Matrix matmul(const Matrix &a, const Matrix &b);

/** C = A(m,k) * B(n,k)^T -> (m,n). */
Matrix matmulNT(const Matrix &a, const Matrix &b);

/** C = A(k,m)^T * B(k,n) -> (m,n). */
Matrix matmulTN(const Matrix &a, const Matrix &b);

/** Elementwise sum; shapes must match. */
Matrix add(const Matrix &a, const Matrix &b);

/** Elementwise difference; shapes must match. */
Matrix sub(const Matrix &a, const Matrix &b);

/** Elementwise (Hadamard) product; shapes must match. */
Matrix mul(const Matrix &a, const Matrix &b);

/** Scalar multiple. */
Matrix scale(const Matrix &a, double s);

/** Add a 1-row bias to every row of @p a. */
Matrix addRowBroadcast(const Matrix &a, const Matrix &bias);

/** Column-wise sum producing a 1-row matrix. */
Matrix colSum(const Matrix &a);

/** Transposed copy. */
Matrix transpose(const Matrix &a);

/** Transpose @p a into @p out, reusing out's allocation when possible. */
void transposeInto(const Matrix &a, Matrix &out);

/** a += b (elementwise, shapes must match). */
void addInPlace(Matrix &a, const Matrix &b);

/** a += s * b (elementwise axpy, shapes must match). */
void axpyInPlace(Matrix &a, double s, const Matrix &b);

} // namespace neusight

#endif // NEUSIGHT_TENSOR_MATRIX_HPP
