#include "baselines/li.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace neusight::baselines {

void
LiPredictor::train(
    const std::map<gpusim::OpType, dataset::OperatorDataset> &corpus)
{
    // Group (flops, latency) pairs by GPU across every operator family,
    // following the paper's procedure of regressing latency on the FLOP
    // count derived from matrix sizes.
    std::map<std::string, std::pair<std::vector<double>,
                                    std::vector<double>>> by_gpu;
    for (const auto &[type, data] : corpus) {
        for (const auto &sample : data.samples) {
            auto &[xs, ys] = by_gpu[sample.gpuName];
            xs.push_back(sample.desc.flops);
            ys.push_back(sample.latencyMs);
        }
    }
    ensure(!by_gpu.empty(), "LiPredictor::train: empty corpus");

    std::vector<double> bandwidths;
    std::vector<double> achieved;
    std::vector<double> intercepts;
    for (const auto &[name, xy] : by_gpu) {
        const LinearFit fit = fitLine(xy.first, xy.second);
        perGpuFit[name] = fit;
        if (fit.slope > 0.0) {
            // slope is ms per FLOP: achieved FLOPS = 1e3 / slope.
            bandwidths.push_back(gpusim::findGpu(name).memoryBwGBps);
            achieved.push_back(1e3 / fit.slope);
        }
        intercepts.push_back(std::max(fit.intercept, 0.0));
    }
    ensure(bandwidths.size() >= 2,
           "LiPredictor::train: need two GPUs with positive slopes");
    crossFit = fitLine(bandwidths, achieved);
    meanIntercept = mean(intercepts);
    crossFitValid = true;
}

double
LiPredictor::predictKernelMs(const gpusim::KernelDesc &desc,
                             const gpusim::GpuSpec &gpu) const
{
    ensure(crossFitValid, "LiPredictor::predictKernelMs before train");
    const auto it = perGpuFit.find(gpu.name);
    if (it != perGpuFit.end()) {
        // GPU seen during training: use its own regression.
        return std::max(it->second(desc.flops), 1e-6);
    }
    // Unseen GPU: infer achieved FLOPS from its memory bandwidth.
    const double achieved_flops = std::max(crossFit(gpu.memoryBwGBps), 1e6);
    return std::max(desc.flops / achieved_flops * 1e3 + meanIntercept,
                    1e-6);
}

} // namespace neusight::baselines
