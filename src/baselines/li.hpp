/**
 * @file
 * Li et al. (MICRO 2023) linear-regression baseline (paper Section 3.1):
 * per GPU, latency regresses linearly on the kernel's FLOP count; across
 * GPUs, achieved FLOPS regresses linearly on memory bandwidth, which is
 * how latency is extrapolated to GPUs outside the training set.
 */

#ifndef NEUSIGHT_BASELINES_LI_HPP
#define NEUSIGHT_BASELINES_LI_HPP

#include <map>
#include <string>

#include "common/stats.hpp"
#include "dataset/dataset.hpp"
#include "graph/latency_predictor.hpp"

namespace neusight::baselines {

/** FLOPs-count linear-regression latency estimator. */
class LiPredictor : public graph::LatencyPredictor
{
  public:
    std::string name() const override { return "Li et al."; }

    /**
     * Fit the per-GPU latency~FLOPs regressions and the cross-GPU
     * achieved-FLOPS~memory-bandwidth regression from the corpus.
     */
    void train(const std::map<gpusim::OpType, dataset::OperatorDataset>
                   &corpus);

    double predictKernelMs(const gpusim::KernelDesc &desc,
                           const gpusim::GpuSpec &gpu) const override;

    /** True once train() ran. */
    bool trained() const { return crossFitValid; }

  private:
    /** latency_ms ~ slope * flops + intercept, per training GPU. */
    std::map<std::string, LinearFit> perGpuFit;
    /** achieved FLOPS (1/slope) ~ memory bandwidth, across GPUs. */
    LinearFit crossFit;
    /** kernel-launch floor (mean per-GPU intercept), in ms. */
    double meanIntercept = 0.0;
    bool crossFitValid = false;
};

} // namespace neusight::baselines

#endif // NEUSIGHT_BASELINES_LI_HPP
