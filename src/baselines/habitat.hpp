/**
 * @file
 * Habitat baseline (Yu et al., USENIX ATC 2021; paper Section 3.1).
 * Kernel-varying operators (GEMM family, softmax, layer norm) are
 * predicted by per-operator MLPs that regress latency *directly* from GPU
 * features (memory size/bandwidth, SM count, peak FLOPS) and kernel
 * dimensions — the approach whose out-of-distribution failure motivates
 * NeuSight. Kernel-alike operators (element-wise) are measured on a
 * reference GPU in hand and scaled by the hardware-resource ratio.
 */

#ifndef NEUSIGHT_BASELINES_HABITAT_HPP
#define NEUSIGHT_BASELINES_HABITAT_HPP

#include <map>
#include <memory>
#include <string>

#include "dataset/dataset.hpp"
#include "graph/latency_predictor.hpp"
#include "nn/module.hpp"
#include "nn/scaler.hpp"
#include "nn/trainer.hpp"

namespace neusight::baselines {

/** Habitat hyper-parameters. */
struct HabitatConfig
{
    /** Paper Section 6.1 uses "the larger MLP" variant (Section 3.2). */
    size_t hiddenDim = 64;
    size_t hiddenLayers = 8;
    nn::TrainConfig train;
    /** Reference GPU for kernel-alike wave scaling. */
    std::string referenceGpu = "V100";
    /** Reference used when the target *is* referenceGpu (paper §6.1). */
    std::string fallbackReferenceGpu = "P100";
    /**
     * Regress log1p(latency) instead of raw latency. Raw-latency MAPE
     * regression collapses over the five decades of kernel latencies;
     * the log target keeps the baseline competitive in distribution (its
     * out-of-distribution failure — the paper's point — remains).
     */
    bool logTarget = true;
    uint64_t seed = 21;

    HabitatConfig()
    {
        train.epochs = 60;
        train.batchSize = 64;
        train.lr = 1e-3;
        train.lrDecay = 0.98;
        train.weightDecay = 1e-5;
        train.loss = nn::LossKind::Mse; // On the log target.
        train.validationFraction = 0.15;
    }
};

/** MLP-based direct latency predictor. */
class HabitatPredictor : public graph::LatencyPredictor
{
  public:
    explicit HabitatPredictor(const HabitatConfig &config = HabitatConfig());
    ~HabitatPredictor() override;

    std::string name() const override { return "Habitat"; }

    /** Train the per-family MLPs on the measured corpus. */
    void train(const std::map<gpusim::OpType, dataset::OperatorDataset>
                   &corpus);

    double predictKernelMs(const gpusim::KernelDesc &desc,
                           const gpusim::GpuSpec &gpu) const override;

    /**
     * Feature vector of a kernel-varying op: GPU features (memory size,
     * bandwidth, SM count, peak FLOPS) followed by the kernel dimensions.
     * Exposed for the Table-1 larger-predictor study, which trains other
     * architectures on the same inputs.
     */
    static std::vector<double> features(const gpusim::KernelDesc &desc,
                                        const gpusim::GpuSpec &gpu);

  private:
    struct FamilyModel
    {
        std::unique_ptr<nn::Mlp> mlp;
        nn::FeatureScaler scaler;
    };

    double kernelAlikeMs(const gpusim::KernelDesc &desc,
                         const gpusim::GpuSpec &gpu) const;

    HabitatConfig config;
    std::map<gpusim::OpType, FamilyModel> models;
};

} // namespace neusight::baselines

#endif // NEUSIGHT_BASELINES_HABITAT_HPP
