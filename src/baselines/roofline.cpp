#include "baselines/roofline.hpp"

#include <algorithm>

#include "gpusim/device.hpp"

namespace neusight::baselines {

double
RooflinePredictor::predictKernelMs(const gpusim::KernelDesc &desc,
                                   const gpusim::GpuSpec &gpu) const
{
    const double peak = gpusim::effectivePeakFlops(desc, gpu);
    const double compute_s = desc.flops / peak;
    const double memory_s = desc.memBytes / gpu.memBwBytes();
    return std::max(compute_s, memory_s) * 1e3;
}

} // namespace neusight::baselines
