/**
 * @file
 * Roofline analysis baseline (paper Section 6.1, baseline 1): the kernel
 * runs at exactly the roofline bandwidth — latency is the larger of the
 * compute time at peak FLOPS and the transfer time at peak memory
 * bandwidth. No learning, no utilization model.
 */

#ifndef NEUSIGHT_BASELINES_ROOFLINE_HPP
#define NEUSIGHT_BASELINES_ROOFLINE_HPP

#include "graph/latency_predictor.hpp"

namespace neusight::baselines {

/** Analytical roofline latency estimator. */
class RooflinePredictor : public graph::LatencyPredictor
{
  public:
    std::string name() const override { return "Roofline"; }

    double predictKernelMs(const gpusim::KernelDesc &desc,
                           const gpusim::GpuSpec &gpu) const override;
};

} // namespace neusight::baselines

#endif // NEUSIGHT_BASELINES_ROOFLINE_HPP
