#include "baselines/habitat.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "gpusim/device.hpp"
#include "nn/autograd.hpp"

namespace neusight::baselines {

using gpusim::GpuSpec;
using gpusim::KernelDesc;
using gpusim::OpType;

HabitatPredictor::HabitatPredictor(const HabitatConfig &config_)
    : config(config_)
{
}

HabitatPredictor::~HabitatPredictor() = default;

std::vector<double>
HabitatPredictor::features(const KernelDesc &desc, const GpuSpec &gpu)
{
    // Fixed 8-wide layout: 4 GPU features (paper Section 3.1) + 4 kernel
    // dimensions (output dims then the reduction dim, padded with 1).
    std::vector<double> f = {
        gpu.memorySizeGB,
        gpu.memoryBwGBps,
        static_cast<double>(gpu.numSms),
        gpusim::effectivePeakFlops(desc, gpu) / 1e12,
    };
    for (uint64_t d : desc.outDims)
        f.push_back(static_cast<double>(d));
    if (desc.reduceDim > 0)
        f.push_back(static_cast<double>(desc.reduceDim));
    while (f.size() < 8)
        f.push_back(1.0);
    ensure(f.size() == 8, "HabitatPredictor::features: rank overflow");
    return f;
}

void
HabitatPredictor::train(
    const std::map<OpType, dataset::OperatorDataset> &corpus)
{
    for (const auto &[type, data] : corpus) {
        // Element-wise (and memory) ops are kernel-alike: scaled from a
        // reference GPU, not learned.
        if (type == OpType::Elementwise || type == OpType::Memory)
            continue;
        if (data.samples.empty())
            continue;

        nn::MlpConfig mcfg;
        mcfg.inputDim = 8;
        mcfg.hiddenDim = config.hiddenDim;
        mcfg.hiddenLayers = config.hiddenLayers;
        mcfg.outputDim = 1;
        mcfg.seed = config.seed + static_cast<uint64_t>(type) * 211;
        FamilyModel model;
        model.mlp = std::make_unique<nn::Mlp>(mcfg);

        const size_t n = data.samples.size();
        Matrix x(n, 8);
        std::vector<double> y(n);
        for (size_t i = 0; i < n; ++i) {
            const auto &s = data.samples[i];
            const std::vector<double> f =
                features(s.desc, gpusim::findGpu(s.gpuName));
            for (size_t c = 0; c < 8; ++c)
                x.at(i, c) = f[c];
            y[i] = config.logTarget ? std::log1p(s.latencyMs)
                                    : s.latencyMs;
        }
        const Matrix scaled = model.scaler.fitTransform(x);

        nn::Mlp &net = *model.mlp;
        nn::ForwardFn fwd = [&net](const nn::Batch &batch) {
            return net.forward(nn::constant(batch.x));
        };
        nn::fit(net, scaled, y, fwd, config.train);
        models[type] = std::move(model);
    }
}

double
HabitatPredictor::kernelAlikeMs(const KernelDesc &desc,
                                const GpuSpec &gpu) const
{
    // Measure on an in-hand reference GPU and scale by the bandwidth
    // ratio (element-wise kernels are memory-bound on every GPU).
    const std::string &ref_name = gpu.name == config.referenceGpu
                                      ? config.fallbackReferenceGpu
                                      : config.referenceGpu;
    const gpusim::Device reference(gpusim::findGpu(ref_name));
    const double ref_ms = reference.measureKernelMs(desc);
    return ref_ms * reference.spec().memoryBwGBps / gpu.memoryBwGBps;
}

double
HabitatPredictor::predictKernelMs(const KernelDesc &desc,
                                  const GpuSpec &gpu) const
{
    if (desc.type == OpType::Elementwise || desc.type == OpType::Memory)
        return kernelAlikeMs(desc, gpu);
    const auto it = models.find(desc.type);
    ensure(it != models.end(),
           std::string("HabitatPredictor: no model trained for family ") +
               gpusim::opTypeName(desc.type));
    const std::vector<double> f = features(desc, gpu);
    Matrix x(1, 8);
    for (size_t c = 0; c < 8; ++c)
        x.at(0, c) = f[c];
    const Matrix scaled = it->second.scaler.transform(x);
    nn::Var pred = it->second.mlp->forward(nn::constant(scaled));
    const double raw = pred.value().at(0, 0);
    if (config.logTarget)
        return std::max(std::expm1(std::min(raw, 25.0)), 1e-6);
    return std::max(raw, 1e-6);
}

} // namespace neusight::baselines
