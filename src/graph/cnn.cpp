#include "graph/cnn.hpp"

#include <string>

#include "common/logging.hpp"
#include "graph/models.hpp"

namespace neusight::graph {

using gpusim::DataType;
using gpusim::KernelDesc;
using gpusim::OpType;
using gpusim::dtypeBytes;
using gpusim::makeElementwise;
using gpusim::makeLinear;

uint64_t
convOutputExtent(uint64_t extent, uint64_t kernel, uint64_t stride,
                 uint64_t pad)
{
    if (stride == 0)
        fatal("convOutputExtent: zero stride");
    if (extent + 2 * pad < kernel)
        fatal("convOutputExtent: window larger than padded input");
    return (extent + 2 * pad - kernel) / stride + 1;
}

KernelDesc
makeConv2d(uint64_t batch, uint64_t c_in, uint64_t height, uint64_t width,
           uint64_t c_out, uint64_t kernel, uint64_t stride, uint64_t pad,
           DataType dtype)
{
    if (batch == 0 || c_in == 0 || c_out == 0 || kernel == 0)
        fatal("makeConv2d: zero dimension");
    const uint64_t oh = convOutputExtent(height, kernel, stride, pad);
    const uint64_t ow = convOutputExtent(width, kernel, stride, pad);
    const uint64_t rows = batch * oh * ow;
    const uint64_t k = c_in * kernel * kernel;

    KernelDesc d;
    d.type = OpType::FullyConnected;
    d.opName = "conv2d";
    d.outDims = {rows, c_out};
    d.reduceDim = k;
    d.flops = 2.0 * static_cast<double>(rows) * static_cast<double>(k) *
              static_cast<double>(c_out);
    // Implicit GEMM streams the feature map, filter and output once; the
    // im2col patch matrix is never materialized in DRAM.
    const double elems =
        static_cast<double>(batch) * static_cast<double>(c_in) *
            static_cast<double>(height) * static_cast<double>(width) +
        static_cast<double>(k) * static_cast<double>(c_out) +
        static_cast<double>(rows) * static_cast<double>(c_out);
    d.memBytes = elems * static_cast<double>(dtypeBytes(dtype));
    d.dtype = dtype;
    return d;
}

KernelDesc
makeBatchNorm(uint64_t rows, uint64_t channels, DataType dtype)
{
    if (rows == 0 || channels == 0)
        fatal("makeBatchNorm: zero dimension");
    KernelDesc d;
    d.type = OpType::LayerNorm;
    d.opName = "batchnorm";
    d.outDims = {rows, channels};
    const double numel =
        static_cast<double>(rows) * static_cast<double>(channels);
    // Normalize + affine against per-channel statistics: ~4 FLOPs/elem.
    d.flops = 4.0 * numel;
    d.memBytes = (2.0 * numel + 4.0 * static_cast<double>(channels)) *
                 static_cast<double>(dtypeBytes(dtype));
    d.dtype = dtype;
    return d;
}

KernelDesc
makePool(uint64_t batch, uint64_t channels, uint64_t height, uint64_t width,
         uint64_t window, uint64_t stride, uint64_t pad, DataType dtype)
{
    if (batch == 0 || channels == 0)
        fatal("makePool: zero dimension");
    const uint64_t oh = convOutputExtent(height, window, stride, pad);
    const uint64_t ow = convOutputExtent(width, window, stride, pad);
    const double in_elems = static_cast<double>(batch) *
                            static_cast<double>(channels) *
                            static_cast<double>(height) *
                            static_cast<double>(width);
    const double out_elems = static_cast<double>(batch) *
                             static_cast<double>(channels) *
                             static_cast<double>(oh) *
                             static_cast<double>(ow);
    KernelDesc d;
    d.type = OpType::Memory;
    d.opName = "pool";
    d.outDims = {static_cast<uint64_t>(out_elems)};
    d.flops = in_elems; // One compare/accumulate per input element.
    d.memBytes = (in_elems + out_elems) *
                 static_cast<double>(dtypeBytes(dtype));
    d.dtype = dtype;
    return d;
}

namespace {

/** Conv + BN (+ optional ReLU), the repeated motif of both CNNs. */
void
appendConvBnRelu(KernelGraph &g, const std::string &label, uint64_t batch,
                 uint64_t c_in, uint64_t extent, uint64_t c_out,
                 uint64_t kernel, uint64_t stride, uint64_t pad, bool relu,
                 DataType dtype)
{
    g.add(makeConv2d(batch, c_in, extent, extent, c_out, kernel, stride,
                     pad, dtype),
          label + ".conv");
    const uint64_t out = convOutputExtent(extent, kernel, stride, pad);
    g.add(makeBatchNorm(batch * out * out, c_out, dtype), label + ".bn");
    if (relu)
        g.add(makeElementwise("relu", batch * out * out * c_out, 1, 1.0,
                              dtype),
              label + ".relu");
}

/**
 * One ResNet bottleneck: 1x1 reduce, 3x3 (carrying the stride), 1x1
 * expand, projection shortcut when the shape changes.
 */
void
appendBottleneck(KernelGraph &g, const std::string &label, uint64_t batch,
                 uint64_t c_in, uint64_t extent, uint64_t mid,
                 uint64_t c_out, uint64_t stride, DataType dtype)
{
    appendConvBnRelu(g, label + ".a", batch, c_in, extent, mid, 1, 1, 0,
                     true, dtype);
    appendConvBnRelu(g, label + ".b", batch, mid, extent, mid, 3, stride, 1,
                     true, dtype);
    const uint64_t out_extent = extent / stride;
    appendConvBnRelu(g, label + ".c", batch, mid, out_extent, c_out, 1, 1,
                     0, false, dtype);
    if (stride != 1 || c_in != c_out)
        appendConvBnRelu(g, label + ".down", batch, c_in, extent, c_out, 1,
                         stride, 0, false, dtype);
    const uint64_t numel = batch * out_extent * out_extent * c_out;
    g.add(makeElementwise("add", numel, 2, 1.0, dtype), label + ".residual");
    g.add(makeElementwise("relu", numel, 1, 1.0, dtype), label + ".out");
}

} // namespace

KernelGraph
buildResNet50Graph(uint64_t batch, DataType dtype)
{
    if (batch == 0)
        fatal("buildResNet50Graph: batch must be positive");
    KernelGraph g;

    // Stem: 7x7/2 conv then 3x3/2 max-pool, 224 -> 56.
    appendConvBnRelu(g, "stem", batch, 3, 224, 64, 7, 2, 3, true, dtype);
    g.add(makePool(batch, 64, 112, 112, 3, 2, 1, dtype), "stem.maxpool");

    struct Stage
    {
        uint64_t blocks;
        uint64_t mid;
        uint64_t out;
        uint64_t stride;
    };
    const Stage stages[] = {
        {3, 64, 256, 1},
        {4, 128, 512, 2},
        {6, 256, 1024, 2},
        {3, 512, 2048, 2},
    };

    uint64_t c_in = 64;
    uint64_t extent = 56;
    for (size_t s = 0; s < 4; ++s) {
        const Stage &stage = stages[s];
        for (uint64_t b = 0; b < stage.blocks; ++b) {
            const uint64_t stride = (b == 0) ? stage.stride : 1;
            const std::string label = "stage" + std::to_string(s + 1) +
                                      ".block" + std::to_string(b);
            appendBottleneck(g, label, batch, c_in, extent, stage.mid,
                             stage.out, stride, dtype);
            extent /= stride;
            c_in = stage.out;
        }
    }

    // Global average pool (7x7 -> 1x1) and classifier.
    g.add(makePool(batch, 2048, 7, 7, 7, 7, 0, dtype), "head.avgpool");
    g.add(makeLinear(batch, 2048, 1000, dtype), "head.fc");
    return g;
}

KernelGraph
buildResNet50TrainingGraph(uint64_t batch, DataType dtype)
{
    KernelGraph g = buildResNet50Graph(batch, dtype);
    appendBackwardPass(g);
    return g;
}

KernelGraph
buildVgg16Graph(uint64_t batch, DataType dtype)
{
    if (batch == 0)
        fatal("buildVgg16Graph: batch must be positive");
    KernelGraph g;

    struct Stage
    {
        uint64_t convs;
        uint64_t channels;
    };
    const Stage stages[] = {{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512}};

    uint64_t c_in = 3;
    uint64_t extent = 224;
    for (size_t s = 0; s < 5; ++s) {
        const Stage &stage = stages[s];
        const std::string base = "stage" + std::to_string(s + 1);
        for (uint64_t c = 0; c < stage.convs; ++c) {
            const std::string label = base + ".conv" + std::to_string(c);
            g.add(makeConv2d(batch, c_in, extent, extent, stage.channels, 3,
                             1, 1, dtype),
                  label);
            g.add(makeElementwise("relu",
                                  batch * extent * extent * stage.channels,
                                  1, 1.0, dtype),
                  label + ".relu");
            c_in = stage.channels;
        }
        g.add(makePool(batch, stage.channels, extent, extent, 2, 2, 0,
                       dtype),
              base + ".maxpool");
        extent /= 2;
    }

    // Classifier head: 512*7*7 -> 4096 -> 4096 -> 1000.
    g.add(makeLinear(batch, 512 * 7 * 7, 4096, dtype), "head.fc1");
    g.add(makeElementwise("relu", batch * 4096, 1, 1.0, dtype),
          "head.fc1.relu");
    g.add(makeLinear(batch, 4096, 4096, dtype), "head.fc2");
    g.add(makeElementwise("relu", batch * 4096, 1, 1.0, dtype),
          "head.fc2.relu");
    g.add(makeLinear(batch, 4096, 1000, dtype), "head.fc3");
    return g;
}

double
cnnParameterCount(const KernelGraph &graph)
{
    double total = 0.0;
    for (const KernelNode &node : graph.nodes) {
        if (node.kind != NodeKind::Compute)
            continue;
        const KernelDesc &k = node.kernel;
        if (k.type == OpType::FullyConnected) {
            // Weight (K x out); conv filters have no bias (BN follows),
            // classifier linears do.
            total += static_cast<double>(k.reduceDim) *
                     static_cast<double>(k.outDims[1]);
            if (k.opName == "linear")
                total += static_cast<double>(k.outDims[1]);
        } else if (k.type == OpType::LayerNorm && k.opName == "batchnorm") {
            total += 2.0 * static_cast<double>(k.outDims[1]);
        }
    }
    return total;
}

double
resNet50ParameterCount()
{
    static const double count = cnnParameterCount(buildResNet50Graph(1));
    return count;
}

} // namespace neusight::graph
