/**
 * @file
 * Arena-backed node storage for KernelGraph. Model graphs append
 * thousands of nodes one at a time; a growing std::vector repeatedly
 * reallocates and move-constructs every node (each carrying strings and
 * a KernelDesc), which dominates cold-cache graph-construction time. The
 * ArenaList below bump-allocates nodes into fixed-size chunks owned by
 * the list: appends never move existing elements, so node pointers and
 * references stay stable for the lifetime of the owning graph, and the
 * per-node cost is one placement-new into pre-allocated storage.
 *
 * Lifetime rule for consumers: a KernelNode reference or pointer taken
 * from a graph remains valid until that graph is destroyed, cleared, or
 * assigned over — NOT merely until the next push_back, unlike a vector.
 */

#ifndef NEUSIGHT_GRAPH_ARENA_HPP
#define NEUSIGHT_GRAPH_ARENA_HPP

#include <cstddef>
#include <iterator>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace neusight::graph {

/**
 * Chunked bump-allocated sequence with stable element addresses and the
 * subset of the std::vector interface the graph layer uses (push_back,
 * emplace_back, indexing, iteration, size). Elements are constructed in
 * place inside 64-element chunks; chunks are never relocated. clear()
 * destroys the elements but keeps the chunks, so rebuilding a graph in
 * the same arena allocates nothing.
 */
template <typename T>
class ArenaList
{
  public:
    static constexpr size_t kChunkShift = 6;
    static constexpr size_t kChunkSize = size_t(1) << kChunkShift;

    ArenaList() = default;

    ArenaList(const ArenaList &other)
    {
        for (const T &v : other)
            push_back(v);
    }

    ArenaList(ArenaList &&other) noexcept
        : chunks(std::move(other.chunks)), count(other.count)
    {
        other.chunks.clear();
        other.count = 0;
    }

    ArenaList &operator=(const ArenaList &other)
    {
        if (this != &other) {
            clear();
            for (const T &v : other)
                push_back(v);
        }
        return *this;
    }

    ArenaList &operator=(ArenaList &&other) noexcept
    {
        if (this != &other) {
            destroyAll();
            chunks = std::move(other.chunks);
            count = other.count;
            other.chunks.clear();
            other.count = 0;
        }
        return *this;
    }

    ~ArenaList() { destroyAll(); }

    /** Number of live elements. */
    size_t size() const { return count; }

    /** True when no elements are live. */
    bool empty() const { return count == 0; }

    /** Append a copy. The element address never changes afterwards. */
    void push_back(const T &value) { emplace_back(value); }

    /** Append by move. The element address never changes afterwards. */
    void push_back(T &&value) { emplace_back(std::move(value)); }

    /** Construct in place; returns the (stable) element. */
    template <typename... Args>
    T &emplace_back(Args &&...args)
    {
        T *p = ::new (slotFor(count)) T(std::forward<Args>(args)...);
        ++count;
        return *p;
    }

    /** Element access. */
    T &operator[](size_t i)
    {
        return *std::launder(reinterpret_cast<T *>(
                                 chunks[i >> kChunkShift]->storage) +
                             (i & (kChunkSize - 1)));
    }

    /** Element access, const. */
    const T &operator[](size_t i) const
    {
        return *std::launder(reinterpret_cast<const T *>(
                                 chunks[i >> kChunkShift]->storage) +
                             (i & (kChunkSize - 1)));
    }

    /** First element. */
    T &front() { return (*this)[0]; }

    /** First element, const. */
    const T &front() const { return (*this)[0]; }

    /** Last element. */
    T &back() { return (*this)[count - 1]; }

    /** Last element, const. */
    const T &back() const { return (*this)[count - 1]; }

    /**
     * Destroy all elements. Chunk storage is retained, so subsequent
     * appends reuse the arena without touching the allocator.
     */
    void clear()
    {
        for (size_t i = 0; i < count; ++i)
            (*this)[i].~T();
        count = 0;
    }

    template <typename ListT, typename ValueT>
    class Iter
    {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = std::remove_cv_t<ValueT>;
        using difference_type = std::ptrdiff_t;
        using pointer = ValueT *;
        using reference = ValueT &;

        Iter() = default;
        Iter(ListT *list, size_t idx) : list(list), idx(idx) {}

        reference operator*() const { return (*list)[idx]; }
        pointer operator->() const { return &(*list)[idx]; }

        Iter &operator++()
        {
            ++idx;
            return *this;
        }

        Iter operator++(int)
        {
            Iter old = *this;
            ++idx;
            return old;
        }

        bool operator==(const Iter &other) const
        {
            return idx == other.idx && list == other.list;
        }

        bool operator!=(const Iter &other) const
        {
            return !(*this == other);
        }

      private:
        ListT *list = nullptr;
        size_t idx = 0;
    };

    using iterator = Iter<ArenaList, T>;
    using const_iterator = Iter<const ArenaList, const T>;

    iterator begin() { return iterator(this, 0); }
    iterator end() { return iterator(this, count); }
    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, count); }
    const_iterator cbegin() const { return begin(); }
    const_iterator cend() const { return end(); }

  private:
    struct Chunk
    {
        alignas(T) unsigned char storage[sizeof(T) * kChunkSize];
    };

    /** Raw storage for element @p i, growing the arena when needed. */
    void *slotFor(size_t i)
    {
        if ((i >> kChunkShift) == chunks.size())
            chunks.push_back(std::make_unique<Chunk>());
        return chunks[i >> kChunkShift]->storage +
               sizeof(T) * (i & (kChunkSize - 1));
    }

    void destroyAll()
    {
        clear();
        chunks.clear();
    }

    std::vector<std::unique_ptr<Chunk>> chunks;
    size_t count = 0;
};

} // namespace neusight::graph

#endif // NEUSIGHT_GRAPH_ARENA_HPP
