#include "graph/latency_predictor.hpp"

#include "obs/trace.hpp"

namespace neusight::graph {

std::vector<double>
LatencyPredictor::predictKernelsMs(
    const std::vector<gpusim::KernelDesc> &descs,
    const gpusim::GpuSpec &gpu) const
{
    std::vector<double> out;
    out.reserve(descs.size());
    for (const auto &desc : descs)
        out.push_back(predictKernelMs(desc, gpu));
    return out;
}

double
LatencyPredictor::predictGraphMs(const KernelGraph &g,
                                 const gpusim::GpuSpec &gpu) const
{
    obs::TraceSpan span("graph.predict", "graph");
    std::vector<gpusim::KernelDesc> descs;
    descs.reserve(g.nodes.size());
    for (const auto &node : g.nodes)
        if (node.kind == NodeKind::Compute)
            descs.push_back(node.kernel);
    double total = 0.0;
    for (double ms : predictKernelsMs(descs, gpu))
        total += ms;
    return total;
}

} // namespace neusight::graph
