#include "graph/latency_predictor.hpp"

namespace neusight::graph {

double
LatencyPredictor::predictGraphMs(const KernelGraph &g,
                                 const gpusim::GpuSpec &gpu) const
{
    double total = 0.0;
    for (const auto &node : g.nodes)
        if (node.kind == NodeKind::Compute)
            total += predictKernelMs(node.kernel, gpu);
    return total;
}

} // namespace neusight::graph
