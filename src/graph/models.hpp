/**
 * @file
 * Transformer workload builders for the six models of paper Table 5
 * (BERT-Large, GPT2-Large, GPT3-XL, OPT-1.3B, GPT3-2.7B, Switch
 * Transformer). Builders emit the per-GPU kernel graph of an inference
 * forward pass or a training iteration (forward + backward), matching the
 * kernel-level structure a PyTorch eager run dispatches.
 */

#ifndef NEUSIGHT_GRAPH_MODELS_HPP
#define NEUSIGHT_GRAPH_MODELS_HPP

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace neusight::graph {

/** Transformer architecture hyper-parameters. */
struct ModelConfig
{
    std::string name;
    uint64_t numLayers = 12;
    uint64_t hidden = 768;
    uint64_t heads = 12;
    uint64_t seq = 512;
    /** Feed-forward inner width; 0 means 4 * hidden. */
    uint64_t ffDim = 0;
    uint64_t vocab = 50257;
    /** >1 turns alternate layers into Switch-style top-1 MoE FFNs. */
    uint64_t numExperts = 1;
    /** Encoder-only classifier (BERT) vs decoder LM head (GPT/OPT). */
    bool encoderOnly = false;

    /** Effective feed-forward width. */
    uint64_t ffWidth() const { return ffDim ? ffDim : 4 * hidden; }

    /** Total trainable parameters (embeddings + blocks + head). */
    double parameterCount() const;
};

/** The models of paper Table 5 (dimensions reproduced from the table). */
const std::vector<ModelConfig> &paperWorkloads();

/** Look up a Table-5 model by name; fatal() when unknown. */
const ModelConfig &findModel(const std::string &name);

/**
 * Inference forward pass at the given batch size. For text-generation
 * models this is the prefill producing the first token (the paper's
 * latency metric); for BERT it is a classification forward pass.
 */
KernelGraph buildInferenceGraph(const ModelConfig &config, uint64_t batch,
                                gpusim::DataType dtype =
                                    gpusim::DataType::Fp32);

/** One training iteration: forward plus backward (no optimizer step). */
KernelGraph buildTrainingGraph(const ModelConfig &config, uint64_t batch,
                               gpusim::DataType dtype =
                                   gpusim::DataType::Fp32);

/**
 * Append the backward-pass kernels of every compute node currently in
 * @p g, in reverse execution order. The training builders call this after
 * emitting the forward pass; exposed so custom graphs (e.g. the CNN
 * builders) can be turned into training iterations the same way.
 */
void appendBackwardPass(KernelGraph &g);

/**
 * One autoregressive decode step with a KV cache holding @p past_len
 * positions: the phase after the paper's first-token prefill metric.
 * Every GEMM collapses to one row per sequence, and attention streams
 * the cached keys/values — the workload turns memory-bound, which is
 * why decode latency tracks memory bandwidth rather than peak FLOPS.
 */
KernelGraph buildDecodeGraph(const ModelConfig &config, uint64_t batch,
                             uint64_t past_len,
                             gpusim::DataType dtype =
                                 gpusim::DataType::Fp32);

/** Resident KV-cache bytes at @p past_len positions. */
double kvCacheBytes(const ModelConfig &config, uint64_t batch,
                    uint64_t past_len,
                    gpusim::DataType dtype = gpusim::DataType::Fp32);

/** Options for building a contiguous slice of a model (pipeline stages). */
struct LayerRange
{
    uint64_t beginLayer = 0;
    /** One past the last layer; 0 means numLayers. */
    uint64_t endLayer = 0;
    /** Emit the embedding prologue (first pipeline stage). */
    bool includeEmbedding = true;
    /** Emit the final-LN + head epilogue (last pipeline stage). */
    bool includeHead = true;
    /** Forward+backward (training) vs forward only. */
    bool training = false;
};

/**
 * Kernel graph of layers [beginLayer, endLayer) with optional
 * embedding/head, used by the pipeline-parallel transform (Section 5.1).
 */
KernelGraph buildLayerRangeGraph(const ModelConfig &config, uint64_t batch,
                                 const LayerRange &range,
                                 gpusim::DataType dtype =
                                     gpusim::DataType::Fp32);

/**
 * Estimated resident device memory for running the workload, used for the
 * out-of-memory screening in the paper's tables: parameters (+ gradients
 * and AdamW state when training) plus live activations (attention scores
 * included; the paper's PyTorch 2.1 eager baseline materializes them).
 */
double modelMemoryBytes(const ModelConfig &config, uint64_t batch,
                        bool training);

/// @name Decomposed accounting used by the distributed forecaster.
/// parameterCount() and modelMemoryBytes() are sums over these, so the
/// sharded/staged memory screens in dist/ stay consistent with the
/// single-GPU ones by construction.
/// @{

/** Trainable parameters of transformer block @p layer. */
double blockParameterCount(const ModelConfig &config, uint64_t layer);

/** Token + positional embedding parameters (the LM head is tied). */
double embeddingParameterCount(const ModelConfig &config);

/** Final-norm (+ BERT pooler/classifier) parameters. */
double headParameterCount(const ModelConfig &config);

/** Activations one layer saves for the backward pass, in bytes. */
double savedActivationBytesPerLayer(const ModelConfig &config,
                                    uint64_t batch);
/// @}

} // namespace neusight::graph

#endif // NEUSIGHT_GRAPH_MODELS_HPP
