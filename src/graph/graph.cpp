#include "graph/graph.hpp"

namespace neusight::graph {

KernelNode
KernelNode::compute(gpusim::KernelDesc kernel, std::string label)
{
    KernelNode node;
    node.kind = NodeKind::Compute;
    node.kernel = std::move(kernel);
    node.label = std::move(label);
    return node;
}

KernelNode
KernelNode::comm(NodeKind kind, double bytes, std::string label)
{
    KernelNode node;
    node.kind = kind;
    node.commBytes = bytes;
    node.label = std::move(label);
    return node;
}

void
KernelGraph::add(gpusim::KernelDesc kernel, std::string label)
{
    nodes.push_back(KernelNode::compute(std::move(kernel), std::move(label)));
}

double
KernelGraph::totalFlops() const
{
    double total = 0.0;
    for (const auto &node : nodes)
        if (node.kind == NodeKind::Compute)
            total += node.kernel.flops;
    return total;
}

double
KernelGraph::totalMemBytes() const
{
    double total = 0.0;
    for (const auto &node : nodes)
        if (node.kind == NodeKind::Compute)
            total += node.kernel.memBytes;
    return total;
}

size_t
KernelGraph::countType(gpusim::OpType type) const
{
    size_t count = 0;
    for (const auto &node : nodes)
        if (node.kind == NodeKind::Compute && node.kernel.type == type)
            ++count;
    return count;
}

size_t
KernelGraph::computeNodeCount() const
{
    size_t count = 0;
    for (const auto &node : nodes)
        if (node.kind == NodeKind::Compute)
            ++count;
    return count;
}

double
KernelGraph::totalCommBytes() const
{
    double total = 0.0;
    for (const auto &node : nodes)
        if (node.kind != NodeKind::Compute)
            total += node.commBytes;
    return total;
}

} // namespace neusight::graph
