#include "graph/models.hpp"

#include "common/logging.hpp"

namespace neusight::graph {

using gpusim::DataType;
using gpusim::KernelDesc;
using gpusim::OpType;
using gpusim::dtypeBytes;
using gpusim::makeBmm;
using gpusim::makeElementwise;
using gpusim::makeLayerNorm;
using gpusim::makeLinear;
using gpusim::makeMemoryOp;
using gpusim::makeSoftmax;

namespace {

/** True when layer @p l of a Switch-style model hosts an MoE FFN. */
bool
isMoeLayer(const ModelConfig &config, uint64_t l)
{
    return config.numExperts > 1 && (l % 2 == 1);
}

/** Append one transformer block (attention + FFN / MoE FFN). */
void
appendLayer(KernelGraph &g, const ModelConfig &config, uint64_t layer,
            uint64_t batch, DataType dtype, bool training)
{
    const uint64_t h = config.hidden;
    const uint64_t a = config.heads;
    const uint64_t s = config.seq;
    const uint64_t dh = h / a;
    const uint64_t rows = batch * s;
    const uint64_t ff = config.ffWidth();
    const std::string base = "layer" + std::to_string(layer);

    // Self-attention.
    g.add(makeLayerNorm(rows, h, dtype), base + ".ln1");
    g.add(makeLinear(rows, h, 3 * h, dtype), base + ".attn.qkv");
    g.add(makeBmm(batch * a, s, s, dh, dtype), base + ".attn.qk");
    g.add(makeElementwise("div", batch * a * s * s, 1, 1.0, dtype),
          base + ".attn.scale");
    g.add(makeSoftmax(batch * a * s, s, dtype), base + ".attn.softmax");
    if (training)
        g.add(makeElementwise("dropout", batch * a * s * s, 1, 1.0, dtype),
              base + ".attn.dropout");
    g.add(makeBmm(batch * a, s, dh, s, dtype), base + ".attn.pv");
    g.add(makeLinear(rows, h, h, dtype), base + ".attn.proj");
    if (training)
        g.add(makeElementwise("dropout", rows * h, 1, 1.0, dtype),
              base + ".attn.proj_dropout");
    g.add(makeElementwise("add", rows * h, 2, 1.0, dtype),
          base + ".attn.residual");

    // Feed-forward (dense or Switch top-1 MoE).
    g.add(makeLayerNorm(rows, h, dtype), base + ".ln2");
    if (isMoeLayer(config, layer)) {
        const uint64_t e = config.numExperts;
        const uint64_t rows_per_expert = std::max<uint64_t>(rows / e, 1);
        g.add(makeLinear(rows, h, e, dtype), base + ".moe.router");
        g.add(makeSoftmax(rows, e, dtype), base + ".moe.gate");
        for (uint64_t x = 0; x < e; ++x) {
            const std::string expert =
                base + ".moe.expert" + std::to_string(x);
            g.add(makeLinear(rows_per_expert, h, ff, dtype), expert + ".ff1");
            g.add(makeElementwise("gelu", rows_per_expert * ff, 1, 8.0,
                                  dtype),
                  expert + ".act");
            g.add(makeLinear(rows_per_expert, ff, h, dtype), expert + ".ff2");
        }
        g.add(makeElementwise("mul", rows * h, 2, 1.0, dtype),
              base + ".moe.combine");
    } else {
        g.add(makeLinear(rows, h, ff, dtype), base + ".ff1");
        g.add(makeElementwise("gelu", rows * ff, 1, 8.0, dtype),
              base + ".act");
        g.add(makeLinear(rows, ff, h, dtype), base + ".ff2");
    }
    if (training)
        g.add(makeElementwise("dropout", rows * h, 1, 1.0, dtype),
              base + ".ff.dropout");
    g.add(makeElementwise("add", rows * h, 2, 1.0, dtype),
          base + ".ff.residual");
}

/** Forward pass over a layer range, shared by every builder. */
KernelGraph
buildForward(const ModelConfig &config, uint64_t batch, DataType dtype,
             bool training, uint64_t begin_layer, uint64_t end_layer,
             bool with_embedding, bool with_head)
{
    ensure(batch > 0, "buildForward: batch must be positive");
    ensure(config.hidden % config.heads == 0,
           "buildForward: hidden must divide heads for " + config.name);
    ensure(begin_layer <= end_layer && end_layer <= config.numLayers,
           "buildForward: bad layer range");
    KernelGraph g;
    const uint64_t h = config.hidden;
    const uint64_t s = config.seq;
    const uint64_t rows = batch * s;
    const double bytes = static_cast<double>(dtypeBytes(dtype));

    if (with_embedding) {
        g.add(makeMemoryOp("embedding",
                           static_cast<double>(rows * h) * bytes, dtype),
              "embed.tokens");
        g.add(makeElementwise("add", rows * h, 2, 1.0, dtype),
              "embed.pos_add");
    }

    for (uint64_t l = begin_layer; l < end_layer; ++l)
        appendLayer(g, config, l, batch, dtype, training);

    if (with_head) {
        g.add(makeLayerNorm(rows, h, dtype), "final.ln");
        if (config.encoderOnly) {
            // BERT: pooled classification over the [CLS] position.
            g.add(makeLinear(batch, h, h, dtype), "head.pooler");
            g.add(makeElementwise("tanh", batch * h, 1, 4.0, dtype),
                  "head.pooler_act");
            g.add(makeLinear(batch, h, 2, dtype), "head.classifier");
        } else {
            // Decoder LM: logits for every position (first-token latency).
            g.add(makeLinear(rows, h, config.vocab, dtype), "head.lm");
        }
    }
    return g;
}

/** Backward kernels for one forward compute node, appended in place. */
void
appendBackwardOf(KernelGraph &g, const KernelNode &fwd)
{
    const KernelDesc &k = fwd.kernel;
    const std::string label = fwd.label + ".bwd";
    switch (k.type) {
      case OpType::FullyConnected: {
        const uint64_t rows = k.outDims[0];
        const uint64_t out = k.outDims[1];
        const uint64_t in = k.reduceDim;
        g.add(makeLinear(rows, out, in, k.dtype, k.usesTensorCore),
              label + ".dx");
        g.add(makeLinear(in, rows, out, k.dtype, k.usesTensorCore),
              label + ".dw");
        return;
      }
      case OpType::BatchedMatmul: {
        const uint64_t b = k.outDims[0];
        const uint64_t m = k.outDims[1];
        const uint64_t n = k.outDims[2];
        const uint64_t kk = k.reduceDim;
        g.add(makeBmm(b, m, kk, n, k.dtype, k.usesTensorCore), label + ".da");
        g.add(makeBmm(b, kk, n, m, k.dtype, k.usesTensorCore), label + ".db");
        return;
      }
      case OpType::Elementwise: {
        // Residual adds just route gradients; activations need a kernel.
        if (k.opName == "add")
            return;
        g.add(makeElementwise(k.opName + "_bwd", k.outDims[0], 2,
                              gpusim::elementwiseFlopsPerElem(k.opName) + 2.0,
                              k.dtype),
              label);
        return;
      }
      case OpType::Softmax: {
        KernelDesc bwd = makeSoftmax(k.outDims[0], k.outDims[1], k.dtype);
        bwd.opName = "softmax_bwd";
        g.nodes.push_back(KernelNode::compute(std::move(bwd), label));
        return;
      }
      case OpType::LayerNorm: {
        KernelDesc bwd = makeLayerNorm(k.outDims[0], k.outDims[1], k.dtype);
        bwd.opName = "layernorm_bwd";
        g.nodes.push_back(KernelNode::compute(std::move(bwd), label));
        return;
      }
      case OpType::Memory:
        g.add(makeMemoryOp(k.opName + "_bwd", k.memBytes, k.dtype), label);
        return;
    }
}

std::vector<ModelConfig>
buildPaperWorkloads()
{
    // Dimensions per paper Table 5. Three table cells are internally
    // inconsistent with the stated parameter counts and the published
    // architectures; we use the published values and record the deviation
    // in EXPERIMENTS.md: BERT-Large is 24x1024 (table prints 12x760, which
    // does not divide its 16 heads); GPT3-XL's d_model is 2048 (the
    // table's 3072 is the attention width: GPT-3 XL uses 24 heads of
    // d_head 128) — we keep d_head = 128 with 16 heads so the attention
    // width equals the model width, as in every other evaluated model.
    std::vector<ModelConfig> models;
    models.push_back({"BERT-Large", 24, 1024, 16, 512, 0, 30522, 1, true});
    models.push_back({"GPT2-Large", 36, 1280, 20, 1024, 0, 50257, 1, false});
    models.push_back({"GPT3-XL", 24, 2048, 16, 2048, 0, 50257, 1, false});
    models.push_back({"OPT-1.3B", 24, 2048, 32, 2048, 0, 50272, 1, false});
    models.push_back({"GPT3-2.7B", 32, 2560, 32, 2048, 0, 50257, 1, false});
    models.push_back({"SwitchTrans", 24, 1024, 32, 512, 0, 32128, 4, false});
    return models;
}

} // namespace

void
appendBackwardPass(KernelGraph &g)
{
    const size_t forward_end = g.nodes.size();
    for (size_t i = forward_end; i-- > 0;) {
        if (g.nodes[i].kind != NodeKind::Compute)
            continue;
        // Arena storage keeps node references stable across appends, so
        // reading g.nodes[i] while appendBackwardOf grows the list is
        // safe without a copy.
        appendBackwardOf(g, g.nodes[i]);
    }
}

double
blockParameterCount(const ModelConfig &config, uint64_t layer)
{
    const double h = static_cast<double>(config.hidden);
    const double ff = static_cast<double>(config.ffWidth());
    double total = 4.0 * h * h + 4.0 * h; // QKV + output projection.
    total += 4.0 * h;                     // Two layer norms.
    if (isMoeLayer(config, layer)) {
        const double e = static_cast<double>(config.numExperts);
        total += h * e;                      // Router.
        total += e * (2.0 * h * ff + ff + h); // Experts.
    } else {
        total += 2.0 * h * ff + ff + h;
    }
    return total;
}

double
embeddingParameterCount(const ModelConfig &config)
{
    const double h = static_cast<double>(config.hidden);
    return static_cast<double>(config.vocab) * h +
           static_cast<double>(config.seq) * h;
}

double
headParameterCount(const ModelConfig &config)
{
    const double h = static_cast<double>(config.hidden);
    double total = 2.0 * h; // Final layer norm.
    if (config.encoderOnly)
        total += h * h + h + 2.0 * h + 2.0; // Pooler + classifier.
    // LM head is tied with the token embedding.
    return total;
}

double
savedActivationBytesPerLayer(const ModelConfig &config, uint64_t batch)
{
    const double h = static_cast<double>(config.hidden);
    const double s = static_cast<double>(config.seq);
    const double a = static_cast<double>(config.heads);
    const double b = static_cast<double>(batch);
    const double rows_h = b * s * h * 4.0;   // One (B*S, H) activation.
    const double attn = b * a * s * s * 4.0; // One (B,A,S,S) score tensor.
    return 14.0 * rows_h + 3.0 * attn;
}

double
ModelConfig::parameterCount() const
{
    double total = embeddingParameterCount(*this);
    for (uint64_t l = 0; l < numLayers; ++l)
        total += blockParameterCount(*this, l);
    total += headParameterCount(*this);
    return total;
}

const std::vector<ModelConfig> &
paperWorkloads()
{
    static const std::vector<ModelConfig> models = buildPaperWorkloads();
    return models;
}

const ModelConfig &
findModel(const std::string &name)
{
    for (const auto &m : paperWorkloads())
        if (m.name == name)
            return m;
    fatal("findModel: unknown model '" + name + "'");
}

KernelGraph
buildInferenceGraph(const ModelConfig &config, uint64_t batch, DataType dtype)
{
    return buildForward(config, batch, dtype, false, 0, config.numLayers,
                        true, true);
}

KernelGraph
buildTrainingGraph(const ModelConfig &config, uint64_t batch, DataType dtype)
{
    KernelGraph g = buildForward(config, batch, dtype, true, 0,
                                 config.numLayers, true, true);
    appendBackwardPass(g);
    return g;
}

KernelGraph
buildLayerRangeGraph(const ModelConfig &config, uint64_t batch,
                     const LayerRange &range, DataType dtype)
{
    const uint64_t end = range.endLayer ? range.endLayer : config.numLayers;
    KernelGraph g = buildForward(config, batch, dtype, range.training,
                                 range.beginLayer, end,
                                 range.includeEmbedding, range.includeHead);
    if (range.training)
        appendBackwardPass(g);
    return g;
}

KernelGraph
buildDecodeGraph(const ModelConfig &config, uint64_t batch,
                 uint64_t past_len, DataType dtype)
{
    if (batch == 0)
        fatal("buildDecodeGraph: batch must be positive");
    if (past_len == 0)
        fatal("buildDecodeGraph: need a non-empty KV cache");
    ensure(config.hidden % config.heads == 0,
           "buildDecodeGraph: hidden must divide heads for " + config.name);
    KernelGraph g;
    const uint64_t h = config.hidden;
    const uint64_t a = config.heads;
    const uint64_t dh = h / a;
    const uint64_t ff = config.ffWidth();
    const uint64_t ctx = past_len + 1; // Cache plus the new position.
    const double bytes = static_cast<double>(dtypeBytes(dtype));

    g.add(makeMemoryOp("embedding", static_cast<double>(batch * h) * bytes,
                       dtype),
          "embed.tokens");
    for (uint64_t l = 0; l < config.numLayers; ++l) {
        const std::string base = "layer" + std::to_string(l);
        g.add(makeLayerNorm(batch, h, dtype), base + ".ln1");
        g.add(makeLinear(batch, h, 3 * h, dtype), base + ".attn.qkv");
        // Append this step's key/value to the cache.
        g.add(makeMemoryOp("kv_append",
                           2.0 * static_cast<double>(batch * h) * bytes,
                           dtype),
              base + ".attn.kv_append");
        // One query row against the whole cache.
        g.add(makeBmm(batch * a, 1, ctx, dh, dtype), base + ".attn.qk");
        g.add(makeElementwise("div", batch * a * ctx, 1, 1.0, dtype),
              base + ".attn.scale");
        g.add(makeSoftmax(batch * a, ctx, dtype), base + ".attn.softmax");
        g.add(makeBmm(batch * a, 1, dh, ctx, dtype), base + ".attn.pv");
        g.add(makeLinear(batch, h, h, dtype), base + ".attn.proj");
        g.add(makeElementwise("add", batch * h, 2, 1.0, dtype),
              base + ".attn.residual");

        g.add(makeLayerNorm(batch, h, dtype), base + ".ln2");
        if (isMoeLayer(config, l)) {
            const uint64_t e = config.numExperts;
            const uint64_t rows_per_expert =
                std::max<uint64_t>(batch / e, 1);
            g.add(makeLinear(batch, h, e, dtype), base + ".moe.router");
            g.add(makeSoftmax(batch, e, dtype), base + ".moe.gate");
            for (uint64_t x = 0; x < e; ++x) {
                const std::string expert =
                    base + ".moe.expert" + std::to_string(x);
                g.add(makeLinear(rows_per_expert, h, ff, dtype),
                      expert + ".ff1");
                g.add(makeElementwise("gelu", rows_per_expert * ff, 1, 8.0,
                                      dtype),
                      expert + ".act");
                g.add(makeLinear(rows_per_expert, ff, h, dtype),
                      expert + ".ff2");
            }
            g.add(makeElementwise("mul", batch * h, 2, 1.0, dtype),
                  base + ".moe.combine");
        } else {
            g.add(makeLinear(batch, h, ff, dtype), base + ".ff1");
            g.add(makeElementwise("gelu", batch * ff, 1, 8.0, dtype),
                  base + ".act");
            g.add(makeLinear(batch, ff, h, dtype), base + ".ff2");
        }
        g.add(makeElementwise("add", batch * h, 2, 1.0, dtype),
              base + ".ff.residual");
    }
    g.add(makeLayerNorm(batch, h, dtype), "final.ln");
    g.add(makeLinear(batch, h, config.vocab, dtype), "head.lm");
    return g;
}

double
kvCacheBytes(const ModelConfig &config, uint64_t batch, uint64_t past_len,
             DataType dtype)
{
    return 2.0 * static_cast<double>(config.numLayers) *
           static_cast<double>(batch) * static_cast<double>(past_len) *
           static_cast<double>(config.hidden) *
           static_cast<double>(dtypeBytes(dtype));
}

double
modelMemoryBytes(const ModelConfig &config, uint64_t batch, bool training)
{
    const double p = config.parameterCount();
    const double h = static_cast<double>(config.hidden);
    const double s = static_cast<double>(config.seq);
    const double a = static_cast<double>(config.heads);
    const double b = static_cast<double>(batch);
    const double rows_h = b * s * h * 4.0;     // One (B*S, H) activation.
    const double attn = b * a * s * s * 4.0;   // One (B,A,S,S) score tensor.

    double total = p * 4.0; // Parameters (fp32).
    if (training) {
        total += p * 12.0; // Gradients + AdamW moments.
        // Saved activations per layer for the backward pass.
        total += static_cast<double>(config.numLayers) *
                 savedActivationBytesPerLayer(config, batch);
    } else {
        // Live working set only: a few activation tensors deep.
        total += 6.0 * rows_h + 2.0 * attn;
        total += b * s * static_cast<double>(config.vocab) * 4.0; // Logits.
    }
    return total;
}

} // namespace neusight::graph
