/**
 * @file
 * JSON (de)serialization for ModelConfig: lets users forecast model
 * architectures that are not in the built-in Table-5 set — the paper's
 * "new model architectures on existing GPUs" scenario — by describing
 * the transformer hyper-parameters in a config file.
 */

#ifndef NEUSIGHT_GRAPH_MODEL_IO_HPP
#define NEUSIGHT_GRAPH_MODEL_IO_HPP

#include <string>
#include <vector>

#include "common/json.hpp"
#include "graph/models.hpp"

namespace neusight::graph {

/**
 * Build a ModelConfig from a JSON object. Required keys: "name",
 * "num_layers", "hidden", "heads", "seq". Optional: "ff_dim" (default
 * 4*hidden), "vocab", "num_experts", "encoder_only". fatal() on missing
 * keys or inconsistent dimensions (hidden must divide heads).
 */
ModelConfig modelConfigFromJson(const common::Json &json);

/** Serialize a ModelConfig to the same JSON schema. */
common::Json modelConfigToJson(const ModelConfig &config);

/** Load one config or an array of configs from the document at @p path. */
std::vector<ModelConfig> loadModelConfigs(const std::string &path);

/** Write @p configs to @p path as a JSON array; fatal() on I/O error. */
void saveModelConfigs(const std::vector<ModelConfig> &configs,
                      const std::string &path);

/**
 * Resolve a model by Table-5 name or by config file: unknown names are
 * treated as a path to a JSON description (first config of an array).
 */
ModelConfig resolveModel(const std::string &name_or_path);

} // namespace neusight::graph

#endif // NEUSIGHT_GRAPH_MODEL_IO_HPP
