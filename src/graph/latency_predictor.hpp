/**
 * @file
 * Abstract latency-predictor interface implemented by NeuSight and by
 * every baseline (roofline analysis, Habitat, Li et al.), so the
 * evaluation harness and benches can sweep them uniformly.
 */

#ifndef NEUSIGHT_GRAPH_LATENCY_PREDICTOR_HPP
#define NEUSIGHT_GRAPH_LATENCY_PREDICTOR_HPP

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "gpusim/gpu_spec.hpp"

namespace neusight::graph {

/** Predicts DNN kernel / model latency on a (possibly unseen) GPU. */
class LatencyPredictor
{
  public:
    virtual ~LatencyPredictor() = default;

    /** Display name ("NeuSight", "Roofline", "Habitat", "Li et al."). */
    virtual std::string name() const = 0;

    /** Latency of one kernel on @p gpu in milliseconds. */
    virtual double predictKernelMs(const gpusim::KernelDesc &desc,
                                   const gpusim::GpuSpec &gpu) const = 0;

    /**
     * Latencies of @p descs on @p gpu, in order. The batched seam of the
     * interface: the default loops predictKernelMs, and backends that
     * can amortize work across kernels (NeuSight dedups repeated
     * fingerprints and evaluates each operator family's MLP in one
     * matrix pass) override this once and every graph forecast
     * inherits the speedup.
     */
    virtual std::vector<double>
    predictKernelsMs(const std::vector<gpusim::KernelDesc> &descs,
                     const gpusim::GpuSpec &gpu) const;

    /**
     * Per-GPU latency of a kernel graph: kernels execute sequentially on
     * the device (Section 5), so the default sums the compute nodes'
     * predictKernelsMs latencies.
     */
    virtual double predictGraphMs(const KernelGraph &g,
                                  const gpusim::GpuSpec &gpu) const;
};

} // namespace neusight::graph

#endif // NEUSIGHT_GRAPH_LATENCY_PREDICTOR_HPP
