/**
 * @file
 * Convolutional workloads. The paper's kernel taxonomy (Section 2.2)
 * includes CONV as a GEMM-family kernel: modern libraries lower Conv2d to
 * implicit GEMM, which is how it is modeled here — a fully-connected
 * kernel of the im2col shape, predicted by the FC family. ResNet-50 is
 * the paper's running example for cycle-accurate-simulator cost
 * (Section 1: "up to 18 hours to simulate ResNet-50 with batch 256"),
 * so it is the builder provided.
 */

#ifndef NEUSIGHT_GRAPH_CNN_HPP
#define NEUSIGHT_GRAPH_CNN_HPP

#include "graph/graph.hpp"

namespace neusight::graph {

/**
 * Conv2d as an implicit GEMM: output (N*OH*OW, Cout) = im2col patches
 * (N*OH*OW, Cin*KH*KW) x filter (Cin*KH*KW, Cout). Stride/padding enter
 * through the output spatial size.
 */
gpusim::KernelDesc makeConv2d(uint64_t batch, uint64_t c_in,
                              uint64_t height, uint64_t width,
                              uint64_t c_out, uint64_t kernel,
                              uint64_t stride = 1, uint64_t pad = 0,
                              gpusim::DataType dtype =
                                  gpusim::DataType::Fp32);

/** Batch normalization over (rows, channels): a row-reduction kernel. */
gpusim::KernelDesc makeBatchNorm(uint64_t rows, uint64_t channels,
                                 gpusim::DataType dtype =
                                     gpusim::DataType::Fp32);

/** Window pooling (max/average): memory-bound over the feature map. */
gpusim::KernelDesc makePool(uint64_t batch, uint64_t channels,
                            uint64_t height, uint64_t width,
                            uint64_t window, uint64_t stride,
                            uint64_t pad = 0,
                            gpusim::DataType dtype =
                                gpusim::DataType::Fp32);

/** Spatial output extent of a conv/pool window sweep. */
uint64_t convOutputExtent(uint64_t extent, uint64_t kernel, uint64_t stride,
                          uint64_t pad);

/**
 * ResNet-50 inference forward pass (ImageNet 224x224 input): the stem,
 * sixteen bottleneck blocks over four stages, global pooling and the
 * 1000-way classifier.
 */
KernelGraph buildResNet50Graph(uint64_t batch,
                               gpusim::DataType dtype =
                                   gpusim::DataType::Fp32);

/** ResNet-50 training iteration (forward + backward). */
KernelGraph buildResNet50TrainingGraph(uint64_t batch,
                                       gpusim::DataType dtype =
                                           gpusim::DataType::Fp32);

/**
 * VGG-16 inference forward pass (ImageNet 224x224): thirteen 3x3 convs in
 * five max-pooled stages and the three-layer classifier head.
 */
KernelGraph buildVgg16Graph(uint64_t batch,
                            gpusim::DataType dtype =
                                gpusim::DataType::Fp32);

/**
 * Trainable parameters implied by the conv / fully-connected / norm
 * kernels of a CNN graph (weights are batch-independent, so any batch
 * size gives the same count). Used for memory screening.
 */
double cnnParameterCount(const KernelGraph &graph);

/** Approximate ResNet-50 parameter count (for memory screening). */
double resNet50ParameterCount();

} // namespace neusight::graph

#endif // NEUSIGHT_GRAPH_CNN_HPP
