#include "graph/fusion.hpp"

#include "common/logging.hpp"

namespace neusight::graph {

using gpusim::DataType;
using gpusim::KernelDesc;
using gpusim::OpType;
using gpusim::dtypeBytes;

namespace {

/** Pointwise activations that fuse into a preceding GEMM epilogue. */
bool
isActivation(const KernelDesc &k)
{
    return k.type == OpType::Elementwise &&
           (k.opName == "gelu" || k.opName == "relu" || k.opName == "tanh" ||
            k.opName == "sigmoid");
}

/** Elements of the intermediate tensor between the two kernels. */
double
intermediateElems(const KernelDesc &second)
{
    double elems = 1.0;
    for (uint64_t d : second.outDims)
        elems *= static_cast<double>(d);
    return elems;
}

} // namespace

bool
canFuse(const KernelDesc &first, const KernelDesc &second)
{
    if (first.dtype != second.dtype)
        return false;
    // Residual add + layer norm over the same elements.
    if (first.type == OpType::Elementwise && first.opName == "add" &&
        second.type == OpType::LayerNorm) {
        const uint64_t ln_elems = second.outDims[0] * second.outDims[1];
        return first.outDims[0] == ln_elems;
    }
    // GEMM + activation over the GEMM output.
    if ((first.type == OpType::FullyConnected ||
         first.type == OpType::BatchedMatmul) &&
        isActivation(second)) {
        return first.numOutputElements() == second.outDims[0];
    }
    return false;
}

KernelDesc
fuseKernels(const KernelDesc &first, const KernelDesc &second)
{
    ensure(canFuse(first, second), "fuseKernels: kernels are not fusible");
    KernelDesc fused = first;
    fused.opName = first.opName + "+" + second.opName;
    fused.flops = first.flops + second.flops;
    // Drop the intermediate tensor's store (epilogue of the first kernel)
    // and load (prologue of the second kernel): Section 4.4.
    const double saved = 2.0 * intermediateElems(second) *
                         static_cast<double>(dtypeBytes(first.dtype));
    fused.memBytes = first.memBytes + second.memBytes - saved;
    ensure(fused.memBytes > 0.0, "fuseKernels: negative fused traffic");
    return fused;
}

KernelGraph
fuseGraph(const KernelGraph &g)
{
    KernelGraph out;
    size_t i = 0;
    while (i < g.nodes.size()) {
        const KernelNode &node = g.nodes[i];
        if (node.kind == NodeKind::Compute && i + 1 < g.nodes.size() &&
            g.nodes[i + 1].kind == NodeKind::Compute &&
            canFuse(node.kernel, g.nodes[i + 1].kernel)) {
            KernelDesc fused = fuseKernels(node.kernel,
                                           g.nodes[i + 1].kernel);
            out.nodes.push_back(KernelNode::compute(
                std::move(fused),
                node.label + "+" + g.nodes[i + 1].label));
            i += 2;
            continue;
        }
        out.nodes.push_back(node);
        ++i;
    }
    return out;
}

} // namespace neusight::graph
