#include "graph/model_io.hpp"

#include <fstream>

#include "common/logging.hpp"

namespace neusight::graph {

using common::Json;

ModelConfig
modelConfigFromJson(const Json &json)
{
    if (!json.isObject())
        fatal("model config: expected a JSON object");
    ModelConfig config;
    config.name = json.at("name").asString();
    if (config.name.empty())
        fatal("model config: empty name");
    config.numLayers = static_cast<uint64_t>(json.at("num_layers").asInt());
    config.hidden = static_cast<uint64_t>(json.at("hidden").asInt());
    config.heads = static_cast<uint64_t>(json.at("heads").asInt());
    config.seq = static_cast<uint64_t>(json.at("seq").asInt());
    config.ffDim = static_cast<uint64_t>(
        json.has("ff_dim") ? json.at("ff_dim").asInt() : 0);
    config.vocab = static_cast<uint64_t>(
        json.has("vocab") ? json.at("vocab").asInt() : 50257);
    config.numExperts = static_cast<uint64_t>(
        json.has("num_experts") ? json.at("num_experts").asInt() : 1);
    config.encoderOnly = json.boolOr("encoder_only", false);

    if (config.numLayers == 0 || config.hidden == 0 || config.heads == 0 ||
        config.seq == 0)
        fatal("model config: zero dimension in " + config.name);
    if (config.hidden % config.heads != 0)
        fatal("model config: hidden (" + std::to_string(config.hidden) +
              ") must be divisible by heads (" +
              std::to_string(config.heads) + ") in " + config.name);
    if (config.vocab == 0 || config.numExperts == 0)
        fatal("model config: zero vocab/experts in " + config.name);
    return config;
}

Json
modelConfigToJson(const ModelConfig &config)
{
    Json json;
    json.set("name", config.name);
    json.set("num_layers", config.numLayers);
    json.set("hidden", config.hidden);
    json.set("heads", config.heads);
    json.set("seq", config.seq);
    json.set("ff_dim", config.ffDim);
    json.set("vocab", config.vocab);
    json.set("num_experts", config.numExperts);
    json.set("encoder_only", config.encoderOnly);
    return json;
}

std::vector<ModelConfig>
loadModelConfigs(const std::string &path)
{
    const Json doc = Json::parseFile(path);
    std::vector<ModelConfig> configs;
    if (doc.isArray()) {
        for (const Json &entry : doc.asArray())
            configs.push_back(modelConfigFromJson(entry));
    } else {
        configs.push_back(modelConfigFromJson(doc));
    }
    if (configs.empty())
        fatal("model config: '" + path + "' holds no configs");
    return configs;
}

void
saveModelConfigs(const std::vector<ModelConfig> &configs,
                 const std::string &path)
{
    Json doc;
    for (const ModelConfig &config : configs)
        doc.push(modelConfigToJson(config));
    std::ofstream out(path);
    if (!out)
        fatal("model config: cannot write '" + path + "'");
    out << doc.dump() << "\n";
}

ModelConfig
resolveModel(const std::string &name_or_path)
{
    for (const ModelConfig &config : paperWorkloads())
        if (config.name == name_or_path)
            return config;
    return loadModelConfigs(name_or_path).front();
}

} // namespace neusight::graph
