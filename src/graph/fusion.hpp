/**
 * @file
 * Operator fusion pass (paper Section 4.4): consecutive memory-bound
 * kernels are merged, accumulating FLOPs while discarding the DRAM traffic
 * of the intermediate tensor. The fused kernel keeps the type and tiling
 * of the first operator, which is also the predictor NeuSight uses for it.
 *
 * Implemented patterns (the two the paper describes):
 *  - element-wise add + layer normalization (residual connections), and
 *  - GEMM (fully-connected / BMM) + pointwise activation.
 */

#ifndef NEUSIGHT_GRAPH_FUSION_HPP
#define NEUSIGHT_GRAPH_FUSION_HPP

#include "graph/graph.hpp"

namespace neusight::graph {

/** Return a copy of @p g with all fusible adjacent pairs merged. */
KernelGraph fuseGraph(const KernelGraph &g);

/** True when the two compute kernels can fuse under Section 4.4 rules. */
bool canFuse(const gpusim::KernelDesc &first,
             const gpusim::KernelDesc &second);

/** Merge two fusible kernels into one (see canFuse). */
gpusim::KernelDesc fuseKernels(const gpusim::KernelDesc &first,
                               const gpusim::KernelDesc &second);

} // namespace neusight::graph

#endif // NEUSIGHT_GRAPH_FUSION_HPP
