/**
 * @file
 * Dataflow-graph IR: the sequence of kernels a framework dispatches to one
 * GPU for a model, in execution order. This is the reproduction's
 * equivalent of the operator/kernel graph the paper extracts with Torch.fx
 * (Section 5). Kernels execute sequentially on the device, so per-GPU
 * latency is the sum over nodes; communication nodes are inserted by the
 * distributed transforms (Section 5.1).
 */

#ifndef NEUSIGHT_GRAPH_GRAPH_HPP
#define NEUSIGHT_GRAPH_GRAPH_HPP

#include <string>

#include "gpusim/kernel_desc.hpp"
#include "graph/arena.hpp"

namespace neusight::graph {

/** What a node represents. */
enum class NodeKind
{
    Compute,
    /** Ring all-reduce across the parallel group (DP gradients, TP acts). */
    AllReduce,
    /** Point-to-point activation transfer between pipeline stages. */
    SendRecv,
};

/** One node of the per-GPU execution sequence. */
struct KernelNode
{
    NodeKind kind = NodeKind::Compute;
    /** Kernel metadata; meaningful when kind == Compute. */
    gpusim::KernelDesc kernel;
    /** Payload bytes; meaningful for communication nodes. */
    double commBytes = 0.0;
    /** Human-readable origin, e.g. "layer3.attn.qkv". */
    std::string label;

    /** Convenience constructor for compute nodes. */
    static KernelNode compute(gpusim::KernelDesc kernel, std::string label);

    /** Convenience constructor for communication nodes. */
    static KernelNode comm(NodeKind kind, double bytes, std::string label);
};

/**
 * Node storage: an arena (bump allocator) owned by the graph. Appends
 * never relocate existing nodes, so node pointers/references stay valid
 * for the graph's lifetime (see arena.hpp for the exact lifetime rule).
 */
using NodeList = ArenaList<KernelNode>;

/** Sequential kernel graph for one device. */
struct KernelGraph
{
    NodeList nodes;

    /** Append a compute node. */
    void add(gpusim::KernelDesc kernel, std::string label);

    /** Total FLOPs over compute nodes. */
    double totalFlops() const;

    /** Total DRAM traffic over compute nodes. */
    double totalMemBytes() const;

    /** Number of compute nodes of the given family. */
    size_t countType(gpusim::OpType type) const;

    /** Number of compute nodes. */
    size_t computeNodeCount() const;

    /** Total payload bytes over communication nodes. */
    double totalCommBytes() const;
};

} // namespace neusight::graph

#endif // NEUSIGHT_GRAPH_GRAPH_HPP
