#include "dataset/dataset.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace neusight::dataset {

using gpusim::Device;
using gpusim::GpuSpec;
using gpusim::KernelDesc;
using gpusim::OpType;

namespace {

/** Log-uniform integer in [lo, hi]. */
uint64_t
logUniform(Rng &rng, uint64_t lo, uint64_t hi)
{
    ensure(lo >= 1 && hi >= lo, "logUniform: bad range");
    const double u = rng.uniform(std::log(static_cast<double>(lo)),
                                 std::log(static_cast<double>(hi) + 1.0));
    uint64_t v = static_cast<uint64_t>(std::exp(u));
    return std::min(std::max(v, lo), hi);
}

/** Measure @p desc on @p gpu and append the sample, unless it would OOM. */
void
measureInto(OperatorDataset &ds, const Device &device,
            const KernelDesc &desc)
{
    // Real profiling skips shapes whose operands exceed device memory.
    if (desc.memBytes > 0.6 * device.spec().memBytes())
        return;
    OperatorSample sample;
    sample.desc = desc;
    sample.gpuName = device.spec().name;
    sample.launch = device.profileKernel(desc);
    sample.latencyMs = sample.launch.latencyMs;
    ds.samples.push_back(std::move(sample));
}

const std::vector<std::string> &
elementwiseOps()
{
    static const std::vector<std::string> ops = {"add",  "div",  "mul",
                                                 "gelu", "relu", "tanh"};
    return ops;
}

} // namespace

std::map<OpType, OperatorDataset>
generateOperatorData(const std::vector<GpuSpec> &gpus,
                     const SamplerConfig &config)
{
    ensure(!gpus.empty(), "generateOperatorData: no GPUs given");
    std::map<OpType, OperatorDataset> data;
    Rng rng(config.seed);

    std::vector<Device> devices;
    devices.reserve(gpus.size());
    for (const auto &spec : gpus)
        devices.emplace_back(spec);
    auto device_for = [&](size_t i) -> const Device & {
        return devices[i % devices.size()];
    };

    // Batched matrix multiplication: batch and dims 1..1024 (paper).
    // A third of the draws concentrate on the upper quarter of the range:
    // the paper's 87k-point corpus covers large shapes densely, and
    // end-to-end latency is dominated by exactly those kernels.
    auto &bmm = data[OpType::BatchedMatmul];
    for (size_t i = 0; i < config.bmmSamples; ++i) {
        const uint64_t lo = (i % 3 == 0) ? config.bmmMaxDim / 4 : 1;
        const uint64_t b = logUniform(rng, 1, config.bmmMaxDim);
        const uint64_t m = logUniform(rng, lo, config.bmmMaxDim);
        const uint64_t n = logUniform(rng, lo, config.bmmMaxDim);
        const uint64_t k = logUniform(rng, lo, config.bmmMaxDim);
        measureInto(bmm, device_for(i), gpusim::makeBmm(b, m, n, k));
    }

    // Fully-connected: batch 1..8192, widths 1..65536 (paper), with the
    // same upper-range densification.
    auto &fc = data[OpType::FullyConnected];
    for (size_t i = 0; i < config.fcSamples; ++i) {
        const bool upper = i % 3 == 0;
        const uint64_t rows = logUniform(
            rng, upper ? config.fcMaxBatch / 16 : 1, config.fcMaxBatch);
        const uint64_t in = logUniform(
            rng, upper ? config.fcMaxWidth / 64 : 1, config.fcMaxWidth);
        const uint64_t out = logUniform(
            rng, upper ? config.fcMaxWidth / 64 : 1, config.fcMaxWidth);
        measureInto(fc, device_for(i), gpusim::makeLinear(rows, in, out));
    }

    // Element-wise: batch 512..16384, vector 512..4096, six ops (paper).
    auto &ew = data[OpType::Elementwise];
    for (size_t i = 0; i < config.elementwiseSamples; ++i) {
        const uint64_t rows = logUniform(rng, config.ewMinBatch,
                                         config.ewMaxBatch);
        const uint64_t vec = logUniform(rng, config.ewMinVec,
                                        config.ewMaxVec);
        const std::string &op = rng.choice(elementwiseOps());
        const int arity = (op == "add" || op == "div" || op == "mul") ? 2 : 1;
        measureInto(ew, device_for(i),
                    gpusim::makeElementwise(
                        op, rows * vec, arity,
                        gpusim::elementwiseFlopsPerElem(op)));
    }

    // Softmax: batch 4096..16384, vector 512..4096 (paper).
    auto &sm = data[OpType::Softmax];
    for (size_t i = 0; i < config.softmaxSamples; ++i) {
        const uint64_t rows = logUniform(rng, config.rowMinBatch,
                                         config.rowMaxBatch);
        const uint64_t vec = logUniform(rng, config.ewMinVec,
                                        config.ewMaxVec);
        measureInto(sm, device_for(i), gpusim::makeSoftmax(rows, vec));
    }

    // Layer normalization: same ranges as softmax (paper).
    auto &ln = data[OpType::LayerNorm];
    for (size_t i = 0; i < config.layernormSamples; ++i) {
        const uint64_t rows = logUniform(rng, config.rowMinBatch,
                                         config.rowMaxBatch);
        const uint64_t vec = logUniform(rng, config.ewMinVec,
                                        config.ewMaxVec);
        measureInto(ln, device_for(i), gpusim::makeLayerNorm(rows, vec));
    }

    return data;
}

OperatorDataset
generateBmmSweep(const std::vector<GpuSpec> &gpus, uint64_t min_dim,
                 uint64_t max_dim, size_t count, uint64_t seed)
{
    ensure(!gpus.empty(), "generateBmmSweep: no GPUs given");
    OperatorDataset ds;
    Rng rng(seed);
    std::vector<Device> devices;
    for (const auto &spec : gpus)
        devices.emplace_back(spec);
    for (size_t i = 0; i < count; ++i) {
        const uint64_t b = logUniform(rng, 1, 128);
        const uint64_t m = logUniform(rng, min_dim, max_dim);
        const uint64_t n = logUniform(rng, min_dim, max_dim);
        const uint64_t k = logUniform(rng, min_dim, max_dim);
        measureInto(ds, devices[i % devices.size()],
                    gpusim::makeBmm(b, m, n, k));
    }
    return ds;
}

} // namespace neusight::dataset
