/**
 * @file
 * Operator-level training data (paper Section 6.1): kernels swept over the
 * paper's shape ranges, "measured" on the training-set GPUs through the
 * simulator, together with the profiler metadata (tile size, wave count)
 * recorded per launch.
 */

#ifndef NEUSIGHT_DATASET_DATASET_HPP
#define NEUSIGHT_DATASET_DATASET_HPP

#include <map>
#include <string>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/gpu_spec.hpp"
#include "gpusim/kernel_desc.hpp"

namespace neusight::dataset {

/** One measured kernel launch. */
struct OperatorSample
{
    gpusim::KernelDesc desc;
    std::string gpuName;
    /** Measured latency in milliseconds. */
    double latencyMs = 0.0;
    /** Profiler metadata of the launch (tile, tiles, waves). */
    gpusim::KernelLaunch launch;
};

/** All samples of one operator family. */
struct OperatorDataset
{
    std::vector<OperatorSample> samples;

    size_t size() const { return samples.size(); }
};

/** Per-family sample budgets and shape ranges. */
struct SamplerConfig
{
    /**
     * Scale on the per-family sample counts. 1.0 approximates the paper's
     * dataset sizes (~150k launches) — far too slow to *train on* with a
     * CPU-only MLP, so benches default to the counts below, which keep
     * every range of the paper but thin the sampling density.
     */
    size_t bmmSamples = 2400;
    size_t fcSamples = 1600;
    size_t elementwiseSamples = 1200;
    /**
     * Softmax / layer-norm are small families even in the paper (1,807
     * and 1,501 launches); they are kept at full paper scale because the
     * short-latency reduction kernels are the hardest to fit (the paper
     * itself reports its highest per-operator error on layer norm).
     */
    size_t softmaxSamples = 1500;
    size_t layernormSamples = 1200;

    /** Paper ranges (Section 6.1). */
    uint64_t bmmMaxDim = 1024;
    uint64_t fcMaxBatch = 8192;
    uint64_t fcMaxWidth = 65536;
    uint64_t ewMinBatch = 512;
    uint64_t ewMaxBatch = 16384;
    uint64_t ewMinVec = 512;
    uint64_t ewMaxVec = 4096;
    uint64_t rowMinBatch = 4096;
    uint64_t rowMaxBatch = 16384;

    uint64_t seed = 2025;
};

/**
 * Generate the full Section-6.1 training corpus on @p gpus: one dataset
 * per predictor family, keyed by op type. Kernels whose working set would
 * not fit on the device are skipped (they would OOM on real hardware).
 */
std::map<gpusim::OpType, OperatorDataset>
generateOperatorData(const std::vector<gpusim::GpuSpec> &gpus,
                     const SamplerConfig &config);

/** Sweep of BMM shapes only (motivation studies, Fig. 2 / Table 1). */
OperatorDataset generateBmmSweep(const std::vector<gpusim::GpuSpec> &gpus,
                                 uint64_t min_dim, uint64_t max_dim,
                                 size_t count, uint64_t seed);

} // namespace neusight::dataset

#endif // NEUSIGHT_DATASET_DATASET_HPP
