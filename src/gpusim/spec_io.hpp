/**
 * @file
 * JSON (de)serialization for GpuSpec: lets users forecast on a GPU that
 * is not in the built-in Table-4 database by describing it in a config
 * file with only its publicly announced numbers (the paper's Blackwell
 * scenario, Section 4.3). Used by the tools/ binaries and the
 * new-GPU-what-if example.
 */

#ifndef NEUSIGHT_GPUSIM_SPEC_IO_HPP
#define NEUSIGHT_GPUSIM_SPEC_IO_HPP

#include <string>
#include <vector>

#include "common/json.hpp"
#include "gpusim/gpu_spec.hpp"

namespace neusight::gpusim {

/**
 * Build a GpuSpec from a JSON object. Required keys: "name",
 * "peak_fp32_tflops", "memory_size_gb", "memory_bw_gbps", "num_sms",
 * "l2_cache_mb". Optional: "vendor" ("nvidia"/"amd"), "year",
 * "matrix_fp32_tflops" (defaults to the vector peak),
 * "fp16_tensor_tflops", "interconnect_gbps". fatal() on missing keys or
 * non-physical values.
 */
GpuSpec gpuSpecFromJson(const common::Json &json);

/** Serialize a GpuSpec to the same JSON schema. */
common::Json gpuSpecToJson(const GpuSpec &spec);

/**
 * Load one spec or an array of specs from the JSON document at @p path.
 */
std::vector<GpuSpec> loadGpuSpecs(const std::string &path);

/** Write @p specs to @p path as a JSON array; fatal() on I/O error. */
void saveGpuSpecs(const std::vector<GpuSpec> &specs,
                  const std::string &path);

/**
 * Resolve a GPU by database name or by config file: when @p name_or_path
 * names a Table-4 GPU it is returned from the database, otherwise it is
 * treated as a path to a JSON spec (the first spec of an array file).
 */
GpuSpec resolveGpu(const std::string &name_or_path);

} // namespace neusight::gpusim

#endif // NEUSIGHT_GPUSIM_SPEC_IO_HPP
