/**
 * @file
 * The simulated GPU: the measurement substrate standing in for physical
 * hardware + cuDNN/CUTLASS (see DESIGN.md Section 1). Device::measureKernelMs
 * is the reproduction's equivalent of timing a kernel with PyTorch on a real
 * GPU; Device::profileKernel is the equivalent of the PyTorch Profiler
 * metadata (kernel name, tile size, thread-block count) the paper records
 * into NeuSight's tile database.
 *
 * The execution model implements exactly the mechanisms the paper
 * attributes to GPUs — tiled dispatch over SMs, wave quantization, roofline
 * ceilings, occupancy-driven latency hiding (Fig. 5), L2 locality — plus
 * hidden per-GPU behaviour (library efficiency, launch overhead,
 * deterministic measurement noise) that predictors must infer from public
 * spec features alone.
 */

#ifndef NEUSIGHT_GPUSIM_DEVICE_HPP
#define NEUSIGHT_GPUSIM_DEVICE_HPP

#include "gpusim/gpu_spec.hpp"
#include "gpusim/kernel_desc.hpp"
#include "gpusim/tile_policy.hpp"

namespace neusight::gpusim {

/** Execution metadata of one simulated kernel launch. */
struct KernelLaunch
{
    TileInfo tile;
    uint64_t numTiles = 0;
    uint64_t numWaves = 0;
    /** Achieved fraction of the per-SM roofline (noise-free). */
    double utilization = 0.0;
    /** Per-SM roofline throughput in FLOP/s (Eq. 1, per-SM normalized). */
    double rooflinePerSm = 0.0;
    /** End-to-end kernel latency in milliseconds, incl. launch overhead. */
    double latencyMs = 0.0;
    /** Fixed launch/driver overhead portion of latencyMs. */
    double overheadMs = 0.0;
};

/**
 * Peak FLOP/s of the datapath @p desc executes on: FP16 tensor peak for
 * tensor-core kernels, the dedicated FP32 matrix peak for GEMM-family ops
 * on parts that have one (AMD CDNA), the vector peak otherwise. This is a
 * *public* convention shared by the simulator and every predictor.
 */
double effectivePeakFlops(const KernelDesc &desc, const GpuSpec &gpu);

/** A simulated GPU device. */
class Device
{
  public:
    /** Wrap a spec from deviceDatabase() (or a hypothetical one). */
    explicit Device(GpuSpec spec);

    /** Construct from a database name. */
    static Device byName(const std::string &name);

    /** The public spec of this device. */
    const GpuSpec &spec() const { return gpu; }

    /**
     * "Run" @p desc and return its measured latency in milliseconds.
     * Deterministic: the same kernel on the same device always returns the
     * same value (including the pseudo measurement noise).
     */
    double measureKernelMs(const KernelDesc &desc) const;

    /** Full execution metadata (profiler view) for @p desc. */
    KernelLaunch profileKernel(const KernelDesc &desc) const;

    /** True when a resident working set of @p bytes fits in device memory. */
    bool fitsMemory(double bytes) const;

  private:
    GpuSpec gpu;
};

} // namespace neusight::gpusim

#endif // NEUSIGHT_GPUSIM_DEVICE_HPP
