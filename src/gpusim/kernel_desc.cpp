#include "gpusim/kernel_desc.hpp"

#include <sstream>

#include "common/logging.hpp"

namespace neusight::gpusim {

size_t
dtypeBytes(DataType dtype)
{
    switch (dtype) {
      case DataType::Fp32:
        return 4;
      case DataType::Fp16:
        return 2;
    }
    return 4;
}

const char *
opTypeName(OpType type)
{
    switch (type) {
      case OpType::BatchedMatmul:
        return "BMM";
      case OpType::FullyConnected:
        return "FC";
      case OpType::Elementwise:
        return "EW";
      case OpType::Softmax:
        return "Softmax";
      case OpType::LayerNorm:
        return "LayerNorm";
      case OpType::Memory:
        return "Memory";
    }
    return "?";
}

uint64_t
KernelDesc::numOutputElements() const
{
    uint64_t total = 1;
    for (uint64_t d : outDims)
        total *= d;
    return total;
}

std::string
KernelDesc::summary() const
{
    std::ostringstream oss;
    oss << opName << "[";
    for (size_t i = 0; i < outDims.size(); ++i) {
        if (i)
            oss << "x";
        oss << outDims[i];
    }
    oss << "] flops=" << flops << " mem=" << memBytes;
    return oss.str();
}

KernelDesc
makeBmm(uint64_t b, uint64_t m, uint64_t n, uint64_t k, DataType dtype,
        bool tensor_core)
{
    ensure(b > 0 && m > 0 && n > 0 && k > 0, "makeBmm: zero dimension");
    KernelDesc d;
    d.type = OpType::BatchedMatmul;
    d.opName = "bmm";
    d.outDims = {b, m, n};
    d.reduceDim = k;
    d.flops = 2.0 * static_cast<double>(b) * static_cast<double>(m) *
              static_cast<double>(n) * static_cast<double>(k);
    const double elems = static_cast<double>(b) *
                         (static_cast<double>(m) * static_cast<double>(k) +
                          static_cast<double>(k) * static_cast<double>(n) +
                          static_cast<double>(m) * static_cast<double>(n));
    d.memBytes = elems * static_cast<double>(dtypeBytes(dtype));
    d.dtype = dtype;
    d.usesTensorCore = tensor_core;
    return d;
}

KernelDesc
makeLinear(uint64_t rows, uint64_t in, uint64_t out, DataType dtype,
           bool tensor_core)
{
    ensure(rows > 0 && in > 0 && out > 0, "makeLinear: zero dimension");
    KernelDesc d;
    d.type = OpType::FullyConnected;
    d.opName = "linear";
    d.outDims = {rows, out};
    d.reduceDim = in;
    d.flops = 2.0 * static_cast<double>(rows) * static_cast<double>(in) *
                  static_cast<double>(out) +
              static_cast<double>(rows) * static_cast<double>(out);
    const double elems = static_cast<double>(rows) * static_cast<double>(in) +
                         static_cast<double>(in) * static_cast<double>(out) +
                         static_cast<double>(rows) * static_cast<double>(out);
    d.memBytes = elems * static_cast<double>(dtypeBytes(dtype));
    d.dtype = dtype;
    d.usesTensorCore = tensor_core;
    return d;
}

double
elementwiseFlopsPerElem(const std::string &op_name)
{
    if (op_name == "add" || op_name == "sub" || op_name == "mul" ||
        op_name == "div" || op_name == "relu")
        return 1.0;
    if (op_name == "tanh" || op_name == "sigmoid")
        return 4.0;
    if (op_name == "gelu")
        return 8.0;
    if (op_name == "dropout" || op_name == "scale")
        return 1.0;
    return 2.0;
}

KernelDesc
makeElementwise(const std::string &op_name, uint64_t numel, int arity,
                double flops_per_elem, DataType dtype)
{
    ensure(numel > 0, "makeElementwise: zero elements");
    ensure(arity >= 1 && arity <= 3, "makeElementwise: bad arity");
    KernelDesc d;
    d.type = OpType::Elementwise;
    d.opName = op_name;
    d.outDims = {numel};
    d.flops = static_cast<double>(numel) * flops_per_elem;
    d.memBytes = static_cast<double>(numel) *
                 static_cast<double>(arity + 1) *
                 static_cast<double>(dtypeBytes(dtype));
    d.dtype = dtype;
    return d;
}

KernelDesc
makeSoftmax(uint64_t rows, uint64_t cols, DataType dtype)
{
    ensure(rows > 0 && cols > 0, "makeSoftmax: zero dimension");
    KernelDesc d;
    d.type = OpType::Softmax;
    d.opName = "softmax";
    d.outDims = {rows, cols};
    const double numel = static_cast<double>(rows) * static_cast<double>(cols);
    // max, subtract, exp, accumulate, divide: ~5 FLOPs per element.
    d.flops = 5.0 * numel;
    d.memBytes = 2.0 * numel * static_cast<double>(dtypeBytes(dtype));
    d.dtype = dtype;
    return d;
}

KernelDesc
makeLayerNorm(uint64_t rows, uint64_t cols, DataType dtype)
{
    ensure(rows > 0 && cols > 0, "makeLayerNorm: zero dimension");
    KernelDesc d;
    d.type = OpType::LayerNorm;
    d.opName = "layernorm";
    d.outDims = {rows, cols};
    const double numel = static_cast<double>(rows) * static_cast<double>(cols);
    // mean, variance, normalize, affine: ~8 FLOPs per element.
    d.flops = 8.0 * numel;
    d.memBytes = (2.0 * numel + 2.0 * static_cast<double>(cols)) *
                 static_cast<double>(dtypeBytes(dtype));
    d.dtype = dtype;
    return d;
}

KernelDesc
makeMemoryOp(const std::string &op_name, double bytes, DataType dtype)
{
    ensure(bytes > 0.0, "makeMemoryOp: zero bytes");
    KernelDesc d;
    d.type = OpType::Memory;
    d.opName = op_name;
    d.outDims = {static_cast<uint64_t>(bytes /
                                       static_cast<double>(dtypeBytes(dtype)))};
    d.flops = bytes / 100.0; // Negligible compute, keeps intensity nonzero.
    d.memBytes = bytes;
    d.dtype = dtype;
    return d;
}

void
DimVector::overflow() const
{
    fatal("DimVector: kernel rank exceeds kMaxRank (" +
          std::to_string(kMaxRank) + ")");
}

} // namespace neusight::gpusim
