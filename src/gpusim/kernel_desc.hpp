/**
 * @file
 * Device-independent description of a DNN kernel: operator class, output
 * dimensions, total FLOPs and DRAM traffic. This is the metadata the paper
 * extracts per kernel with Torch.fx / PyTorch Profiler (operator type and
 * input/output tensor dimensions, Section 5) and the unit of prediction
 * for both the simulator and every predictor.
 */

#ifndef NEUSIGHT_GPUSIM_KERNEL_DESC_HPP
#define NEUSIGHT_GPUSIM_KERNEL_DESC_HPP

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace neusight::gpusim {

/**
 * Inline fixed-capacity dimension vector. Kernel output ranks never
 * exceed 3 ({batch, m, n} for BMM), so storing the dims inline removes
 * the per-KernelDesc heap allocation that dominated arena-backed graph
 * construction (every node carries a KernelDesc). Capacity overflow is
 * a fatal error, surfaced by the out-of-line grow handler.
 */
class DimVector
{
  public:
    static constexpr size_t kMaxRank = 4;

    DimVector() = default;

    DimVector(std::initializer_list<uint64_t> init)
    {
        for (uint64_t d : init)
            push_back(d);
    }

    /** Number of dimensions. */
    size_t size() const { return count; }

    /** True when no dimensions are stored. */
    bool empty() const { return count == 0; }

    /** Dimension access. */
    uint64_t &operator[](size_t i) { return dims[i]; }

    /** Dimension access, const. */
    uint64_t operator[](size_t i) const { return dims[i]; }

    uint64_t *begin() { return dims; }
    uint64_t *end() { return dims + count; }
    const uint64_t *begin() const { return dims; }
    const uint64_t *end() const { return dims + count; }

    /** Append a dimension; ranks beyond kMaxRank are fatal. */
    void push_back(uint64_t d)
    {
        if (count == kMaxRank)
            overflow();
        dims[count++] = d;
    }

    /** Drop all dimensions. */
    void clear() { count = 0; }

    /** Widening copy for std::vector-typed consumers (tile records). */
    std::vector<uint64_t> toVector() const
    {
        return std::vector<uint64_t>(begin(), end());
    }

  private:
    [[noreturn]] void overflow() const;

    uint64_t dims[kMaxRank] = {0, 0, 0, 0};
    size_t count = 0;
};

inline bool
operator==(const DimVector &a, const DimVector &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (a[i] != b[i])
            return false;
    return true;
}

inline bool
operator!=(const DimVector &a, const DimVector &b)
{
    return !(a == b);
}

inline bool
operator==(const DimVector &a, const std::vector<uint64_t> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (a[i] != b[i])
            return false;
    return true;
}

inline bool
operator==(const std::vector<uint64_t> &a, const DimVector &b)
{
    return b == a;
}

inline bool
operator!=(const DimVector &a, const std::vector<uint64_t> &b)
{
    return !(a == b);
}

inline bool
operator!=(const std::vector<uint64_t> &a, const DimVector &b)
{
    return !(b == a);
}

/** Operator families with dedicated NeuSight predictors (Section 4.3). */
enum class OpType
{
    BatchedMatmul,
    FullyConnected,
    Elementwise,
    Softmax,
    LayerNorm,
    /** Anything else (embedding, reshape...): memory-bound fallback. */
    Memory,
};

/** Numeric precision of a kernel's operands. */
enum class DataType
{
    Fp32,
    Fp16,
};

/** Bytes per element of a DataType. */
size_t dtypeBytes(DataType dtype);

/** Human-readable operator family name. */
const char *opTypeName(OpType type);

/** Metadata of one GPU kernel. */
struct KernelDesc
{
    OpType type = OpType::Memory;
    /** Concrete op name, e.g. "bmm", "linear", "add", "gelu", "softmax". */
    std::string opName;
    /**
     * Output tensor dimensions; the tile decomposition (Eq. 2) runs over
     * these. BMM: {batch, m, n}; FC: {rows, out}; elementwise: {numel};
     * softmax/layernorm: {rows, cols}; memory ops: {numel}. Stored
     * inline (see DimVector) so a KernelDesc costs no heap allocation
     * beyond its strings.
     */
    DimVector outDims;
    /**
     * Reduction dimension for GEMM-family ops (K for BMM, input width for
     * fully-connected); 0 for pointwise/memory ops.
     */
    uint64_t reduceDim = 0;
    /** Total floating point operations. */
    double flops = 0.0;
    /** Total DRAM traffic in bytes (inputs + outputs). */
    double memBytes = 0.0;
    DataType dtype = DataType::Fp32;
    /** True when the kernel uses the matrix/tensor-core datapath. */
    bool usesTensorCore = false;

    /** Arithmetic intensity K = flops / memBytes (Eq. 1). */
    double intensity() const { return memBytes > 0.0 ? flops / memBytes : 0.0; }

    /** Number of output elements. */
    uint64_t numOutputElements() const;

    /** Short human-readable summary for logs and error messages. */
    std::string summary() const;
};

/// @name Kernel factories (FLOPs / traffic accounting in one place).
/// @{

/**
 * Batched matrix multiplication (B,M,K) x (B,K,N) -> (B,M,N).
 * FLOPs = 2*B*M*N*K; traffic = B*(MK + KN + MN) elements.
 */
KernelDesc makeBmm(uint64_t b, uint64_t m, uint64_t n, uint64_t k,
                   DataType dtype = DataType::Fp32,
                   bool tensor_core = false);

/**
 * Fully-connected layer (rows,in) x (in,out) + bias -> (rows,out).
 * The weight is shared across the batch, unlike BMM.
 */
KernelDesc makeLinear(uint64_t rows, uint64_t in, uint64_t out,
                      DataType dtype = DataType::Fp32,
                      bool tensor_core = false);

/**
 * Pointwise operator over @p numel elements.
 * @param op_name        one of add/sub/mul/div/relu/gelu/tanh/...
 * @param arity          number of input tensors (1 or 2).
 * @param flops_per_elem cost model per element (1 for arithmetic,
 *                       higher for transcendental activations).
 */
KernelDesc makeElementwise(const std::string &op_name, uint64_t numel,
                           int arity = 2, double flops_per_elem = 1.0,
                           DataType dtype = DataType::Fp32);

/** Row-wise softmax on a (rows, cols) tensor. */
KernelDesc makeSoftmax(uint64_t rows, uint64_t cols,
                       DataType dtype = DataType::Fp32);

/** Row-wise layer normalization on a (rows, cols) tensor. */
KernelDesc makeLayerNorm(uint64_t rows, uint64_t cols,
                         DataType dtype = DataType::Fp32);

/**
 * Memory-bound fallback op moving @p bytes (embedding lookups, copies,
 * reshapes). FLOPs are negligible by construction.
 */
KernelDesc makeMemoryOp(const std::string &op_name, double bytes,
                        DataType dtype = DataType::Fp32);

/** Per-element FLOPs cost used for common activation functions. */
double elementwiseFlopsPerElem(const std::string &op_name);
/// @}

} // namespace neusight::gpusim

#endif // NEUSIGHT_GPUSIM_KERNEL_DESC_HPP
