/**
 * @file
 * Public GPU specifications. These are exactly the abstract, publicly
 * documented features NeuSight is allowed to use for an unseen GPU
 * (paper Table 4 + Section 4.3): peak FLOPS, memory size and bandwidth,
 * number of SMs, and L2 cache size. The simulator's hidden behavioural
 * parameters live in gpusim/device.cpp and are never exposed here.
 */

#ifndef NEUSIGHT_GPUSIM_GPU_SPEC_HPP
#define NEUSIGHT_GPUSIM_GPU_SPEC_HPP

#include <string>
#include <vector>

namespace neusight::gpusim {

/** GPU vendor (the paper evaluates NVIDIA and AMD parts). */
enum class Vendor
{
    Nvidia,
    Amd,
};

/** Publicly documented per-GPU features (paper Table 4, verbatim). */
struct GpuSpec
{
    std::string name;
    Vendor vendor = Vendor::Nvidia;
    int year = 2016;

    /** Peak FP32 FLOPS in TFLOPS (vector datapath). */
    double peakFp32Tflops = 0.0;
    /**
     * Peak FP32 matrix-engine FLOPS in TFLOPS. Equal to the vector peak on
     * GPUs without a dedicated FP32 matrix datapath; AMD CDNA parts list a
     * separate matrix peak (Table 4).
     */
    double matrixFp32Tflops = 0.0;
    /** Peak dense FP16 tensor-core/matrix FLOPS in TFLOPS (0 if absent). */
    double fp16TensorTflops = 0.0;

    double memorySizeGB = 0.0;
    double memoryBwGBps = 0.0;
    int numSms = 0;
    double l2CacheMB = 0.0;

    /**
     * Bidirectional GPU-to-GPU interconnect bandwidth within a server in
     * GB/s (NVLink mesh / DGX switch; Section 6.3).
     */
    double interconnectGBps = 32.0;

    /** True when the paper uses this GPU to train the predictors (§6.1). */
    bool inTrainingSet = false;

    /// @name Derived quantities used throughout the framework.
    /// @{
    double peakFlops() const { return peakFp32Tflops * 1e12; }
    double matrixFlops() const { return matrixFp32Tflops * 1e12; }
    double fp16Flops() const { return fp16TensorTflops * 1e12; }
    double memBwBytes() const { return memoryBwGBps * 1e9; }
    double memBytes() const { return memorySizeGB * 1e9; }
    double l2Bytes() const { return l2CacheMB * 1e6; }

    /** Per-SM peak FLOPS (feature normalization, Table 3). */
    double peakFlopsPerSm() const { return peakFlops() / numSms; }

    /** Per-SM memory bandwidth in bytes/s. */
    double memBwPerSm() const { return memBwBytes() / numSms; }

    /** Per-SM L2 capacity in bytes. */
    double l2BytesPerSm() const { return l2Bytes() / numSms; }

    /** Per-SM off-chip memory capacity in bytes. */
    double memBytesPerSm() const { return memBytes() / numSms; }
    /// @}
};

/** All GPUs of paper Table 4, in its row order. */
const std::vector<GpuSpec> &deviceDatabase();

/** Look up a GPU by name (e.g. "H100"); fatal() when unknown. */
const GpuSpec &findGpu(const std::string &name);

/** The NVIDIA training-set GPUs (P4, P100, V100, T4, A100-40GB). */
std::vector<GpuSpec> nvidiaTrainingSet();

/** The AMD training-set GPUs (MI100, MI210). */
std::vector<GpuSpec> amdTrainingSet();

} // namespace neusight::gpusim

#endif // NEUSIGHT_GPUSIM_GPU_SPEC_HPP
