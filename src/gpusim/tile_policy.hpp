/**
 * @file
 * Library tile-size selection, modeling how cuBLAS/CUTLASS-style kernels
 * partition a kernel's output into identical tiles dispatched across SMs
 * (paper Section 4.1, Figure 3). The selected tile is both what the
 * simulator executes and what the PyTorch-Profiler-equivalent metadata
 * reports into NeuSight's tile database.
 */

#ifndef NEUSIGHT_GPUSIM_TILE_POLICY_HPP
#define NEUSIGHT_GPUSIM_TILE_POLICY_HPP

#include <cstdint>
#include <vector>

#include "gpusim/gpu_spec.hpp"
#include "gpusim/kernel_desc.hpp"

namespace neusight::gpusim {

/** A tile of the output space plus its per-tile cost accounting. */
struct TileInfo
{
    /** Tile dimensions, aligned index-by-index with KernelDesc::outDims. */
    std::vector<uint64_t> dims;
    /** FLOPs needed to produce one tile. */
    double flopsPerTile = 0.0;
    /** DRAM bytes one tile moves (operand loads + output store). */
    double memBytesPerTile = 0.0;
};

/** One kernel's resolved launch geometry: tile costs plus wave math. */
struct LaunchGeometry
{
    TileInfo tile;
    uint64_t numTiles = 0;
    uint64_t numWaves = 0;
};

/** Tile selection and wave arithmetic (Eq. 2 and Eq. 3). */
class TilePolicy
{
  public:
    /** Pick the tile a tuned library would launch for @p desc on @p gpu. */
    static TileInfo select(const KernelDesc &desc, const GpuSpec &gpu);

    /**
     * Eq. 2: numTiles = prod_i ceil(outDims[i] / tileDims[i]).
     * @p tile_dims must have the same rank as @p desc.outDims.
     */
    static uint64_t numTiles(const KernelDesc &desc,
                             const std::vector<uint64_t> &tile_dims);

    /** Eq. 3: numWaves = ceil(numTiles / numSms). */
    static uint64_t numWaves(uint64_t num_tiles, int num_sms);

    /**
     * Per-tile FLOPs / DRAM bytes for an arbitrary tile shape of @p desc
     * (GEMM tiles account for operand reuse; pointwise families scale by
     * output coverage). Used both by select() and by NeuSight when it
     * re-derives costs for a database-matched tile.
     */
    static TileInfo tileCosts(const KernelDesc &desc,
                              const std::vector<uint64_t> &tile_dims);

    /** The (tm, tn) GEMM tile palette available on @p gpu. */
    static std::vector<std::pair<uint64_t, uint64_t>>
    gemmPalette(const GpuSpec &gpu);

    /**
     * Resolve the launch geometry (tile costs, tile count, wave count)
     * of a whole prediction batch in one pass — the gpusim half of
     * KernelPredictor::predictBatch. @p tiles holds one database-matched
     * tile per descriptor.
     */
    static std::vector<LaunchGeometry>
    launchBatch(const std::vector<KernelDesc> &descs,
                const std::vector<std::vector<uint64_t>> &tiles,
                const GpuSpec &gpu);
};

} // namespace neusight::gpusim

#endif // NEUSIGHT_GPUSIM_TILE_POLICY_HPP
