#include "gpusim/gpu_spec.hpp"

#include "common/logging.hpp"

namespace neusight::gpusim {

namespace {

GpuSpec
makeSpec(std::string name, Vendor vendor, int year, double fp32, double mat,
         double fp16_tensor, double mem_gb, double bw_gbps, int sms,
         double l2_mb, double link_gbps, bool training)
{
    GpuSpec s;
    s.name = std::move(name);
    s.vendor = vendor;
    s.year = year;
    s.peakFp32Tflops = fp32;
    s.matrixFp32Tflops = mat > 0.0 ? mat : fp32;
    s.fp16TensorTflops = fp16_tensor;
    s.memorySizeGB = mem_gb;
    s.memoryBwGBps = bw_gbps;
    s.numSms = sms;
    s.l2CacheMB = l2_mb;
    s.interconnectGBps = link_gbps;
    s.inTrainingSet = training;
    return s;
}

std::vector<GpuSpec>
buildDatabase()
{
    // Columns mirror paper Table 4: peak FP32 TFLOPS (matrix peak for AMD),
    // memory size GB, memory bandwidth GB/s, #SMs, L2 MB. Interconnect
    // bandwidth follows Section 6.3 (A100 mesh: 600 GB/s, H100 DGX:
    // 900 GB/s); PCIe-class parts get 32 GB/s. FP16 tensor peaks are the
    // public dense numbers used only by the Figure-10 experiment.
    std::vector<GpuSpec> db;
    db.push_back(makeSpec("P4", Vendor::Nvidia, 2016, 5.4, 0, 0,
                          8, 192, 40, 2, 32, true));
    db.push_back(makeSpec("P100", Vendor::Nvidia, 2016, 9.5, 0, 19.0,
                          16, 732, 56, 4, 160, true));
    db.push_back(makeSpec("V100", Vendor::Nvidia, 2017, 8.1, 0, 125.0,
                          32, 900, 80, 6, 300, true));
    db.push_back(makeSpec("T4", Vendor::Nvidia, 2018, 14.1, 0, 65.0,
                          16, 320, 40, 4, 32, true));
    db.push_back(makeSpec("A100-40GB", Vendor::Nvidia, 2020, 19.5, 0, 312.0,
                          40, 1555, 108, 40, 600, true));
    db.push_back(makeSpec("A100-80GB", Vendor::Nvidia, 2020, 19.5, 0, 312.0,
                          80, 1935, 108, 40, 600, false));
    db.push_back(makeSpec("L4", Vendor::Nvidia, 2023, 31.3, 0, 242.0,
                          24, 300, 60, 48, 32, false));
    db.push_back(makeSpec("H100", Vendor::Nvidia, 2022, 66.9, 0, 989.4,
                          80, 3430, 132, 50, 900, false));
    db.push_back(makeSpec("MI100", Vendor::Amd, 2020, 23.1, 46.1, 184.6,
                          32, 1230, 120, 8, 276, true));
    db.push_back(makeSpec("MI210", Vendor::Amd, 2021, 22.6, 45.3, 181.0,
                          64, 1640, 104, 16, 300, true));
    db.push_back(makeSpec("MI250", Vendor::Amd, 2021, 22.6, 45.3, 181.0,
                          64, 1640, 104, 16, 400, false));
    return db;
}

} // namespace

const std::vector<GpuSpec> &
deviceDatabase()
{
    static const std::vector<GpuSpec> db = buildDatabase();
    return db;
}

const GpuSpec &
findGpu(const std::string &name)
{
    for (const auto &spec : deviceDatabase())
        if (spec.name == name)
            return spec;
    fatal("findGpu: unknown GPU '" + name + "'");
}

std::vector<GpuSpec>
nvidiaTrainingSet()
{
    std::vector<GpuSpec> out;
    for (const auto &spec : deviceDatabase())
        if (spec.vendor == Vendor::Nvidia && spec.inTrainingSet)
            out.push_back(spec);
    return out;
}

std::vector<GpuSpec>
amdTrainingSet()
{
    std::vector<GpuSpec> out;
    for (const auto &spec : deviceDatabase())
        if (spec.vendor == Vendor::Amd && spec.inTrainingSet)
            out.push_back(spec);
    return out;
}

} // namespace neusight::gpusim
