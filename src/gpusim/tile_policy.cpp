#include "gpusim/tile_policy.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace neusight::gpusim {

namespace {

uint64_t
ceilDiv(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

/**
 * Pick the pointwise chunk (elements per thread block). Mirrors how newer
 * library generations vectorize wider, and how very large launches use
 * grid-stride loops with more work per block.
 */
uint64_t
pointwiseTileElems(uint64_t numel, const GpuSpec &gpu)
{
    uint64_t elems = 1024;
    if (gpu.year >= 2020)
        elems = 2048;
    if (gpu.year >= 2022)
        elems = 4096;
    // Oversubscribed launches shift to fatter blocks (grid-stride loops).
    while (elems < 16384 &&
           ceilDiv(numel, elems) >
               static_cast<uint64_t>(gpu.numSms) * 64) {
        elems *= 2;
    }
    return elems;
}

/** Rows per block for row-reduction kernels (softmax / layernorm). */
uint64_t
rowReductionTileRows(uint64_t cols)
{
    uint64_t rows = 1;
    while (rows < 64 && rows * cols * 2 <= 4096)
        rows *= 2;
    return rows;
}

} // namespace

std::vector<std::pair<uint64_t, uint64_t>>
TilePolicy::gemmPalette(const GpuSpec &gpu)
{
    std::vector<std::pair<uint64_t, uint64_t>> palette = {
        {128, 128}, {128, 64}, {64, 128}, {64, 64},
        {64, 32},   {32, 64},  {32, 32},
    };
    // Large-L2 parts (A100 class and newer) ship fatter tile variants.
    if (gpu.l2CacheMB >= 16.0) {
        palette.insert(palette.begin(), {256, 128});
        palette.insert(palette.begin() + 1, {128, 256});
    }
    return palette;
}

TileInfo
TilePolicy::tileCosts(const KernelDesc &desc,
                      const std::vector<uint64_t> &tile_dims)
{
    ensure(tile_dims.size() == desc.outDims.size(),
           "tileCosts: tile rank must match output rank");
    TileInfo info;
    info.dims = tile_dims;
    const double bytes = static_cast<double>(dtypeBytes(desc.dtype));
    switch (desc.type) {
      case OpType::BatchedMatmul:
      case OpType::FullyConnected: {
        // Tile is (tm, tn) over the output matrix with a full reduction
        // over K: loads tm*K + K*tn, stores tm*tn.
        const uint64_t tm = tile_dims[tile_dims.size() - 2];
        const uint64_t tn = tile_dims[tile_dims.size() - 1];
        const double k = static_cast<double>(desc.reduceDim);
        info.flopsPerTile = 2.0 * static_cast<double>(tm) *
                            static_cast<double>(tn) * k;
        info.memBytesPerTile =
            (static_cast<double>(tm) * k + k * static_cast<double>(tn) +
             static_cast<double>(tm) * static_cast<double>(tn)) *
            bytes;
        break;
      }
      case OpType::Elementwise:
      case OpType::Softmax:
      case OpType::LayerNorm:
      case OpType::Memory: {
        // Pointwise / row-reduction families: costs scale with the
        // fraction of output elements the tile covers.
        double tile_elems = 1.0;
        for (uint64_t d : tile_dims)
            tile_elems *= static_cast<double>(d);
        const double frac =
            tile_elems / static_cast<double>(desc.numOutputElements());
        info.flopsPerTile = desc.flops * frac;
        info.memBytesPerTile = desc.memBytes * frac;
        break;
      }
    }
    ensure(info.flopsPerTile > 0.0 && info.memBytesPerTile > 0.0,
           "tileCosts: non-positive tile cost for " + desc.summary());
    return info;
}

uint64_t
TilePolicy::numTiles(const KernelDesc &desc,
                     const std::vector<uint64_t> &tile_dims)
{
    ensure(tile_dims.size() == desc.outDims.size(),
           "numTiles: tile rank must match output rank");
    uint64_t tiles = 1;
    for (size_t i = 0; i < tile_dims.size(); ++i) {
        ensure(tile_dims[i] > 0, "numTiles: zero tile dimension");
        tiles *= ceilDiv(desc.outDims[i], tile_dims[i]);
    }
    return tiles;
}

uint64_t
TilePolicy::numWaves(uint64_t num_tiles, int num_sms)
{
    ensure(num_sms > 0, "numWaves: non-positive SM count");
    return ceilDiv(num_tiles, static_cast<uint64_t>(num_sms));
}

TileInfo
TilePolicy::select(const KernelDesc &desc, const GpuSpec &gpu)
{
    switch (desc.type) {
      case OpType::BatchedMatmul:
      case OpType::FullyConnected: {
        const bool batched = desc.type == OpType::BatchedMatmul;
        const uint64_t m = desc.outDims[batched ? 1 : 0];
        const uint64_t n = desc.outDims[batched ? 2 : 1];
        const uint64_t b = batched ? desc.outDims[0] : 1;
        const auto palette = gemmPalette(gpu);
        const double reuse_max = 2.0 * 256.0 * 128.0 / (256.0 + 128.0);

        double best_score = -1.0;
        std::pair<uint64_t, uint64_t> best = palette.back();
        for (const auto &[tm, tn] : palette) {
            const uint64_t tiles = b * ceilDiv(m, tm) * ceilDiv(n, tn);
            const uint64_t waves =
                numWaves(tiles, gpu.numSms);
            // Fraction of SM slots doing useful work across all waves.
            const double quant_eff =
                static_cast<double>(tiles) /
                (static_cast<double>(waves) *
                 static_cast<double>(gpu.numSms));
            // Operand reuse grows with tile area over perimeter — on the
            // *useful* extent: a tile dimension hanging past the output
            // is pure padding and earns no reuse.
            const double em = static_cast<double>(std::min(tm, m));
            const double en = static_cast<double>(std::min(tn, n));
            const double reuse = 2.0 * em * en / (em + en);
            const double tile_eff = reuse / reuse_max;
            // Padding waste when dims do not divide the tile.
            const double cover_eff =
                static_cast<double>(b) * static_cast<double>(m) *
                static_cast<double>(n) /
                (static_cast<double>(tiles) * static_cast<double>(tm) *
                 static_cast<double>(tn));
            // Occupancy first (a library never leaves most SMs idle for
            // the sake of reuse), reuse second, padding last. For large
            // GEMMs every candidate saturates the SMs and reuse decides;
            // for small GEMMs smaller tiles win back occupancy.
            const double score =
                0.45 * quant_eff + 0.35 * tile_eff + 0.20 * cover_eff;
            if (score > best_score) {
                best_score = score;
                best = {tm, tn};
            }
        }
        std::vector<uint64_t> dims;
        if (batched)
            dims = {1, best.first, best.second};
        else
            dims = {best.first, best.second};
        return tileCosts(desc, dims);
      }
      case OpType::Elementwise:
      case OpType::Memory: {
        const uint64_t numel = desc.outDims[0];
        const uint64_t elems =
            std::min<uint64_t>(pointwiseTileElems(numel, gpu),
                               std::max<uint64_t>(numel, 1));
        return tileCosts(desc, {elems});
      }
      case OpType::Softmax:
      case OpType::LayerNorm: {
        const uint64_t rows = desc.outDims[0];
        const uint64_t cols = desc.outDims[1];
        const uint64_t tile_rows =
            std::min<uint64_t>(rowReductionTileRows(cols), rows);
        return tileCosts(desc, {tile_rows, cols});
      }
    }
    panic("TilePolicy::select: unhandled op type");
}

std::vector<LaunchGeometry>
TilePolicy::launchBatch(const std::vector<KernelDesc> &descs,
                        const std::vector<std::vector<uint64_t>> &tiles,
                        const GpuSpec &gpu)
{
    ensure(descs.size() == tiles.size(),
           "TilePolicy::launchBatch: one tile per descriptor");
    std::vector<LaunchGeometry> out(descs.size());
    for (size_t i = 0; i < descs.size(); ++i) {
        LaunchGeometry &g = out[i];
        g.tile = tileCosts(descs[i], tiles[i]);
        g.numTiles = numTiles(descs[i], tiles[i]);
        g.numWaves = numWaves(g.numTiles, gpu.numSms);
    }
    return out;
}

} // namespace neusight::gpusim
