#include "gpusim/spec_io.hpp"

#include <fstream>

#include "common/logging.hpp"

namespace neusight::gpusim {

using common::Json;

GpuSpec
gpuSpecFromJson(const Json &json)
{
    if (!json.isObject())
        fatal("gpu spec: expected a JSON object");
    GpuSpec spec;
    spec.name = json.at("name").asString();
    if (spec.name.empty())
        fatal("gpu spec: empty name");

    const std::string vendor = json.stringOr("vendor", "nvidia");
    if (vendor == "nvidia" || vendor == "NVIDIA")
        spec.vendor = Vendor::Nvidia;
    else if (vendor == "amd" || vendor == "AMD")
        spec.vendor = Vendor::Amd;
    else
        fatal("gpu spec: unknown vendor '" + vendor + "'");

    spec.year = static_cast<int>(json.numberOr("year", 2024));
    spec.peakFp32Tflops = json.at("peak_fp32_tflops").asDouble();
    spec.matrixFp32Tflops =
        json.numberOr("matrix_fp32_tflops", spec.peakFp32Tflops);
    spec.fp16TensorTflops = json.numberOr("fp16_tensor_tflops", 0.0);
    spec.memorySizeGB = json.at("memory_size_gb").asDouble();
    spec.memoryBwGBps = json.at("memory_bw_gbps").asDouble();
    spec.numSms = static_cast<int>(json.at("num_sms").asInt());
    spec.l2CacheMB = json.at("l2_cache_mb").asDouble();
    spec.interconnectGBps = json.numberOr("interconnect_gbps", 32.0);
    spec.inTrainingSet = json.boolOr("in_training_set", false);

    if (spec.peakFp32Tflops <= 0.0 || spec.matrixFp32Tflops <= 0.0)
        fatal("gpu spec: peak FLOPS must be positive for " + spec.name);
    if (spec.memorySizeGB <= 0.0 || spec.memoryBwGBps <= 0.0)
        fatal("gpu spec: memory size/bandwidth must be positive for " +
              spec.name);
    if (spec.numSms <= 0)
        fatal("gpu spec: SM count must be positive for " + spec.name);
    if (spec.l2CacheMB <= 0.0)
        fatal("gpu spec: L2 size must be positive for " + spec.name);
    if (spec.fp16TensorTflops < 0.0 || spec.interconnectGBps < 0.0)
        fatal("gpu spec: negative feature for " + spec.name);
    return spec;
}

Json
gpuSpecToJson(const GpuSpec &spec)
{
    Json json;
    json.set("name", spec.name);
    json.set("vendor", spec.vendor == Vendor::Amd ? "amd" : "nvidia");
    json.set("year", spec.year);
    json.set("peak_fp32_tflops", spec.peakFp32Tflops);
    json.set("matrix_fp32_tflops", spec.matrixFp32Tflops);
    json.set("fp16_tensor_tflops", spec.fp16TensorTflops);
    json.set("memory_size_gb", spec.memorySizeGB);
    json.set("memory_bw_gbps", spec.memoryBwGBps);
    json.set("num_sms", spec.numSms);
    json.set("l2_cache_mb", spec.l2CacheMB);
    json.set("interconnect_gbps", spec.interconnectGBps);
    json.set("in_training_set", spec.inTrainingSet);
    return json;
}

std::vector<GpuSpec>
loadGpuSpecs(const std::string &path)
{
    const Json doc = Json::parseFile(path);
    std::vector<GpuSpec> specs;
    if (doc.isArray()) {
        for (const Json &entry : doc.asArray())
            specs.push_back(gpuSpecFromJson(entry));
    } else {
        specs.push_back(gpuSpecFromJson(doc));
    }
    if (specs.empty())
        fatal("gpu spec: '" + path + "' holds no specs");
    return specs;
}

void
saveGpuSpecs(const std::vector<GpuSpec> &specs, const std::string &path)
{
    Json doc;
    for (const GpuSpec &spec : specs)
        doc.push(gpuSpecToJson(spec));
    std::ofstream out(path);
    if (!out)
        fatal("gpu spec: cannot write '" + path + "'");
    out << doc.dump() << "\n";
}

GpuSpec
resolveGpu(const std::string &name_or_path)
{
    for (const GpuSpec &spec : deviceDatabase())
        if (spec.name == name_or_path)
            return spec;
    return loadGpuSpecs(name_or_path).front();
}

} // namespace neusight::gpusim
