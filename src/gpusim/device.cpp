#include "gpusim/device.hpp"

#include <cmath>
#include <functional>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace neusight::gpusim {

double
effectivePeakFlops(const KernelDesc &desc, const GpuSpec &gpu)
{
    const bool gemm_family = desc.type == OpType::BatchedMatmul ||
                             desc.type == OpType::FullyConnected;
    if (gemm_family && desc.usesTensorCore && gpu.fp16Flops() > 0.0 &&
        desc.dtype == DataType::Fp16)
        return gpu.fp16Flops();
    if (gemm_family)
        return gpu.matrixFlops();
    return gpu.peakFlops();
}

namespace {

/**
 * Hidden per-GPU behavioural parameters. These model the part of real
 * hardware/driver/library behaviour that is NOT derivable from the spec
 * sheet; predictors never see them. Residuals are deterministic functions
 * of the device name so held-out GPUs carry an irreducible idiosyncrasy,
 * like real silicon does.
 */
struct HiddenParams
{
    double launchOverheadUs;
    double efficiencyResidual; // multiplies the utilization ceiling
    double rampResidual;       // multiplies the occupancy ramp constant
};

uint64_t
nameHash(const std::string &name)
{
    uint64_t h = 1469598103934665603ULL;
    for (char c : name) {
        h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
        h *= 1099511628211ULL;
    }
    return h;
}

HiddenParams
hiddenParams(const GpuSpec &gpu)
{
    HiddenParams p;
    // Launch overhead shrinks with driver/architecture generation.
    p.launchOverheadUs = gpu.year >= 2022   ? 4.5
                         : gpu.year >= 2020 ? 5.5
                         : gpu.year >= 2017 ? 6.5
                                            : 8.0;
    if (gpu.vendor == Vendor::Amd)
        p.launchOverheadUs += 1.5;
    const uint64_t h = nameHash(gpu.name);
    p.efficiencyResidual = 1.0 + 0.03 * hashNoise(h, 11, 23);
    p.rampResidual = 1.0 + 0.25 * hashNoise(h, 37, 71);
    return p;
}

/** Utilization ceiling of an operator family (library maturity). */
double
opCeiling(OpType type)
{
    switch (type) {
      case OpType::BatchedMatmul:
        return 0.93;
      case OpType::FullyConnected:
        return 0.95;
      case OpType::Elementwise:
        return 0.97;
      case OpType::Softmax:
        return 0.88;
      case OpType::LayerNorm:
        return 0.80;
      case OpType::Memory:
        return 0.85;
    }
    return 0.85;
}

/** Occupancy ramp constant: waves needed to approach the ceiling. */
double
rampConstant(OpType type)
{
    switch (type) {
      case OpType::BatchedMatmul:
        return 0.40;
      case OpType::FullyConnected:
        return 0.35;
      case OpType::Elementwise:
        return 0.60;
      case OpType::Softmax:
        return 0.50;
      case OpType::LayerNorm:
        return 0.70;
      case OpType::Memory:
        return 0.50;
    }
    return 0.5;
}

/**
 * Architecture factor: the feature-predictable part of how close a GPU
 * generation's libraries get to peak. Larger L2 parts (newer generations)
 * achieve more of their roofline.
 */
double
archFactor(const GpuSpec &gpu)
{
    return 0.90 + 0.045 * std::tanh(std::log(gpu.l2CacheMB / 8.0) / 2.0);
}

/** GEMM tile-shape efficiency: fatter tiles expose more reuse. */
double
tileFactor(const KernelDesc &desc, const TileInfo &tile)
{
    if (desc.type != OpType::BatchedMatmul &&
        desc.type != OpType::FullyConnected)
        return 1.0;
    const size_t rank = tile.dims.size();
    const double tm = static_cast<double>(tile.dims[rank - 2]);
    const double tn = static_cast<double>(tile.dims[rank - 1]);
    const double shape = 0.70 + 0.30 * std::min(1.0, std::sqrt(tm * tn) / 181.0);
    // Longer reductions amortize prologue/epilogue.
    const double k = static_cast<double>(desc.reduceDim);
    const double depth = 0.80 + 0.20 * k / (k + 128.0);
    return shape * depth;
}

/** Mild dip in achievable throughput near the roofline ridge point. */
double
intensityFactor(double k_intensity, double ridge)
{
    if (k_intensity <= 0.0 || ridge <= 0.0)
        return 1.0;
    const double x = std::log(k_intensity / ridge);
    return 1.0 - 0.12 * std::exp(-x * x / 2.0);
}

/** Tensor-core kernels are harder to keep saturated. */
double
dtypeFactor(const KernelDesc &desc)
{
    return desc.usesTensorCore ? 0.92 : 1.0;
}

/**
 * L2 locality: kernels whose whole working set is L2-resident see more
 * than DRAM bandwidth.
 */
double
l2BandwidthBoost(const KernelDesc &desc, const GpuSpec &gpu)
{
    // Capped at ~1.12x DRAM bandwidth: enough to be a real learning
    // signal (feature 3 of Table 3 captures the working-set/L2 ratio)
    // while staying within the error a bandwidth-roofline-bounded
    // predictor can absorb.
    const double ratio = desc.memBytes / gpu.l2Bytes();
    return 1.0 + 0.12 / (1.0 + ratio);
}

/**
 * Latency-hiding ramp (paper Fig. 5): more waves per SM means more
 * independent threads to hide stalls behind.
 */
double
occupancyRamp(double waves, double gamma)
{
    return waves / (waves + gamma);
}

/**
 * Effective wave count: full waves plus a tail wave that overlaps
 * partially with its predecessor (threads from multiple tiles execute
 * concurrently, Section 4.2).
 */
double
effectiveWaves(uint64_t num_tiles, int num_sms)
{
    const uint64_t full = num_tiles / static_cast<uint64_t>(num_sms);
    const uint64_t rem = num_tiles % static_cast<uint64_t>(num_sms);
    double waves = static_cast<double>(full);
    if (rem > 0)
        waves += 0.55 + 0.45 * static_cast<double>(rem) /
                            static_cast<double>(num_sms);
    return waves;
}

} // namespace

Device::Device(GpuSpec spec_) : gpu(std::move(spec_))
{
    ensure(gpu.numSms > 0 && gpu.peakFp32Tflops > 0.0 &&
               gpu.memoryBwGBps > 0.0,
           "Device: incomplete GPU spec '" + gpu.name + "'");
}

Device
Device::byName(const std::string &name)
{
    return Device(findGpu(name));
}

bool
Device::fitsMemory(double bytes) const
{
    return bytes <= gpu.memBytes();
}

KernelLaunch
Device::profileKernel(const KernelDesc &desc) const
{
    KernelLaunch launch;
    launch.tile = TilePolicy::select(desc, gpu);
    launch.numTiles = TilePolicy::numTiles(desc, launch.tile.dims);
    launch.numWaves = TilePolicy::numWaves(launch.numTiles, gpu.numSms);

    const HiddenParams hidden = hiddenParams(gpu);
    const double peak = effectivePeakFlops(desc, gpu);
    const double peak_per_sm = peak / gpu.numSms;
    const double mem_bw_per_sm =
        gpu.memBwPerSm() * l2BandwidthBoost(desc, gpu);

    const double k_intensity =
        launch.tile.flopsPerTile / launch.tile.memBytesPerTile;
    const double ridge = peak / gpu.memBwBytes();
    launch.rooflinePerSm =
        std::min(k_intensity * mem_bw_per_sm, peak_per_sm);

    const double ceiling = opCeiling(desc.type) * archFactor(gpu) *
                           tileFactor(desc, launch.tile) *
                           intensityFactor(k_intensity, ridge) *
                           dtypeFactor(desc) * hidden.efficiencyResidual;
    const double gamma = rampConstant(desc.type) * hidden.rampResidual;
    launch.utilization =
        std::min(0.99, ceiling * occupancyRamp(
                           static_cast<double>(launch.numWaves), gamma));

    const double tile_lat_s = launch.tile.flopsPerTile /
                              (launch.rooflinePerSm * launch.utilization);
    const double eff_waves = effectiveWaves(launch.numTiles, gpu.numSms);
    double lat_s = tile_lat_s * eff_waves;

    // Deterministic pseudo measurement noise (+/- 2%).
    const double noise =
        1.0 + 0.02 * hashNoise(nameHash(gpu.name),
                               nameHash(desc.opName),
                               static_cast<uint64_t>(desc.flops) ^
                                   static_cast<uint64_t>(desc.memBytes));
    lat_s *= noise;

    launch.overheadMs = hiddenParams(gpu).launchOverheadUs * 1e-3;
    launch.latencyMs = lat_s * 1e3 + launch.overheadMs;
    return launch;
}

double
Device::measureKernelMs(const KernelDesc &desc) const
{
    return profileKernel(desc).latencyMs;
}

} // namespace neusight::gpusim
