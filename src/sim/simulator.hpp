/**
 * @file
 * Discrete-event cluster simulator over the dist:: cost models: lowers
 * a HybridConfig into a ScheduleProgram of per-virtual-stage forward /
 * backward / transfer / all-reduce tasks and executes it on the event
 * engine. Stage compute prices come from dist::hybridStagePrices — the
 * exact numbers the closed form folds into its algebra — so GPipe,
 * 1F1B, and interleaved-1F1B reproduce hybridTrainingMs() within a
 * tight relative tolerance on bottleneck-last models (the golden-pin
 * parity anchor, enforced by sim_test and bench_sim_throughput).
 *
 * On top of that baseline the simulator prices what no closed form
 * can:
 *  - the zero-bubble schedule (backward split into an input-gradient
 *    pass B on the critical path and a weight-gradient pass W that
 *    fills the drain bubble),
 *  - seeded deterministic per-task jitter and per-stage stragglers
 *    (the same seed always yields the same timeline, and more jitter
 *    can never shorten it),
 *  - link contention: DP gradient reducers optionally share one
 *    fabric, stretching each other processor-sharing style instead of
 *    reducing on disjoint links.
 *
 * The event timeline can be emitted through obs::Tracer as Chrome
 * trace spans (one lane per GPU plus a comm lane) for Perfetto.
 */

#ifndef NEUSIGHT_SIM_SIMULATOR_HPP
#define NEUSIGHT_SIM_SIMULATOR_HPP

#include <cstdint>

#include "dist/parallel.hpp"

namespace neusight::sim {

/** Perturbations and execution knobs of one simulation. */
struct SimOptions
{
    /**
     * Multiplicative compute jitter: each compute task stretches by a
     * deterministic per-task factor in [1, 1 + jitterFraction), hashed
     * from @ref seed and the task index. Zero reproduces the
     * unperturbed schedule exactly.
     */
    double jitterFraction = 0.0;
    /** Seed of the jitter stream. */
    uint64_t seed = 0;
    /** Physical stage slowed by @ref stragglerFactor (-1: none). */
    int stragglerStage = -1;
    /** Duration multiplier of the straggler stage's compute (>= 1). */
    double stragglerFactor = 1.0;
    /**
     * Run every DP gradient all-reduce over one shared fabric instead
     * of per-stage disjoint links: concurrent reducers split the
     * bandwidth (processor sharing), so overlapping collectives
     * stretch each other.
     */
    bool sharedFabric = false;
    /**
     * Emit the task timeline into obs::Tracer::global() as Chrome
     * trace spans with simulated-time timestamps (no-op unless the
     * tracer is enabled).
     */
    bool emitTrace = false;
};

/** Outcome of one simulation. */
struct SimResult
{
    /**
     * The fields hybridTrainingMs() reports, measured off the event
     * timeline instead of computed in closed form: latencyMs is the
     * makespan, bubbleMs the bottleneck GPU's idle time before compute
     * ends, exposedDdpMs the tail after the last compute task.
     */
    dist::HybridResult hybrid;
    /** Events the engine processed (throughput accounting). */
    uint64_t events = 0;
    /** Tasks in the lowered program. */
    uint64_t tasks = 0;
};

/**
 * Simulate one training iteration of @p hybrid — the discrete-event
 * counterpart of dist::hybridTrainingMs(), and the only pricer of
 * PipelineSchedule::ZeroBubble. Aborts (death-testable) when
 * validateHybrid() rejects the configuration; screen user input first.
 * The OOM screen, comm-byte, memory, and recompute accounting mirror
 * the closed form exactly.
 */
SimResult
simulateHybrid(const graph::LatencyPredictor &predictor,
               const dist::CollectiveModel &comms,
               const dist::ServerConfig &server,
               const graph::ModelConfig &config, uint64_t global_batch,
               const dist::HybridConfig &hybrid,
               const SimOptions &options = SimOptions{},
               dist::StagePriceMemo *memo = nullptr);

/**
 * Simulate the one-stage-per-GPU pipeline of dist::pipelineTrainingMs()
 * (GPipe, 1F1B, or zero-bubble; interleaving is a hybrid-path
 * concern). Throws via fatal() on invalid configurations.
 */
SimResult
simulatePipeline(const graph::LatencyPredictor &predictor,
                 const dist::CollectiveModel &comms,
                 const dist::ServerConfig &server,
                 const graph::ModelConfig &config, uint64_t global_batch,
                 const dist::PipelineConfig &pipeline,
                 const SimOptions &options = SimOptions{});

/**
 * The sweep's simulator arm: @p base with a pointEvaluator installed
 * that prices every grid point through simulateHybrid() (zero-bubble
 * candidates included) — pass the result to dist::sweepStrategies().
 * @p predictor and @p comms are captured by reference and must outlive
 * the sweep; @p config and @p server are copied.
 */
dist::SweepOptions
simulatorSweepOptions(const graph::LatencyPredictor &predictor,
                      const dist::CollectiveModel &comms,
                      const dist::ServerConfig &server,
                      const graph::ModelConfig &config,
                      uint64_t global_batch,
                      const dist::SweepOptions &base = dist::SweepOptions{},
                      const SimOptions &sim = SimOptions{});

} // namespace neusight::sim

#endif // NEUSIGHT_SIM_SIMULATOR_HPP
