/**
 * @file
 * Cluster resource model for the discrete-event simulator: a
 * ScheduleProgram is a DAG of compute and communication tasks bound to
 * per-GPU compute resources and per-link channel resources, and
 * runProgram() executes it on the event queue.
 *
 * Execution policy per resource:
 *  - a GPU runs one compute task at a time; among ready tasks it always
 *    dispatches the one with the lowest priority key (this is how the
 *    1F1B "backward first" and zero-bubble "W fills idle slots" rules
 *    are expressed),
 *  - an exclusive channel (the default; one per link direction) runs
 *    one transfer at a time, FIFO by priority key,
 *  - a shared channel models link contention: every active transfer
 *    proceeds simultaneously at 1/n of the link's capacity (processor
 *    sharing), so overlapping collectives stretch each other.
 *
 * Determinism: all container orders and event tie-breaks are fixed by
 * task index and push sequence, so the same program and durations give
 * the same timeline on every run.
 */

#ifndef NEUSIGHT_SIM_CLUSTER_HPP
#define NEUSIGHT_SIM_CLUSTER_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace neusight::sim {

/** Role of a task in the lowered schedule (drives trace labels and
 *  which tasks jitter applies to). */
enum class TaskKind
{
    Forward,
    Backward,       // combined backward (dgrad + wgrad)
    BackwardInput,  // zero-bubble B pass: input gradient only
    BackwardWeight, // zero-bubble W pass: weight gradient only
    Transfer,       // pipeline boundary activation/gradient send
    AllReduce,      // data-parallel gradient reduction
};

/** True for tasks that occupy a GPU (jitter/straggler targets). */
bool isComputeTask(TaskKind kind);

/** Short label used in trace span names ("F", "B", "Bi", "Bw", ...). */
const char *taskKindTag(TaskKind kind);

/** One schedulable unit of work. */
struct SimTask
{
    TaskKind kind = TaskKind::Forward;
    /** Compute resource, or -1 for communication tasks. */
    int gpu = -1;
    /** Channel resource, or -1 for compute tasks. */
    int channel = -1;
    /** Physical pipeline stage (straggler targeting + trace labels). */
    int stage = 0;
    /** Virtual-stage chunk on its GPU (interleaved schedules). */
    int chunk = 0;
    /** Micro-batch index. */
    int micro = 0;
    /** Base duration in milliseconds (before jitter/stragglers). */
    double durationMs = 0.0;
    /**
     * Dispatch rank among ready tasks contending for the same resource:
     * lower runs first. Encodes the schedule's ordering policy.
     */
    uint64_t priority = 0;
    /** Task indices that must finish before this task becomes ready. */
    std::vector<int> deps;
};

/** A lowered schedule: resources plus the task DAG. */
struct ScheduleProgram
{
    int numGpus = 0;
    int numChannels = 0;
    /** channelShared[c] != 0 marks channel c as processor-sharing. */
    std::vector<uint8_t> channelShared;
    std::vector<SimTask> tasks;

    /** Append a channel; returns its index. */
    int addChannel(bool shared);
    /** Append a task; returns its index. */
    int addTask(SimTask task);
};

/** Timeline produced by one engine run. */
struct RunResult
{
    /** Finish time of the last task. */
    double makespanMs = 0.0;
    /** Finish time of the last compute task. */
    double computeEndMs = 0.0;
    /** Largest per-GPU total busy time. */
    double maxGpuBusyMs = 0.0;
    std::vector<double> startMs;
    std::vector<double> finishMs;
    /** Dispatch order per GPU, as executed. */
    std::vector<std::vector<int>> gpuOrder;
    /** Dispatch order per exclusive channel, as executed. */
    std::vector<std::vector<int>> channelOrder;
    /** Events processed (throughput accounting). */
    uint64_t events = 0;
};

/**
 * Execute a program to completion on a fresh event queue.
 *
 * @param program The task DAG and its resources.
 * @param durations Per-task durations in ms (after any jitter or
 *        straggler stretch); must have one entry per task.
 */
RunResult runProgram(const ScheduleProgram &program,
                     const std::vector<double> &durations);

/**
 * Serialize a program against the dispatch orders of a previous run by
 * adding chain dependency edges per GPU and per exclusive channel
 * (shared channels are left free — contention already prices them).
 * Re-running the chained program with stretched durations computes the
 * longest path through a fixed DAG, which makes the makespan monotone
 * in every task duration: injecting jitter can never make the
 * simulated run finish earlier.
 */
ScheduleProgram chainProgram(const ScheduleProgram &program,
                             const RunResult &order);

} // namespace neusight::sim

#endif // NEUSIGHT_SIM_CLUSTER_HPP
