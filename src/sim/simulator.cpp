#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/logging.hpp"
#include "obs/trace.hpp"
#include "sim/cluster.hpp"

namespace neusight::sim {

namespace {

using dist::HybridConfig;
using dist::PipelineSchedule;

/**
 * Stateless SplitMix64 hash of (seed, index) to a uniform double in
 * [0, 1). Keyed on the task index — not on execution order — so the
 * same seed perturbs the same task identically regardless of how the
 * schedule around it shifts, and jitter scales monotonically in the
 * fraction.
 */
double
unitHash(uint64_t seed, uint64_t index)
{
    uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
}

/**
 * Everything the schedule lowering needs, already priced: per-physical-
 * stage compute times (the exact dist::hybridStagePrices numbers),
 * boundary transfer cost, and the DP reducers' exposure durations.
 */
struct LowerSpec
{
    int numStages = 1;    // physical pipeline stages (one GPU each)
    int virtualPerGpu = 1; // interleaving chunks per GPU
    int numMicro = 1;
    PipelineSchedule schedule = PipelineSchedule::OneFOneB;
    /** Full fwd+bwd stage compute per micro-batch, excl. replay. */
    std::vector<double> trainMs;
    /** Forward-replay compute per micro-batch (recompute), else 0. */
    std::vector<double> replayMs;
    /** One stage-boundary activation/gradient transfer. */
    double boundaryMs = 0.0;
    /** Per-stage DP all-reduce exposure; empty disables DP tasks. */
    std::vector<double> ddpExposedMs;
    bool sharedFabric = false;
};

/** Dispatch key: class rank, then warmup group, then chunk, then micro. */
uint64_t
priorityKey(uint64_t cls, uint64_t group, uint64_t chunk, uint64_t micro)
{
    return (cls << 56) | (group << 32) | (chunk << 24) | micro;
}

struct Lowered
{
    ScheduleProgram program;
    std::vector<double> baseMs;
};

/**
 * Lower a schedule into a task DAG. Virtual stage `vs` of V = S * v
 * lives on GPU vs % S as chunk vs / S (the Megatron placement); its
 * compute chunks cost 1/v of the GPU's stage time, split 1/3 forward,
 * 2/3 backward (recompute replay rides with the backward). The
 * schedule itself is expressed purely through dispatch priorities:
 * GPipe runs forwards before backwards; 1F1B-family schedules run
 * ready backwards first, which makes the 1F1B steady state emerge from
 * the greedy engine; zero-bubble splits the backward into a B pass
 * (input gradients — on the inter-stage critical path) and a lowest-
 * priority W pass (weight gradients) that fills drain-bubble idle.
 */
Lowered
lower(const LowerSpec &spec)
{
    const int S = spec.numStages;
    const int v = spec.virtualPerGpu;
    const int m = spec.numMicro;
    const int V = S * v;
    const bool zb = spec.schedule == PipelineSchedule::ZeroBubble;
    const bool gpipe = spec.schedule == PipelineSchedule::GPipe;
    const uint64_t fwd_cls = gpipe ? 0 : 1;
    const uint64_t bwd_cls = gpipe ? 1 : 0;
    const uint64_t wgt_cls = 2;

    Lowered low;
    ScheduleProgram &p = low.program;
    p.numGpus = S;

    // One exclusive channel per (link, direction): forward activations
    // and backward gradients between the same GPUs do not contend
    // (full-duplex links), and distinct GPU pairs never share.
    std::map<std::tuple<int, int, int>, int> links;
    const auto channelFor = [&](int from, int to, bool backward) {
        const auto key = std::make_tuple(from, to, backward ? 1 : 0);
        const auto it = links.find(key);
        if (it != links.end())
            return it->second;
        const int c = p.addChannel(/*shared=*/false);
        links.emplace(key, c);
        return c;
    };

    const auto grid = [&](int vs, int k) { return vs * m + k; };
    std::vector<int> fwdId(static_cast<size_t>(V) * m, -1);
    std::vector<int> bwdId(static_cast<size_t>(V) * m, -1);
    std::vector<int> wgtId(zb ? static_cast<size_t>(V) * m : 0, -1);
    std::vector<int> xferFId(V > 1 ? static_cast<size_t>(V - 1) * m : 0,
                             -1);
    std::vector<int> xferBId(V > 1 ? static_cast<size_t>(V) * m : 0, -1);

    const auto addCompute = [&](TaskKind kind, uint64_t cls, int vs,
                                int k, double dur) {
        const int g = vs % S;
        const int chunk = vs / S;
        SimTask t;
        t.kind = kind;
        t.gpu = g;
        t.stage = g;
        t.chunk = chunk;
        t.micro = k;
        t.durationMs = dur;
        // Forwards climb the chunks, backwards drain them top-down;
        // the micro-batch group rotates every S micros (warmup depth).
        const uint64_t chunk_key =
            kind == TaskKind::Forward
                ? static_cast<uint64_t>(chunk)
                : static_cast<uint64_t>(v - 1 - chunk);
        t.priority = priorityKey(cls, static_cast<uint64_t>(k / S),
                                 chunk_key, static_cast<uint64_t>(k % S));
        return p.addTask(std::move(t));
    };

    const auto addTransfer = [&](int from_vs, int to_vs, bool backward,
                                 int k) {
        SimTask t;
        t.kind = TaskKind::Transfer;
        t.channel = channelFor(from_vs % S, to_vs % S, backward);
        t.stage = from_vs % S;
        t.chunk = from_vs / S;
        t.micro = k;
        t.durationMs = spec.boundaryMs;
        t.priority = (static_cast<uint64_t>(k) << 16) |
                     static_cast<uint64_t>(from_vs);
        return p.addTask(std::move(t));
    };

    for (int vs = 0; vs < V; ++vs) {
        const int g = vs % S;
        const double t_stage = spec.trainMs[g];
        const double r_stage =
            spec.replayMs.empty() ? 0.0 : spec.replayMs[g];
        const double vf = static_cast<double>(v);
        const double fwd_ms = t_stage / (3.0 * vf);
        // Recompute's forward replay runs right before the backward it
        // feeds, so it rides inside the backward task's duration.
        const double bwd_ms =
            zb ? (t_stage / 3.0 + r_stage) / vf
               : (t_stage * (2.0 / 3.0) + r_stage) / vf;
        const double wgt_ms = t_stage / (3.0 * vf);
        for (int k = 0; k < m; ++k) {
            fwdId[grid(vs, k)] =
                addCompute(TaskKind::Forward, fwd_cls, vs, k, fwd_ms);
            bwdId[grid(vs, k)] = addCompute(
                zb ? TaskKind::BackwardInput : TaskKind::Backward,
                bwd_cls, vs, k, bwd_ms);
            if (zb)
                wgtId[grid(vs, k)] = addCompute(TaskKind::BackwardWeight,
                                                wgt_cls, vs, k, wgt_ms);
        }
    }
    for (int vs = 0; vs + 1 < V; ++vs)
        for (int k = 0; k < m; ++k)
            xferFId[grid(vs, k)] = addTransfer(vs, vs + 1, false, k);
    for (int vs = 1; vs < V; ++vs)
        for (int k = 0; k < m; ++k)
            xferBId[grid(vs, k)] = addTransfer(vs, vs - 1, true, k);

    // Dependency wiring: forward chain up the virtual stages, the last
    // chunk's backward follows its forward, backward chain down, W
    // after its B.
    for (int vs = 0; vs < V; ++vs) {
        for (int k = 0; k < m; ++k) {
            const int f = fwdId[grid(vs, k)];
            const int b = bwdId[grid(vs, k)];
            if (vs > 0) {
                p.tasks[xferFId[grid(vs - 1, k)]].deps.push_back(
                    fwdId[grid(vs - 1, k)]);
                p.tasks[f].deps.push_back(xferFId[grid(vs - 1, k)]);
            }
            if (vs == V - 1) {
                p.tasks[b].deps.push_back(f);
            } else {
                p.tasks[xferBId[grid(vs + 1, k)]].deps.push_back(
                    bwdId[grid(vs + 1, k)]);
                p.tasks[b].deps.push_back(xferBId[grid(vs + 1, k)]);
                // A chunk backs up only what it forwarded.
                p.tasks[b].deps.push_back(f);
            }
            if (zb)
                p.tasks[wgtId[grid(vs, k)]].deps.push_back(b);
        }
    }

    // DP gradient reducers: barrier tasks that start once every compute
    // task has retired (the closed form overlaps their buckets against
    // the backward window analytically — the task duration here is the
    // exposed remainder, so dedicated links reproduce it exactly). A
    // shared fabric instead multiplexes every stage's reducer through
    // one processor-sharing channel.
    if (!spec.ddpExposedMs.empty()) {
        std::vector<int> all_compute;
        all_compute.reserve(p.tasks.size());
        for (size_t i = 0; i < p.tasks.size(); ++i)
            if (p.tasks[i].gpu >= 0)
                all_compute.push_back(static_cast<int>(i));
        const int shared_channel =
            spec.sharedFabric ? p.addChannel(/*shared=*/true) : -1;
        for (int s = 0; s < S; ++s) {
            SimTask t;
            t.kind = TaskKind::AllReduce;
            t.channel = spec.sharedFabric
                            ? shared_channel
                            : p.addChannel(/*shared=*/false);
            t.stage = s;
            t.durationMs = spec.ddpExposedMs[s];
            t.priority = static_cast<uint64_t>(s);
            t.deps = all_compute;
            p.addTask(std::move(t));
        }
    }

    low.baseMs.reserve(p.tasks.size());
    for (const SimTask &t : p.tasks)
        low.baseMs.push_back(t.durationMs);
    return low;
}

struct ExecOutcome
{
    RunResult run;
    std::vector<double> durations;
};

/**
 * Two-pass execution. Pass 1 runs the greedy engine on base durations —
 * the planned schedule. Under perturbation, pass 2 replays that
 * recorded dispatch order with stretched durations by chaining each
 * resource's queue (chainProgram): the makespan becomes the longest
 * path through a fixed DAG, so it is monotone in every duration — more
 * jitter can never finish earlier — and zero perturbation reproduces
 * pass 1 exactly (pass 2 is skipped). This models synchronous training
 * faithfully: the schedule is decided ahead of time, stragglers stall
 * it rather than re-plan it.
 */
ExecOutcome
execute(const Lowered &low, const SimOptions &options)
{
    const RunResult plan = runProgram(low.program, low.baseMs);
    const bool straggling =
        options.stragglerStage >= 0 && options.stragglerFactor != 1.0;
    if (options.jitterFraction <= 0.0 && !straggling)
        return {plan, low.baseMs};

    std::vector<double> stretched = low.baseMs;
    for (size_t i = 0; i < low.program.tasks.size(); ++i) {
        if (!isComputeTask(low.program.tasks[i].kind))
            continue;
        if (straggling &&
            low.program.tasks[i].stage == options.stragglerStage)
            stretched[i] *= options.stragglerFactor;
        if (options.jitterFraction > 0.0)
            stretched[i] *=
                1.0 + options.jitterFraction * unitHash(options.seed, i);
    }
    const ScheduleProgram chained = chainProgram(low.program, plan);
    RunResult run = runProgram(chained, stretched);
    run.events += plan.events;
    return {run, std::move(stretched)};
}

/** Emit the executed timeline as Chrome trace spans (simulated time). */
void
emitTimeline(const ScheduleProgram &program, const RunResult &run,
             const std::vector<double> &durations)
{
    obs::Tracer &tracer = obs::Tracer::global();
    if (!tracer.enabled())
        return;
    for (size_t i = 0; i < program.tasks.size(); ++i) {
        const SimTask &t = program.tasks[i];
        std::string name = "sim.";
        if (t.gpu >= 0) {
            name += "gpu" + std::to_string(t.gpu) + '.';
            name += taskKindTag(t.kind);
            name += ".m" + std::to_string(t.micro);
            if (t.chunk > 0)
                name += ".c" + std::to_string(t.chunk);
        } else {
            name += taskKindTag(t.kind);
            name += ".s" + std::to_string(t.stage) + ".m" +
                    std::to_string(t.micro);
        }
        // Simulated milliseconds map to trace microseconds; one lane
        // per GPU, comm lanes after them.
        const int depth = t.gpu >= 0 ? t.gpu
                                     : program.numGpus + t.channel;
        tracer.add(std::move(name), "sim", run.startMs[i] * 1000.0,
                   durations[i] * 1000.0, depth);
    }
}

/** Activation-stash micro-batches of the single-axis pipeline screen —
 *  mirrors dist's schedule stash rules for the schedules allowed here
 *  (zero-bubble retires stashes on the 1F1B cadence: ZB-H1). */
double
pipelineStashMicroBatches(PipelineSchedule schedule, int m, int stages)
{
    if (schedule == PipelineSchedule::GPipe)
        return static_cast<double>(m);
    return std::min(static_cast<double>(m),
                    static_cast<double>(stages));
}

} // namespace

SimResult
simulateHybrid(const graph::LatencyPredictor &predictor,
               const dist::CollectiveModel &comms,
               const dist::ServerConfig &server,
               const graph::ModelConfig &config, uint64_t global_batch,
               const dist::HybridConfig &hybrid, const SimOptions &options,
               dist::StagePriceMemo *memo)
{
    // Death-testable precondition, exactly like hybridTrainingMs:
    // callers with user-supplied configurations screen through
    // validateHybrid() first.
    const std::string reject =
        dist::validateHybrid(config, server, global_batch, hybrid);
    ensure(reject.empty(), "simulateHybrid: " + reject);
    if (options.jitterFraction < 0.0)
        fatal("simulateHybrid: jitter fraction must be >= 0");
    if (options.stragglerFactor <= 0.0)
        fatal("simulateHybrid: straggler factor must be positive");

    const gpusim::GpuSpec &gpu = server.resolvedGpu();
    const double link = server.effectiveLinkGBps();
    const int pp = hybrid.ppDegree;
    const uint64_t m = static_cast<uint64_t>(hybrid.numMicroBatches);
    const uint64_t micro =
        global_batch / (static_cast<uint64_t>(hybrid.dpDegree) * m);

    SimResult out;
    dist::HybridResult &result = out.hybrid;
    // The OOM screen is the closed form's — simulation changes when
    // work runs, not what fits.
    for (int s = 0; s < pp; ++s) {
        const double mem =
            dist::hybridStageMemoryBytes(config, micro, s, hybrid);
        result.memoryBytes = std::max(result.memoryBytes, mem);
        if (mem > gpu.memBytes())
            result.oom = true;
    }
    if (result.oom)
        return out;

    // Stage compute prices: bit-identical to the closed form's inputs.
    const dist::HybridStagePrices prices = dist::hybridStagePrices(
        predictor, comms, server, config, micro, hybrid, memo);
    std::vector<double> stage_ms(pp, 0.0);
    double tp_payload = 0.0;
    double recompute_ms = 0.0;
    for (int s = 0; s < pp; ++s) {
        double ms = prices.trainMs[s];
        tp_payload += prices.trainCommBytes[s];
        if (hybrid.recomputeActivations) {
            ms += prices.replayMs[s];
            recompute_ms += prices.replayMs[s];
            tp_payload += prices.replayCommBytes[s];
        }
        stage_ms[s] = ms;
    }
    result.recomputeMs = static_cast<double>(m) * recompute_ms;
    result.commBytes += static_cast<double>(m) * tp_payload;

    const int v =
        hybrid.schedule == PipelineSchedule::Interleaved1F1B
            ? hybrid.virtualStagesPerGpu
            : 1;
    LowerSpec spec;
    spec.numStages = pp;
    spec.virtualPerGpu = v;
    spec.numMicro = hybrid.numMicroBatches;
    spec.schedule = hybrid.schedule;
    spec.trainMs = prices.trainMs;
    if (hybrid.recomputeActivations)
        spec.replayMs = prices.replayMs;
    spec.sharedFabric = options.sharedFabric;

    if (pp > 1) {
        const double boundary_bytes =
            static_cast<double>(micro * config.seq * config.hidden) *
            static_cast<double>(
                gpusim::dtypeBytes(gpusim::DataType::Fp32));
        spec.boundaryMs = comms.sendRecvMs(boundary_bytes, link);
        const double crossings =
            static_cast<double>(m) * static_cast<double>(pp * v - 1) *
            2.0;
        result.commBytes += crossings * boundary_bytes;
    }

    if (hybrid.dpDegree > 1) {
        spec.ddpExposedMs.assign(pp, 0.0);
        double payload = 0.0;
        for (int s = 0; s < pp; ++s) {
            const double grad_bytes =
                dist::hybridStageParameterCount(config, s, pp,
                                                hybrid.tpDegree) *
                4.0;
            payload += grad_bytes;
            const dist::DdpAllReduceCost cost = dist::ddpAllReduceCost(
                comms, grad_bytes, hybrid.ddp.bucketBytes,
                hybrid.dpDegree, link);
            const double window = hybrid.ddp.overlapEfficiency *
                                  (2.0 / 3.0) * stage_ms[s];
            spec.ddpExposedMs[s] =
                cost.lastBucketMs +
                std::max(0.0,
                         cost.totalMs - cost.lastBucketMs - window);
        }
        result.commBytes += payload;
    }

    const Lowered low = lower(spec);
    const ExecOutcome exec = execute(low, options);
    if (options.emitTrace)
        emitTimeline(low.program, exec.run, exec.durations);

    result.latencyMs = exec.run.makespanMs;
    result.bubbleMs =
        std::max(0.0, exec.run.computeEndMs - exec.run.maxGpuBusyMs);
    result.exposedDdpMs =
        hybrid.dpDegree > 1
            ? std::max(0.0, exec.run.makespanMs - exec.run.computeEndMs)
            : 0.0;
    out.events = exec.run.events;
    out.tasks = low.program.tasks.size();
    return out;
}

SimResult
simulatePipeline(const graph::LatencyPredictor &predictor,
                 const dist::CollectiveModel &comms,
                 const dist::ServerConfig &server,
                 const graph::ModelConfig &config, uint64_t global_batch,
                 const dist::PipelineConfig &pipeline,
                 const SimOptions &options)
{
    if (server.numGpus < 1)
        fatal("simulatePipeline: need at least one GPU");
    if (pipeline.numMicroBatches < 1)
        fatal("simulatePipeline: micro-batch count must be positive");
    if (pipeline.schedule == PipelineSchedule::Interleaved1F1B)
        fatal("simulatePipeline: interleaved 1F1B is a hybrid-path "
              "schedule (use simulateHybrid)");
    const uint64_t m = static_cast<uint64_t>(pipeline.numMicroBatches);
    if (global_batch == 0 || global_batch % m != 0)
        fatal("simulatePipeline: global batch must split evenly into " +
              std::to_string(m) + " micro-batches");
    const int stages = server.numGpus;
    if (static_cast<uint64_t>(stages) > config.numLayers)
        fatal("simulatePipeline: more pipeline stages than layers");
    const uint64_t micro = global_batch / m;
    const gpusim::GpuSpec &gpu = server.resolvedGpu();
    const double link = server.effectiveLinkGBps();

    SimResult out;
    dist::HybridResult &result = out.hybrid;
    const double stash = pipelineStashMicroBatches(
        pipeline.schedule, pipeline.numMicroBatches, stages);

    LowerSpec spec;
    spec.numStages = stages;
    spec.numMicro = pipeline.numMicroBatches;
    spec.schedule = pipeline.schedule;
    spec.trainMs.assign(stages, 0.0);
    for (int s = 0; s < stages; ++s) {
        const graph::KernelGraph g =
            dist::buildPipelineStageGraph(config, micro, s, stages, true);
        // The same memory screen as pipelineTrainingMs: optimizer
        // state (params x 16 for fp32 AdamW) plus the schedule's
        // activation stash.
        const double layers =
            static_cast<double>(config.numLayers) /
            static_cast<double>(stages);
        const double mem =
            dist::hybridStageParameterCount(config, s, stages, 1) *
                16.0 +
            stash * layers *
                graph::savedActivationBytesPerLayer(config, micro);
        result.memoryBytes = std::max(result.memoryBytes, mem);
        if (mem > gpu.memBytes()) {
            result.oom = true;
            return out;
        }
        spec.trainMs[s] = predictor.predictGraphMs(g, gpu);
    }

    const double boundary_bytes =
        static_cast<double>(micro * config.seq * config.hidden) *
        static_cast<double>(gpusim::dtypeBytes(gpusim::DataType::Fp32));
    spec.boundaryMs = comms.sendRecvMs(boundary_bytes, link);
    result.commBytes = static_cast<double>(m) *
                       static_cast<double>(stages - 1) * 2.0 *
                       boundary_bytes;

    const Lowered low = lower(spec);
    const ExecOutcome exec = execute(low, options);
    if (options.emitTrace)
        emitTimeline(low.program, exec.run, exec.durations);

    result.latencyMs = exec.run.makespanMs;
    result.bubbleMs =
        std::max(0.0, exec.run.computeEndMs - exec.run.maxGpuBusyMs);
    out.events = exec.run.events;
    out.tasks = low.program.tasks.size();
    return out;
}

dist::SweepOptions
simulatorSweepOptions(const graph::LatencyPredictor &predictor,
                      const dist::CollectiveModel &comms,
                      const dist::ServerConfig &server,
                      const graph::ModelConfig &config,
                      uint64_t global_batch, const dist::SweepOptions &base,
                      const SimOptions &sim)
{
    dist::SweepOptions options = base;
    options.includeZeroBubble = true;
    // std::function requires copyable captures: config and server ride
    // in shared_ptrs; predictor and comms stay caller-owned references.
    const auto model = std::make_shared<graph::ModelConfig>(config);
    const auto box = std::make_shared<dist::ServerConfig>(server);
    const graph::LatencyPredictor *pred = &predictor;
    const dist::CollectiveModel *collectives = &comms;
    options.pointEvaluator =
        [pred, collectives, box, model, global_batch,
         sim](const dist::HybridConfig &point,
              dist::StagePriceMemo *memo) -> dist::HybridResult {
        return simulateHybrid(*pred, *collectives, *box, *model,
                              global_batch, point, sim, memo)
            .hybrid;
    };
    return options;
}

} // namespace neusight::sim
