/**
 * @file
 * Deterministic discrete-event core of the cluster simulator: a
 * simulated clock plus a min-heap of typed events ordered by
 * (time, sequence number). The sequence number is the push order, so
 * simultaneous events always pop in the order they were scheduled —
 * a simulation replays identically run after run, independent of how
 * the host machine schedules the process.
 */

#ifndef NEUSIGHT_SIM_EVENT_QUEUE_HPP
#define NEUSIGHT_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <queue>
#include <vector>

namespace neusight::sim {

/** What an event means to the cluster model layered on the queue. */
enum class EventKind
{
    /** A compute or communication task reaches its scheduled finish. */
    TaskFinish,
    /**
     * A shared channel's bandwidth share changed while a transfer was
     * in flight: its previously scheduled finish is stale and must be
     * re-checked against the version counter.
     */
    TransferUpdate,
};

/** One timestamped occurrence. */
struct Event
{
    /** Simulated time, milliseconds. */
    double timeMs = 0.0;
    /** Push order: the stable tie-break for simultaneous events. */
    uint64_t seq = 0;
    EventKind kind = EventKind::TaskFinish;
    /** Task index the event refers to. */
    int task = -1;
    /** Schedule version at push time (lazy invalidation of stale
     *  finishes on capacity-shared channels). */
    uint64_t version = 0;
};

/**
 * Min-heap event queue with a simulated clock. pop() advances the
 * clock monotonically; pushing an event into the past is a logic error
 * and aborts.
 */
class EventQueue
{
  public:
    /** Schedule an event; returns its sequence number. */
    uint64_t push(double time_ms, EventKind kind, int task,
                  uint64_t version = 0);

    bool empty() const { return heap.empty(); }

    /** Pop the earliest event (ties: lowest seq) and advance the clock. */
    Event pop();

    /** The simulated clock: time of the last popped event. */
    double nowMs() const { return now; }

    /** Events pushed over the queue's lifetime. */
    uint64_t pushed() const { return nextSeq; }

    /** Events popped over the queue's lifetime. */
    uint64_t popped() const { return poppedCount; }

  private:
    struct Later
    {
        bool operator()(const Event &a, const Event &b) const
        {
            if (a.timeMs != b.timeMs)
                return a.timeMs > b.timeMs;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap;
    uint64_t nextSeq = 0;
    uint64_t poppedCount = 0;
    double now = 0.0;
};

} // namespace neusight::sim

#endif // NEUSIGHT_SIM_EVENT_QUEUE_HPP
