#include "sim/event_queue.hpp"

#include "common/logging.hpp"

namespace neusight::sim {

uint64_t EventQueue::push(double time_ms, EventKind kind, int task,
                          uint64_t version)
{
    ensure(time_ms >= now, "sim: event scheduled in the simulated past");
    Event e;
    e.timeMs = time_ms;
    e.seq = nextSeq++;
    e.kind = kind;
    e.task = task;
    e.version = version;
    heap.push(e);
    return e.seq;
}

Event EventQueue::pop()
{
    ensure(!heap.empty(), "sim: pop from an empty event queue");
    Event e = heap.top();
    heap.pop();
    now = e.timeMs;
    ++poppedCount;
    return e;
}

} // namespace neusight::sim
