#include "sim/cluster.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "common/logging.hpp"
#include "sim/event_queue.hpp"

namespace neusight::sim {

bool
isComputeTask(TaskKind kind)
{
    switch (kind) {
      case TaskKind::Forward:
      case TaskKind::Backward:
      case TaskKind::BackwardInput:
      case TaskKind::BackwardWeight:
        return true;
      case TaskKind::Transfer:
      case TaskKind::AllReduce:
        return false;
    }
    panic("sim: unknown task kind");
}

const char *
taskKindTag(TaskKind kind)
{
    switch (kind) {
      case TaskKind::Forward: return "F";
      case TaskKind::Backward: return "B";
      case TaskKind::BackwardInput: return "Bi";
      case TaskKind::BackwardWeight: return "Bw";
      case TaskKind::Transfer: return "xfer";
      case TaskKind::AllReduce: return "allreduce";
    }
    panic("sim: unknown task kind");
}

int
ScheduleProgram::addChannel(bool shared)
{
    channelShared.push_back(shared ? 1 : 0);
    return numChannels++;
}

int
ScheduleProgram::addTask(SimTask task)
{
    tasks.push_back(std::move(task));
    return static_cast<int>(tasks.size()) - 1;
}

namespace {

/** Ready-set entry: dispatch by (priority, task index). */
using ReadyKey = std::pair<uint64_t, int>;

struct GpuState
{
    bool busy = false;
    std::set<ReadyKey> ready;
};

struct ChannelState
{
    bool shared = false;
    bool busy = false; // exclusive channels only
    std::set<ReadyKey> ready;
    std::vector<int> active; // shared channels: transfers in flight
    double lastMs = 0.0;     // shared channels: last accounting time
};

} // namespace

RunResult
runProgram(const ScheduleProgram &program,
           const std::vector<double> &durations)
{
    const int n = static_cast<int>(program.tasks.size());
    ensure(static_cast<int>(durations.size()) == n,
           "sim: durations must match the program's task count");

    std::vector<int> remDeps(n, 0);
    std::vector<std::vector<int>> dependents(n);
    for (int i = 0; i < n; ++i) {
        const SimTask &t = program.tasks[i];
        ensure((t.gpu >= 0) != (t.channel >= 0),
               "sim: a task binds exactly one of gpu/channel");
        ensure(t.gpu < program.numGpus && t.channel < program.numChannels,
               "sim: task bound to an undeclared resource");
        remDeps[i] = static_cast<int>(t.deps.size());
        for (int d : t.deps) {
            ensure(d >= 0 && d < n, "sim: dependency out of range");
            dependents[d].push_back(i);
        }
    }

    std::vector<GpuState> gpus(program.numGpus);
    std::vector<ChannelState> channels(program.numChannels);
    for (int c = 0; c < program.numChannels; ++c)
        channels[c].shared = program.channelShared[c] != 0;

    RunResult result;
    result.startMs.assign(n, 0.0);
    result.finishMs.assign(n, 0.0);
    result.gpuOrder.assign(program.numGpus, {});
    result.channelOrder.assign(program.numChannels, {});
    std::vector<double> gpuBusy(program.numGpus, 0.0);

    // Shared-channel bookkeeping: remaining work at the last accounting
    // time, and a version counter so rescheduled finish events
    // invalidate the stale ones they replace.
    std::vector<double> remaining(n, 0.0);
    std::vector<uint64_t> version(n, 0);

    EventQueue queue;
    int completed = 0;

    // Advance a shared channel's accounting to `now`: every active
    // transfer progressed at 1/n of the link since the last update.
    auto updateShared = [&](ChannelState &ch, double now) {
        if (!ch.active.empty()) {
            const double step =
                (now - ch.lastMs) / static_cast<double>(ch.active.size());
            for (int id : ch.active)
                remaining[id] = std::max(0.0, remaining[id] - step);
        }
        ch.lastMs = now;
    };

    // (Re)schedule finish events for everything active on a shared
    // channel at the current membership's rate.
    auto scheduleSharedFinishes = [&](ChannelState &ch, double now) {
        const double factor = static_cast<double>(ch.active.size());
        for (int id : ch.active) {
            ++version[id];
            queue.push(now + remaining[id] * factor, EventKind::TaskFinish,
                       id, version[id]);
        }
    };

    auto dispatchGpu = [&](int g, double now) {
        GpuState &gpu = gpus[g];
        if (gpu.busy || gpu.ready.empty())
            return;
        const int id = gpu.ready.begin()->second;
        gpu.ready.erase(gpu.ready.begin());
        gpu.busy = true;
        result.startMs[id] = now;
        result.gpuOrder[g].push_back(id);
        queue.push(now + durations[id], EventKind::TaskFinish, id, 0);
    };

    auto dispatchChannel = [&](int c, double now) {
        ChannelState &ch = channels[c];
        if (ch.busy || ch.ready.empty())
            return;
        const int id = ch.ready.begin()->second;
        ch.ready.erase(ch.ready.begin());
        ch.busy = true;
        result.startMs[id] = now;
        result.channelOrder[c].push_back(id);
        queue.push(now + durations[id], EventKind::TaskFinish, id, 0);
    };

    // Enqueue a task whose dependencies are all met. Exclusive
    // resources dispatch in a separate pass (dispatchAll), so every
    // task arriving at one timestamp is in the ready set before any
    // dispatch decision — priorities, not arrival order, pick.
    auto arrive = [&](int id, double now) {
        const SimTask &t = program.tasks[id];
        if (t.gpu >= 0) {
            gpus[t.gpu].ready.insert({t.priority, id});
            return;
        }
        ChannelState &ch = channels[t.channel];
        if (ch.shared) {
            // Join the link immediately; everyone active slows down.
            updateShared(ch, now);
            remaining[id] = durations[id];
            ch.active.push_back(id);
            result.startMs[id] = now;
            scheduleSharedFinishes(ch, now);
        } else {
            ch.ready.insert({t.priority, id});
        }
    };

    auto dispatchAll = [&](double now) {
        for (int g = 0; g < program.numGpus; ++g)
            dispatchGpu(g, now);
        for (int c = 0; c < program.numChannels; ++c)
            if (!channels[c].shared)
                dispatchChannel(c, now);
    };

    auto complete = [&](int id, double now) {
        const SimTask &t = program.tasks[id];
        result.finishMs[id] = now;
        result.makespanMs = std::max(result.makespanMs, now);
        if (t.gpu >= 0) {
            result.computeEndMs = std::max(result.computeEndMs, now);
            gpuBusy[t.gpu] += durations[id];
        }
        ++completed;
        for (int dep : dependents[id])
            if (--remDeps[dep] == 0)
                arrive(dep, now);
    };

    for (int i = 0; i < n; ++i)
        if (remDeps[i] == 0)
            arrive(i, 0.0);
    dispatchAll(0.0);

    while (!queue.empty()) {
        const Event e = queue.pop();
        const double now = queue.nowMs();
        const int id = e.task;
        const SimTask &t = program.tasks[id];

        if (t.gpu >= 0) {
            gpus[t.gpu].busy = false;
            complete(id, now);
        } else {
            ChannelState &ch = channels[t.channel];
            if (ch.shared) {
                if (e.version != version[id])
                    continue; // superseded by a membership change
                updateShared(ch, now);
                ch.active.erase(
                    std::find(ch.active.begin(), ch.active.end(), id));
                complete(id, now);
                // Survivors speed up: reschedule their finishes.
                scheduleSharedFinishes(ch, now);
            } else {
                ch.busy = false;
                complete(id, now);
            }
        }
        dispatchAll(now);
    }

    ensure(completed == n,
           "sim: program deadlocked (dependency cycle in the lowering)");
    result.maxGpuBusyMs = 0.0;
    for (double b : gpuBusy)
        result.maxGpuBusyMs = std::max(result.maxGpuBusyMs, b);
    result.events = queue.popped();
    return result;
}

ScheduleProgram
chainProgram(const ScheduleProgram &program, const RunResult &order)
{
    ScheduleProgram chained = program;
    auto chain = [&](const std::vector<int> &sequence) {
        for (size_t k = 1; k < sequence.size(); ++k)
            chained.tasks[sequence[k]].deps.push_back(sequence[k - 1]);
    };
    for (const auto &sequence : order.gpuOrder)
        chain(sequence);
    for (int c = 0; c < program.numChannels; ++c)
        if (!program.channelShared[c])
            chain(order.channelOrder[c]);
    return chained;
}

} // namespace neusight::sim
