#include "net/io.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hpp"

namespace neusight::net {

namespace {

/** Stop-signal routing state; only ever read from the handler, which
 *  restricts us to lock-free atomics and one write(). */
std::atomic<std::atomic<bool> *> g_stop_flag{nullptr};
std::atomic<int> g_stop_wake_fd{-1};

extern "C" void
stopSignalHandler(int)
{
    std::atomic<bool> *flag = g_stop_flag.load(std::memory_order_acquire);
    if (flag != nullptr)
        flag->store(true, std::memory_order_release);
    const int fd = g_stop_wake_fd.load(std::memory_order_acquire);
    if (fd >= 0) {
        const char byte = 's';
        // A full pipe (EAGAIN) means a wake-up is already pending.
        [[maybe_unused]] ssize_t rc = ::write(fd, &byte, 1);
    }
}

/** SIGCHLD routing state; same async-signal-safety rules as above. */
std::atomic<std::atomic<bool> *> g_chld_flag{nullptr};
std::atomic<int> g_chld_wake_fd{-1};

extern "C" void
sigchldHandler(int)
{
    // waitpid() in a handler would race the supervisor's bookkeeping;
    // only flag the event and let the epoll loop reap synchronously.
    const int saved_errno = errno;
    std::atomic<bool> *flag = g_chld_flag.load(std::memory_order_acquire);
    if (flag != nullptr)
        flag->store(true, std::memory_order_release);
    const int fd = g_chld_wake_fd.load(std::memory_order_acquire);
    if (fd >= 0) {
        const char byte = 'c';
        [[maybe_unused]] ssize_t rc = ::write(fd, &byte, 1);
    }
    errno = saved_errno;
}

} // namespace

void
ignoreSigpipe()
{
    struct sigaction sa;
    memset(&sa, 0, sizeof(sa));
    sa.sa_handler = SIG_IGN;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGPIPE, &sa, nullptr);
}

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return false;
    return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool
setTcpNoDelay(int fd)
{
    const int one = 1;
    return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                        sizeof(one)) == 0;
}

bool
setCloseOnExec(int fd)
{
    const int flags = ::fcntl(fd, F_GETFD, 0);
    if (flags < 0)
        return false;
    return ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC) == 0;
}

ssize_t
readRetry(int fd, void *buf, size_t count)
{
    for (;;) {
        const ssize_t n = ::read(fd, buf, count);
        if (n >= 0 || errno != EINTR)
            return n;
    }
}

ssize_t
sendRetry(int fd, const void *buf, size_t count)
{
    for (;;) {
        ssize_t n = ::send(fd, buf, count, MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK)
            n = ::write(fd, buf, count);
        if (n >= 0 || errno != EINTR)
            return n;
    }
}

bool
writeFully(int fd, const void *buf, size_t count)
{
    const char *p = static_cast<const char *>(buf);
    while (count > 0) {
        const ssize_t n = sendRetry(fd, p, count);
        if (n < 0)
            return false;
        p += n;
        count -= static_cast<size_t>(n);
    }
    return true;
}

int
acceptRetry(int listen_fd)
{
    for (;;) {
        const int fd =
            ::accept4(listen_fd, nullptr, nullptr,
                      SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd >= 0 || errno != EINTR)
            return fd;
    }
}

int
epollWaitRetry(int epoll_fd, struct epoll_event *events, int max_events,
               int timeout_ms)
{
    for (;;) {
        const int n = ::epoll_wait(epoll_fd, events, max_events, timeout_ms);
        if (n >= 0 || errno != EINTR)
            return n;
    }
}

void
closeFd(int fd)
{
    if (fd < 0)
        return;
    // POSIX: after EINTR the fd state is unspecified but the number is
    // released on Linux; retrying risks closing a recycled fd, so don't.
    ::close(fd);
}

WakePipe::WakePipe()
{
    int fds[2];
    if (::pipe(fds) != 0)
        fatal(std::string("net: pipe() failed: ") + strerror(errno));
    readFd = fds[0];
    writeFd = fds[1];
    for (int fd : fds) {
        if (!setNonBlocking(fd) || !setCloseOnExec(fd))
            fatal("net: cannot configure wake pipe");
    }
}

WakePipe::~WakePipe()
{
    closeFd(readFd);
    closeFd(writeFd);
}

void
WakePipe::notify() const
{
    const char byte = 'w';
    [[maybe_unused]] ssize_t rc = ::write(writeFd, &byte, 1);
}

void
WakePipe::drain() const
{
    char buf[256];
    while (readRetry(readFd, buf, sizeof(buf)) > 0) {
    }
}

void
installStopSignals(std::atomic<bool> *flag, int wake_write_fd)
{
    static_assert(std::atomic<std::atomic<bool> *>::is_always_lock_free,
                  "stop-signal routing must be async-signal-safe");
    g_stop_flag.store(flag, std::memory_order_release);
    g_stop_wake_fd.store(wake_write_fd, std::memory_order_release);
    struct sigaction sa;
    memset(&sa, 0, sizeof(sa));
    sa.sa_handler = flag != nullptr ? stopSignalHandler : SIG_DFL;
    sigemptyset(&sa.sa_mask);
    // No SA_RESTART: the epoll loop *wants* EINTR visibility (it
    // retries explicitly); everything else in the tree retries too.
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
}

void
installSigchld(std::atomic<bool> *flag, int wake_write_fd)
{
    g_chld_flag.store(flag, std::memory_order_release);
    g_chld_wake_fd.store(wake_write_fd, std::memory_order_release);
    struct sigaction sa;
    memset(&sa, 0, sizeof(sa));
    sa.sa_handler = flag != nullptr ? sigchldHandler : SIG_DFL;
    sigemptyset(&sa.sa_mask);
    // SA_NOCLDSTOP: job-control stops are not deaths; the supervisor
    // only cares about exits. No SA_RESTART, as with the stop signals.
    sa.sa_flags = flag != nullptr ? SA_NOCLDSTOP : 0;
    ::sigaction(SIGCHLD, &sa, nullptr);
}

void
closeAllFdsExcept(const std::vector<int> &keep)
{
    const auto keeps = [&keep](int fd) {
        if (fd >= 0 && fd <= 2)
            return true;
        for (const int k : keep)
            if (fd == k)
                return true;
        return false;
    };
    // /proc/self/fd is the precise enumeration. Collect first, close
    // after: closing while iterating would yank the DIR's own fd.
    DIR *dir = ::opendir("/proc/self/fd");
    if (dir != nullptr) {
        std::vector<int> open_fds;
        const int dir_fd = ::dirfd(dir);
        for (struct dirent *entry = ::readdir(dir); entry != nullptr;
             entry = ::readdir(dir)) {
            char *end = nullptr;
            const long fd = std::strtol(entry->d_name, &end, 10);
            if (end == entry->d_name || *end != '\0')
                continue; // "." / ".."
            if (static_cast<int>(fd) != dir_fd)
                open_fds.push_back(static_cast<int>(fd));
        }
        ::closedir(dir);
        for (const int fd : open_fds)
            if (!keeps(fd))
                closeFd(fd);
        return;
    }
    // Fallback: sweep the soft fd limit (capped — a huge nofile limit
    // would turn this into millions of close() calls).
    struct rlimit limit;
    rlim_t max_fd = 1024;
    if (::getrlimit(RLIMIT_NOFILE, &limit) == 0 &&
        limit.rlim_cur != RLIM_INFINITY)
        max_fd = limit.rlim_cur;
    if (max_fd > 65536)
        max_fd = 65536;
    for (int fd = 3; fd < static_cast<int>(max_fd); ++fd)
        if (!keeps(fd))
            closeFd(fd);
}

int
listenTcp(const std::string &bind_address, uint16_t port,
          uint16_t *bound_port, int backlog)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK |
                                         SOCK_CLOEXEC,
                            0);
    if (fd < 0)
        fatal(std::string("net: socket() failed: ") + strerror(errno));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr;
    memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
        closeFd(fd);
        fatal("net: bad bind address '" + bind_address + "'");
    }
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const std::string why = strerror(errno);
        closeFd(fd);
        fatal("net: cannot bind " + bind_address + ":" +
              std::to_string(port) + ": " + why);
    }
    if (::listen(fd, backlog) != 0) {
        const std::string why = strerror(errno);
        closeFd(fd);
        fatal("net: listen() failed: " + why);
    }
    if (bound_port != nullptr) {
        struct sockaddr_in actual;
        socklen_t len = sizeof(actual);
        if (::getsockname(fd, reinterpret_cast<struct sockaddr *>(&actual),
                          &len) != 0) {
            const std::string why = strerror(errno);
            closeFd(fd);
            fatal("net: getsockname() failed: " + why);
        }
        *bound_port = ntohs(actual.sin_port);
    }
    return fd;
}

int
connectTcp(const std::string &address, uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return -1;
    setTcpNoDelay(fd); // Pipelined small lines die under Nagle.
    struct sockaddr_in addr;
    memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
        closeFd(fd);
        errno = EINVAL;
        return -1;
    }
    for (;;) {
        if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                      sizeof(addr)) == 0 ||
            errno == EISCONN)
            return fd;
        // EINTR leaves the handshake running in the background: retry
        // until it reports EISCONN (done) or a real error; EALREADY is
        // the in-progress answer of that retry.
        if (errno != EINTR && errno != EALREADY) {
            const int saved = errno;
            closeFd(fd);
            errno = saved;
            return -1;
        }
    }
}

} // namespace neusight::net
