#include "net/shard_router.hpp"

#include <cerrno>
#include <cstring>
#include <sys/epoll.h>
#include <unistd.h>
#include <utility>

#include "common/logging.hpp"
#include "obs/merge.hpp"
#include "serve/request.hpp"

namespace neusight::net {

namespace {

/** Encoded rejection/error line ('\n'-terminated). */
std::string
errorLine(const std::string &tag, const std::string &message)
{
    serve::ForecastResult result;
    result.tag = tag;
    result.ok = false;
    result.error = message;
    return serve::resultToJson(result).dump(0) + "\n";
}

} // namespace

ShardRouter::ShardRouter(std::vector<ShardHandle> shards,
                         ShardRouterOptions options_)
    : options(std::move(options_)), ring(shards.empty() ? 1 : shards.size())
{
    ensure(!shards.empty(), "ShardRouter: need at least one shard");
    ignoreSigpipe();

    connectionsTotal = registry.counter("net.connections");
    activeConnections = registry.gauge("net.active_connections");
    linesTotal = registry.counter("net.lines");
    protocolErrors = registry.counter("net.protocol_errors");
    slowDisconnects = registry.counter("net.slow_client_disconnects");
    rejectedCount = registry.counter("serve.rejected");
    forwardedTotal = registry.counter("router.forwarded");
    shardDeaths = registry.counter("router.shard_deaths");
    liveShardsGauge = registry.gauge("router.live_shards");
    liveShardsGauge->set(static_cast<int64_t>(shards.size()));

    epollFd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epollFd < 0)
        fatal(std::string("net: epoll_create1 failed: ") + strerror(errno));
    struct epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = wake.readFd;
    if (::epoll_ctl(epollFd, EPOLL_CTL_ADD, wake.readFd, &ev) != 0)
        fatal("net: cannot register wake pipe");

    listenFd = listenTcp(options.bindAddress, options.port, &boundPort);
    ev.data.fd = listenFd;
    if (::epoll_ctl(epollFd, EPOLL_CTL_ADD, listenFd, &ev) != 0)
        fatal("net: cannot register listen socket");

    shardFds.resize(shards.size(), -1);
    for (size_t s = 0; s < shards.size(); ++s) {
        const int fd = shards[s].fd;
        ensure(fd >= 0, "ShardRouter: bad shard fd");
        if (!setNonBlocking(fd))
            fatal("net: cannot make shard pipe non-blocking");
        auto peer = std::make_unique<Peer>();
        peer->fd = fd;
        peer->gen = nextGen++;
        peer->shard = static_cast<int>(s);
        peer->framer = serve::LineFramer(options.maxLineBytes);
        ev.data.fd = fd;
        if (::epoll_ctl(epollFd, EPOLL_CTL_ADD, fd, &ev) != 0)
            fatal("net: cannot register shard pipe");
        peer->registered = EPOLLIN;
        shardFds[s] = fd;
        peers[fd] = std::move(peer);
    }
}

ShardRouter::~ShardRouter()
{
    for (auto &entry : peers)
        closeFd(entry.second->fd);
    peers.clear();
    closeFd(listenFd);
    closeFd(epollFd);
}

void
ShardRouter::requestStop()
{
    stopRequested.store(true, std::memory_order_release);
    wake.notify();
}

ShardRouter::Peer *
ShardRouter::findShardPeer(int shard)
{
    if (shard < 0 || static_cast<size_t>(shard) >= shardFds.size())
        return nullptr;
    const int fd = shardFds[static_cast<size_t>(shard)];
    if (fd < 0)
        return nullptr;
    auto it = peers.find(fd);
    return it == peers.end() ? nullptr : it->second.get();
}

void
ShardRouter::acceptAll()
{
    for (;;) {
        const int fd = acceptRetry(listenFd);
        if (fd < 0) {
            if (errno != EAGAIN && errno != EWOULDBLOCK)
                warn(std::string("net: accept failed: ") + strerror(errno));
            return;
        }
        addClient(fd);
    }
}

void
ShardRouter::addClient(int fd)
{
    if (!setNonBlocking(fd)) {
        closeFd(fd);
        return;
    }
    setTcpNoDelay(fd);
    auto peer = std::make_unique<Peer>();
    peer->fd = fd;
    peer->gen = nextGen++;
    peer->framer = serve::LineFramer(options.maxLineBytes);
    struct epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epollFd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        closeFd(fd);
        return;
    }
    peer->registered = EPOLLIN;
    peers[fd] = std::move(peer);
    connectionsTotal->inc();
    activeConnections->set(
        static_cast<int64_t>(peers.size() - shardFds.size()));
}

void
ShardRouter::handleReadable(Peer &peer)
{
    const int fd = peer.fd;
    const bool isShard = peer.shard >= 0;
    char buf[64 * 1024];
    for (;;) {
        const ssize_t n = readRetry(fd, buf, sizeof(buf));
        if (n > 0) {
            peer.framer.feed(buf, static_cast<size_t>(n));
            processLines(peer);
            if (peers.find(fd) == peers.end())
                return; // processLines closed it.
            if (peer.closeAfterFlush)
                return;
            continue;
        }
        if (n == 0) {
            if (isShard) {
                shardDied(peer.shard);
                return;
            }
            peer.eof = true;
            updateInterest(peer);
            maybeFinishClient(peer);
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return;
        if (isShard)
            shardDied(peer.shard);
        else
            closePeer(fd);
        return;
    }
}

void
ShardRouter::processLines(Peer &peer)
{
    const int fd = peer.fd;
    const bool isShard = peer.shard >= 0;
    std::string line;
    for (;;) {
        const serve::LineFramer::Event event = peer.framer.next(line);
        if (event == serve::LineFramer::Event::None)
            return;
        if (event == serve::LineFramer::Event::Oversized) {
            protocolErrors->inc();
            if (isShard) {
                // A shard emitting an over-long line is a bug, not a
                // hostile client; drop the line, keep the shard.
                warn("net: dropped oversized line from shard " +
                     std::to_string(peer.shard));
                continue;
            }
            appendOutput(peer,
                         errorLine("", "request line exceeds " +
                                           std::to_string(
                                               options.maxLineBytes) +
                                           " bytes"));
            peer.closeAfterFlush = true;
            updateInterest(peer);
            flushOutput(peer);
            return;
        }
        if (isShard)
            handleShardLine(peer, line);
        else
            handleClientLine(peer, line);
        if (peers.find(fd) == peers.end())
            return; // A write error closed the connection.
        if (peer.closeAfterFlush)
            return;
    }
}

void
ShardRouter::rejectClient(Peer &client, const std::string &tag,
                          const std::string &why)
{
    rejectedCount->inc();
    appendOutput(client, errorLine(tag, why));
    queueFlush(client);
}

void
ShardRouter::handleClientLine(Peer &client, const std::string &line)
{
    if (serve::isSkippableRequestLine(line))
        return;
    linesTotal->inc();
    if (stopping) {
        rejectClient(client, "", "server is draining");
        return;
    }
    std::string tag;
    common::Json json;
    serve::ForecastRequest request;
    try {
        json = common::Json::parse(line);
        if (json.isObject())
            tag = json.stringOr("tag", "");
        request = serve::requestFromJson(json);
    } catch (const std::exception &e) {
        protocolErrors->inc();
        appendOutput(client, errorLine(tag, e.what()));
        queueFlush(client);
        return;
    }
    if (options.maxInFlightPerClient > 0 &&
        client.inFlight >= options.maxInFlightPerClient) {
        rejectClient(client, tag,
                     "admission limit: " +
                         std::to_string(options.maxInFlightPerClient) +
                         " requests already in flight on this connection");
        return;
    }
    if (request.kind == serve::RequestKind::Stats) {
        handleStatsRequest(client, tag);
        return;
    }
    if (ring.liveShards() == 0) {
        rejectClient(client, tag, "every shard worker has died");
        return;
    }
    const int shard =
        static_cast<int>(ring.shardFor(request.fingerprint()));
    Peer *pipe = findShardPeer(shard);
    if (pipe == nullptr) {
        // The ring said live but the pipe is gone: a death we have not
        // fully processed yet. Treat as overload, not as a crash.
        rejectClient(client, tag, "shard " + std::to_string(shard) +
                                      " is unavailable");
        return;
    }
    if (pipe->outstanding >= options.maxOutstandingPerShard) {
        rejectClient(client, tag,
                     "server overloaded (shard " + std::to_string(shard) +
                         " backlog full)");
        return;
    }
    const std::string rid = "r" + std::to_string(nextRid++);
    json.set("tag", rid);
    RidEntry entry;
    entry.clientFd = client.fd;
    entry.clientGen = client.gen;
    entry.tag = tag;
    entry.shard = shard;
    ridMap[rid] = std::move(entry);
    ++client.inFlight;
    ++pipe->outstanding;
    forwardedTotal->inc();
    appendOutput(*pipe, json.dump(0) + "\n");
    queueFlush(*pipe);
}

void
ShardRouter::handleStatsRequest(Peer &client, const std::string &tag)
{
    // Register the group before the first forward: flushOutput below may
    // reenter shardDied -> finishStatsGroup, which must see this group.
    const uint64_t groupId = nextStatsGroup++;
    const int clientFd = client.fd;
    const uint64_t clientGen = client.gen;
    {
        StatsGroup group;
        group.clientFd = clientFd;
        group.clientGen = clientGen;
        group.tag = tag;
        statsGroups[groupId] = std::move(group);
    }
    ++client.inFlight;
    for (size_t s = 0; s < shardFds.size(); ++s) {
        Peer *pipe = findShardPeer(static_cast<int>(s));
        if (pipe == nullptr)
            continue;
        const std::string rid = "r" + std::to_string(nextRid++);
        common::Json statsReq;
        statsReq.set("op", "stats");
        statsReq.set("tag", rid);
        RidEntry entry;
        entry.clientFd = clientFd;
        entry.clientGen = clientGen;
        entry.tag = tag;
        entry.shard = static_cast<int>(s);
        entry.statsGroup = groupId;
        ridMap[rid] = std::move(entry);
        ++statsGroups[groupId].pending;
        ++pipe->outstanding;
        appendOutput(*pipe, statsReq.dump(0) + "\n");
        flushOutput(*pipe); // May kill the shard and finalize the group.
        if (statsGroups.find(groupId) == statsGroups.end())
            return; // Already answered (every forward target died).
    }
    if (statsGroups[groupId].pending == 0)
        finishStatsGroup(groupId); // No live shards: router-only stats.
}

void
ShardRouter::finishStatsGroup(uint64_t groupId)
{
    auto it = statsGroups.find(groupId);
    if (it == statsGroups.end())
        return;
    StatsGroup group = std::move(it->second);
    statsGroups.erase(it);
    std::vector<common::Json> snapshots = std::move(group.snapshots);
    snapshots.push_back(registry.toJson());
    common::Json reply;
    if (!group.tag.empty())
        reply.set("tag", group.tag);
    reply.set("ok", true);
    reply.set("stats", obs::mergeMetricsSnapshots(snapshots));
    reply.set("shards", static_cast<int64_t>(ring.liveShards()));
    replyToClient(group.clientFd, group.clientGen, reply.dump(0) + "\n",
                  /*decrementInFlight=*/true);
}

void
ShardRouter::replyToClient(int clientFd, uint64_t clientGen,
                           const std::string &line, bool decrementInFlight)
{
    auto it = peers.find(clientFd);
    if (it == peers.end() || it->second->gen != clientGen)
        return; // Client hung up before its answer was ready.
    Peer &client = *it->second;
    if (decrementInFlight) {
        ensure(client.inFlight > 0, "net: client in-flight underflow");
        --client.inFlight;
    }
    appendOutput(client, line);
    queueFlush(client);
}

void
ShardRouter::handleShardLine(Peer &shardPeer, const std::string &line)
{
    common::Json json;
    try {
        json = common::Json::parse(line);
    } catch (const std::exception &e) {
        protocolErrors->inc();
        warn("net: unparseable reply from shard " +
             std::to_string(shardPeer.shard) + ": " + e.what());
        return;
    }
    const std::string rid =
        json.isObject() ? json.stringOr("tag", "") : "";
    auto it = ridMap.find(rid);
    if (it == ridMap.end()) {
        protocolErrors->inc();
        warn("net: reply from shard " + std::to_string(shardPeer.shard) +
             " for unknown rid '" + rid + "'");
        return;
    }
    RidEntry entry = std::move(it->second);
    ridMap.erase(it);
    ensure(shardPeer.outstanding > 0, "net: shard outstanding underflow");
    --shardPeer.outstanding;

    if (entry.statsGroup != 0) {
        auto git = statsGroups.find(entry.statsGroup);
        if (git != statsGroups.end()) {
            StatsGroup &group = git->second;
            if (json.isObject() && json.has("stats"))
                group.snapshots.push_back(json.at("stats"));
            ensure(group.pending > 0, "net: stats group underflow");
            if (--group.pending == 0)
                finishStatsGroup(entry.statsGroup);
        }
        return;
    }

    // Restore the client's tag (the rid was ours, not theirs).
    if (entry.tag.empty())
        json.erase("tag");
    else
        json.set("tag", entry.tag);
    replyToClient(entry.clientFd, entry.clientGen, json.dump(0) + "\n",
                  /*decrementInFlight=*/true);
}

void
ShardRouter::appendOutput(Peer &peer, const std::string &line)
{
    peer.outbuf.append(line);
}

void
ShardRouter::flushOutput(Peer &peer)
{
    while (peer.outOffset < peer.outbuf.size()) {
        const ssize_t n =
            sendRetry(peer.fd, peer.outbuf.data() + peer.outOffset,
                      peer.outbuf.size() - peer.outOffset);
        if (n > 0) {
            peer.outOffset += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break; // Kernel buffer full: wait for EPOLLOUT.
        if (peer.shard >= 0)
            shardDied(peer.shard);
        else
            closePeer(peer.fd);
        return;
    }
    if (peer.outOffset == peer.outbuf.size()) {
        peer.outbuf.clear();
        peer.outOffset = 0;
    } else if (peer.outOffset > (1u << 16) &&
               peer.outOffset >= peer.outbuf.size() / 2) {
        peer.outbuf.erase(0, peer.outOffset);
        peer.outOffset = 0;
    }
    if (peer.shard < 0 &&
        peer.outbuf.size() - peer.outOffset > options.maxOutputBytes) {
        // Slow client (shard pipes are bounded by maxOutstandingPerShard
        // instead — disconnecting a shard would lose its caches).
        slowDisconnects->inc();
        warn("net: disconnecting slow client (unread output over " +
             std::to_string(options.maxOutputBytes) + " bytes)");
        closePeer(peer.fd);
        return;
    }
    updateInterest(peer);
    if (peer.shard < 0)
        maybeFinishClient(peer);
}

void
ShardRouter::queueFlush(Peer &peer)
{
    if (peer.flushQueued)
        return;
    peer.flushQueued = true;
    flushPending.push_back(peer.fd);
}

void
ShardRouter::flushPendingPeers()
{
    // Index loop: flushing can kill a shard, whose error replies queue
    // additional client flushes onto the tail of this very vector.
    for (size_t i = 0; i < flushPending.size(); ++i) {
        auto it = peers.find(flushPending[i]);
        if (it == peers.end())
            continue; // Closed (or the fd re-accepted) mid-batch.
        it->second->flushQueued = false;
        flushOutput(*it->second);
    }
    flushPending.clear();
}

void
ShardRouter::updateInterest(Peer &peer)
{
    // Shard pipes stay readable during a drain (their replies are the
    // drain); clients do not (no new work once stopping).
    const bool want_read =
        !peer.eof && !peer.closeAfterFlush && (peer.shard >= 0 || !stopping);
    const bool want_write = peer.outOffset < peer.outbuf.size();
    const uint32_t events =
        (want_read ? static_cast<uint32_t>(EPOLLIN) : 0u) |
        (want_write ? static_cast<uint32_t>(EPOLLOUT) : 0u);
    if (events == peer.registered)
        return;
    struct epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.events = events;
    ev.data.fd = peer.fd;
    if (::epoll_ctl(epollFd, EPOLL_CTL_MOD, peer.fd, &ev) == 0)
        peer.registered = events;
}

void
ShardRouter::maybeFinishClient(Peer &peer)
{
    const bool flushed = peer.outOffset >= peer.outbuf.size();
    if (!flushed)
        return;
    if (peer.closeAfterFlush || (peer.eof && peer.inFlight == 0))
        closePeer(peer.fd);
}

void
ShardRouter::closePeer(int fd)
{
    auto it = peers.find(fd);
    if (it == peers.end())
        return;
    ensure(it->second->shard < 0, "net: closePeer on a shard pipe");
    ::epoll_ctl(epollFd, EPOLL_CTL_DEL, fd, nullptr);
    closeFd(fd);
    peers.erase(it);
    activeConnections->set(
        static_cast<int64_t>(peers.size() - shardFds.size()));
    // Outstanding rids of this client stay in ridMap: the shard still
    // answers them, and replyToClient drops the reply (gen mismatch).
}

void
ShardRouter::shardDied(int shard)
{
    Peer *pipe = findShardPeer(shard);
    if (pipe == nullptr)
        return;
    const int fd = pipe->fd;
    warn("net: shard " + std::to_string(shard) +
         " died; remapping its keys across " +
         std::to_string(ring.liveShards() - 1) + " survivors");
    shardDeaths->inc();
    ring.removeShard(static_cast<size_t>(shard));
    liveShardsGauge->set(static_cast<int64_t>(ring.liveShards()));
    shardFds[static_cast<size_t>(shard)] = -1;
    ::epoll_ctl(epollFd, EPOLL_CTL_DEL, fd, nullptr);
    closeFd(fd);
    peers.erase(fd);

    // Fail everything that was outstanding on the dead shard.
    std::vector<std::pair<std::string, RidEntry>> failed;
    for (auto it = ridMap.begin(); it != ridMap.end();) {
        if (it->second.shard == shard) {
            failed.emplace_back(it->first, std::move(it->second));
            it = ridMap.erase(it);
        } else {
            ++it;
        }
    }
    for (auto &[rid, entry] : failed) {
        (void)rid;
        if (entry.statsGroup != 0) {
            auto git = statsGroups.find(entry.statsGroup);
            if (git != statsGroups.end()) {
                ensure(git->second.pending > 0,
                       "net: stats group underflow");
                if (--git->second.pending == 0)
                    finishStatsGroup(entry.statsGroup);
            }
            continue;
        }
        replyToClient(entry.clientFd, entry.clientGen,
                      errorLine(entry.tag, "shard worker died before "
                                           "answering"),
                      /*decrementInFlight=*/true);
    }
}

void
ShardRouter::beginStop()
{
    if (stopping)
        return;
    stopping = true;
    stopDeadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(options.drainTimeoutMs);
    if (listenFd >= 0) {
        ::epoll_ctl(epollFd, EPOLL_CTL_DEL, listenFd, nullptr);
        closeFd(listenFd);
        listenFd = -1;
    }
    for (auto &entry : peers)
        updateInterest(*entry.second);
}

bool
ShardRouter::drained() const
{
    if (!ridMap.empty() || !statsGroups.empty())
        return false;
    for (const auto &entry : peers)
        if (entry.second->shard < 0 &&
            entry.second->outOffset < entry.second->outbuf.size())
            return false;
    return true;
}

void
ShardRouter::run()
{
    constexpr int kMaxEvents = 64;
    struct epoll_event events[kMaxEvents];
    for (;;) {
        int timeout_ms = -1;
        if (stopping) {
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    stopDeadline - std::chrono::steady_clock::now())
                    .count();
            timeout_ms = left > 0 ? static_cast<int>(left) : 0;
        }
        const int n = epollWaitRetry(epollFd, events, kMaxEvents, timeout_ms);
        if (n < 0)
            fatal(std::string("net: epoll_wait failed: ") + strerror(errno));
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;
            const uint32_t mask = events[i].events;
            if (fd == wake.readFd) {
                wake.drain();
                continue;
            }
            if (fd == listenFd) {
                if (!stopping)
                    acceptAll();
                continue;
            }
            auto it = peers.find(fd);
            if (it == peers.end())
                continue;
            Peer &peer = *it->second;
            if (mask & (EPOLLERR | EPOLLHUP)) {
                if (peer.shard >= 0)
                    shardDied(peer.shard);
                else
                    closePeer(fd);
                continue;
            }
            if (mask & EPOLLIN)
                handleReadable(peer);
            if (peers.find(fd) == peers.end())
                continue;
            if (mask & EPOLLOUT)
                flushOutput(*peers.find(fd)->second);
        }
        // One send() per peer per batch: every reply/forward appended
        // above goes out here, before the loop can sleep again.
        flushPendingPeers();
        if (stopRequested.load(std::memory_order_acquire))
            beginStop();
        if (stopping &&
            (drained() || std::chrono::steady_clock::now() >= stopDeadline))
            break;
    }

    // Close every stream. Shard workers see EOF on their pipes, drain
    // whatever they still hold, and exit; the frontend reaps them.
    for (auto &entry : peers) {
        ::epoll_ctl(epollFd, EPOLL_CTL_DEL, entry.second->fd, nullptr);
        closeFd(entry.second->fd);
    }
    peers.clear();
    activeConnections->set(0);
}

} // namespace neusight::net
