#include "net/shard_router.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <sys/epoll.h>
#include <sys/wait.h>
#include <unistd.h>
#include <utility>

#include "common/logging.hpp"
#include "obs/merge.hpp"
#include "serve/request.hpp"

namespace neusight::net {

namespace {

using Clock = std::chrono::steady_clock;

/** Encoded rejection/error line ('\n'-terminated). @p code is the
 *  machine-readable "code" field ("" omits it). */
std::string
errorLine(const std::string &tag, const std::string &message,
          const std::string &code = "")
{
    serve::ForecastResult result;
    result.tag = tag;
    result.ok = false;
    result.error = message;
    result.errorCode = code;
    return serve::resultToJson(result).dump(0) + "\n";
}

} // namespace

ShardRouter::ShardRouter(std::vector<ShardHandle> shards,
                         ShardRouterOptions options_)
    : options(std::move(options_)), ring(shards.empty() ? 1 : shards.size())
{
    ensure(!shards.empty(), "ShardRouter: need at least one shard");
    ignoreSigpipe();

    connectionsTotal = registry.counter("net.connections");
    activeConnections = registry.gauge("net.active_connections");
    linesTotal = registry.counter("net.lines");
    protocolErrors = registry.counter("net.protocol_errors");
    slowDisconnects = registry.counter("net.slow_client_disconnects");
    rejectedCount = registry.counter("serve.rejected");
    forwardedTotal = registry.counter("router.forwarded");
    shardDeaths = registry.counter("net.shard.deaths");
    shardRestarts = registry.counter("net.shard.restarts");
    shardParked = registry.counter("net.shard.parked");
    retriesTotal = registry.counter("net.retries");
    timeoutsTotal = registry.counter("net.timeouts");
    liveShardsGauge = registry.gauge("router.live_shards");
    liveShardsGauge->set(static_cast<int64_t>(shards.size()));
    submittedCount = registry.counter("net.requests.submitted");
    completedCount = registry.counter("net.requests.completed");
    rejectedReqCount = registry.counter("net.requests.rejected");
    timedOutCount = registry.counter("net.requests.timed_out");

    epollFd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epollFd < 0)
        fatal(std::string("net: epoll_create1 failed: ") + strerror(errno));
    struct epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = wake.readFd;
    if (::epoll_ctl(epollFd, EPOLL_CTL_ADD, wake.readFd, &ev) != 0)
        fatal("net: cannot register wake pipe");

    listenFd = listenTcp(options.bindAddress, options.port, &boundPort);
    ev.data.fd = listenFd;
    if (::epoll_ctl(epollFd, EPOLL_CTL_ADD, listenFd, &ev) != 0)
        fatal("net: cannot register listen socket");

    const Clock::time_point now = Clock::now();
    shardFds.resize(shards.size(), -1);
    shardStates.reserve(shards.size());
    for (size_t s = 0; s < shards.size(); ++s) {
        ensure(shards[s].fd >= 0, "ShardRouter: bad shard fd");
        registerShardPipe(s, shards[s].fd);
        ShardState state;
        state.pid = shards[s].pid;
        state.scheduler = RespawnScheduler(options.respawnPolicy);
        state.scheduler.recordSpawn(now);
        state.healthy =
            registry.gauge("net.shard.healthy." + std::to_string(s));
        state.healthy->set(1);
        shardStates.push_back(std::move(state));
        if (shards[s].pid > 0)
            pidToShard[shards[s].pid] = s;
    }
}

ShardRouter::~ShardRouter()
{
    for (auto &entry : peers)
        closeFd(entry.second->fd);
    peers.clear();
    closeFd(listenFd);
    closeFd(epollFd);
}

void
ShardRouter::requestStop()
{
    stopRequested.store(true, std::memory_order_release);
    wake.notify();
}

std::vector<pid_t>
ShardRouter::activePids() const
{
    std::vector<pid_t> pids;
    pids.reserve(pidToShard.size());
    for (const auto &entry : pidToShard)
        pids.push_back(entry.first);
    return pids;
}

ShardRouter::Peer *
ShardRouter::findShardPeer(int shard)
{
    if (shard < 0 || static_cast<size_t>(shard) >= shardFds.size())
        return nullptr;
    const int fd = shardFds[static_cast<size_t>(shard)];
    if (fd < 0)
        return nullptr;
    auto it = peers.find(fd);
    return it == peers.end() ? nullptr : it->second.get();
}

void
ShardRouter::registerShardPipe(size_t shard, int fd)
{
    if (!setNonBlocking(fd))
        fatal("net: cannot make shard pipe non-blocking");
    auto peer = std::make_unique<Peer>();
    peer->fd = fd;
    peer->gen = nextGen++;
    peer->shard = static_cast<int>(shard);
    peer->framer = serve::LineFramer(options.maxLineBytes);
    struct epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epollFd, EPOLL_CTL_ADD, fd, &ev) != 0)
        fatal("net: cannot register shard pipe");
    peer->registered = EPOLLIN;
    shardFds[shard] = fd;
    peers[fd] = std::move(peer);
}

void
ShardRouter::acceptAll()
{
    for (;;) {
        const int fd = acceptRetry(listenFd);
        if (fd < 0) {
            if (errno != EAGAIN && errno != EWOULDBLOCK)
                warn(std::string("net: accept failed: ") + strerror(errno));
            return;
        }
        addClient(fd);
    }
}

void
ShardRouter::addClient(int fd)
{
    if (!setNonBlocking(fd)) {
        closeFd(fd);
        return;
    }
    setTcpNoDelay(fd);
    auto peer = std::make_unique<Peer>();
    peer->fd = fd;
    peer->gen = nextGen++;
    peer->framer = serve::LineFramer(options.maxLineBytes);
    struct epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epollFd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        closeFd(fd);
        return;
    }
    peer->registered = EPOLLIN;
    peers[fd] = std::move(peer);
    ++clientPeers;
    connectionsTotal->inc();
    activeConnections->set(static_cast<int64_t>(clientPeers));
}

void
ShardRouter::handleReadable(Peer &peer)
{
    const int fd = peer.fd;
    const bool isShard = peer.shard >= 0;
    char buf[64 * 1024];
    for (;;) {
        const ssize_t n = readRetry(fd, buf, sizeof(buf));
        if (n > 0) {
            peer.framer.feed(buf, static_cast<size_t>(n));
            processLines(peer);
            if (peers.find(fd) == peers.end())
                return; // processLines closed it.
            if (peer.closeAfterFlush)
                return;
            continue;
        }
        if (n == 0) {
            if (isShard) {
                shardDied(peer.shard);
                return;
            }
            peer.eof = true;
            updateInterest(peer);
            maybeFinishClient(peer);
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return;
        if (isShard)
            shardDied(peer.shard);
        else
            closePeer(fd);
        return;
    }
}

void
ShardRouter::processLines(Peer &peer)
{
    const int fd = peer.fd;
    const bool isShard = peer.shard >= 0;
    std::string line;
    for (;;) {
        const serve::LineFramer::Event event = peer.framer.next(line);
        if (event == serve::LineFramer::Event::None)
            return;
        if (event == serve::LineFramer::Event::Oversized) {
            protocolErrors->inc();
            if (isShard) {
                // A shard emitting an over-long line is a bug, not a
                // hostile client; drop the line, keep the shard.
                warn("net: dropped oversized line from shard " +
                     std::to_string(peer.shard));
                continue;
            }
            appendOutput(peer,
                         errorLine("", "request line exceeds " +
                                           std::to_string(
                                               options.maxLineBytes) +
                                           " bytes"));
            peer.closeAfterFlush = true;
            updateInterest(peer);
            flushOutput(peer);
            return;
        }
        if (isShard)
            handleShardLine(peer, line);
        else
            handleClientLine(peer, line);
        if (peers.find(fd) == peers.end())
            return; // A write error closed the connection.
        if (peer.closeAfterFlush)
            return;
    }
}

void
ShardRouter::rejectClient(Peer &client, const std::string &tag,
                          const std::string &why, const std::string &code)
{
    rejectedCount->inc();
    rejectedReqCount->inc();
    appendOutput(client, errorLine(tag, why, code));
    queueFlush(client);
}

void
ShardRouter::rejectRid(const RidEntry &entry, const std::string &why,
                       const std::string &code)
{
    rejectedCount->inc();
    rejectedReqCount->inc();
    replyToClient(entry.clientFd, entry.clientGen,
                  errorLine(entry.tag, why, code),
                  /*decrementInFlight=*/true);
}

ShardRouter::ForwardStatus
ShardRouter::forwardEntry(RidEntry &entry)
{
    if (ring.liveShards() == 0)
        return ForwardStatus::NoLiveShard;
    const int shard = static_cast<int>(ring.shardFor(entry.fingerprint));
    Peer *pipe = findShardPeer(shard);
    if (pipe == nullptr) {
        // The ring said live but the pipe is gone: a death we have not
        // fully processed yet.
        return ForwardStatus::PipeMissing;
    }
    if (pipe->outstanding >= options.maxOutstandingPerShard)
        return ForwardStatus::BacklogFull;
    const std::string rid = "r" + std::to_string(nextRid++);
    entry.forwardJson.set("tag", rid);
    entry.shard = shard;
    appendOutput(*pipe, entry.forwardJson.dump(0) + "\n");
    queueFlush(*pipe);
    ++pipe->outstanding;
    forwardedTotal->inc();
    if (entry.hasDeadline)
        deadlines.emplace(entry.deadline, rid);
    ridMap[rid] = std::move(entry);
    return ForwardStatus::Ok;
}

void
ShardRouter::handleClientLine(Peer &client, const std::string &line)
{
    if (serve::isSkippableRequestLine(line))
        return;
    linesTotal->inc();
    if (stopping) {
        submittedCount->inc();
        rejectClient(client, "", "server is draining", "draining");
        return;
    }
    std::string tag;
    common::Json json;
    serve::ForecastRequest request;
    try {
        json = common::Json::parse(line);
        if (json.isObject())
            tag = json.stringOr("tag", "");
        request = serve::requestFromJson(json);
    } catch (const std::exception &e) {
        protocolErrors->inc();
        appendOutput(client, errorLine(tag, e.what()));
        queueFlush(client);
        return;
    }
    if (request.kind == serve::RequestKind::Ping) {
        // Answered inline, before admission: a health probe must get its
        // pong even when the connection is at its in-flight limit.
        submittedCount->inc();
        completedCount->inc();
        common::Json pong;
        if (!tag.empty())
            pong.set("tag", tag);
        pong.set("ok", true);
        pong.set("pong", true);
        appendOutput(client, pong.dump(0) + "\n");
        queueFlush(client);
        return;
    }
    submittedCount->inc();
    if (options.maxInFlightPerClient > 0 &&
        client.inFlight >= options.maxInFlightPerClient) {
        rejectClient(client, tag,
                     "admission limit: " +
                         std::to_string(options.maxInFlightPerClient) +
                         " requests already in flight on this connection",
                     "overload");
        return;
    }
    if (request.kind == serve::RequestKind::Stats) {
        handleStatsRequest(client, tag);
        return;
    }

    RidEntry entry;
    entry.clientFd = client.fd;
    entry.clientGen = client.gen;
    entry.tag = tag;
    entry.fingerprint = request.fingerprint();
    entry.forwardJson = std::move(json);
    // The router owns deadline enforcement in sharded mode; the worker
    // never sees the field (it would answer the timeout a second time).
    entry.forwardJson.erase("timeout_ms");
    const uint64_t timeoutMs =
        request.timeoutMs > 0
            ? request.timeoutMs
            : (options.requestTimeoutMs > 0
                   ? static_cast<uint64_t>(options.requestTimeoutMs)
                   : 0);
    if (timeoutMs > 0) {
        entry.hasDeadline = true;
        entry.deadline =
            Clock::now() + std::chrono::milliseconds(timeoutMs);
    }
    switch (forwardEntry(entry)) {
      case ForwardStatus::Ok:
        ++client.inFlight;
        return;
      case ForwardStatus::NoLiveShard:
        rejectClient(client, tag, "every shard worker has died",
                     "unavailable");
        return;
      case ForwardStatus::PipeMissing:
        rejectClient(client, tag, "the shard owning this key is down",
                     "unavailable");
        return;
      case ForwardStatus::BacklogFull:
        rejectClient(client, tag, "server overloaded (shard backlog full)",
                     "overload");
        return;
    }
}

void
ShardRouter::handleStatsRequest(Peer &client, const std::string &tag)
{
    // Register the group before the first forward: flushOutput below may
    // reenter shardDied -> finishStatsGroup, which must see this group.
    const uint64_t groupId = nextStatsGroup++;
    const int clientFd = client.fd;
    const uint64_t clientGen = client.gen;
    {
        StatsGroup group;
        group.clientFd = clientFd;
        group.clientGen = clientGen;
        group.tag = tag;
        statsGroups[groupId] = std::move(group);
    }
    ++client.inFlight;
    for (size_t s = 0; s < shardFds.size(); ++s) {
        Peer *pipe = findShardPeer(static_cast<int>(s));
        if (pipe == nullptr)
            continue;
        const std::string rid = "r" + std::to_string(nextRid++);
        common::Json statsReq;
        statsReq.set("op", "stats");
        statsReq.set("tag", rid);
        RidEntry entry;
        entry.clientFd = clientFd;
        entry.clientGen = clientGen;
        entry.tag = tag;
        entry.shard = static_cast<int>(s);
        entry.statsGroup = groupId;
        ridMap[rid] = std::move(entry);
        ++statsGroups[groupId].pending;
        ++pipe->outstanding;
        appendOutput(*pipe, statsReq.dump(0) + "\n");
        flushOutput(*pipe); // May kill the shard and finalize the group.
        if (statsGroups.find(groupId) == statsGroups.end())
            return; // Already answered (every forward target died).
    }
    if (statsGroups[groupId].pending == 0)
        finishStatsGroup(groupId); // No live shards: router-only stats.
}

void
ShardRouter::finishStatsGroup(uint64_t groupId)
{
    auto it = statsGroups.find(groupId);
    if (it == statsGroups.end())
        return;
    StatsGroup group = std::move(it->second);
    statsGroups.erase(it);
    // The snapshot below must already count this very request as
    // completed, or the invariant would be off by one in it.
    completedCount->inc();
    std::vector<common::Json> snapshots = std::move(group.snapshots);
    snapshots.push_back(registry.toJson());
    common::Json reply;
    if (!group.tag.empty())
        reply.set("tag", group.tag);
    reply.set("ok", true);
    reply.set("stats", obs::mergeMetricsSnapshots(snapshots));
    reply.set("shards", static_cast<int64_t>(ring.liveShards()));
    replyToClient(group.clientFd, group.clientGen, reply.dump(0) + "\n",
                  /*decrementInFlight=*/true);
}

void
ShardRouter::replyToClient(int clientFd, uint64_t clientGen,
                           const std::string &line, bool decrementInFlight)
{
    auto it = peers.find(clientFd);
    if (it == peers.end() || it->second->gen != clientGen)
        return; // Client hung up before its answer was ready.
    Peer &client = *it->second;
    if (decrementInFlight) {
        ensure(client.inFlight > 0, "net: client in-flight underflow");
        --client.inFlight;
    }
    appendOutput(client, line);
    queueFlush(client);
}

void
ShardRouter::handleHeartbeatPong(Peer &shardPeer)
{
    ShardState &state = shardStates[static_cast<size_t>(shardPeer.shard)];
    state.pendingPings = 0;
    state.healthy->set(1);
}

void
ShardRouter::handleShardLine(Peer &shardPeer, const std::string &line)
{
    common::Json json;
    try {
        json = common::Json::parse(line);
    } catch (const std::exception &e) {
        protocolErrors->inc();
        warn("net: unparseable reply from shard " +
             std::to_string(shardPeer.shard) + ": " + e.what());
        return;
    }
    const std::string rid =
        json.isObject() ? json.stringOr("tag", "") : "";
    if (rid.rfind("hb", 0) == 0) {
        // Heartbeat pong: not a client request, never in ridMap.
        handleHeartbeatPong(shardPeer);
        return;
    }
    auto it = ridMap.find(rid);
    if (it == ridMap.end()) {
        protocolErrors->inc();
        warn("net: reply from shard " + std::to_string(shardPeer.shard) +
             " for unknown rid '" + rid + "'");
        return;
    }
    RidEntry entry = std::move(it->second);
    ridMap.erase(it);
    ensure(shardPeer.outstanding > 0, "net: shard outstanding underflow");
    --shardPeer.outstanding;

    if (entry.timedOut)
        return; // The deadline already answered; drop the late reply.

    if (entry.statsGroup != 0) {
        auto git = statsGroups.find(entry.statsGroup);
        if (git != statsGroups.end()) {
            StatsGroup &group = git->second;
            if (json.isObject() && json.has("stats"))
                group.snapshots.push_back(json.at("stats"));
            ensure(group.pending > 0, "net: stats group underflow");
            if (--group.pending == 0)
                finishStatsGroup(entry.statsGroup);
        }
        return;
    }

    completedCount->inc();
    // Restore the client's tag (the rid was ours, not theirs).
    if (entry.tag.empty())
        json.erase("tag");
    else
        json.set("tag", entry.tag);
    replyToClient(entry.clientFd, entry.clientGen, json.dump(0) + "\n",
                  /*decrementInFlight=*/true);
}

void
ShardRouter::appendOutput(Peer &peer, const std::string &line)
{
    peer.outbuf.append(line);
}

void
ShardRouter::flushOutput(Peer &peer)
{
    while (peer.outOffset < peer.outbuf.size()) {
        const ssize_t n =
            sendRetry(peer.fd, peer.outbuf.data() + peer.outOffset,
                      peer.outbuf.size() - peer.outOffset);
        if (n > 0) {
            peer.outOffset += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break; // Kernel buffer full: wait for EPOLLOUT.
        if (peer.shard >= 0)
            shardDied(peer.shard);
        else
            closePeer(peer.fd);
        return;
    }
    if (peer.outOffset == peer.outbuf.size()) {
        peer.outbuf.clear();
        peer.outOffset = 0;
    } else if (peer.outOffset > (1u << 16) &&
               peer.outOffset >= peer.outbuf.size() / 2) {
        peer.outbuf.erase(0, peer.outOffset);
        peer.outOffset = 0;
    }
    if (peer.shard < 0 &&
        peer.outbuf.size() - peer.outOffset > options.maxOutputBytes) {
        // Slow client (shard pipes are bounded by maxOutstandingPerShard
        // instead — disconnecting a shard would lose its caches).
        slowDisconnects->inc();
        warn("net: disconnecting slow client (unread output over " +
             std::to_string(options.maxOutputBytes) + " bytes)");
        closePeer(peer.fd);
        return;
    }
    updateInterest(peer);
    if (peer.shard < 0)
        maybeFinishClient(peer);
}

void
ShardRouter::queueFlush(Peer &peer)
{
    if (peer.flushQueued)
        return;
    peer.flushQueued = true;
    flushPending.push_back(peer.fd);
}

void
ShardRouter::flushPendingPeers()
{
    // Index loop: flushing can kill a shard, whose error replies queue
    // additional client flushes onto the tail of this very vector.
    for (size_t i = 0; i < flushPending.size(); ++i) {
        auto it = peers.find(flushPending[i]);
        if (it == peers.end())
            continue; // Closed (or the fd re-accepted) mid-batch.
        it->second->flushQueued = false;
        flushOutput(*it->second);
    }
    flushPending.clear();
}

void
ShardRouter::updateInterest(Peer &peer)
{
    // Shard pipes stay readable during a drain (their replies are the
    // drain); clients do not (no new work once stopping).
    const bool want_read =
        !peer.eof && !peer.closeAfterFlush && (peer.shard >= 0 || !stopping);
    const bool want_write = peer.outOffset < peer.outbuf.size();
    const uint32_t events =
        (want_read ? static_cast<uint32_t>(EPOLLIN) : 0u) |
        (want_write ? static_cast<uint32_t>(EPOLLOUT) : 0u);
    if (events == peer.registered)
        return;
    struct epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.events = events;
    ev.data.fd = peer.fd;
    if (::epoll_ctl(epollFd, EPOLL_CTL_MOD, peer.fd, &ev) == 0)
        peer.registered = events;
}

void
ShardRouter::maybeFinishClient(Peer &peer)
{
    const bool flushed = peer.outOffset >= peer.outbuf.size();
    if (!flushed)
        return;
    if (peer.closeAfterFlush || (peer.eof && peer.inFlight == 0))
        closePeer(peer.fd);
}

void
ShardRouter::closePeer(int fd)
{
    auto it = peers.find(fd);
    if (it == peers.end())
        return;
    ensure(it->second->shard < 0, "net: closePeer on a shard pipe");
    ::epoll_ctl(epollFd, EPOLL_CTL_DEL, fd, nullptr);
    closeFd(fd);
    peers.erase(it);
    ensure(clientPeers > 0, "net: client peer count underflow");
    --clientPeers;
    activeConnections->set(static_cast<int64_t>(clientPeers));
    // Outstanding rids of this client stay in ridMap: the shard still
    // answers them, and replyToClient drops the reply (gen mismatch).
}

void
ShardRouter::shardDied(int shard)
{
    Peer *pipe = findShardPeer(shard);
    if (pipe == nullptr)
        return;
    const int fd = pipe->fd;
    warn("net: shard " + std::to_string(shard) +
         " died; remapping its keys across " +
         std::to_string(ring.liveShards() - 1) + " survivors");
    shardDeaths->inc();
    shardStates[static_cast<size_t>(shard)].healthy->set(0);
    ring.removeShard(static_cast<size_t>(shard));
    liveShardsGauge->set(static_cast<int64_t>(ring.liveShards()));
    shardFds[static_cast<size_t>(shard)] = -1;
    ::epoll_ctl(epollFd, EPOLL_CTL_DEL, fd, nullptr);
    closeFd(fd);
    peers.erase(fd);

    // Resolve everything that was outstanding on the dead shard: retry
    // once on the shard its keys remapped to (forecasts are idempotent),
    // then give up with a typed error.
    std::vector<std::pair<std::string, RidEntry>> failed;
    for (auto it = ridMap.begin(); it != ridMap.end();) {
        if (it->second.shard == shard) {
            failed.emplace_back(it->first, std::move(it->second));
            it = ridMap.erase(it);
        } else {
            ++it;
        }
    }
    for (auto &[rid, entry] : failed) {
        (void)rid;
        if (entry.statsGroup != 0) {
            auto git = statsGroups.find(entry.statsGroup);
            if (git != statsGroups.end()) {
                ensure(git->second.pending > 0,
                       "net: stats group underflow");
                if (--git->second.pending == 0)
                    finishStatsGroup(entry.statsGroup);
            }
            continue;
        }
        if (entry.timedOut)
            continue; // The deadline already answered this client.
        if (!stopping && entry.attempts <= options.retryLimit) {
            ++entry.attempts;
            // The deadline stays the original one: a retry buys the
            // request a new shard, not more time.
            if (forwardEntry(entry) == ForwardStatus::Ok) {
                retriesTotal->inc();
                continue;
            }
        }
        rejectRid(entry, "shard worker died before answering",
                  "unavailable");
    }
    scheduleRespawn(static_cast<size_t>(shard));
}

void
ShardRouter::scheduleRespawn(size_t shard)
{
    if (stopping || !options.respawn)
        return;
    ShardState &state = shardStates[shard];
    if (state.parked)
        return;
    const RespawnScheduler::Decision decision =
        state.scheduler.recordDeath(Clock::now());
    if (decision.park) {
        state.parked = true;
        shardParked->inc();
        warn("net: shard " + std::to_string(shard) + " crash-looped " +
             std::to_string(state.scheduler.rapidDeaths()) +
             " times; parking it (its keys stay on the survivors)");
        return;
    }
    state.respawnPending = true;
    state.respawnAt =
        Clock::now() + std::chrono::milliseconds(decision.delayMs);
}

void
ShardRouter::reapChildren()
{
    for (;;) {
        int status = 0;
        const pid_t pid = ::waitpid(-1, &status, WNOHANG);
        if (pid <= 0)
            return;
        auto it = pidToShard.find(pid);
        if (it == pidToShard.end())
            continue;
        const size_t shard = it->second;
        pidToShard.erase(it);
        // Only the current incarnation's exit is a death event; a late
        // reap of a pre-respawn pid is pure bookkeeping.
        if (shardStates[shard].pid == pid) {
            shardStates[shard].pid = -1;
            shardDied(static_cast<int>(shard));
        }
    }
}

void
ShardRouter::fireDeadlines(std::chrono::steady_clock::time_point now)
{
    while (!deadlines.empty() && deadlines.begin()->first <= now) {
        const std::string rid = deadlines.begin()->second;
        deadlines.erase(deadlines.begin());
        auto it = ridMap.find(rid);
        if (it == ridMap.end() || it->second.timedOut)
            continue; // Answered (or re-routed under a new rid) already.
        RidEntry &entry = it->second;
        // The entry stays in ridMap so the shard's late reply still
        // balances its outstanding counter; handleShardLine drops it.
        entry.timedOut = true;
        timeoutsTotal->inc();
        timedOutCount->inc();
        replyToClient(entry.clientFd, entry.clientGen,
                      errorLine(entry.tag, "request deadline exceeded",
                                "timeout"),
                      /*decrementInFlight=*/true);
    }
}

void
ShardRouter::processHeartbeats(std::chrono::steady_clock::time_point now)
{
    if (options.heartbeatIntervalMs <= 0 || stopping)
        return;
    if (now < nextHeartbeatAt)
        return;
    nextHeartbeatAt =
        now + std::chrono::milliseconds(options.heartbeatIntervalMs);
    for (size_t s = 0; s < shardStates.size(); ++s) {
        Peer *pipe = findShardPeer(static_cast<int>(s));
        if (pipe == nullptr)
            continue;
        ShardState &state = shardStates[s];
        if (state.pendingPings >= options.heartbeatMissLimit) {
            // Alive but silent: a wedge the kernel will never report.
            warn("net: shard " + std::to_string(s) + " missed " +
                 std::to_string(state.pendingPings) +
                 " heartbeats; presumed wedged, killing it");
            state.healthy->set(0);
            if (state.pid > 0)
                ::kill(state.pid, SIGKILL);
            shardDied(static_cast<int>(s));
            continue;
        }
        ++state.pendingPings;
        common::Json ping;
        ping.set("op", "ping");
        ping.set("tag", "hb" + std::to_string(nextPing++));
        appendOutput(*pipe, ping.dump(0) + "\n");
        queueFlush(*pipe);
    }
}

void
ShardRouter::performRespawns(std::chrono::steady_clock::time_point now)
{
    if (stopping || !options.respawn)
        return;
    for (size_t s = 0; s < shardStates.size(); ++s) {
        ShardState &state = shardStates[s];
        if (!state.respawnPending || now < state.respawnAt)
            continue;
        state.respawnPending = false;
        const ShardHandle handle = options.respawn(s);
        if (handle.fd < 0) {
            warn("net: respawn of shard " + std::to_string(s) +
                 " failed; retrying");
            state.respawnPending = true;
            state.respawnAt =
                now + std::chrono::milliseconds(
                          options.respawnPolicy.baseBackoffMs);
            continue;
        }
        registerShardPipe(s, handle.fd);
        state.pid = handle.pid;
        if (handle.pid > 0)
            pidToShard[handle.pid] = s;
        state.scheduler.recordSpawn(now);
        state.pendingPings = 0;
        state.healthy->set(1);
        // Identical vnode labels: the shard reclaims exactly the keys it
        // owned before dying, and only those.
        ring.addShard(s);
        liveShardsGauge->set(static_cast<int64_t>(ring.liveShards()));
        shardRestarts->inc();
        inform("net: shard " + std::to_string(s) + " respawned (pid " +
               std::to_string(handle.pid) + "), rejoining the ring");
    }
}

int
ShardRouter::loopTimeoutMs(std::chrono::steady_clock::time_point now) const
{
    auto next = Clock::time_point::max();
    bool have = false;
    if (stopping) {
        next = stopDeadline;
        have = true;
    } else {
        if (options.heartbeatIntervalMs > 0) {
            next = nextHeartbeatAt;
            have = true;
        }
        for (const ShardState &state : shardStates) {
            if (state.respawnPending && (!have || state.respawnAt < next)) {
                next = state.respawnAt;
                have = true;
            }
        }
    }
    if (!deadlines.empty() && (!have || deadlines.begin()->first < next)) {
        next = deadlines.begin()->first;
        have = true;
    }
    if (!have)
        return -1;
    if (next <= now)
        return 0;
    const long long ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(next - now)
            .count() +
        1;
    return ms > 60000 ? 60000 : static_cast<int>(ms);
}

void
ShardRouter::beginStop()
{
    if (stopping)
        return;
    stopping = true;
    stopDeadline = Clock::now() +
                   std::chrono::milliseconds(options.drainTimeoutMs);
    // A drain never spawns: pending respawns are cancelled, and the
    // frontend's final reap collects whoever is still alive.
    for (ShardState &state : shardStates)
        state.respawnPending = false;
    if (listenFd >= 0) {
        ::epoll_ctl(epollFd, EPOLL_CTL_DEL, listenFd, nullptr);
        closeFd(listenFd);
        listenFd = -1;
    }
    for (auto &entry : peers)
        updateInterest(*entry.second);
}

bool
ShardRouter::drained() const
{
    if (!ridMap.empty() || !statsGroups.empty())
        return false;
    for (const auto &entry : peers)
        if (entry.second->shard < 0 &&
            entry.second->outOffset < entry.second->outbuf.size())
            return false;
    return true;
}

void
ShardRouter::run()
{
    constexpr int kMaxEvents = 64;
    struct epoll_event events[kMaxEvents];
    installSigchld(&childExited, wake.writeFd);
    nextHeartbeatAt =
        Clock::now() +
        std::chrono::milliseconds(
            options.heartbeatIntervalMs > 0 ? options.heartbeatIntervalMs
                                            : 0);
    for (;;) {
        const int timeout_ms = loopTimeoutMs(Clock::now());
        const int n = epollWaitRetry(epollFd, events, kMaxEvents, timeout_ms);
        if (n < 0)
            fatal(std::string("net: epoll_wait failed: ") + strerror(errno));
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;
            const uint32_t mask = events[i].events;
            if (fd == wake.readFd) {
                wake.drain();
                continue;
            }
            if (fd == listenFd) {
                if (!stopping)
                    acceptAll();
                continue;
            }
            auto it = peers.find(fd);
            if (it == peers.end())
                continue;
            Peer &peer = *it->second;
            if (mask & (EPOLLERR | EPOLLHUP)) {
                if (peer.shard >= 0)
                    shardDied(peer.shard);
                else
                    closePeer(fd);
                continue;
            }
            if (mask & EPOLLIN)
                handleReadable(peer);
            if (peers.find(fd) == peers.end())
                continue;
            if (mask & EPOLLOUT)
                flushOutput(*peers.find(fd)->second);
        }
        const Clock::time_point now = Clock::now();
        if (childExited.exchange(false, std::memory_order_acq_rel))
            reapChildren();
        fireDeadlines(now);
        processHeartbeats(now);
        performRespawns(now);
        // One send() per peer per batch: every reply/forward appended
        // above goes out here, before the loop can sleep again.
        flushPendingPeers();
        if (stopRequested.load(std::memory_order_acquire))
            beginStop();
        if (stopping &&
            (drained() || Clock::now() >= stopDeadline))
            break;
    }

    // Close every stream. Shard workers see EOF on their pipes, drain
    // whatever they still hold, and exit; the frontend reaps them
    // (activePids() names the ones this loop has not reaped already).
    for (auto &entry : peers) {
        ::epoll_ctl(epollFd, EPOLL_CTL_DEL, entry.second->fd, nullptr);
        closeFd(entry.second->fd);
    }
    peers.clear();
    clientPeers = 0;
    activeConnections->set(0);
    installSigchld(nullptr, -1);
}

} // namespace neusight::net
