#include "net/frontend.hpp"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "common/logging.hpp"
#include "net/io.hpp"
#include "net/shard_router.hpp"
#include "net/socket_server.hpp"

namespace neusight::net {

namespace {

void
reportReady(const FrontendOptions &options, uint16_t port)
{
    if (options.portReportFd >= 0) {
        const std::string line = std::to_string(port) + "\n";
        if (!writeFully(options.portReportFd, line.data(), line.size()))
            warn("net: could not report the bound port");
        closeFd(options.portReportFd);
    }
    if (!options.readyLabel.empty())
        std::fprintf(stderr, "%s: listening on %s:%u (%zu shard%s)\n",
                     options.readyLabel.c_str(),
                     options.bindAddress.c_str(),
                     static_cast<unsigned>(port), options.shards,
                     options.shards == 1 ? "" : "s");
}

/** The whole life of one forked shard worker; never returns. */
[[noreturn]] void
runShardWorker(const FrontendOptions &options,
               const EngineFactory &factory, int pipe_fd)
{
    // Terminal signals target the process group; workers must survive
    // them and exit on pipe EOF instead, or a ^C would kill the shards
    // out from under the router's drain.
    ::signal(SIGTERM, SIG_IGN);
    ::signal(SIGINT, SIG_IGN);
    int code = 0;
    try {
        std::unique_ptr<serve::ForecastServer> server = factory();
        SocketServerOptions sopt;
        sopt.adoptedFd = pipe_fd;
        sopt.maxLineBytes = options.maxLineBytes;
        // The router is the only peer: it already did per-client
        // admission and bounds the outstanding backlog per shard; the
        // engine's own queueCapacity (set by the factory) is the final
        // backpressure bound behind it.
        sopt.maxInFlightPerClient = 0;
        sopt.drainTimeoutMs = options.drainTimeoutMs;
        {
            SocketServer sock(*server, sopt);
            sock.run();
        }
        server->stop();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "shard worker: %s\n", e.what());
        code = 1;
    }
    // _Exit: the parent's atexit/stdio state is not this process's to
    // flush (stderr above is unbuffered).
    std::_Exit(code);
}

int
runSharded(const FrontendOptions &options, const EngineFactory &factory)
{
    std::vector<ShardHandle> shards;
    shards.reserve(options.shards);
    for (size_t s = 0; s < options.shards; ++s) {
        int fds[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds) != 0)
            fatal(std::string("net: socketpair failed: ") +
                  strerror(errno));
        const pid_t pid = ::fork();
        if (pid < 0)
            fatal(std::string("net: fork failed: ") + strerror(errno));
        if (pid == 0) {
            closeFd(fds[0]);
            // Drop the router ends of the earlier shards' pipes: a
            // worker holding them open would keep a sibling's EOF from
            // ever arriving.
            for (const ShardHandle &earlier : shards)
                closeFd(earlier.fd);
            runShardWorker(options, factory, fds[1]);
        }
        closeFd(fds[1]);
        ShardHandle handle;
        handle.fd = fds[0];
        handle.pid = pid;
        shards.push_back(handle);
    }

    ShardRouterOptions ropt;
    ropt.bindAddress = options.bindAddress;
    ropt.port = options.port;
    ropt.maxLineBytes = options.maxLineBytes;
    ropt.maxInFlightPerClient = options.maxInFlightPerClient;
    ropt.maxOutstandingPerShard = options.maxOutstandingPerShard;
    ropt.drainTimeoutMs = options.drainTimeoutMs;
    std::vector<pid_t> pids;
    for (const ShardHandle &handle : shards)
        pids.push_back(handle.pid);
    ShardRouter router(std::move(shards), ropt);
    reportReady(options, router.port());
    installStopSignals(router.stopFlag(), router.wakeWriteFd());
    router.run();
    installStopSignals(nullptr, -1);

    int code = 0;
    for (const pid_t pid : pids) {
        int status = 0;
        pid_t rc;
        do {
            rc = ::waitpid(pid, &status, 0);
        } while (rc < 0 && errno == EINTR);
        if (rc != pid || !WIFEXITED(status) ||
            WEXITSTATUS(status) != 0) {
            warn("net: shard worker pid " + std::to_string(pid) +
                 " exited abnormally");
            code = 1;
        }
    }
    return code;
}

} // namespace

int
runFrontend(const FrontendOptions &options, const EngineFactory &factory)
{
    ensure(options.shards > 0, "runFrontend: need at least one shard");
    ignoreSigpipe();
    if (options.shards > 1)
        return runSharded(options, factory);

    std::unique_ptr<serve::ForecastServer> server = factory();
    SocketServerOptions sopt;
    sopt.bindAddress = options.bindAddress;
    sopt.port = options.port;
    sopt.maxLineBytes = options.maxLineBytes;
    sopt.maxInFlightPerClient = options.maxInFlightPerClient;
    sopt.drainTimeoutMs = options.drainTimeoutMs;
    SocketServer sock(*server, sopt);
    reportReady(options, sock.port());
    installStopSignals(sock.stopFlag(), sock.wakeWriteFd());
    sock.run();
    installStopSignals(nullptr, -1);
    server->stop();
    return 0;
}

} // namespace neusight::net
