#include "net/frontend.hpp"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "common/logging.hpp"
#include "net/fault.hpp"
#include "net/io.hpp"
#include "net/shard_router.hpp"
#include "net/socket_server.hpp"

namespace neusight::net {

namespace {

void
reportReady(const FrontendOptions &options, uint16_t port)
{
    if (options.portReportFd >= 0) {
        const std::string line = std::to_string(port) + "\n";
        if (!writeFully(options.portReportFd, line.data(), line.size()))
            warn("net: could not report the bound port");
        closeFd(options.portReportFd);
    }
    if (!options.readyLabel.empty())
        std::fprintf(stderr, "%s: listening on %s:%u (%zu shard%s)\n",
                     options.readyLabel.c_str(),
                     options.bindAddress.c_str(),
                     static_cast<unsigned>(port), options.shards,
                     options.shards == 1 ? "" : "s");
}

/** The whole life of one forked shard worker; never returns. */
[[noreturn]] void
runShardWorker(const FrontendOptions &options,
               const EngineFactory &factory, int pipe_fd, size_t shard)
{
    // Terminal signals target the process group; workers must survive
    // them and exit on pipe EOF instead, or a ^C would kill the shards
    // out from under the router's drain.
    ::signal(SIGTERM, SIG_IGN);
    ::signal(SIGINT, SIG_IGN);
    // A respawned worker forks from inside the router's loop, which has
    // a SIGCHLD handler installed; this process supervises nobody.
    ::signal(SIGCHLD, SIG_DFL);
    int code = 0;
    try {
        std::unique_ptr<serve::ForecastServer> server = factory();
        SocketServerOptions sopt;
        sopt.adoptedFd = pipe_fd;
        sopt.maxLineBytes = options.maxLineBytes;
        // The router is the only peer: it already did per-client
        // admission and bounds the outstanding backlog per shard; the
        // engine's own queueCapacity (set by the factory) is the final
        // backpressure bound behind it. Deadlines are the router's job
        // too (it strips "timeout_ms" before forwarding).
        sopt.maxInFlightPerClient = 0;
        sopt.drainTimeoutMs = options.drainTimeoutMs;
        sopt.fault = FaultInjector::parse(options.faultSpec,
                                          static_cast<int>(shard));
        {
            SocketServer sock(*server, sopt);
            sock.run();
        }
        server->stop();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "shard worker: %s\n", e.what());
        code = 1;
    }
    // _Exit: the parent's atexit/stdio state is not this process's to
    // flush (stderr above is unbuffered).
    std::_Exit(code);
}

/**
 * Fork one worker for @p shard over a fresh socketpair. Returns the
 * router-side handle; fd < 0 = the spawn failed (the supervisor
 * retries). Used both for the initial fleet and for respawns from
 * inside the router loop.
 */
ShardHandle
spawnShardWorker(const FrontendOptions &options,
                 const EngineFactory &factory, size_t shard)
{
    ShardHandle handle;
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds) != 0) {
        warn(std::string("net: socketpair failed: ") + strerror(errno));
        return handle;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
        warn(std::string("net: fork failed: ") + strerror(errno));
        closeFd(fds[0]);
        closeFd(fds[1]);
        return handle;
    }
    if (pid == 0) {
        // Scrub every inherited fd except this worker's own pipe end:
        // sibling pipes (their EOFs must be deliverable), the router's
        // listen/epoll/client fds (a respawn inherits a running loop),
        // and the bench's port-report pipe all go.
        closeAllFdsExcept({fds[1]});
        runShardWorker(options, factory, fds[1], shard);
    }
    closeFd(fds[1]);
    handle.fd = fds[0];
    handle.pid = pid;
    return handle;
}

int
runSharded(const FrontendOptions &options, const EngineFactory &factory)
{
    std::vector<ShardHandle> shards;
    shards.reserve(options.shards);
    for (size_t s = 0; s < options.shards; ++s) {
        const ShardHandle handle = spawnShardWorker(options, factory, s);
        if (handle.fd < 0)
            fatal("net: cannot fork the initial shard fleet");
        shards.push_back(handle);
    }

    ShardRouterOptions ropt;
    ropt.bindAddress = options.bindAddress;
    ropt.port = options.port;
    ropt.maxLineBytes = options.maxLineBytes;
    ropt.maxInFlightPerClient = options.maxInFlightPerClient;
    ropt.maxOutstandingPerShard = options.maxOutstandingPerShard;
    ropt.drainTimeoutMs = options.drainTimeoutMs;
    ropt.requestTimeoutMs = options.requestTimeoutMs;
    ropt.heartbeatIntervalMs = options.heartbeatIntervalMs;
    ropt.respawn = [&options, &factory](size_t shard) {
        return spawnShardWorker(options, factory, shard);
    };
    ShardRouter router(std::move(shards), ropt);
    reportReady(options, router.port());
    installStopSignals(router.stopFlag(), router.wakeWriteFd());
    router.run();
    installStopSignals(nullptr, -1);

    // The router reaped every mid-run death (waitpid(WNOHANG) on
    // SIGCHLD — no zombies); what is left is the workers that were
    // alive at the drain, now exiting on pipe EOF.
    int code = 0;
    for (const pid_t pid : router.activePids()) {
        int status = 0;
        pid_t rc;
        do {
            rc = ::waitpid(pid, &status, 0);
        } while (rc < 0 && errno == EINTR);
        if (rc != pid || !WIFEXITED(status) ||
            WEXITSTATUS(status) != 0) {
            warn("net: shard worker pid " + std::to_string(pid) +
                 " exited abnormally");
            code = 1;
        }
    }
    return code;
}

} // namespace

int
runFrontend(const FrontendOptions &options, const EngineFactory &factory)
{
    ensure(options.shards > 0, "runFrontend: need at least one shard");
    ignoreSigpipe();
    if (options.shards > 1)
        return runSharded(options, factory);

    std::unique_ptr<serve::ForecastServer> server = factory();
    SocketServerOptions sopt;
    sopt.bindAddress = options.bindAddress;
    sopt.port = options.port;
    sopt.maxLineBytes = options.maxLineBytes;
    sopt.maxInFlightPerClient = options.maxInFlightPerClient;
    sopt.drainTimeoutMs = options.drainTimeoutMs;
    sopt.requestTimeoutMs = options.requestTimeoutMs;
    sopt.fault = FaultInjector::parse(options.faultSpec, 0);
    SocketServer sock(*server, sopt);
    reportReady(options, sock.port());
    installStopSignals(sock.stopFlag(), sock.wakeWriteFd());
    sock.run();
    installStopSignals(nullptr, -1);
    server->stop();
    return 0;
}

} // namespace neusight::net
