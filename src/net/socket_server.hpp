/**
 * @file
 * Level-triggered epoll front-end framing the JSON-lines forecast
 * protocol over TCP, layered as a pure consumer of the existing
 * serve::ForecastServer (no new predictor wiring): the epoll thread
 * owns the sockets — accept, per-connection partial-line reassembly
 * (serve::LineFramer), bounded non-blocking writes — and submits parsed
 * requests straight into the server via trySubmit (non-blocking, so
 * hundreds of requests pipeline into the engine's coalescing queue);
 * worker-thread completions come back through a completion queue +
 * wake pipe.
 *
 * Robustness rules (the bugs pipes were hiding):
 *  - every syscall retries EINTR (net/io.hpp);
 *  - sends use MSG_NOSIGNAL and SIGPIPE is ignored, so a client
 *    hanging up mid-response closes that connection, never the server;
 *  - short writes park the remainder in the connection's output buffer
 *    and wait for EPOLLOUT;
 *  - a client whose unread output exceeds maxOutputBytes (slow reader)
 *    is disconnected rather than allowed to pin server memory;
 *  - per-client admission control and the engine's bounded queue
 *    reject (counted in serve.rejected) instead of queueing without
 *    bound;
 *  - SIGTERM/SIGINT (net::installStopSignals) drain gracefully: stop
 *    accepting, answer everything already dispatched, flush, exit;
 *  - "ping" requests are answered inline from the epoll thread (never
 *    queued behind forecasts), so a pong proves the event loop itself
 *    is alive — the router's heartbeats ride on this;
 *  - a request's "timeout_ms" (or the server-wide requestTimeoutMs)
 *    arms a deadline: past it the client gets a typed "timeout" error
 *    and the late engine result is dropped — no request ever hangs a
 *    well-behaved client;
 *  - an optional FaultInjector (chaos testing) can crash or wedge the
 *    process on a counted request and corrupt the write path.
 *
 * Responses carry the request's "tag" but may complete out of order
 * relative to submission (the worker pool finishes fast requests
 * first); clients that care tag their requests.
 */

#ifndef NEUSIGHT_NET_SOCKET_SERVER_HPP
#define NEUSIGHT_NET_SOCKET_SERVER_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/fault.hpp"
#include "net/io.hpp"
#include "obs/metrics.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

namespace neusight::net {

/** Construction-time configuration of a SocketServer. */
struct SocketServerOptions
{
    /** Listen address; loopback by default (no accidental exposure). */
    std::string bindAddress = "127.0.0.1";
    /** Listen port; 0 binds an ephemeral port (see port()). */
    uint16_t port = 0;
    /**
     * Serve one already-connected stream instead of listening (the
     * shard-worker mode: the parent router is the only peer). The
     * server owns the fd and the run loop exits when it closes.
     */
    int adoptedFd = -1;
    /** Longest accepted request line; longer ones answer an error and
     *  close the connection. */
    size_t maxLineBytes = serve::LineFramer::kDefaultMaxLineBytes;
    /** Unread-response bound per connection; a slower reader is
     *  disconnected (slow-client protection). */
    size_t maxOutputBytes = 8u << 20;
    /** In-flight requests allowed per connection before admission
     *  control rejects; 0 = unlimited (shard-worker mode). */
    size_t maxInFlightPerClient = 256;
    /** Bound on the graceful drain after a stop request; connections
     *  still unflushed at the deadline are dropped. */
    int drainTimeoutMs = 30000;
    /** Default per-request deadline; 0 = unbounded. A request's own
     *  "timeout_ms" field overrides it. Past the deadline the client
     *  receives a typed "timeout" error and the engine's late result is
     *  dropped on completion. */
    int requestTimeoutMs = 0;
    /** Chaos-testing fault injector (net/fault.hpp); inactive by
     *  default. */
    FaultInjector fault;
};

/**
 * The socket front-end. Construction binds (listen mode) so port() is
 * immediately valid; run() blocks on the epoll loop until a stop
 * request (requestStop() / installed signal) completes its drain, or
 * until the adopted stream closes. The ForecastServer must outlive the
 * SocketServer and is not stopped by it — the caller owns both.
 */
class SocketServer
{
  public:
    SocketServer(serve::ForecastServer &server, SocketServerOptions options);
    ~SocketServer();

    SocketServer(const SocketServer &) = delete;
    SocketServer &operator=(const SocketServer &) = delete;

    /** The bound TCP port (listen mode; 0 in adopted-fd mode). */
    uint16_t port() const { return boundPort; }

    /** Run the epoll loop; returns after the drain completes. */
    void run();

    /** Ask run() to drain and return. Thread-safe and idempotent. */
    void requestStop();

    /// @name Stop-signal plumbing for net::installStopSignals.
    /// @{
    std::atomic<bool> *stopFlag() { return &stopRequested; }
    int wakeWriteFd() const { return wake.writeFd; }
    /// @}

  private:
    struct Connection
    {
        int fd = -1;
        uint64_t gen = 0;
        serve::LineFramer framer;
        /** Unwritten response bytes ([outOffset, size) is pending). */
        std::string outbuf;
        size_t outOffset = 0;
        size_t inFlight = 0;
        /** Peer finished sending (EOF seen); close once answered. */
        bool eof = false;
        /** Protocol violation: close as soon as outbuf flushes. */
        bool closeAfterFlush = false;
        /** Event mask currently registered with epoll. */
        uint32_t registered = 0;
        /** Completion batching: already marked for this batch's flush. */
        bool flushQueued = false;
    };

    struct Completion
    {
        int fd = -1;
        uint64_t gen = 0;
        /** Matches the PendingRequest this result answers. */
        uint64_t reqId = 0;
        std::string line;
    };

    /** One accepted request awaiting its engine result (deadline
     *  bookkeeping; lives until the completion arrives). */
    struct PendingRequest
    {
        int fd = -1;
        uint64_t gen = 0;
        std::string tag;
        /** Deadline fired and the client was answered; the engine's
         *  late result is dropped. */
        bool timedOut = false;
    };

    void acceptAll();
    void addConnection(int fd);
    void handleReadable(Connection &conn);
    void processLines(Connection &conn);
    void handleLine(Connection &conn, const std::string &line);
    void respond(Connection &conn, const serve::ForecastResult &result);
    void appendOutput(Connection &conn, const std::string &line);
    void flushOutput(Connection &conn);
    void updateInterest(Connection &conn);
    void maybeFinishConnection(Connection &conn);
    void closeConnection(int fd);
    void drainCompletions();
    /** Answer every request whose deadline has passed with a typed
     *  "timeout" error. */
    void fireDeadlines(std::chrono::steady_clock::time_point now);
    /** Fault injection: go silent (deregister every fd) but stay
     *  alive — only a supervisor heartbeat can tell. */
    void enterWedge();
    void beginStop();
    bool drained() const;

    serve::ForecastServer &server;
    SocketServerOptions options;
    WakePipe wake;
    int listenFd = -1;
    int epollFd = -1;
    uint16_t boundPort = 0;
    std::atomic<bool> stopRequested{false};
    bool stopping = false;
    std::chrono::steady_clock::time_point stopDeadline;

    uint64_t nextGen = 1;
    std::unordered_map<int, std::unique_ptr<Connection>> conns;
    /** Dispatched-but-unanswered requests across all connections
     *  (including closed ones whose completions are still due). */
    size_t inFlightTotal = 0;

    uint64_t nextReqId = 1;
    std::unordered_map<uint64_t, PendingRequest> pendingReqs;
    /** Deadline queue over request ids; stale entries skip lazily. */
    std::multimap<std::chrono::steady_clock::time_point, uint64_t>
        deadlines;
    FaultInjector fault;
    /** Fault injection tripped a wedge: silent until killed. */
    bool wedged = false;

    std::mutex completionMutex;
    std::vector<Completion> completions;

    /// @name Counters in the ForecastServer's metrics registry.
    /// (serve.rejected is the server's own rejection counter — socket-
    /// layer admission/backpressure rejections land in the same metric,
    /// per-shard stats stay one vocabulary.)
    /// @{
    std::shared_ptr<obs::Counter> connectionsTotal;
    std::shared_ptr<obs::Gauge> activeConnections;
    std::shared_ptr<obs::Counter> linesTotal;
    std::shared_ptr<obs::Counter> protocolErrors;
    std::shared_ptr<obs::Counter> slowDisconnects;
    std::shared_ptr<obs::Counter> rejectedCount;
    std::shared_ptr<obs::Counter> timeoutsCount;
    /// @}
};

} // namespace neusight::net

#endif // NEUSIGHT_NET_SOCKET_SERVER_HPP
