/**
 * @file
 * Level-triggered epoll front-end framing the JSON-lines forecast
 * protocol over TCP, layered as a pure consumer of the existing
 * serve::ForecastServer (no new predictor wiring): the epoll thread
 * owns the sockets — accept, per-connection partial-line reassembly
 * (serve::LineFramer), bounded non-blocking writes — and submits parsed
 * requests straight into the server via trySubmit (non-blocking, so
 * hundreds of requests pipeline into the engine's coalescing queue);
 * worker-thread completions come back through a completion queue +
 * wake pipe.
 *
 * Robustness rules (the bugs pipes were hiding):
 *  - every syscall retries EINTR (net/io.hpp);
 *  - sends use MSG_NOSIGNAL and SIGPIPE is ignored, so a client
 *    hanging up mid-response closes that connection, never the server;
 *  - short writes park the remainder in the connection's output buffer
 *    and wait for EPOLLOUT;
 *  - a client whose unread output exceeds maxOutputBytes (slow reader)
 *    is disconnected rather than allowed to pin server memory;
 *  - per-client admission control and the engine's bounded queue
 *    reject (counted in serve.rejected) instead of queueing without
 *    bound;
 *  - SIGTERM/SIGINT (net::installStopSignals) drain gracefully: stop
 *    accepting, answer everything already dispatched, flush, exit.
 *
 * Responses carry the request's "tag" but may complete out of order
 * relative to submission (the worker pool finishes fast requests
 * first); clients that care tag their requests.
 */

#ifndef NEUSIGHT_NET_SOCKET_SERVER_HPP
#define NEUSIGHT_NET_SOCKET_SERVER_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/io.hpp"
#include "obs/metrics.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

namespace neusight::net {

/** Construction-time configuration of a SocketServer. */
struct SocketServerOptions
{
    /** Listen address; loopback by default (no accidental exposure). */
    std::string bindAddress = "127.0.0.1";
    /** Listen port; 0 binds an ephemeral port (see port()). */
    uint16_t port = 0;
    /**
     * Serve one already-connected stream instead of listening (the
     * shard-worker mode: the parent router is the only peer). The
     * server owns the fd and the run loop exits when it closes.
     */
    int adoptedFd = -1;
    /** Longest accepted request line; longer ones answer an error and
     *  close the connection. */
    size_t maxLineBytes = serve::LineFramer::kDefaultMaxLineBytes;
    /** Unread-response bound per connection; a slower reader is
     *  disconnected (slow-client protection). */
    size_t maxOutputBytes = 8u << 20;
    /** In-flight requests allowed per connection before admission
     *  control rejects; 0 = unlimited (shard-worker mode). */
    size_t maxInFlightPerClient = 256;
    /** Bound on the graceful drain after a stop request; connections
     *  still unflushed at the deadline are dropped. */
    int drainTimeoutMs = 30000;
};

/**
 * The socket front-end. Construction binds (listen mode) so port() is
 * immediately valid; run() blocks on the epoll loop until a stop
 * request (requestStop() / installed signal) completes its drain, or
 * until the adopted stream closes. The ForecastServer must outlive the
 * SocketServer and is not stopped by it — the caller owns both.
 */
class SocketServer
{
  public:
    SocketServer(serve::ForecastServer &server, SocketServerOptions options);
    ~SocketServer();

    SocketServer(const SocketServer &) = delete;
    SocketServer &operator=(const SocketServer &) = delete;

    /** The bound TCP port (listen mode; 0 in adopted-fd mode). */
    uint16_t port() const { return boundPort; }

    /** Run the epoll loop; returns after the drain completes. */
    void run();

    /** Ask run() to drain and return. Thread-safe and idempotent. */
    void requestStop();

    /// @name Stop-signal plumbing for net::installStopSignals.
    /// @{
    std::atomic<bool> *stopFlag() { return &stopRequested; }
    int wakeWriteFd() const { return wake.writeFd; }
    /// @}

  private:
    struct Connection
    {
        int fd = -1;
        uint64_t gen = 0;
        serve::LineFramer framer;
        /** Unwritten response bytes ([outOffset, size) is pending). */
        std::string outbuf;
        size_t outOffset = 0;
        size_t inFlight = 0;
        /** Peer finished sending (EOF seen); close once answered. */
        bool eof = false;
        /** Protocol violation: close as soon as outbuf flushes. */
        bool closeAfterFlush = false;
        /** Event mask currently registered with epoll. */
        uint32_t registered = 0;
        /** Completion batching: already marked for this batch's flush. */
        bool flushQueued = false;
    };

    struct Completion
    {
        int fd = -1;
        uint64_t gen = 0;
        std::string line;
    };

    void acceptAll();
    void addConnection(int fd);
    void handleReadable(Connection &conn);
    void processLines(Connection &conn);
    void handleLine(Connection &conn, const std::string &line);
    void respond(Connection &conn, const serve::ForecastResult &result);
    void appendOutput(Connection &conn, const std::string &line);
    void flushOutput(Connection &conn);
    void updateInterest(Connection &conn);
    void maybeFinishConnection(Connection &conn);
    void closeConnection(int fd);
    void drainCompletions();
    void beginStop();
    bool drained() const;

    serve::ForecastServer &server;
    SocketServerOptions options;
    WakePipe wake;
    int listenFd = -1;
    int epollFd = -1;
    uint16_t boundPort = 0;
    std::atomic<bool> stopRequested{false};
    bool stopping = false;
    std::chrono::steady_clock::time_point stopDeadline;

    uint64_t nextGen = 1;
    std::unordered_map<int, std::unique_ptr<Connection>> conns;
    /** Dispatched-but-unanswered requests across all connections
     *  (including closed ones whose completions are still due). */
    size_t inFlightTotal = 0;

    std::mutex completionMutex;
    std::vector<Completion> completions;

    /// @name Counters in the ForecastServer's metrics registry.
    /// (serve.rejected is the server's own rejection counter — socket-
    /// layer admission/backpressure rejections land in the same metric,
    /// per-shard stats stay one vocabulary.)
    /// @{
    std::shared_ptr<obs::Counter> connectionsTotal;
    std::shared_ptr<obs::Gauge> activeConnections;
    std::shared_ptr<obs::Counter> linesTotal;
    std::shared_ptr<obs::Counter> protocolErrors;
    std::shared_ptr<obs::Counter> slowDisconnects;
    std::shared_ptr<obs::Counter> rejectedCount;
    /// @}
};

} // namespace neusight::net

#endif // NEUSIGHT_NET_SOCKET_SERVER_HPP
