#include "net/fault.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "common/logging.hpp"

namespace neusight::net {

namespace {

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    size_t start = 0;
    for (;;) {
        const size_t end = text.find(sep, start);
        if (end == std::string::npos) {
            parts.push_back(text.substr(start));
            return parts;
        }
        parts.push_back(text.substr(start, end - start));
        start = end + 1;
    }
}

std::string
trim(const std::string &text)
{
    const size_t first = text.find_first_not_of(" \t");
    if (first == std::string::npos)
        return "";
    const size_t last = text.find_last_not_of(" \t");
    return text.substr(first, last - first + 1);
}

int64_t
parseNumber(const std::string &rule, const std::string &key,
            const std::string &value)
{
    try {
        size_t used = 0;
        const int64_t n = std::stoll(value, &used);
        if (used != value.size())
            throw std::invalid_argument(value);
        return n;
    } catch (const std::exception &) {
        fatal("fault-spec: rule '" + rule + "': '" + key +
              "' wants an integer, got '" + value + "'");
    }
}

} // namespace

std::vector<FaultInjector::Rule>
FaultInjector::parseRules(const std::string &spec)
{
    std::vector<Rule> rules;
    for (const std::string &raw : splitOn(spec, ';')) {
        const std::string text = trim(raw);
        if (text.empty())
            continue;
        const size_t colon = text.find(':');
        const std::string kind_name = trim(text.substr(0, colon));
        Rule rule;
        if (kind_name == "kill")
            rule.kind = Kind::Kill;
        else if (kind_name == "wedge")
            rule.kind = Kind::Wedge;
        else if (kind_name == "delay")
            rule.kind = Kind::Delay;
        else if (kind_name == "truncate")
            rule.kind = Kind::Truncate;
        else if (kind_name == "garbage")
            rule.kind = Kind::Garbage;
        else
            fatal("fault-spec: unknown kind '" + kind_name +
                  "' (expected kill|wedge|delay|truncate|garbage)");
        if (rule.kind == Kind::Truncate || rule.kind == Kind::Garbage)
            rule.every = 16;
        if (colon != std::string::npos) {
            for (const std::string &raw_param :
                 splitOn(text.substr(colon + 1), ',')) {
                const std::string param = trim(raw_param);
                if (param.empty())
                    continue;
                const size_t eq = param.find('=');
                if (eq == std::string::npos)
                    fatal("fault-spec: rule '" + text + "': param '" +
                          param + "' wants key=value");
                const std::string key = trim(param.substr(0, eq));
                const std::string value = trim(param.substr(eq + 1));
                const int64_t n = parseNumber(text, key, value);
                if (key == "shard") {
                    if (n < -1)
                        fatal("fault-spec: 'shard' must be >= -1");
                    rule.shard = static_cast<int>(n);
                } else if (key == "after") {
                    if (n < 1)
                        fatal("fault-spec: 'after' must be >= 1");
                    rule.after = static_cast<uint64_t>(n);
                } else if (key == "every") {
                    if (n < 1)
                        fatal("fault-spec: 'every' must be >= 1");
                    rule.every = static_cast<uint64_t>(n);
                } else if (key == "ms") {
                    if (n < 0)
                        fatal("fault-spec: 'ms' must be >= 0");
                    rule.delayMs = static_cast<uint64_t>(n);
                } else {
                    fatal("fault-spec: rule '" + text +
                          "': unknown key '" + key +
                          "' (expected shard|after|every|ms)");
                }
            }
        }
        rules.push_back(rule);
    }
    return rules;
}

FaultInjector
FaultInjector::parse(const std::string &spec, int shard)
{
    FaultInjector injector;
    for (const Rule &rule : parseRules(spec))
        if (rule.shard < 0 || rule.shard == shard)
            injector.rules.push_back(rule);
    return injector;
}

FaultAction
FaultInjector::onRequest()
{
    if (rules.empty())
        return FaultAction::None;
    ++requestCount;
    for (const Rule &rule : rules) {
        if (rule.kind == Kind::Kill && requestCount == rule.after)
            return FaultAction::Kill;
        if (rule.kind == Kind::Wedge && requestCount == rule.after)
            return FaultAction::Wedge;
    }
    return FaultAction::None;
}

bool
FaultInjector::onWrite(std::string &payload)
{
    if (rules.empty())
        return false;
    ++writeCount;
    bool mutated = false;
    for (const Rule &rule : rules) {
        if (writeCount % rule.every != 0)
            continue;
        switch (rule.kind) {
          case Kind::Delay:
            std::this_thread::sleep_for(
                std::chrono::milliseconds(rule.delayMs));
            break;
          case Kind::Truncate:
            // Drop the tail half: the peer sees a line cut mid-object,
            // merged with whatever the next batch starts with.
            payload.resize(payload.size() / 2);
            mutated = true;
            break;
          case Kind::Garbage:
            payload = "\x01garbage\x01\n";
            mutated = true;
            break;
          case Kind::Kill:
          case Kind::Wedge:
            break; // Request-path rules; nothing to do on writes.
        }
    }
    return mutated;
}

} // namespace neusight::net
