/**
 * @file
 * Entry point of the network serving mode, shared by the neusight-serve
 * tool and the load-generator bench. runFrontend() either serves
 * directly (shards == 1: one SocketServer over one in-process
 * ForecastServer) or forks N shard workers connected by AF_UNIX streams
 * and runs the consistent-hash ShardRouter in the parent. The engine
 * factory runs *after* fork in each worker, so every shard builds its
 * own ForecastEngine — caches are per-process and, thanks to the hash
 * ring, hot on disjoint request populations.
 *
 * Workers ignore SIGTERM/SIGINT (terminal signals hit the whole process
 * group); their shutdown signal is EOF on the router pipe, which the
 * router sends by closing it after the drain. The parent installs the
 * usual stop-signal plumbing, so `kill -TERM` of the parent drains the
 * whole tree: router drains outstanding replies, closes pipes, workers
 * drain and exit, parent reaps them.
 *
 * Sharded mode is self-healing: runFrontend hands the router a respawn
 * callback (fork a fresh worker for shard i over a new socketpair), so
 * a crashed worker is reaped in-loop, its keys remapped, and a
 * replacement rejoins the ring under the supervisor's backoff policy.
 * Forked children scrub inherited fds (closeAllFdsExcept) — a worker
 * must not hold the router's listen socket, client connections, or a
 * sibling's pipe open, or EOFs would never arrive.
 */

#ifndef NEUSIGHT_NET_FRONTEND_HPP
#define NEUSIGHT_NET_FRONTEND_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "serve/server.hpp"
#include "serve/wire.hpp"

namespace neusight::net {

/** Transport configuration of runFrontend (engine/server knobs live in
 *  the factory the caller supplies). */
struct FrontendOptions
{
    std::string bindAddress = "127.0.0.1";
    /** Listen port; 0 binds an ephemeral port. */
    uint16_t port = 0;
    /** Worker processes; 1 serves in-process without forking. */
    size_t shards = 1;
    size_t maxLineBytes = serve::LineFramer::kDefaultMaxLineBytes;
    /** In-flight requests per client before admission rejects. */
    size_t maxInFlightPerClient = 256;
    /** Forwarded-but-unanswered bound per shard (sharded mode). */
    size_t maxOutstandingPerShard = 4096;
    /** Bound on the graceful drain after SIGTERM/SIGINT. */
    int drainTimeoutMs = 30000;
    /** Default per-request deadline; 0 = unbounded. A request's own
     *  "timeout_ms" field overrides it. */
    int requestTimeoutMs = 0;
    /** Router-to-shard heartbeat period (sharded mode); 0 disables. */
    int heartbeatIntervalMs = 1000;
    /** Chaos fault spec (net/fault.hpp grammar); "" injects nothing. */
    std::string faultSpec;
    /**
     * When >= 0: the bound port is written here as "<port>\n" once the
     * socket listens (the bench's race-free way to learn an ephemeral
     * port from a forked server).
     */
    int portReportFd = -1;
    /** Stderr ready-line prefix; empty suppresses the line. */
    std::string readyLabel = "neusight-serve";
};

/** Builds one shard's ForecastServer; runs after fork in that shard. */
using EngineFactory =
    std::function<std::unique_ptr<serve::ForecastServer>()>;

/**
 * Serve until a stop signal drains. Returns the process exit code
 * (0 = clean drain). Sharded mode returns non-zero if any worker
 * exited abnormally.
 */
int runFrontend(const FrontendOptions &options, const EngineFactory &factory);

} // namespace neusight::net

#endif // NEUSIGHT_NET_FRONTEND_HPP
