/**
 * @file
 * Consistent-hash ring placing request fingerprints on shard processes.
 * Each shard owns many virtual points on a 64-bit ring; a fingerprint
 * maps to the first point clockwise from its hash. The hash is FNV-1a
 * (deterministic across runs, builds, and machines — std::hash is not),
 * so the same fingerprint lands on the same shard across server
 * restarts and each shard's kernel/graph caches stay hot and disjoint.
 * Removing a shard (a worker died) only remaps the keys it owned, and
 * re-adding it (the supervisor respawned the worker) regenerates the
 * exact same virtual points, so the shard reclaims precisely its old
 * keys — nobody else's mapping ever moves.
 */

#ifndef NEUSIGHT_NET_HASH_RING_HPP
#define NEUSIGHT_NET_HASH_RING_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace neusight::net {

/** 64-bit FNV-1a; the ring's stable hash. */
uint64_t fnv1a64(const std::string &key);

class HashRing
{
  public:
    /** @p num_shards shards 0..N-1, @p vnodes ring points per shard. */
    explicit HashRing(size_t num_shards, size_t vnodes = kDefaultVnodes);

    /** Shard owning @p key. fatal() when the ring is empty. */
    size_t shardFor(const std::string &key) const;

    /**
     * Drop @p shard's points (worker death): keys it owned redistribute
     * over the survivors; everyone else's mapping is untouched.
     */
    void removeShard(size_t shard);

    /**
     * Put @p shard back on the ring (worker respawned). The vnode
     * labels are deterministic, so the restored points are bit-identical
     * to the ones removeShard dropped: the shard reclaims exactly the
     * keys it owned before the death and no others. No-op when the
     * shard is already live or out of range.
     */
    void addShard(size_t shard);

    /** Shards still on the ring. */
    size_t liveShards() const { return live; }

    /** True when @p shard is still on the ring. */
    bool contains(size_t shard) const;

    static constexpr size_t kDefaultVnodes = 64;

  private:
    struct Point
    {
        uint64_t hash;
        uint32_t shard;
        bool operator<(const Point &o) const
        {
            // Tie-break on shard id so the ring order is total and
            // identical across instances.
            return hash != o.hash ? hash < o.hash : shard < o.shard;
        }
    };

    std::vector<Point> points;
    std::vector<bool> alive;
    size_t live = 0;
    size_t vnodesPerShard = kDefaultVnodes;
};

} // namespace neusight::net

#endif // NEUSIGHT_NET_HASH_RING_HPP
