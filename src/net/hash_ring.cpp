#include "net/hash_ring.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace neusight::net {

uint64_t
fnv1a64(const std::string &key)
{
    uint64_t hash = 14695981039346656037ull;
    for (const char c : key) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    return hash;
}

HashRing::HashRing(size_t num_shards, size_t vnodes)
    : alive(num_shards, true), live(num_shards), vnodesPerShard(vnodes)
{
    ensure(num_shards > 0, "HashRing: need at least one shard");
    ensure(vnodes > 0, "HashRing: need at least one vnode");
    points.reserve(num_shards * vnodes);
    for (size_t s = 0; s < num_shards; ++s) {
        for (size_t v = 0; v < vnodes; ++v) {
            const std::string label =
                "shard-" + std::to_string(s) + "#" + std::to_string(v);
            points.push_back(
                Point{fnv1a64(label), static_cast<uint32_t>(s)});
        }
    }
    std::sort(points.begin(), points.end());
}

size_t
HashRing::shardFor(const std::string &key) const
{
    ensure(!points.empty(), "HashRing: every shard was removed");
    const uint64_t h = fnv1a64(key);
    auto it = std::lower_bound(
        points.begin(), points.end(), Point{h, 0},
        [](const Point &a, const Point &b) { return a.hash < b.hash; });
    if (it == points.end())
        it = points.begin(); // Wrap: the ring is circular.
    return it->shard;
}

void
HashRing::removeShard(size_t shard)
{
    if (shard >= alive.size() || !alive[shard])
        return;
    alive[shard] = false;
    --live;
    points.erase(std::remove_if(points.begin(), points.end(),
                                [shard](const Point &p) {
                                    return p.shard == shard;
                                }),
                 points.end());
}

void
HashRing::addShard(size_t shard)
{
    if (shard >= alive.size() || alive[shard])
        return;
    alive[shard] = true;
    ++live;
    // Identical labels -> identical hashes -> the exact points
    // removeShard erased, so re-adding restores the pre-death mapping.
    const size_t first = points.size();
    for (size_t v = 0; v < vnodesPerShard; ++v) {
        const std::string label =
            "shard-" + std::to_string(shard) + "#" + std::to_string(v);
        points.push_back(Point{fnv1a64(label), static_cast<uint32_t>(shard)});
    }
    std::sort(points.begin() + static_cast<ptrdiff_t>(first), points.end());
    std::inplace_merge(points.begin(),
                       points.begin() + static_cast<ptrdiff_t>(first),
                       points.end());
}

bool
HashRing::contains(size_t shard) const
{
    return shard < alive.size() && alive[shard];
}

} // namespace neusight::net
