#include "net/supervisor.hpp"

#include "common/logging.hpp"

namespace neusight::net {

RespawnScheduler::RespawnScheduler(RespawnPolicy policy_) : policy(policy_)
{
    ensure(policy.baseBackoffMs > 0, "RespawnPolicy: baseBackoffMs");
    ensure(policy.maxBackoffMs >= policy.baseBackoffMs,
           "RespawnPolicy: maxBackoffMs below baseBackoffMs");
    ensure(policy.rapidWindowMs > 0, "RespawnPolicy: rapidWindowMs");
    ensure(policy.parkAfterRapidDeaths > 0,
           "RespawnPolicy: parkAfterRapidDeaths");
}

void
RespawnScheduler::recordSpawn(TimePoint now)
{
    lastSpawn = now;
    spawned = true;
}

RespawnScheduler::Decision
RespawnScheduler::recordDeath(TimePoint now)
{
    const bool rapid =
        spawned && (now - lastSpawn) <
                       std::chrono::milliseconds(policy.rapidWindowMs);
    consecutiveRapid = rapid ? consecutiveRapid + 1 : 0;
    Decision decision;
    if (consecutiveRapid >= policy.parkAfterRapidDeaths) {
        decision.park = true;
        return decision;
    }
    // First (or post-stable-run) death waits the base delay; each
    // consecutive rapid death doubles it, clamped at the ceiling.
    const int doublings =
        consecutiveRapid > 0 ? consecutiveRapid - 1 : 0;
    long long delay = policy.baseBackoffMs;
    for (int i = 0; i < doublings && delay < policy.maxBackoffMs; ++i)
        delay *= 2;
    if (delay > policy.maxBackoffMs)
        delay = policy.maxBackoffMs;
    decision.delayMs = static_cast<int>(delay);
    return decision;
}

} // namespace neusight::net
