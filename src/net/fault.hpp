/**
 * @file
 * Deterministic fault injection for chaos-testing the serving tree.
 * A FaultInjector is parsed from a --fault-spec string (or the
 * NEUSIGHT_FAULT_SPEC environment variable) and hooked into a shard
 * worker's SocketServer, where it can kill or wedge the process after a
 * counted number of handled requests and corrupt the write path.
 *
 * Spec grammar (semicolon-separated rules, comma-separated params):
 *
 *   spec  := rule (';' rule)*
 *   rule  := kind (':' key '=' N (',' key '=' N)*)?
 *   kind  := kill | wedge | delay | truncate | garbage
 *
 *   kill      shard=S after=K   SIGKILL the worker on its K-th request
 *                               (default K=1): simulates a crash.
 *   wedge     shard=S after=K   stop reading and answering on the K-th
 *                               request: simulates a hung worker —
 *                               only the router's heartbeat can tell.
 *   delay     shard=S ms=M every=N
 *                               sleep M ms (default 10) before every
 *                               N-th write (default 1): a slow pipe.
 *   truncate  shard=S every=N   drop the tail half of every N-th write
 *                               batch (default 16): corrupted framing.
 *   garbage   shard=S every=N   replace every N-th write batch with
 *                               junk bytes (default 16): unparseable
 *                               replies.
 *
 * shard=S scopes a rule to shard index S; omitted (or -1) applies to
 * every shard. Counters are per-process, so "after" counts only the
 * requests the target worker itself handled. Parsing is strict —
 * unknown kinds/keys fatal() — so typos fail at startup, not silently.
 */

#ifndef NEUSIGHT_NET_FAULT_HPP
#define NEUSIGHT_NET_FAULT_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace neusight::net {

/** What the worker must do right now (see FaultInjector::onRequest). */
enum class FaultAction
{
    None,
    /** raise(SIGKILL): die exactly like a crashed worker. */
    Kill,
    /** Stop reading/answering; the process lives but goes silent. */
    Wedge,
};

class FaultInjector
{
  public:
    /** Rule kinds (exposed for tests). */
    enum class Kind
    {
        Kill,
        Wedge,
        Delay,
        Truncate,
        Garbage,
    };

    struct Rule
    {
        Kind kind = Kind::Kill;
        /** Target shard index; -1 = every shard. */
        int shard = -1;
        /** Request ordinal arming kill/wedge. */
        uint64_t after = 1;
        /** Write-period of delay/truncate/garbage. */
        uint64_t every = 1;
        /** Sleep per armed write (delay only). */
        uint64_t delayMs = 10;
    };

    /** Inactive injector (no rules; every hook is a no-op). */
    FaultInjector() = default;

    /**
     * Parse @p spec, keeping only the rules scoped to @p shard (or to
     * every shard). fatal() on grammar errors. An empty spec yields an
     * inactive injector.
     */
    static FaultInjector parse(const std::string &spec, int shard);

    /** Parse without filtering (startup validation, tests). */
    static std::vector<Rule> parseRules(const std::string &spec);

    bool active() const { return !rules.empty(); }

    /**
     * Count one handled request line; returns the action the worker
     * must take (Kill/Wedge trigger exactly once, on the armed
     * ordinal).
     */
    FaultAction onRequest();

    /**
     * Count one write batch and corrupt it per the delay/truncate/
     * garbage rules: may sleep, shrink @p payload, or replace it with
     * junk. Returns true when the payload was mutated (tests).
     */
    bool onWrite(std::string &payload);

    const std::vector<Rule> &activeRules() const { return rules; }

  private:
    std::vector<Rule> rules;
    uint64_t requestCount = 0;
    uint64_t writeCount = 0;
};

} // namespace neusight::net

#endif // NEUSIGHT_NET_FAULT_HPP
