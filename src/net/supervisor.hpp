/**
 * @file
 * Respawn scheduling policy of the shard supervisor, factored out of the
 * ShardRouter so the backoff/circuit-breaker arithmetic is unit-testable
 * without forking anything. One RespawnScheduler per shard tracks its
 * spawn/death history and answers, at each death, whether to respawn
 * (and after what delay) or to park the shard.
 *
 * The policy: a death is "rapid" when the worker survived less than
 * rapidWindowMs since its spawn — the signature of a crash loop (bad
 * engine config, corrupt cache snapshot, OOM on startup). Consecutive
 * rapid deaths back off exponentially from baseBackoffMs up to
 * maxBackoffMs, and after parkAfterRapidDeaths of them the shard is
 * parked: its keys stay remapped onto the survivors and the server
 * degrades gracefully instead of fork-bombing. A death after a stable
 * run (>= rapidWindowMs of uptime) resets the breaker — routine
 * one-off crashes respawn at the base delay forever.
 */

#ifndef NEUSIGHT_NET_SUPERVISOR_HPP
#define NEUSIGHT_NET_SUPERVISOR_HPP

#include <chrono>

namespace neusight::net {

/** Tunables of the respawn policy (one set shared by every shard). */
struct RespawnPolicy
{
    /** Delay before the first respawn attempt. */
    int baseBackoffMs = 200;
    /** Backoff ceiling for a persistent crash loop. */
    int maxBackoffMs = 10000;
    /** Uptime below this marks a death as rapid (crash-loop evidence). */
    int rapidWindowMs = 5000;
    /** Consecutive rapid deaths before the shard is parked for good. */
    int parkAfterRapidDeaths = 5;
};

/** Per-shard spawn/death history + the policy's verdicts. */
class RespawnScheduler
{
  public:
    using TimePoint = std::chrono::steady_clock::time_point;

    explicit RespawnScheduler(RespawnPolicy policy = RespawnPolicy());

    /** The shard (re)started at @p now. */
    void recordSpawn(TimePoint now);

    /** Verdict for one death. */
    struct Decision
    {
        /** Stop respawning this shard; it is crash-looping. */
        bool park = false;
        /** Respawn after this delay (unless park). */
        int delayMs = 0;
    };

    /** The shard died at @p now; what should the supervisor do? */
    Decision recordDeath(TimePoint now);

    /** Consecutive rapid deaths recorded so far (breaker pressure). */
    int rapidDeaths() const { return consecutiveRapid; }

  private:
    RespawnPolicy policy;
    TimePoint lastSpawn{};
    bool spawned = false;
    int consecutiveRapid = 0;
};

} // namespace neusight::net

#endif // NEUSIGHT_NET_SUPERVISOR_HPP
