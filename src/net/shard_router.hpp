/**
 * @file
 * Parent-side router of the multi-process serving mode: accepts client
 * TCP connections, parses each request line, and forwards it over an
 * AF_UNIX stream to one of N forked shard workers chosen by consistent-
 * hashing the request fingerprint (net/hash_ring.hpp). Equal
 * fingerprints always land on the same shard, so each worker's kernel-
 * prediction and model-graph caches stay hot and mutually disjoint —
 * the N processes partition the forecast space instead of duplicating
 * one cache N times.
 *
 * The router rewrites each forwarded request's "tag" to an internal
 * routing id and restores the client's tag on the way back, so shards
 * need no routing awareness — each one is a stock SocketServer serving
 * its adopted stream. "stats" requests fan out to every live shard and
 * the replies merge into one cluster snapshot
 * (obs::mergeMetricsSnapshots) that also folds in the router's own
 * registry (connection/rejection counters live here, not in shards).
 *
 * The router is also the shard supervisor. Worker death is routine, not
 * fatal:
 *  - SIGCHLD routes to the epoll loop (net::installSigchld) where dead
 *    workers are reaped continuously with waitpid(WNOHANG) — no
 *    zombies, ever, and a death is noticed even before the pipe EOF.
 *  - A dead shard is removed from the ring; requests outstanding on it
 *    are transparently retried once on the shard its keys remapped to
 *    (forecasts are idempotent), then respawned via the caller-supplied
 *    RespawnFn under exponential backoff. The respawned shard re-adds
 *    to the ring with identical vnodes, reclaiming exactly its old
 *    keys. A crash-looping shard (RespawnPolicy) is parked and the
 *    server degrades gracefully on the survivors.
 *  - Heartbeats: a "ping" op is sent over every live pipe each
 *    heartbeatIntervalMs; a shard missing heartbeatMissLimit pongs is
 *    presumed wedged, SIGKILLed, and routed around immediately —
 *    before the kernel would ever report EOF on a hung-but-alive
 *    worker.
 *  - Deadlines: requests carry "timeout_ms" (or inherit
 *    requestTimeoutMs); an expired request is answered with a typed
 *    "timeout" error and its late reply is dropped on arrival.
 *
 * Request accounting (net.requests.*) holds the serving invariant
 * submitted == completed + rejected + timed_out at quiescence — the
 * chaos tests pin it under fault injection. Graceful stop mirrors
 * SocketServer: stop reading clients, drain every outstanding reply,
 * flush, then close the shard pipes (workers see EOF, drain, and exit
 * on their own); pending respawns are cancelled.
 */

#ifndef NEUSIGHT_NET_SHARD_ROUTER_HPP
#define NEUSIGHT_NET_SHARD_ROUTER_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <sys/types.h>
#include <unordered_map>
#include <vector>

#include "common/json.hpp"
#include "net/hash_ring.hpp"
#include "net/io.hpp"
#include "net/supervisor.hpp"
#include "obs/metrics.hpp"
#include "serve/wire.hpp"

namespace neusight::net {

/** One forked shard worker as the router sees it. */
struct ShardHandle
{
    /** Parent end of the worker's AF_UNIX stream (router-owned). */
    int fd = -1;
    pid_t pid = -1;
};

/**
 * Forks a replacement worker for @p shard and returns its handle
 * (fd < 0 = the spawn failed; the supervisor retries later). Runs
 * inside the router's epoll loop, so it must not block.
 */
using RespawnFn = std::function<ShardHandle(size_t shard)>;

/** Construction-time configuration of a ShardRouter. */
struct ShardRouterOptions
{
    std::string bindAddress = "127.0.0.1";
    /** Listen port; 0 binds an ephemeral port (see port()). */
    uint16_t port = 0;
    size_t maxLineBytes = serve::LineFramer::kDefaultMaxLineBytes;
    /** Unread-response bound per client; slower readers disconnect. */
    size_t maxOutputBytes = 8u << 20;
    /** In-flight requests per client before admission rejects. */
    size_t maxInFlightPerClient = 256;
    /** Forwarded-but-unanswered bound per shard; a deeper backlog
     *  rejects new requests routed there (backpressure, counted in
     *  serve.rejected). */
    size_t maxOutstandingPerShard = 4096;
    /** Bound on the graceful drain after a stop request. */
    int drainTimeoutMs = 30000;
    /** Default per-request deadline; 0 = unbounded. A request's own
     *  "timeout_ms" overrides it. */
    int requestTimeoutMs = 0;
    /** Heartbeat period over the shard pipes; 0 disables. */
    int heartbeatIntervalMs = 1000;
    /** Consecutive unanswered pings before a shard is presumed wedged
     *  and SIGKILLed. */
    int heartbeatMissLimit = 3;
    /** Transparent retries for a request stranded on a dead shard. */
    int retryLimit = 1;
    /** Backoff / circuit-breaker policy of the supervisor. */
    RespawnPolicy respawnPolicy;
    /** Respawner; null disables supervision (dead shards stay dead). */
    RespawnFn respawn;
};

/**
 * The sharding front-end. Single-threaded: one epoll loop owns the
 * listen socket, every client connection, and every shard pipe.
 * Construction binds (port() is immediately valid) and registers the
 * shard pipes; run() blocks until a stop request drains. The caller
 * (net::runFrontend) forks the initial workers and passes their handles
 * in; deaths during run() are reaped and respawned in-loop, and
 * activePids() names the workers still alive for the caller's final
 * blocking reap after run() returns.
 */
class ShardRouter
{
  public:
    ShardRouter(std::vector<ShardHandle> shards, ShardRouterOptions options);
    ~ShardRouter();

    ShardRouter(const ShardRouter &) = delete;
    ShardRouter &operator=(const ShardRouter &) = delete;

    /** The bound TCP port. */
    uint16_t port() const { return boundPort; }

    /** Run the epoll loop; returns after the drain completes. */
    void run();

    /** Ask run() to drain and return. Thread-safe and idempotent. */
    void requestStop();

    /// @name Stop-signal plumbing for net::installStopSignals.
    /// @{
    std::atomic<bool> *stopFlag() { return &stopRequested; }
    int wakeWriteFd() const { return wake.writeFd; }
    /// @}

    /** Worker pids not yet reaped (for the caller's final waitpid). */
    std::vector<pid_t> activePids() const;

    /** The router's own registry (net.* and router.* metrics). */
    obs::MetricsRegistry &metrics() { return registry; }

  private:
    /** A connected byte stream: a TCP client, or a shard pipe. */
    struct Peer
    {
        int fd = -1;
        uint64_t gen = 0;
        /** Shard index for pipe peers; -1 for clients. */
        int shard = -1;
        serve::LineFramer framer;
        std::string outbuf;
        size_t outOffset = 0;
        /** Client only: requests forwarded and not yet answered. */
        size_t inFlight = 0;
        /** Shard only: requests outstanding on this pipe. */
        size_t outstanding = 0;
        bool eof = false;
        bool closeAfterFlush = false;
        uint32_t registered = 0;
        /** Already in flushPending for this event batch. */
        bool flushQueued = false;
    };

    /** One forwarded request awaiting its shard's answer. */
    struct RidEntry
    {
        int clientFd = -1;
        uint64_t clientGen = 0;
        /** The client's original tag, restored on the reply. */
        std::string tag;
        int shard = -1;
        /** Non-zero: part of a fanned-out stats request. */
        uint64_t statsGroup = 0;
        /** Routing key + re-encoded request, kept for death retries. */
        std::string fingerprint;
        common::Json forwardJson;
        /** Forward attempts so far (1 = first try). */
        int attempts = 1;
        /** Deadline already fired and the client answered; the late
         *  shard reply is dropped on arrival. */
        bool timedOut = false;
        bool hasDeadline = false;
        std::chrono::steady_clock::time_point deadline{};
    };

    /** One "stats" fan-out collecting per-shard snapshots. */
    struct StatsGroup
    {
        int clientFd = -1;
        uint64_t clientGen = 0;
        std::string tag;
        size_t pending = 0;
        std::vector<common::Json> snapshots;
    };

    /** Supervision state of one shard slot. */
    struct ShardState
    {
        pid_t pid = -1;
        /** Crash-loop breaker tripped: never respawned again. */
        bool parked = false;
        bool respawnPending = false;
        std::chrono::steady_clock::time_point respawnAt{};
        RespawnScheduler scheduler;
        /** Pings sent since the last pong. */
        int pendingPings = 0;
        /** net.shard.healthy.<i>: 1 = live pipe answering pings. */
        std::shared_ptr<obs::Gauge> healthy;
    };

    /** Why a forward could not happen. */
    enum class ForwardStatus
    {
        Ok,
        NoLiveShard,
        PipeMissing,
        BacklogFull,
    };

    void acceptAll();
    void addClient(int fd);
    void handleReadable(Peer &peer);
    void processLines(Peer &peer);
    void handleClientLine(Peer &client, const std::string &line);
    void handleShardLine(Peer &shardPeer, const std::string &line);
    void handleHeartbeatPong(Peer &shardPeer);
    void handleStatsRequest(Peer &client, const std::string &tag);
    void finishStatsGroup(uint64_t groupId);
    void replyToClient(int clientFd, uint64_t clientGen,
                       const std::string &line, bool decrementInFlight);
    void rejectClient(Peer &client, const std::string &tag,
                      const std::string &why, const std::string &code);
    /** Death-path rejection of an already-forwarded request. */
    void rejectRid(const RidEntry &entry, const std::string &why,
                   const std::string &code);
    /** Route @p entry by its fingerprint and ship it (fresh or retry).
     *  Consumes @p entry on Ok; leaves it intact on failure. */
    ForwardStatus forwardEntry(RidEntry &entry);
    void appendOutput(Peer &peer, const std::string &line);
    void flushOutput(Peer &peer);
    /** Defer a flush to the end of the current event batch (one send()
     *  per peer per batch instead of one per line). */
    void queueFlush(Peer &peer);
    void flushPendingPeers();
    void updateInterest(Peer &peer);
    void maybeFinishClient(Peer &peer);
    void closePeer(int fd);
    /** Register a (re)spawned worker's pipe with the loop. */
    void registerShardPipe(size_t shard, int fd);
    void shardDied(int shard);
    /// @name Supervision steps of the run() loop.
    /// @{
    void reapChildren();
    void fireDeadlines(std::chrono::steady_clock::time_point now);
    void processHeartbeats(std::chrono::steady_clock::time_point now);
    void performRespawns(std::chrono::steady_clock::time_point now);
    void scheduleRespawn(size_t shard);
    /// @}
    int loopTimeoutMs(std::chrono::steady_clock::time_point now) const;
    void beginStop();
    bool drained() const;
    Peer *findShardPeer(int shard);

    ShardRouterOptions options;
    HashRing ring;
    obs::MetricsRegistry registry;
    WakePipe wake;
    int listenFd = -1;
    int epollFd = -1;
    uint16_t boundPort = 0;
    std::atomic<bool> stopRequested{false};
    std::atomic<bool> childExited{false};
    bool stopping = false;
    std::chrono::steady_clock::time_point stopDeadline;
    std::chrono::steady_clock::time_point nextHeartbeatAt;

    uint64_t nextGen = 1;
    uint64_t nextRid = 1;
    uint64_t nextPing = 1;
    /** Peers with output appended this batch, flushed together. */
    std::vector<int> flushPending;
    uint64_t nextStatsGroup = 1;
    /** Every connected stream, clients and shard pipes alike, by fd. */
    std::unordered_map<int, std::unique_ptr<Peer>> peers;
    /** Client peers currently connected (gauge bookkeeping). */
    size_t clientPeers = 0;
    /** Shard index -> pipe fd (-1 once dead). */
    std::vector<int> shardFds;
    std::vector<ShardState> shardStates;
    /** Live (unreaped) worker pid -> shard slot. */
    std::unordered_map<pid_t, size_t> pidToShard;
    std::unordered_map<std::string, RidEntry> ridMap;
    std::map<uint64_t, StatsGroup> statsGroups;
    /** Deadline queue over rids; stale entries are skipped lazily. */
    std::multimap<std::chrono::steady_clock::time_point, std::string>
        deadlines;

    /// @name Router-registry metrics.
    /// @{
    std::shared_ptr<obs::Counter> connectionsTotal;
    std::shared_ptr<obs::Gauge> activeConnections;
    std::shared_ptr<obs::Counter> linesTotal;
    std::shared_ptr<obs::Counter> protocolErrors;
    std::shared_ptr<obs::Counter> slowDisconnects;
    std::shared_ptr<obs::Counter> rejectedCount;
    std::shared_ptr<obs::Counter> forwardedTotal;
    std::shared_ptr<obs::Counter> shardDeaths;
    std::shared_ptr<obs::Counter> shardRestarts;
    std::shared_ptr<obs::Counter> shardParked;
    std::shared_ptr<obs::Counter> retriesTotal;
    std::shared_ptr<obs::Counter> timeoutsTotal;
    std::shared_ptr<obs::Gauge> liveShardsGauge;
    /** The serving invariant: submitted == completed + rejected +
     *  timed_out at quiescence (chaos tests pin it). */
    std::shared_ptr<obs::Counter> submittedCount;
    std::shared_ptr<obs::Counter> completedCount;
    std::shared_ptr<obs::Counter> rejectedReqCount;
    std::shared_ptr<obs::Counter> timedOutCount;
    /// @}
};

} // namespace neusight::net

#endif // NEUSIGHT_NET_SHARD_ROUTER_HPP
