/**
 * @file
 * Parent-side router of the multi-process serving mode: accepts client
 * TCP connections, parses each request line, and forwards it over an
 * AF_UNIX stream to one of N forked shard workers chosen by consistent-
 * hashing the request fingerprint (net/hash_ring.hpp). Equal
 * fingerprints always land on the same shard, so each worker's kernel-
 * prediction and model-graph caches stay hot and mutually disjoint —
 * the N processes partition the forecast space instead of duplicating
 * one cache N times.
 *
 * The router rewrites each forwarded request's "tag" to an internal
 * routing id and restores the client's tag on the way back, so shards
 * need no routing awareness — each one is a stock SocketServer serving
 * its adopted stream. "stats" requests fan out to every live shard and
 * the replies merge into one cluster snapshot
 * (obs::mergeMetricsSnapshots) that also folds in the router's own
 * registry (connection/rejection counters live here, not in shards).
 *
 * A dead shard (EOF/error on its pipe) is removed from the ring — its
 * outstanding requests fail with an error reply, its keys remap to the
 * survivors, everyone else's mapping is untouched. Graceful stop
 * mirrors SocketServer: stop reading clients, drain every outstanding
 * reply, flush, then close the shard pipes (workers see EOF, drain,
 * and exit on their own).
 */

#ifndef NEUSIGHT_NET_SHARD_ROUTER_HPP
#define NEUSIGHT_NET_SHARD_ROUTER_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <sys/types.h>
#include <unordered_map>
#include <vector>

#include "common/json.hpp"
#include "net/hash_ring.hpp"
#include "net/io.hpp"
#include "obs/metrics.hpp"
#include "serve/wire.hpp"

namespace neusight::net {

/** One forked shard worker as the router sees it. */
struct ShardHandle
{
    /** Parent end of the worker's AF_UNIX stream (router-owned). */
    int fd = -1;
    pid_t pid = -1;
};

/** Construction-time configuration of a ShardRouter. */
struct ShardRouterOptions
{
    std::string bindAddress = "127.0.0.1";
    /** Listen port; 0 binds an ephemeral port (see port()). */
    uint16_t port = 0;
    size_t maxLineBytes = serve::LineFramer::kDefaultMaxLineBytes;
    /** Unread-response bound per client; slower readers disconnect. */
    size_t maxOutputBytes = 8u << 20;
    /** In-flight requests per client before admission rejects. */
    size_t maxInFlightPerClient = 256;
    /** Forwarded-but-unanswered bound per shard; a deeper backlog
     *  rejects new requests routed there (backpressure, counted in
     *  serve.rejected). */
    size_t maxOutstandingPerShard = 4096;
    /** Bound on the graceful drain after a stop request. */
    int drainTimeoutMs = 30000;
};

/**
 * The sharding front-end. Single-threaded: one epoll loop owns the
 * listen socket, every client connection, and every shard pipe.
 * Construction binds (port() is immediately valid) and registers the
 * shard pipes; run() blocks until a stop request drains. The caller
 * (net::runFrontend) forks the workers, passes their pipe fds in, and
 * reaps the pids after run() returns.
 */
class ShardRouter
{
  public:
    ShardRouter(std::vector<ShardHandle> shards, ShardRouterOptions options);
    ~ShardRouter();

    ShardRouter(const ShardRouter &) = delete;
    ShardRouter &operator=(const ShardRouter &) = delete;

    /** The bound TCP port. */
    uint16_t port() const { return boundPort; }

    /** Run the epoll loop; returns after the drain completes. */
    void run();

    /** Ask run() to drain and return. Thread-safe and idempotent. */
    void requestStop();

    /// @name Stop-signal plumbing for net::installStopSignals.
    /// @{
    std::atomic<bool> *stopFlag() { return &stopRequested; }
    int wakeWriteFd() const { return wake.writeFd; }
    /// @}

    /** The router's own registry (net.* and router.* metrics). */
    obs::MetricsRegistry &metrics() { return registry; }

  private:
    /** A connected byte stream: a TCP client, or a shard pipe. */
    struct Peer
    {
        int fd = -1;
        uint64_t gen = 0;
        /** Shard index for pipe peers; -1 for clients. */
        int shard = -1;
        serve::LineFramer framer;
        std::string outbuf;
        size_t outOffset = 0;
        /** Client only: requests forwarded and not yet answered. */
        size_t inFlight = 0;
        /** Shard only: requests outstanding on this pipe. */
        size_t outstanding = 0;
        bool eof = false;
        bool closeAfterFlush = false;
        uint32_t registered = 0;
        /** Already in flushPending for this event batch. */
        bool flushQueued = false;
    };

    /** One forwarded request awaiting its shard's answer. */
    struct RidEntry
    {
        int clientFd = -1;
        uint64_t clientGen = 0;
        /** The client's original tag, restored on the reply. */
        std::string tag;
        int shard = -1;
        /** Non-zero: part of a fanned-out stats request. */
        uint64_t statsGroup = 0;
    };

    /** One "stats" fan-out collecting per-shard snapshots. */
    struct StatsGroup
    {
        int clientFd = -1;
        uint64_t clientGen = 0;
        std::string tag;
        size_t pending = 0;
        std::vector<common::Json> snapshots;
    };

    void acceptAll();
    void addClient(int fd);
    void handleReadable(Peer &peer);
    void processLines(Peer &peer);
    void handleClientLine(Peer &client, const std::string &line);
    void handleShardLine(Peer &shardPeer, const std::string &line);
    void handleStatsRequest(Peer &client, const std::string &tag);
    void finishStatsGroup(uint64_t groupId);
    void replyToClient(int clientFd, uint64_t clientGen,
                       const std::string &line, bool decrementInFlight);
    void rejectClient(Peer &client, const std::string &tag,
                      const std::string &why);
    void appendOutput(Peer &peer, const std::string &line);
    void flushOutput(Peer &peer);
    /** Defer a flush to the end of the current event batch (one send()
     *  per peer per batch instead of one per line). */
    void queueFlush(Peer &peer);
    void flushPendingPeers();
    void updateInterest(Peer &peer);
    void maybeFinishClient(Peer &peer);
    void closePeer(int fd);
    void shardDied(int shard);
    void beginStop();
    bool drained() const;
    Peer *findShardPeer(int shard);

    ShardRouterOptions options;
    HashRing ring;
    obs::MetricsRegistry registry;
    WakePipe wake;
    int listenFd = -1;
    int epollFd = -1;
    uint16_t boundPort = 0;
    std::atomic<bool> stopRequested{false};
    bool stopping = false;
    std::chrono::steady_clock::time_point stopDeadline;

    uint64_t nextGen = 1;
    uint64_t nextRid = 1;
    /** Peers with output appended this batch, flushed together. */
    std::vector<int> flushPending;
    uint64_t nextStatsGroup = 1;
    /** Every connected stream, clients and shard pipes alike, by fd. */
    std::unordered_map<int, std::unique_ptr<Peer>> peers;
    /** Shard index -> pipe fd (-1 once dead). */
    std::vector<int> shardFds;
    std::unordered_map<std::string, RidEntry> ridMap;
    std::map<uint64_t, StatsGroup> statsGroups;

    /// @name Router-registry metrics.
    /// @{
    std::shared_ptr<obs::Counter> connectionsTotal;
    std::shared_ptr<obs::Gauge> activeConnections;
    std::shared_ptr<obs::Counter> linesTotal;
    std::shared_ptr<obs::Counter> protocolErrors;
    std::shared_ptr<obs::Counter> slowDisconnects;
    std::shared_ptr<obs::Counter> rejectedCount;
    std::shared_ptr<obs::Counter> forwardedTotal;
    std::shared_ptr<obs::Counter> shardDeaths;
    std::shared_ptr<obs::Gauge> liveShardsGauge;
    /// @}
};

} // namespace neusight::net

#endif // NEUSIGHT_NET_SHARD_ROUTER_HPP
