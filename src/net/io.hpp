/**
 * @file
 * Robust POSIX I/O primitives for the socket front-end: every wrapper
 * retries EINTR (a delivered signal must never look like an I/O error),
 * sends suppress SIGPIPE (a client hanging up mid-response is that
 * client's problem, not a process-fatal signal), and the stop-signal
 * plumbing is async-signal-safe (the handler only sets a lock-free flag
 * and writes one byte to a wake pipe).
 *
 * Pipes have been hiding these bugs: stdin never returns EINTR under
 * our signal dispositions and writing to a closed stdout merely fails,
 * but real sockets deliver both constantly, so the whole net/ layer
 * funnels its syscalls through here.
 */

#ifndef NEUSIGHT_NET_IO_HPP
#define NEUSIGHT_NET_IO_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <sys/epoll.h>
#include <sys/types.h>
#include <vector>

namespace neusight::net {

/**
 * Ignore SIGPIPE process-wide (idempotent). Every tool main that may
 * write to a pipe or socket calls this first: without it, a client (or
 * `| head`) hanging up mid-write kills the whole process with the
 * default SIGPIPE disposition. Sends below additionally pass
 * MSG_NOSIGNAL, so the net/ layer is safe even if a main forgets.
 */
void ignoreSigpipe();

/** Set O_NONBLOCK on @p fd; returns false on fcntl failure. */
bool setNonBlocking(int fd);

/** Set FD_CLOEXEC on @p fd; returns false on fcntl failure. */
bool setCloseOnExec(int fd);

/**
 * Disable Nagle on a TCP socket (no-op failure on non-TCP fds). The
 * wire protocol is small pipelined lines in both directions; leaving
 * Nagle on serializes them behind delayed ACKs and collapses loopback
 * throughput by two orders of magnitude.
 */
bool setTcpNoDelay(int fd);

/**
 * read(), retried on EINTR. Returns the byte count, 0 at EOF, or -1
 * with errno (EAGAIN/EWOULDBLOCK = drained a non-blocking fd).
 */
ssize_t readRetry(int fd, void *buf, size_t count);

/**
 * send() with MSG_NOSIGNAL, retried on EINTR. Returns the byte count
 * written (possibly short) or -1 with errno. Falls back to write()
 * for fds send() rejects (pipes in the tests).
 */
ssize_t sendRetry(int fd, const void *buf, size_t count);

/**
 * Write all @p count bytes to a *blocking* fd, retrying EINTR and
 * short writes (the wire output path must never assume one write()
 * moves a whole line). Returns false on a real error (errno kept).
 */
bool writeFully(int fd, const void *buf, size_t count);

/** accept4(SOCK_NONBLOCK|SOCK_CLOEXEC), retried on EINTR. */
int acceptRetry(int listen_fd);

/** epoll_wait(), retried on EINTR. */
int epollWaitRetry(int epoll_fd, struct epoll_event *events, int max_events,
                   int timeout_ms);

/** close(), retried on EINTR (per POSIX the fd is gone either way). */
void closeFd(int fd);

/**
 * A CLOEXEC pipe whose write end is safe to use from a signal handler
 * (non-blocking write of one byte). Used as the epoll loop's wake-up
 * channel for completions and stop signals.
 */
struct WakePipe
{
    int readFd = -1;
    int writeFd = -1;

    WakePipe();
    ~WakePipe();
    WakePipe(const WakePipe &) = delete;
    WakePipe &operator=(const WakePipe &) = delete;

    /** Async-signal-safe: one byte into the pipe (full pipe = no-op,
     *  the loop is already due to wake). */
    void notify() const;

    /** Drain every pending wake byte (loop side). */
    void drain() const;
};

/**
 * Route SIGTERM/SIGINT to a stop flag + wake pipe: the handler sets
 * *flag and writes one byte to @p wake_write_fd — nothing else, so it
 * is async-signal-safe. Re-installable (fork children point the
 * signals at their own loop). Passing flag = nullptr restores SIG_DFL.
 */
void installStopSignals(std::atomic<bool> *flag, int wake_write_fd);

/**
 * Route SIGCHLD to a flag + wake pipe the same way: the shard router's
 * supervisor reaps with waitpid(WNOHANG) from its epoll loop when the
 * flag fires, so dead workers never linger as zombies. Passing
 * flag = nullptr restores SIG_DFL (children are then reaped by the
 * frontend's final blocking waitpid).
 */
void installSigchld(std::atomic<bool> *flag, int wake_write_fd);

/**
 * Close every open fd except the given ones (plus stdio 0/1/2, always
 * kept). A shard worker forked from the *running* router inherits the
 * listen socket, the epoll fd, every client connection, and every
 * sibling's pipe — any of which held open would wedge EOF delivery for
 * the rest of the tree. Reads /proc/self/fd when available, falls back
 * to an RLIMIT_NOFILE sweep.
 */
void closeAllFdsExcept(const std::vector<int> &keep);

/**
 * Create a listening TCP socket on @p bind_address:@p port (port 0 =
 * ephemeral), non-blocking, CLOEXEC, SO_REUSEADDR. Returns the fd and
 * stores the actually-bound port in @p bound_port. fatal() on failure.
 */
int listenTcp(const std::string &bind_address, uint16_t port,
              uint16_t *bound_port, int backlog = 128);

/**
 * Blocking TCP connect to @p address:@p port, EINTR-retried (client
 * side: the load generator, tests). Returns the connected fd or -1
 * with errno.
 */
int connectTcp(const std::string &address, uint16_t port);

} // namespace neusight::net

#endif // NEUSIGHT_NET_IO_HPP
