#include "net/socket_server.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <sys/epoll.h>
#include <unistd.h>
#include <utility>

#include "common/json.hpp"
#include "common/logging.hpp"

namespace neusight::net {

namespace {

/** Encoded rejection/error line ('\n'-terminated). @p code is the
 *  machine-readable "code" field ("" omits it). */
std::string
errorLine(const std::string &tag, const std::string &message,
          const std::string &code = "")
{
    serve::ForecastResult result;
    result.tag = tag;
    result.ok = false;
    result.error = message;
    result.errorCode = code;
    return serve::resultToJson(result).dump(0) + "\n";
}

} // namespace

SocketServer::SocketServer(serve::ForecastServer &server_,
                           SocketServerOptions options_)
    : server(server_), options(std::move(options_))
{
    ensure(options.maxLineBytes > 0, "SocketServer: maxLineBytes");
    // The process must already ignore SIGPIPE before the first send to
    // a hung-up client; tools call this too, but the server must not
    // rely on it (MSG_NOSIGNAL covers sends either way).
    ignoreSigpipe();

    obs::MetricsRegistry &reg = *server.metrics();
    connectionsTotal = reg.counter("net.connections");
    activeConnections = reg.gauge("net.active_connections");
    linesTotal = reg.counter("net.lines");
    protocolErrors = reg.counter("net.protocol_errors");
    slowDisconnects = reg.counter("net.slow_client_disconnects");
    rejectedCount = reg.counter("serve.rejected");
    timeoutsCount = reg.counter("net.timeouts");
    fault = options.fault;

    if (options.adoptedFd < 0) {
        listenFd = listenTcp(options.bindAddress, options.port, &boundPort);
    }
}

SocketServer::~SocketServer()
{
    // Requests are only ever submitted from inside run(), and run()
    // drains the server's completions before returning — by the time a
    // destructor can legally run, no callback still references this.
    for (auto &entry : conns)
        closeFd(entry.second->fd);
    conns.clear();
    closeFd(listenFd);
    closeFd(epollFd);
    if (options.adoptedFd >= 0)
        closeFd(options.adoptedFd);
}

void
SocketServer::requestStop()
{
    stopRequested.store(true, std::memory_order_release);
    wake.notify();
}

void
SocketServer::addConnection(int fd)
{
    if (!setNonBlocking(fd)) {
        closeFd(fd);
        return;
    }
    setTcpNoDelay(fd); // Fails harmlessly on the adopted AF_UNIX pipe.
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->gen = nextGen++;
    conn->framer = serve::LineFramer(options.maxLineBytes);
    struct epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epollFd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        closeFd(fd);
        return;
    }
    conn->registered = EPOLLIN;
    conns[fd] = std::move(conn);
    connectionsTotal->inc();
    activeConnections->set(static_cast<int64_t>(conns.size()));
}

void
SocketServer::acceptAll()
{
    for (;;) {
        const int fd = acceptRetry(listenFd);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            if (errno == ECONNABORTED || errno == EMFILE ||
                errno == ENFILE) {
                warn(std::string("net: accept failed: ") +
                     strerror(errno));
                return;
            }
            warn(std::string("net: accept failed: ") + strerror(errno));
            return;
        }
        addConnection(fd);
    }
}

void
SocketServer::handleReadable(Connection &conn)
{
    const int fd = conn.fd;
    char buf[64 * 1024];
    for (;;) {
        const ssize_t n = readRetry(fd, buf, sizeof(buf));
        if (n > 0) {
            conn.framer.feed(buf, static_cast<size_t>(n));
            processLines(conn);
            if (conns.find(fd) == conns.end())
                return; // processLines closed it.
            if (conn.closeAfterFlush || wedged)
                return;
            continue;
        }
        if (n == 0) {
            // Level-triggered EOF stays readable forever: drop the
            // read interest or the loop would spin on this socket.
            conn.eof = true;
            updateInterest(conn);
            maybeFinishConnection(conn);
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return;
        // ECONNRESET and friends: the peer is gone.
        closeConnection(fd);
        return;
    }
}

void
SocketServer::processLines(Connection &conn)
{
    const int fd = conn.fd;
    std::string line;
    for (;;) {
        const serve::LineFramer::Event event = conn.framer.next(line);
        if (event == serve::LineFramer::Event::None)
            return;
        if (event == serve::LineFramer::Event::Oversized) {
            protocolErrors->inc();
            appendOutput(conn,
                         errorLine("", "request line exceeds " +
                                           std::to_string(
                                               options.maxLineBytes) +
                                           " bytes"));
            conn.closeAfterFlush = true;
            updateInterest(conn);
            flushOutput(conn);
            return;
        }
        handleLine(conn, line);
        if (conns.find(fd) == conns.end())
            return; // A write error closed the connection.
        if (conn.closeAfterFlush || wedged)
            return;
    }
}

void
SocketServer::handleLine(Connection &conn, const std::string &line)
{
    if (wedged)
        return; // Fault injection: swallow everything, answer nothing.
    if (serve::isSkippableRequestLine(line))
        return;
    linesTotal->inc();
    if (stopping) {
        rejectedCount->inc();
        appendOutput(conn, errorLine("", "server is draining", "draining"));
        flushOutput(conn);
        return;
    }
    std::string tag;
    serve::ForecastRequest request;
    try {
        const common::Json json = common::Json::parse(line);
        if (json.isObject())
            tag = json.stringOr("tag", "");
        request = serve::requestFromJson(json);
    } catch (const std::exception &e) {
        protocolErrors->inc();
        appendOutput(conn, errorLine(tag, e.what()));
        flushOutput(conn);
        return;
    }
    if (request.kind == serve::RequestKind::Ping) {
        // Answered inline from the epoll thread, before admission: a
        // pong proves the event loop is alive even when the engine is
        // saturated, which is exactly what a health check wants to
        // know. The router's heartbeats ride on this.
        common::Json pong;
        if (!tag.empty())
            pong.set("tag", tag);
        pong.set("ok", true);
        pong.set("pong", true);
        appendOutput(conn, pong.dump(0) + "\n");
        flushOutput(conn);
        return;
    }
    switch (fault.onRequest()) {
      case FaultAction::Kill:
        ::raise(SIGKILL); // Chaos: die exactly like a crashed worker.
        break;
      case FaultAction::Wedge:
        enterWedge();
        return;
      case FaultAction::None:
        break;
    }
    if (options.maxInFlightPerClient > 0 &&
        conn.inFlight >= options.maxInFlightPerClient) {
        rejectedCount->inc();
        appendOutput(
            conn,
            errorLine(tag,
                      "admission limit: " +
                          std::to_string(options.maxInFlightPerClient) +
                          " requests already in flight on this "
                          "connection",
                      "overload"));
        flushOutput(conn);
        return;
    }
    // Straight into the engine from the epoll thread: trySubmit never
    // blocks, so one slow forecast cannot stall the loop, and hundreds
    // of pipelined requests coalesce inside the ForecastServer instead
    // of trickling through a thread pool one blocking submit at a time.
    const uint64_t timeoutMs =
        request.timeoutMs > 0
            ? request.timeoutMs
            : (options.requestTimeoutMs > 0
                   ? static_cast<uint64_t>(options.requestTimeoutMs)
                   : 0);
    const int fd = conn.fd;
    const uint64_t gen = conn.gen;
    const uint64_t reqId = nextReqId++;
    const bool accepted = server.trySubmit(
        std::move(request),
        [this, fd, gen, reqId](serve::ForecastResult result) {
            // Worker thread (or inline on shutdown): park the encoded
            // reply and wake the epoll loop, nothing else — the loop
            // owns every connection.
            Completion done;
            done.fd = fd;
            done.gen = gen;
            done.reqId = reqId;
            done.line = serve::resultToJson(result).dump(0) + "\n";
            {
                std::lock_guard<std::mutex> lock(completionMutex);
                completions.push_back(std::move(done));
            }
            wake.notify();
        });
    if (!accepted) {
        rejectedCount->inc();
        appendOutput(conn,
                     errorLine(tag,
                               "server overloaded (engine queue full)",
                               "overload"));
        flushOutput(conn);
        return;
    }
    ++conn.inFlight;
    ++inFlightTotal;
    PendingRequest pending;
    pending.fd = fd;
    pending.gen = gen;
    pending.tag = tag;
    pendingReqs[reqId] = std::move(pending);
    if (timeoutMs > 0)
        deadlines.emplace(std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(timeoutMs),
                          reqId);
}

void
SocketServer::appendOutput(Connection &conn, const std::string &line)
{
    conn.outbuf.append(line);
}

void
SocketServer::flushOutput(Connection &conn)
{
    if (fault.active() && conn.outOffset < conn.outbuf.size()) {
        // Chaos: the injector may sleep (delay), shrink (truncate) or
        // replace (garbage) the unsent tail of this write batch.
        std::string tail = conn.outbuf.substr(conn.outOffset);
        if (fault.onWrite(tail)) {
            conn.outbuf.resize(conn.outOffset);
            conn.outbuf += tail;
        }
    }
    while (conn.outOffset < conn.outbuf.size()) {
        const ssize_t n =
            sendRetry(conn.fd, conn.outbuf.data() + conn.outOffset,
                      conn.outbuf.size() - conn.outOffset);
        if (n > 0) {
            conn.outOffset += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break; // Kernel buffer full: wait for EPOLLOUT.
        // EPIPE / ECONNRESET: the client hung up mid-response. With
        // SIGPIPE suppressed this is a clean per-connection close, not
        // a process death (the regression the socket move forces us to
        // pin).
        closeConnection(conn.fd);
        return;
    }
    if (conn.outOffset == conn.outbuf.size()) {
        conn.outbuf.clear();
        conn.outOffset = 0;
    } else if (conn.outOffset > (1u << 16) &&
               conn.outOffset >= conn.outbuf.size() / 2) {
        conn.outbuf.erase(0, conn.outOffset);
        conn.outOffset = 0;
    }
    if (conn.outbuf.size() - conn.outOffset > options.maxOutputBytes) {
        // Slow client: it is not reading responses as fast as it sends
        // requests. Unbounded buffering would let one client pin
        // arbitrary server memory — disconnect instead.
        slowDisconnects->inc();
        warn("net: disconnecting slow client (unread output over " +
             std::to_string(options.maxOutputBytes) + " bytes)");
        closeConnection(conn.fd);
        return;
    }
    updateInterest(conn);
    maybeFinishConnection(conn);
}

void
SocketServer::updateInterest(Connection &conn)
{
    // Level-triggered discipline: only subscribe to what we will act
    // on. A drained/errored/stopping connection must drop EPOLLIN (an
    // EOF socket stays "readable" forever) and EPOLLOUT is armed only
    // while unflushed output exists, or the loop spins.
    const bool want_read =
        !stopping && !conn.closeAfterFlush && !conn.eof;
    const bool want_write = conn.outOffset < conn.outbuf.size();
    const uint32_t events = (want_read ? static_cast<uint32_t>(EPOLLIN) : 0u) |
                            (want_write ? static_cast<uint32_t>(EPOLLOUT) : 0u);
    if (events == conn.registered)
        return;
    struct epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.events = events;
    ev.data.fd = conn.fd;
    if (::epoll_ctl(epollFd, EPOLL_CTL_MOD, conn.fd, &ev) == 0)
        conn.registered = events;
}

void
SocketServer::maybeFinishConnection(Connection &conn)
{
    const bool flushed = conn.outOffset >= conn.outbuf.size();
    if (!flushed)
        return;
    if (conn.closeAfterFlush || (conn.eof && conn.inFlight == 0))
        closeConnection(conn.fd);
}

void
SocketServer::closeConnection(int fd)
{
    auto it = conns.find(fd);
    if (it == conns.end())
        return;
    ::epoll_ctl(epollFd, EPOLL_CTL_DEL, fd, nullptr);
    closeFd(fd);
    if (fd == options.adoptedFd)
        options.adoptedFd = -1; // Owned fd released; don't close twice.
    conns.erase(it);
    activeConnections->set(static_cast<int64_t>(conns.size()));
}

void
SocketServer::drainCompletions()
{
    std::vector<Completion> batch;
    {
        std::lock_guard<std::mutex> lock(completionMutex);
        batch.swap(completions);
    }
    // Two phases — append everything, then one flush (one send()) per
    // touched connection: pipelined clients get their whole reply batch
    // in a single syscall instead of one per line.
    std::vector<int> touched;
    for (Completion &done : batch) {
        ensure(inFlightTotal > 0, "net: completion accounting underflow");
        --inFlightTotal;
        bool timedOut = false;
        auto pit = pendingReqs.find(done.reqId);
        if (pit != pendingReqs.end()) {
            timedOut = pit->second.timedOut;
            pendingReqs.erase(pit);
        }
        if (timedOut)
            continue; // The deadline already answered this client.
        auto it = conns.find(done.fd);
        if (it == conns.end() || it->second->gen != done.gen)
            continue; // Client hung up before its answer was ready.
        Connection &conn = *it->second;
        ensure(conn.inFlight > 0, "net: connection in-flight underflow");
        --conn.inFlight;
        appendOutput(conn, done.line);
        if (!conn.flushQueued) {
            conn.flushQueued = true;
            touched.push_back(done.fd);
        }
    }
    for (const int fd : touched) {
        auto it = conns.find(fd);
        if (it == conns.end())
            continue; // A flush above closed it (slow client).
        it->second->flushQueued = false;
        flushOutput(*it->second);
    }
}

void
SocketServer::fireDeadlines(std::chrono::steady_clock::time_point now)
{
    while (!deadlines.empty() && deadlines.begin()->first <= now) {
        const uint64_t reqId = deadlines.begin()->second;
        deadlines.erase(deadlines.begin());
        auto it = pendingReqs.find(reqId);
        if (it == pendingReqs.end() || it->second.timedOut)
            continue; // Answered in time.
        PendingRequest &pending = it->second;
        // The entry stays until the completion arrives, which then
        // balances inFlightTotal and is dropped instead of delivered.
        pending.timedOut = true;
        timeoutsCount->inc();
        auto cit = conns.find(pending.fd);
        if (cit == conns.end() || cit->second->gen != pending.gen)
            continue; // Client already gone; nothing to answer.
        Connection &conn = *cit->second;
        ensure(conn.inFlight > 0, "net: connection in-flight underflow");
        --conn.inFlight;
        appendOutput(conn, errorLine(pending.tag,
                                     "request deadline exceeded",
                                     "timeout"));
        flushOutput(conn);
    }
}

void
SocketServer::enterWedge()
{
    if (wedged)
        return;
    wedged = true;
    warn("net: fault injection wedged this worker (alive but silent)");
    // Deregister everything — including the wake pipe, so completions
    // cannot rouse the loop: epoll_wait blocks with an empty interest
    // set until something kills the process. Exactly a hung worker.
    if (listenFd >= 0)
        ::epoll_ctl(epollFd, EPOLL_CTL_DEL, listenFd, nullptr);
    ::epoll_ctl(epollFd, EPOLL_CTL_DEL, wake.readFd, nullptr);
    for (auto &entry : conns) {
        ::epoll_ctl(epollFd, EPOLL_CTL_DEL, entry.second->fd, nullptr);
        entry.second->registered = 0;
    }
}

void
SocketServer::beginStop()
{
    if (stopping)
        return;
    stopping = true;
    stopDeadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(options.drainTimeoutMs);
    if (listenFd >= 0) {
        ::epoll_ctl(epollFd, EPOLL_CTL_DEL, listenFd, nullptr);
        closeFd(listenFd);
        listenFd = -1;
    }
    // No more reads: the drain answers what was accepted and flushes.
    for (auto &entry : conns)
        updateInterest(*entry.second);
}

bool
SocketServer::drained() const
{
    if (inFlightTotal > 0)
        return false;
    for (const auto &entry : conns)
        if (entry.second->outOffset < entry.second->outbuf.size())
            return false;
    return true;
}

void
SocketServer::run()
{
    epollFd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epollFd < 0)
        fatal(std::string("net: epoll_create1 failed: ") +
              strerror(errno));
    struct epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = wake.readFd;
    if (::epoll_ctl(epollFd, EPOLL_CTL_ADD, wake.readFd, &ev) != 0)
        fatal("net: cannot register wake pipe");
    if (listenFd >= 0) {
        ev.data.fd = listenFd;
        if (::epoll_ctl(epollFd, EPOLL_CTL_ADD, listenFd, &ev) != 0)
            fatal("net: cannot register listen socket");
    }
    if (options.adoptedFd >= 0)
        addConnection(options.adoptedFd);

    constexpr int kMaxEvents = 64;
    struct epoll_event events[kMaxEvents];
    for (;;) {
        int timeout_ms = -1;
        auto next = std::chrono::steady_clock::time_point::max();
        bool have_next = false;
        if (stopping) {
            next = stopDeadline;
            have_next = true;
        }
        if (!wedged && !deadlines.empty() &&
            (!have_next || deadlines.begin()->first < next)) {
            next = deadlines.begin()->first;
            have_next = true;
        }
        if (have_next) {
            const auto left = std::chrono::duration_cast<
                                  std::chrono::milliseconds>(
                                  next - std::chrono::steady_clock::now())
                                  .count();
            timeout_ms = left > 0
                             ? static_cast<int>(left > 60000 ? 60000
                                                             : left + 1)
                             : 0;
        }
        const int n =
            epollWaitRetry(epollFd, events, kMaxEvents, timeout_ms);
        if (n < 0)
            fatal(std::string("net: epoll_wait failed: ") +
                  strerror(errno));
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;
            const uint32_t mask = events[i].events;
            if (fd == wake.readFd) {
                wake.drain();
                continue;
            }
            if (fd == listenFd) {
                if (!stopping)
                    acceptAll();
                continue;
            }
            auto it = conns.find(fd);
            if (it == conns.end())
                continue;
            Connection &conn = *it->second;
            if (mask & (EPOLLERR | EPOLLHUP)) {
                // Peer reset. Responses for its in-flight requests are
                // dropped at completion time (generation mismatch).
                closeConnection(fd);
                continue;
            }
            if ((mask & EPOLLIN) && !stopping && !conn.closeAfterFlush)
                handleReadable(conn);
            if (conns.find(fd) == conns.end())
                continue;
            if (mask & EPOLLOUT)
                flushOutput(*conns.find(fd)->second);
        }
        if (wedged)
            continue; // Silent: neither completions nor deadlines flow.
        drainCompletions();
        fireDeadlines(std::chrono::steady_clock::now());
        if (stopRequested.load(std::memory_order_acquire))
            beginStop();
        if (stopping) {
            if (drained() ||
                std::chrono::steady_clock::now() >= stopDeadline)
                break;
        } else if (listenFd < 0 && conns.empty() && inFlightTotal == 0) {
            // Adopted-stream (shard worker) mode: the peer closed and
            // every dispatched request was answered — a clean exit
            // without any stop signal.
            break;
        }
    }

    // A deadline exit can leave accepted requests still computing, and
    // their completions capture `this`: wait until every one has been
    // answered (into closed connections' void if need be) before the
    // loop's resources can be torn down — the ForecastServer drain
    // contract extends to the socket edge.
    server.drain();
    {
        std::lock_guard<std::mutex> lock(completionMutex);
        completions.clear();
    }
    pendingReqs.clear();
    deadlines.clear();
    for (auto &entry : conns)
        closeFd(entry.second->fd);
    if (options.adoptedFd >= 0 &&
        conns.find(options.adoptedFd) != conns.end())
        options.adoptedFd = -1;
    conns.clear();
    activeConnections->set(0);
    closeFd(epollFd);
    epollFd = -1;
}

} // namespace neusight::net
