#include "core/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "common/logging.hpp"
#include "core/features.hpp"
#include "obs/trace.hpp"
#include "gpusim/device.hpp"
#include "gpusim/tile_policy.hpp"
#include "nn/autograd.hpp"

namespace neusight::core {

using gpusim::GpuSpec;
using gpusim::KernelDesc;
using gpusim::OpType;
using gpusim::TileInfo;
using gpusim::TilePolicy;

namespace {

/** Per-SM roofline (Eq. 1, per-SM normalized; see DESIGN.md Section 3). */
double
rooflinePerSm(const KernelDesc &desc, const TileInfo &tile,
              const GpuSpec &gpu)
{
    const double peak = gpusim::effectivePeakFlops(desc, gpu);
    const double k = tile.flopsPerTile / tile.memBytesPerTile;
    return std::min(k * gpu.memBwPerSm(), peak / gpu.numSms);
}

} // namespace

KernelPredictor::Precision
parsePrecision(const std::string &name)
{
    if (name == "f64")
        return KernelPredictor::Precision::F64;
    if (name == "f32")
        return KernelPredictor::Precision::F32;
    fatal("unknown precision '" + name + "' (expected f64 or f32)");
}

const char *
precisionName(KernelPredictor::Precision precision)
{
    return precision == KernelPredictor::Precision::F32 ? "f32" : "f64";
}

std::string
canonicalOpName(const std::string &op_name)
{
    std::string base = op_name;
    const size_t plus = base.find('+');
    if (plus != std::string::npos)
        base = base.substr(0, plus);
    constexpr std::string_view kBwd = "_bwd";
    if (base.size() > kBwd.size() &&
        base.compare(base.size() - kBwd.size(), kBwd.size(), kBwd) == 0)
        base = base.substr(0, base.size() - kBwd.size());
    return base;
}

KernelPredictor::KernelPredictor(OpType type, const PredictorConfig &config_)
    : opType(type), config(config_)
{
    nn::MlpConfig mcfg;
    mcfg.inputDim = kNumFeatures;
    mcfg.hiddenDim = config.hiddenDim;
    mcfg.hiddenLayers = config.hiddenLayers;
    mcfg.outputDim = 2; // (alpha, beta) before the sigmoid (Eq. 8).
    mcfg.seed = config.seed + static_cast<uint64_t>(type) * 101;
    mlp = std::make_unique<nn::Mlp>(mcfg);

    // Bias the sigmoid outputs toward alpha ~ 0.82, beta ~ 0.18 so the
    // initial utilization is positive for every wave count (training
    // through the clamped law would otherwise start with dead gradients
    // on single-wave samples).
    Matrix &out_bias = mlp->parameters().back().node()->value;
    out_bias.at(0, 0) = 1.5;
    out_bias.at(0, 1) = -1.5;

    scaler.setClampToFitRange(config.clampFeatures);
}

nn::TrainHistory
KernelPredictor::train(const dataset::OperatorDataset &data)
{
    ensure(!data.samples.empty(),
           "KernelPredictor::train: empty dataset for family " +
               std::string(gpusim::opTypeName(opType)));

    const size_t n = data.samples.size();
    Matrix features(n, kNumFeatures);
    std::vector<double> target_ms(n);
    auto waves = std::make_shared<std::vector<double>>(n);
    auto lat_const = std::make_shared<std::vector<double>>(n);

    for (size_t i = 0; i < n; ++i) {
        const auto &s = data.samples[i];
        const GpuSpec &gpu = gpusim::findGpu(s.gpuName);
        const std::vector<double> f =
            buildFeatures(s.desc, s.launch.tile, s.launch.numWaves, gpu);
        for (size_t c = 0; c < kNumFeatures; ++c)
            features.at(i, c) = f[c];
        target_ms[i] = s.latencyMs;
        (*waves)[i] = static_cast<double>(s.launch.numWaves);
        const double roofline = rooflinePerSm(s.desc, s.launch.tile, gpu);
        // Latency = C / util with C in milliseconds (Eq. 4-6).
        (*lat_const)[i] = s.launch.tile.flopsPerTile *
                          static_cast<double>(s.launch.numWaves) / roofline *
                          1e3;
    }
    const Matrix scaled = scaler.fitTransform(features);

    // Observed utilization floor: target = C / util, so util = C / target.
    // Keep half the lowest value seen as the inference-side lower bound
    // (see utilizationFloor()).
    double min_util_seen = 1.0;
    for (size_t i = 0; i < n; ++i) {
        if (target_ms[i] <= 0.0)
            continue;
        const double util =
            std::clamp((*lat_const)[i] / target_ms[i], 0.0, 1.0);
        if (util > 0.0)
            min_util_seen = std::min(min_util_seen, util);
    }
    utilFloor = std::max(kMinUtil, 0.5 * min_util_seen);

    nn::Mlp &net = *mlp;
    const bool sigmoid_bound = config.sigmoidBound;
    const bool wave_term = config.waveTerm;
    nn::ForwardFn fwd = [&net, waves, lat_const, sigmoid_bound,
                         wave_term](const nn::Batch &batch) {
        std::vector<double> batch_waves;
        std::vector<double> batch_const;
        batch_waves.reserve(batch.indices.size());
        batch_const.reserve(batch.indices.size());
        for (size_t idx : batch.indices) {
            batch_waves.push_back(wave_term ? (*waves)[idx] : 1e12);
            batch_const.push_back((*lat_const)[idx]);
        }
        nn::Var x = nn::constant(batch.x);
        nn::Var alpha_beta = net.forward(x);
        if (sigmoid_bound)
            alpha_beta = nn::sigmoidAv(alpha_beta); // Eq. 8
        nn::Var util = nn::clampMinAv(
            nn::utilizationLawAv(alpha_beta, batch_waves), kMinUtil); // Eq. 7
        return nn::reciprocalScaleAv(util, batch_const); // Eq. 4-6
    };
    nn::TrainHistory history = nn::fit(net, scaled, target_ms, fwd,
                                       config.train);
    if (precision_ == Precision::F32)
        mlp->syncF32(); // Training moved the weights under the snapshot.
    return history;
}

void
KernelPredictor::setPrecision(Precision precision)
{
    precision_ = precision;
    if (precision_ == Precision::F32)
        mlp->syncF32();
}

PredictionDetail
KernelPredictor::predict(const KernelDesc &desc, const GpuSpec &gpu,
                         const std::vector<uint64_t> &tile_dims) const
{
    return predictBatch({desc}, gpu, {tile_dims}).front();
}

std::vector<PredictionDetail>
KernelPredictor::predictBatch(
    const std::vector<KernelDesc> &descs, const GpuSpec &gpu,
    const std::vector<std::vector<uint64_t>> &tile_dims) const
{
    ensure(scaler.fitted(),
           "KernelPredictor::predictBatch before train/load");
    ensure(descs.size() == tile_dims.size(),
           "KernelPredictor::predictBatch: one tile vector per kernel");
    const size_t n = descs.size();
    std::vector<PredictionDetail> details(n);
    if (n == 0)
        return details;

    const std::vector<gpusim::LaunchGeometry> launches =
        TilePolicy::launchBatch(descs, tile_dims, gpu);
    Matrix features(n, kNumFeatures);
    for (size_t i = 0; i < n; ++i) {
        PredictionDetail &detail = details[i];
        detail.tileDims = tile_dims[i];
        detail.numTiles = launches[i].numTiles;
        detail.numWaves = launches[i].numWaves;
        const std::vector<double> f = buildFeatures(
            descs[i], launches[i].tile, detail.numWaves, gpu);
        for (size_t c = 0; c < kNumFeatures; ++c)
            features.at(i, c) = f[c];
    }

    // One scale + one tape-free MLP pass for the whole batch. Each output
    // row only depends on its own input row, so this is bit-identical to
    // N single-row forwards (see Mlp::inferRows). Feature construction
    // and scaling always run in double; the F32 lane narrows the scaled
    // batch once and runs the fused single-precision kernels instead.
    Matrix alpha_beta =
        precision_ == Precision::F32
            ? mlp->inferRowsF32(
                     MatrixF32::fromMatrix(scaler.transform(features)))
                  .toMatrix()
            : mlp->inferRows(scaler.transform(features));
    if (config.sigmoidBound)
        alpha_beta.apply(
            [](double v) { return 1.0 / (1.0 + std::exp(-v)); });

    for (size_t i = 0; i < n; ++i) {
        PredictionDetail &detail = details[i];
        detail.alpha = alpha_beta.at(i, 0);
        detail.beta = alpha_beta.at(i, 1);
        const double wave_div =
            config.waveTerm ? static_cast<double>(detail.numWaves) : 1e12;
        const double util = detail.alpha - detail.beta / wave_div;
        // The sigmoid already bounds util below 1; without it (ablation)
        // the only remaining bound is positivity.
        detail.utilization = config.sigmoidBound
                                 ? std::clamp(util, utilFloor, 1.0)
                                 : std::max(util, kMinUtil);
        detail.rooflinePerSm =
            rooflinePerSm(descs[i], launches[i].tile, gpu);
        detail.latencyMs = launches[i].tile.flopsPerTile /
                           (detail.rooflinePerSm * detail.utilization) *
                           static_cast<double>(detail.numWaves) * 1e3;
    }
    return details;
}

void
KernelPredictor::save(std::ostream &out) const
{
    mlp->saveParameters(out);
    scaler.save(out);
    out.write(reinterpret_cast<const char *>(&utilFloor),
              sizeof(utilFloor));
}

void
KernelPredictor::load(std::istream &in)
{
    mlp->loadParameters(in);
    scaler.load(in);
    in.read(reinterpret_cast<char *>(&utilFloor), sizeof(utilFloor));
    if (!in || utilFloor < 0.0 || utilFloor > 1.0)
        fatal("KernelPredictor::load: corrupt utilization floor");
    if (precision_ == Precision::F32)
        mlp->syncF32(); // Loading replaced the weights under the snapshot.
}

NeuSight::NeuSight(const PredictorConfig &config_) : config(config_)
{
    for (OpType type :
         {OpType::BatchedMatmul, OpType::FullyConnected, OpType::Elementwise,
          OpType::Softmax, OpType::LayerNorm}) {
        predictors[type] =
            std::make_unique<KernelPredictor>(type, config);
    }
}

void
NeuSight::train(
    const std::map<OpType, dataset::OperatorDataset> &corpus)
{
    for (const auto &[type, data] : corpus) {
        // Every observed launch feeds the tile database (Section 6.1).
        for (const auto &sample : data.samples)
            tileDb.record(sample.desc, sample.launch.tile.dims,
                          gpusim::findGpu(sample.gpuName));
        const auto it = predictors.find(type);
        if (it == predictors.end())
            continue; // Memory-fallback family: no learned predictor.
        it->second->train(data);
    }
}

double
NeuSight::predictKernelMs(const KernelDesc &desc, const GpuSpec &gpu) const
{
    return predictKernelDetail(desc, gpu).latencyMs;
}

void
NeuSight::attachCache(std::shared_ptr<KernelPredictionCache> cache)
{
    cache_ = std::move(cache);
}

void
NeuSight::setPrecision(KernelPredictor::Precision precision)
{
    precision_ = precision;
    for (auto &[type, pred] : predictors)
        pred->setPrecision(precision);
}

PredictionDetail
NeuSight::predictKernelDetail(const KernelDesc &desc,
                              const GpuSpec &gpu) const
{
    std::string key;
    PredictionDetail detail;
    if (cache_) {
        key = cacheFingerprint(desc, gpu);
        if (cache_->lookup(key, detail))
            return detail;
    }
    const auto it = predictors.find(desc.type);
    if (it == predictors.end()) {
        // Unseen operator family: memory-bound estimate (Section 4.3).
        detail.memoryFallback = true;
        detail.latencyMs = desc.memBytes / gpu.memBwBytes() * 1e3;
    } else {
        // Fused kernels look up the tile of their first operator
        // (Section 4.4).
        KernelDesc lookup = desc;
        lookup.opName = canonicalOpName(desc.opName);
        const std::vector<uint64_t> tile = tileDb.lookup(lookup, gpu);
        detail = it->second->predict(desc, gpu, tile);
    }
    if (cache_)
        cache_->insert(key, detail);
    return detail;
}

std::vector<double>
NeuSight::predictKernelsMs(const std::vector<KernelDesc> &descs,
                           const GpuSpec &gpu) const
{
    const size_t n = descs.size();
    std::vector<double> out(n, 0.0);
    if (n == 0)
        return out;
    obs::Tracer &tracer = obs::Tracer::global();
    obs::TraceSpan batch_span("neusight.predict_kernels", "core", tracer);

    // 1. Dedup: transformer graphs dispatch the same few dozen kernel
    // shapes across every layer, so group by the canonical fingerprint
    // (equal fingerprint guarantees an equal forecast). The GPU is
    // fixed across the batch, so nodes hash only the kernel half of
    // the key; the GPU suffix is appended once per unique kernel when
    // talking to the cache.
    struct Unique
    {
        const KernelDesc *desc = nullptr;
        std::string key;
        PredictionDetail detail;
        bool resolved = false;
    };
    std::vector<Unique> uniques;
    std::unordered_map<std::string, size_t> slot_of;
    std::vector<size_t> slot(n);
    {
        obs::TraceSpan dedup("neusight.dedup", "core", tracer);
        for (size_t i = 0; i < n; ++i) {
            std::string key = kernelFingerprintPart(descs[i]);
            const auto [it, inserted] =
                slot_of.emplace(std::move(key), uniques.size());
            if (inserted)
                uniques.push_back({&descs[i], it->first, {}, false});
            slot[i] = it->second;
        }

        // 2. Resolve from the attached prediction cache first.
        if (cache_) {
            const std::string gpu_part = gpuFeatureFingerprint(gpu);
            for (Unique &u : uniques) {
                u.key += gpu_part;
                u.resolved = cache_->lookup(u.key, u.detail);
            }
        }
    }

    // 3. Batch the remaining misses. All learned-family misses resolve
    // their tiles through ONE TileDatabase::lookupBatch pass (the
    // per-record GPU-gap and log-dimension terms are shared across the
    // whole batch), then each operator family runs one matrix pass;
    // families without a learned predictor take the memory fallback.
    std::map<OpType, std::vector<size_t>> families;
    std::vector<KernelDesc> tile_queries;
    std::vector<size_t> tile_query_of;
    std::vector<std::vector<uint64_t>> resolved_tiles;
    {
        obs::TraceSpan build("neusight.batch_build", "core", tracer);
        for (size_t u = 0; u < uniques.size(); ++u)
            if (!uniques[u].resolved)
                families[uniques[u].desc->type].push_back(u);
        tile_query_of.assign(uniques.size(), size_t(-1));
        for (const auto &[type, members] : families) {
            if (predictors.find(type) == predictors.end())
                continue;
            for (size_t u : members) {
                // Fused kernels look up the tile of their first
                // operator (Section 4.4).
                KernelDesc lookup = *uniques[u].desc;
                lookup.opName = canonicalOpName(lookup.opName);
                tile_query_of[u] = tile_queries.size();
                tile_queries.push_back(std::move(lookup));
            }
        }
        resolved_tiles = tileDb.lookupBatch(tile_queries, gpu);
    }
    obs::TraceSpan predict("neusight.predict_batch", "core", tracer);
    for (const auto &[type, members] : families) {
        const auto it = predictors.find(type);
        if (it == predictors.end()) {
            // Unseen operator family: memory-bound estimate (Section 4.3).
            for (size_t u : members) {
                uniques[u].detail.memoryFallback = true;
                uniques[u].detail.latencyMs =
                    uniques[u].desc->memBytes / gpu.memBwBytes() * 1e3;
            }
        } else {
            std::vector<KernelDesc> batch;
            std::vector<std::vector<uint64_t>> tiles;
            batch.reserve(members.size());
            tiles.reserve(members.size());
            for (size_t u : members) {
                tiles.push_back(resolved_tiles[tile_query_of[u]]);
                batch.push_back(*uniques[u].desc);
            }
            std::vector<PredictionDetail> predicted =
                it->second->predictBatch(batch, gpu, tiles);
            for (size_t m = 0; m < members.size(); ++m)
                uniques[members[m]].detail = std::move(predicted[m]);
        }
        if (cache_)
            for (size_t u : members)
                cache_->insert(uniques[u].key, uniques[u].detail);
    }

    // 4. Fan the unique forecasts back out to the request order.
    for (size_t i = 0; i < n; ++i)
        out[i] = uniques[slot[i]].detail.latencyMs;
    return out;
}

namespace {
constexpr uint32_t kModelMagic = 0x4e534d32; // "NSM2"
} // namespace

void
NeuSight::save(const std::string &path) const
{
    // Write-then-rename so a concurrent reader (or a crash mid-write)
    // never observes a half-written model file.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary);
        if (!out)
            fatal("NeuSight::save: cannot open '" + tmp + "'");
        out.write(reinterpret_cast<const char *>(&kModelMagic),
                  sizeof(kModelMagic));
        const uint64_t count = predictors.size();
        out.write(reinterpret_cast<const char *>(&count), sizeof(count));
        for (const auto &[type, pred] : predictors) {
            const uint32_t type_id = static_cast<uint32_t>(type);
            out.write(reinterpret_cast<const char *>(&type_id),
                      sizeof(type_id));
            pred->save(out);
        }
        tileDb.save(out);
        if (!out)
            fatal("NeuSight::save: write failed for '" + tmp + "'");
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        fatal("NeuSight::save: cannot rename '" + tmp + "' to '" + path +
              "': " + ec.message());
}

void
NeuSight::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("NeuSight::load: cannot open '" + path + "'");
    uint32_t magic = 0;
    uint64_t count = 0;
    in.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    in.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!in || magic != kModelMagic)
        fatal("NeuSight::load: bad header in '" + path + "'");
    if (count != predictors.size())
        fatal("NeuSight::load: predictor count mismatch in '" + path + "'");
    for (uint64_t i = 0; i < count; ++i) {
        uint32_t type_id = 0;
        in.read(reinterpret_cast<char *>(&type_id), sizeof(type_id));
        const auto it = predictors.find(static_cast<OpType>(type_id));
        if (it == predictors.end())
            fatal("NeuSight::load: unknown predictor family in file");
        it->second->load(in);
    }
    tileDb.load(in);
}

NeuSight
NeuSight::trainOrLoad(const std::string &path,
                      const std::vector<GpuSpec> &gpus,
                      const dataset::SamplerConfig &sampler,
                      const PredictorConfig &config)
{
    NeuSight framework(config);
    if (std::filesystem::exists(path)) {
        try {
            framework.load(path);
            return framework;
        } catch (const std::exception &e) {
            warn("NeuSight: stale/corrupt cache '" + path +
                 "' (" + e.what() + "); retraining");
        }
    }
    inform("NeuSight: training predictors (cache miss: " + path + ")");
    const auto corpus = dataset::generateOperatorData(gpus, sampler);
    framework.train(corpus);
    framework.save(path);
    return framework;
}

} // namespace neusight::core
