/**
 * @file
 * Input-feature construction for the utilization MLPs (paper Table 3).
 * All device quantities are normalized per SM, because NeuSight predicts
 * at tile granularity with one tile resident per SM.
 */

#ifndef NEUSIGHT_CORE_FEATURES_HPP
#define NEUSIGHT_CORE_FEATURES_HPP

#include <cstdint>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/gpu_spec.hpp"
#include "gpusim/kernel_desc.hpp"
#include "gpusim/tile_policy.hpp"

namespace neusight::core {

/** Number of input features (rows of paper Table 3). */
inline constexpr size_t kNumFeatures = 5;

/**
 * Build the Table-3 feature vector for one kernel given its tile
 * decomposition.
 *
 * Features, in order:
 *  1. FLOPsPerTile / PeakFLOPSPerSM
 *  2. MemoryPerTile / MemoryBWPerSM
 *  3. numWaves * MemoryPerTile / L2CacheSizePerSM
 *  4. numWaves * MemoryPerTile / MemorySizePerSM
 *  5. (FLOPsPerTile / MemoryPerTile) / (PeakFLOPS / MemoryBW)
 *
 * Peak FLOPS follows the public datapath convention of
 * gpusim::effectivePeakFlops (tensor-core / AMD matrix peaks).
 */
std::vector<double> buildFeatures(const gpusim::KernelDesc &desc,
                                  const gpusim::TileInfo &tile,
                                  uint64_t num_waves,
                                  const gpusim::GpuSpec &gpu);

} // namespace neusight::core

#endif // NEUSIGHT_CORE_FEATURES_HPP
