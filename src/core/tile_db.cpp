#include "core/tile_db.hpp"

#include <cmath>
#include <istream>
#include <limits>
#include <ostream>

#include "common/logging.hpp"

namespace neusight::core {

namespace {

double
logGap(double a, double b)
{
    const double d = std::log1p(a) - std::log1p(b);
    return d * d;
}

uint64_t
recordHash(const std::string &op, const TileRecord &rec)
{
    uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ULL;
    };
    for (char c : op)
        mix(static_cast<uint64_t>(static_cast<unsigned char>(c)));
    for (uint64_t d : rec.outDims)
        mix(d);
    for (uint64_t d : rec.tileDims)
        mix(d);
    mix(static_cast<uint64_t>(rec.numSms));
    mix(static_cast<uint64_t>(rec.l2Bytes));
    return h;
}

void
writeU64(std::ostream &out, uint64_t v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

uint64_t
readU64(std::istream &in)
{
    uint64_t v = 0;
    in.read(reinterpret_cast<char *>(&v), sizeof(v));
    return v;
}

} // namespace

void
TileDatabase::record(const gpusim::KernelDesc &desc,
                     const std::vector<uint64_t> &tile_dims,
                     const gpusim::GpuSpec &gpu)
{
    ensure(tile_dims.size() == desc.outDims.size(),
           "TileDatabase::record: rank mismatch");
    TileRecord rec;
    rec.outDims = desc.outDims.toVector();
    rec.tileDims = tile_dims;
    rec.numSms = static_cast<double>(gpu.numSms);
    rec.l2Bytes = gpu.l2Bytes();
    rec.type = desc.type;

    auto &bucket = records[desc.opName];
    const uint64_t h = recordHash(desc.opName, rec);
    if (!hashes[desc.opName].insert(h).second)
        return; // Exact duplicate launch already stored.
    bucket.push_back(std::move(rec));
}

std::vector<uint64_t>
TileDatabase::lookup(const gpusim::KernelDesc &desc,
                     const gpusim::GpuSpec &gpu) const
{
    return lookupBatch({desc}, gpu).front();
}

namespace {

/**
 * Per-record terms of the match distance that do not depend on the
 * query: log1p of every record dimension and the two (already halved)
 * GPU-feature gaps. Computed once per batch instead of once per
 * (record, query) pair; the accumulation below replays the exact
 * floating-point operation order of the scalar path, so batched results
 * stay bit-identical.
 */
struct RecordSide
{
    static constexpr size_t kMaxRank = 4;
    double logDims[kMaxRank];
    double smsGapHalf;
    double l2GapHalf;
};

} // namespace

std::vector<std::vector<uint64_t>>
TileDatabase::lookupBatch(const std::vector<gpusim::KernelDesc> &descs,
                          const gpusim::GpuSpec &gpu) const
{
    std::vector<std::vector<uint64_t>> tiles;
    tiles.reserve(descs.size());
    if (descs.empty())
        return tiles;

    const double gpu_sms = static_cast<double>(gpu.numSms);
    const double gpu_l2 = gpu.l2Bytes();
    // Query-independent record terms, filled lazily per bucket the first
    // time any query touches it (the fallback cascades rarely run, so
    // most batches only ever precompute the buckets they name).
    std::unordered_map<const std::vector<TileRecord> *,
                       std::vector<RecordSide>>
        sides;
    const auto sideOf =
        [&](const std::vector<TileRecord> &bucket)
        -> const std::vector<RecordSide> & {
        auto [it, inserted] = sides.emplace(&bucket,
                                            std::vector<RecordSide>());
        if (inserted) {
            it->second.reserve(bucket.size());
            for (const TileRecord &rec : bucket) {
                RecordSide side;
                const size_t rank =
                    std::min(rec.outDims.size(), RecordSide::kMaxRank);
                for (size_t i = 0; i < rank; ++i)
                    side.logDims[i] =
                        std::log1p(static_cast<double>(rec.outDims[i]));
                side.smsGapHalf = 0.5 * logGap(gpu_sms, rec.numSms);
                side.l2GapHalf = 0.5 * logGap(gpu_l2, rec.l2Bytes);
                it->second.push_back(side);
            }
        }
        return it->second;
    };

    double query_log_dims[RecordSide::kMaxRank];
    for (const gpusim::KernelDesc &desc : descs) {
        const size_t rank =
            std::min(desc.outDims.size(), RecordSide::kMaxRank);
        for (size_t i = 0; i < rank; ++i)
            query_log_dims[i] =
                std::log1p(static_cast<double>(desc.outDims[i]));

        auto scan = [&](const std::vector<TileRecord> &bucket,
                        bool require_same_type, double &best_dist,
                        const TileRecord *&best_rec) {
            const std::vector<RecordSide> &side = sideOf(bucket);
            for (size_t r = 0; r < bucket.size(); ++r) {
                const TileRecord &rec = bucket[r];
                if (rec.outDims.size() != desc.outDims.size())
                    continue;
                if (require_same_type && rec.type != desc.type)
                    continue;
                double dist = 0.0;
                if (rec.outDims.size() <= RecordSide::kMaxRank) {
                    for (size_t i = 0; i < rec.outDims.size(); ++i) {
                        const double d =
                            query_log_dims[i] - side[r].logDims[i];
                        dist += d * d;
                    }
                } else {
                    // Ranks beyond the precomputed capacity (none exist
                    // today) fall back to the scalar arithmetic.
                    for (size_t i = 0; i < rec.outDims.size(); ++i)
                        dist +=
                            logGap(static_cast<double>(desc.outDims[i]),
                                   static_cast<double>(rec.outDims[i]));
                }
                dist += side[r].smsGapHalf;
                dist += side[r].l2GapHalf;
                // Ties break on lexicographically smaller tile so the
                // lookup is deterministic regardless of hash-map
                // iteration order.
                if (dist < best_dist ||
                    (dist == best_dist && best_rec != nullptr &&
                     rec.tileDims < best_rec->tileDims)) {
                    best_dist = dist;
                    best_rec = &rec;
                }
            }
        };

        double best_dist = std::numeric_limits<double>::max();
        const TileRecord *best_rec = nullptr;
        const auto it = records.find(desc.opName);
        if (it != records.end())
            scan(it->second, false, best_dist, best_rec);
        if (best_rec == nullptr) {
            // Unseen kernel name: nearest record of the same operator
            // family (libraries tile a family identically regardless of
            // the exact pointwise op).
            for (const auto &[name, recs] : records)
                scan(recs, true, best_dist, best_rec);
        }
        if (best_rec == nullptr) {
            // Last resort: nearest rank-compatible record of any family.
            for (const auto &[name, recs] : records)
                scan(recs, false, best_dist, best_rec);
        }
        if (best_rec == nullptr)
            fatal("TileDatabase::lookup: no rank-compatible entry for '" +
                  desc.opName + "'");
        // Tiles never exceed the output extent of the queried kernel.
        std::vector<uint64_t> tile = best_rec->tileDims;
        for (size_t i = 0; i < tile.size(); ++i)
            tile[i] =
                std::min<uint64_t>(std::max<uint64_t>(tile[i], 1),
                                   std::max<uint64_t>(desc.outDims[i], 1));
        tiles.push_back(std::move(tile));
    }
    return tiles;
}

size_t
TileDatabase::size() const
{
    size_t total = 0;
    for (const auto &[name, recs] : records)
        total += recs.size();
    return total;
}

void
TileDatabase::save(std::ostream &out) const
{
    writeU64(out, records.size());
    for (const auto &[name, recs] : records) {
        writeU64(out, name.size());
        out.write(name.data(), static_cast<std::streamsize>(name.size()));
        writeU64(out, recs.size());
        for (const auto &rec : recs) {
            writeU64(out, rec.outDims.size());
            for (uint64_t d : rec.outDims)
                writeU64(out, d);
            for (uint64_t d : rec.tileDims)
                writeU64(out, d);
            writeU64(out, static_cast<uint64_t>(rec.numSms));
            writeU64(out, static_cast<uint64_t>(rec.l2Bytes));
            writeU64(out, static_cast<uint64_t>(rec.type));
        }
    }
    if (!out)
        fatal("TileDatabase::save: write failed");
}

void
TileDatabase::load(std::istream &in)
{
    records.clear();
    hashes.clear();
    const uint64_t buckets = readU64(in);
    for (uint64_t b = 0; b < buckets && in; ++b) {
        const uint64_t name_len = readU64(in);
        std::string name(name_len, '\0');
        in.read(name.data(), static_cast<std::streamsize>(name_len));
        const uint64_t count = readU64(in);
        auto &bucket = records[name];
        for (uint64_t r = 0; r < count && in; ++r) {
            TileRecord rec;
            const uint64_t rank = readU64(in);
            rec.outDims.resize(rank);
            rec.tileDims.resize(rank);
            for (uint64_t i = 0; i < rank; ++i)
                rec.outDims[i] = readU64(in);
            for (uint64_t i = 0; i < rank; ++i)
                rec.tileDims[i] = readU64(in);
            rec.numSms = static_cast<double>(readU64(in));
            rec.l2Bytes = static_cast<double>(readU64(in));
            rec.type = static_cast<gpusim::OpType>(readU64(in));
            hashes[name].insert(recordHash(name, rec));
            bucket.push_back(std::move(rec));
        }
    }
    if (!in)
        fatal("TileDatabase::load: truncated file");
}

} // namespace neusight::core
