#include "core/kernel_cache.hpp"

#include <cinttypes>
#include <cstdio>

#include "core/predictor.hpp"

namespace neusight::core {

using gpusim::GpuSpec;
using gpusim::KernelDesc;

std::string
cacheFingerprint(const KernelDesc &desc, const GpuSpec &gpu,
                 bool canonical_op)
{
    std::string key = kernelFingerprintPart(desc, canonical_op);
    key += gpuFeatureFingerprint(gpu);
    return key;
}

std::string
kernelFingerprintPart(const KernelDesc &desc, bool canonical_op)
{
    std::string key;
    key.reserve(192);
    key += std::to_string(static_cast<int>(desc.type));
    key += '|';
    key += canonical_op ? canonicalOpName(desc.opName) : desc.opName;
    key += '|';
    for (uint64_t d : desc.outDims) {
        key += std::to_string(d);
        key += 'x';
    }
    char buf[256];
    // %.17g round-trips doubles: distinct FLOP/byte counts never collide.
    std::snprintf(buf, sizeof(buf), "|%" PRIu64 "|%.17g|%.17g|%d|%d@",
                  desc.reduceDim, desc.flops, desc.memBytes,
                  static_cast<int>(desc.dtype),
                  desc.usesTensorCore ? 1 : 0);
    key += buf;
    return key;
}

std::string
gpuFeatureFingerprint(const GpuSpec &gpu)
{
    // Two specs sharing a name but differing in any number must key
    // apart (hypothetical GPUs can shadow a database name).
    std::string key = gpu.name;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "|%d|%.17g|%.17g|%.17g|%.17g|%.17g|%d|%.17g|%.17g",
                  static_cast<int>(gpu.vendor), gpu.peakFp32Tflops,
                  gpu.matrixFp32Tflops, gpu.fp16TensorTflops,
                  gpu.memorySizeGB, gpu.memoryBwGBps, gpu.numSms,
                  gpu.l2CacheMB, gpu.interconnectGBps);
    key += buf;
    return key;
}

} // namespace neusight::core
