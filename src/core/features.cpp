#include "core/features.hpp"

#include "common/logging.hpp"

namespace neusight::core {

std::vector<double>
buildFeatures(const gpusim::KernelDesc &desc, const gpusim::TileInfo &tile,
              uint64_t num_waves, const gpusim::GpuSpec &gpu)
{
    ensure(tile.flopsPerTile > 0.0 && tile.memBytesPerTile > 0.0,
           "buildFeatures: tile costs must be positive");
    const double peak = gpusim::effectivePeakFlops(desc, gpu);
    const double peak_per_sm = peak / gpu.numSms;
    const double waves = static_cast<double>(num_waves);

    std::vector<double> features(kNumFeatures);
    features[0] = tile.flopsPerTile / peak_per_sm;
    features[1] = tile.memBytesPerTile / gpu.memBwPerSm();
    features[2] = waves * tile.memBytesPerTile / gpu.l2BytesPerSm();
    features[3] = waves * tile.memBytesPerTile / gpu.memBytesPerSm();
    features[4] = (tile.flopsPerTile / tile.memBytesPerTile) /
                  (peak / gpu.memBwBytes());
    return features;
}

} // namespace neusight::core
