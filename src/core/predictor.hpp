/**
 * @file
 * The NeuSight predictor (the paper's primary contribution, Section 4):
 * per-operator-family MLPs predict tile-level *utilization* through the
 * law util = alpha - beta/numWaves (Eq. 7-8), bounded by a sigmoid; the
 * kernel latency follows from the per-SM roofline (Eq. 1) and the wave
 * arithmetic (Eq. 2-4). Kernel predictions aggregate over the dataflow
 * graph for per-GPU latency (Section 5).
 */

#ifndef NEUSIGHT_CORE_PREDICTOR_HPP
#define NEUSIGHT_CORE_PREDICTOR_HPP

#include <map>
#include <memory>
#include <string>

#include "core/kernel_cache.hpp"
#include "core/tile_db.hpp"
#include "dataset/dataset.hpp"
#include "graph/graph.hpp"
#include "graph/latency_predictor.hpp"
#include "nn/module.hpp"
#include "nn/scaler.hpp"
#include "nn/trainer.hpp"

namespace neusight::core {

/**
 * Canonical lookup name of a kernel: fused kernels match their first
 * operator ("add+layernorm" -> "add", Section 4.4) and backward kernels
 * match their forward family ("layernorm_bwd" -> "layernorm"), since the
 * library tiles them identically. Also the op-name canonicalization of
 * the serving layer's prediction-cache fingerprint.
 */
std::string canonicalOpName(const std::string &op_name);

/** Hyper-parameters of one utilization MLP and its training loop. */
struct PredictorConfig
{
    /**
     * MLP width / depth. The paper uses 8 hidden layers of 512 units;
     * the default here is the scaled CPU-friendly configuration
     * (DESIGN.md Section 4) — pass {512, 8} for paper fidelity.
     */
    size_t hiddenDim = 64;
    size_t hiddenLayers = 6;
    nn::TrainConfig train;
    uint64_t seed = 11;

    /// @name Ablation switches (DESIGN.md Section 7). Defaults = paper.
    /// @{
    /**
     * Bound (alpha, beta) with a sigmoid (Eq. 8). Disabling lets the MLP
     * emit arbitrary utilizations — the "no performance laws" ablation.
     */
    bool sigmoidBound = true;
    /**
     * Keep the -beta/numWaves term of Eq. 7. Disabling predicts a
     * constant per-kernel utilization — the "no occupancy ramp" ablation.
     */
    bool waveTerm = true;
    /**
     * Clamp standardized features to the range seen during training (the
     * input-side bound; see FeatureScaler::setClampToFitRange).
     */
    bool clampFeatures = true;
    /// @}

    PredictorConfig()
    {
        train.epochs = 60;
        train.batchSize = 64;
        train.lr = 1e-3;
        train.lrDecay = 0.98;
        train.weightDecay = 1e-5;
        train.loss = nn::LossKind::Smape;
        train.validationFraction = 0.15;
    }
};

/** Utilization floor: predictions clamp to [kMinUtil, 1]. */
inline constexpr double kMinUtil = 1e-3;

/** Per-kernel prediction breakdown (for tests, ablations and debugging). */
struct PredictionDetail
{
    std::vector<uint64_t> tileDims;
    uint64_t numTiles = 0;
    uint64_t numWaves = 0;
    double alpha = 0.0;
    double beta = 0.0;
    double utilization = 0.0;
    double rooflinePerSm = 0.0;
    double latencyMs = 0.0;
    /** True when the memory-bound fallback path produced the estimate. */
    bool memoryFallback = false;
};

/** One operator family's utilization predictor. */
class KernelPredictor
{
  public:
    /**
     * Numeric lane for the MLP forward pass. F64 runs the reference
     * double-precision kernels and stays bit-identical across releases;
     * F32 runs the fused single-precision SIMD lane
     * (nn::Mlp::inferRowsF32), which agrees with F64 to ~1e-6 relative
     * on (alpha, beta) and well within 1e-4 on predicted latency.
     */
    enum class Precision
    {
        F64,
        F32,
    };

    /** Construct an untrained predictor for @p type. */
    KernelPredictor(gpusim::OpType type, const PredictorConfig &config);

    /**
     * Train on measured launches (profiler tile metadata included in each
     * sample). Returns the loss history.
     */
    nn::TrainHistory train(const dataset::OperatorDataset &data);

    /**
     * Predict the latency of @p desc on @p gpu given the tile dims the
     * database matched (Eq. 1-8). Routes through predictBatch() with a
     * single row, so the two paths cannot diverge.
     */
    PredictionDetail predict(const gpusim::KernelDesc &desc,
                             const gpusim::GpuSpec &gpu,
                             const std::vector<uint64_t> &tile_dims) const;

    /**
     * Predict N kernels of this family in one pass: the feature matrix
     * is built, scaled, and pushed through the MLP as a single (N, F)
     * batch with the tape-free Mlp::inferRows, so the per-kernel cost
     * collapses to feature construction plus one row of a batched GEMM.
     * @p tile_dims holds one tile-dimension vector per kernel (the tile
     * database match). Results are bit-identical to calling predict()
     * per kernel.
     */
    std::vector<PredictionDetail>
    predictBatch(const std::vector<gpusim::KernelDesc> &descs,
                 const gpusim::GpuSpec &gpu,
                 const std::vector<std::vector<uint64_t>> &tile_dims) const;

    /** The operator family this predictor serves. */
    gpusim::OpType type() const { return opType; }

    /**
     * Select the numeric lane for predict/predictBatch. Switching to F32
     * snapshots the current MLP weights into float32 (and train/load
     * refresh the snapshot), so call it only while no predictions are in
     * flight — the same single-writer rule as NeuSight::attachCache.
     */
    void setPrecision(Precision precision);

    /** The active numeric lane (default F64). */
    Precision precision() const { return precision_; }

    /** Serialize MLP weights, scaler and utilization floor (binary). */
    void save(std::ostream &out) const;

    /** Restore state written by save(). */
    void load(std::istream &in);

    /**
     * Lowest utilization the prediction may emit. Training sets this from
     * the corpus: no kernel of this family ever ran below that fraction
     * of its roofline on any training GPU, so predictions clamp to the
     * observed operating range (with a 2x safety margin) — the output-
     * side analogue of the sigmoid bound, which keeps far-out-of-
     * distribution shapes from collapsing to near-zero utilization and
     * exploding the latency.
     */
    double utilizationFloor() const { return utilFloor; }

  private:
    gpusim::OpType opType;
    PredictorConfig config;
    std::unique_ptr<nn::Mlp> mlp;
    nn::FeatureScaler scaler;
    double utilFloor = kMinUtil;
    Precision precision_ = Precision::F64;
};

/** Parse "f64"/"f32" (tool --precision flags); anything else is fatal. */
KernelPredictor::Precision parsePrecision(const std::string &name);

/** Canonical spelling of a precision lane ("f64" / "f32"). */
const char *precisionName(KernelPredictor::Precision precision);

/** The full NeuSight framework: five predictors + tile database. */
class NeuSight : public graph::LatencyPredictor
{
  public:
    std::string name() const override { return "NeuSight"; }

    /** Construct untrained with the given per-predictor configuration. */
    explicit NeuSight(const PredictorConfig &config = PredictorConfig());

    /**
     * Train every operator-family predictor and populate the tile
     * database from the corpus' profiler metadata.
     */
    void train(const std::map<gpusim::OpType,
                              dataset::OperatorDataset> &corpus);

    /** Predict one kernel's latency on @p gpu in milliseconds. */
    double predictKernelMs(const gpusim::KernelDesc &desc,
                           const gpusim::GpuSpec &gpu) const override;

    /** Full breakdown for one kernel. */
    PredictionDetail predictKernelDetail(const gpusim::KernelDesc &desc,
                                         const gpusim::GpuSpec &gpu) const;

    /**
     * Attach a kernel-prediction cache: predictKernelDetail (and thus
     * every kernel/graph forecast) first consults the cache by canonical
     * (kernel, GPU) fingerprint and inserts on a miss, so graph
     * forecasts skip re-predicting repeated kernels. Pass nullptr to
     * detach.
     *
     * Thread-safety: once trained (or loaded), concurrent predict*()
     * calls are safe — the forward pass only reads parameters and the
     * tile database, and the cache must be internally synchronized
     * (see KernelPredictionCache). Attach or detach the cache, and run
     * train()/load(), only while no predictions are in flight.
     */
    void attachCache(std::shared_ptr<KernelPredictionCache> cache);

    /** The attached prediction cache, or nullptr. */
    const std::shared_ptr<KernelPredictionCache> &predictionCache() const
    {
        return cache_;
    }

    /**
     * Batched kernel prediction with graph-level dedup: the descriptors
     * group by canonical (kernel, GPU) fingerprint — transformer graphs
     * repeat the same few dozen shapes across every layer — each unique
     * fingerprint is resolved once (attached cache first, then one
     * predictBatch call per operator family for the misses, memory
     * fallback for families without a learned predictor), and the
     * per-descriptor latencies fan back out. The base-class
     * predictGraphMs() routes through this, so graph forecasts pay one
     * batched MLP pass per op family instead of one taped forward per
     * node. Thread-safe once trained (see attachCache).
     */
    std::vector<double>
    predictKernelsMs(const std::vector<gpusim::KernelDesc> &descs,
                     const gpusim::GpuSpec &gpu) const override;

    /**
     * Select the numeric lane of every operator-family predictor (see
     * KernelPredictor::setPrecision). Apply only while no predictions
     * are in flight. F64 (the default) keeps all forecasts bit-identical
     * to prior releases; F32 trades ≤1e-4 relative latency drift for the
     * vectorized single-precision MLP lane.
     */
    void setPrecision(KernelPredictor::Precision precision);

    /** The active numeric lane (default F64). */
    KernelPredictor::Precision precision() const { return precision_; }

    /** The tile database (populated by train / load). */
    const TileDatabase &tileDatabase() const { return tileDb; }

    /** Mutable access (tests inject synthetic records). */
    TileDatabase &tileDatabase() { return tileDb; }

    /** Persist the trained framework to @p path. */
    void save(const std::string &path) const;

    /** Load a framework persisted with save(). */
    void load(const std::string &path);

    /**
     * Cache helper used by benches: load @p path if present, otherwise
     * generate the Section-6.1 corpus on @p gpus, train, and save.
     */
    static NeuSight trainOrLoad(const std::string &path,
                                const std::vector<gpusim::GpuSpec> &gpus,
                                const dataset::SamplerConfig &sampler,
                                const PredictorConfig &config =
                                    PredictorConfig());

  private:
    PredictorConfig config;
    std::map<gpusim::OpType, std::unique_ptr<KernelPredictor>> predictors;
    TileDatabase tileDb;
    std::shared_ptr<KernelPredictionCache> cache_;
    KernelPredictor::Precision precision_ = KernelPredictor::Precision::F64;
};

} // namespace neusight::core

#endif // NEUSIGHT_CORE_PREDICTOR_HPP
