/**
 * @file
 * The kernel-prediction-cache seam of the core predictor: a minimal
 * interface NeuSight consults before re-deriving a kernel forecast,
 * plus the canonical (kernel, GPU) fingerprint both sides key on. The
 * serving layer's sharded LRU cache (serve/prediction_cache.hpp) is one
 * implementation; core itself depends only on this header, so serve/
 * stays a pure consumer of core and can split into its own library.
 */

#ifndef NEUSIGHT_CORE_KERNEL_CACHE_HPP
#define NEUSIGHT_CORE_KERNEL_CACHE_HPP

#include <string>

#include "gpusim/gpu_spec.hpp"
#include "gpusim/kernel_desc.hpp"

namespace neusight::core {

struct PredictionDetail;

/**
 * Memoization point for per-kernel forecasts. Implementations must be
 * safe for concurrent lookup/insert: NeuSight consults the cache from
 * every predict*() call, and trained predictors are documented as
 * concurrently usable.
 */
class KernelPredictionCache
{
  public:
    virtual ~KernelPredictionCache() = default;

    /** Find @p key; on a hit copy the entry to @p out, return true. */
    virtual bool lookup(const std::string &key,
                        PredictionDetail &out) = 0;

    /** Insert (or refresh) @p key. */
    virtual void insert(const std::string &key,
                        const PredictionDetail &detail) = 0;
};

/**
 * Canonical fingerprint of a (kernel, GPU) prediction: two kernels with
 * the same fingerprint are guaranteed the same forecast. With
 * @p canonical_op (the NeuSight wiring) the kernel side canonicalizes
 * the op name through canonicalOpName — fused and backward kernels
 * predict through their base operator's tile entry, so they share an
 * entry. Generic backends (serve::CachedPredictor) key on the raw op
 * name instead: an arbitrary inner predictor may distinguish kernels
 * the NeuSight feature set does not. The GPU side covers every public
 * feature the predictor reads, so hypothetical JSON-defined GPUs key
 * correctly even when they share a name with a database entry.
 */
std::string cacheFingerprint(const gpusim::KernelDesc &desc,
                             const gpusim::GpuSpec &gpu,
                             bool canonical_op = true);

/**
 * The kernel half of cacheFingerprint: everything the key derives from
 * the descriptor, without the GPU suffix. Batched prediction dedups
 * graph nodes against a fixed GPU, so it hashes this half per node and
 * appends gpuFeatureFingerprint once per unique kernel —
 * kernelFingerprintPart(d, c) + gpuFeatureFingerprint(g) ==
 * cacheFingerprint(d, g, c) by construction.
 */
std::string kernelFingerprintPart(const gpusim::KernelDesc &desc,
                                  bool canonical_op = true);

/**
 * The GPU half of every cache key: name plus each public feature
 * (Table 4). Shared with the serving layer's request fingerprints so
 * the two keys cannot silently diverge when GpuSpec grows a field.
 */
std::string gpuFeatureFingerprint(const gpusim::GpuSpec &gpu);

} // namespace neusight::core

#endif // NEUSIGHT_CORE_KERNEL_CACHE_HPP
