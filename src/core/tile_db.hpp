/**
 * @file
 * Tile database (paper Section 6.1, "Tile size"): during training-data
 * collection NeuSight records, per kernel launch, the kernel name, output
 * dimensions, GPU features and the tile size the library chose. At
 * prediction time — possibly for a GPU or shape never profiled — it picks
 * the entry with the closest kernel name, dimensions and GPU features.
 */

#ifndef NEUSIGHT_CORE_TILE_DB_HPP
#define NEUSIGHT_CORE_TILE_DB_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "gpusim/gpu_spec.hpp"
#include "gpusim/kernel_desc.hpp"

namespace neusight::core {

/** One recorded launch. */
struct TileRecord
{
    std::vector<uint64_t> outDims;
    std::vector<uint64_t> tileDims;
    /** GPU features used for nearest-match: SM count and L2 bytes. */
    double numSms = 0.0;
    double l2Bytes = 0.0;
    /** Operator family, for the unseen-kernel-name fallback. */
    gpusim::OpType type = gpusim::OpType::Memory;
};

/** Nearest-match store of observed tile sizes. */
class TileDatabase
{
  public:
    /** Record a launch observed during profiling on a training GPU. */
    void record(const gpusim::KernelDesc &desc,
                const std::vector<uint64_t> &tile_dims,
                const gpusim::GpuSpec &gpu);

    /**
     * Look up the tile for @p desc on @p gpu: closest entry by kernel
     * name, log-space output dimensions, and GPU features. fatal() when
     * the database holds no entry for the kernel's op family.
     */
    std::vector<uint64_t> lookup(const gpusim::KernelDesc &desc,
                                 const gpusim::GpuSpec &gpu) const;

    /**
     * Resolve the tiles of a whole prediction batch in one pass. The
     * GPU-feature gap terms and the log-space record dimensions are
     * computed once per touched record instead of once per (record,
     * query) pair, so resolving N kernels against a B-record database
     * costs O(B + N·B) flops instead of O(3·N·B) transcendentals.
     * Each entry is bit-identical to lookup(descs[i], gpu).
     */
    std::vector<std::vector<uint64_t>>
    lookupBatch(const std::vector<gpusim::KernelDesc> &descs,
                const gpusim::GpuSpec &gpu) const;

    /** Number of stored records. */
    size_t size() const;

    /** Serialize (binary). */
    void save(std::ostream &out) const;

    /** Restore state written by save(). */
    void load(std::istream &in);

  private:
    /** Keyed by op family name (e.g. "bmm", "add", "softmax"). */
    std::unordered_map<std::string, std::vector<TileRecord>> records;
    /** Hashes of stored records per family, for duplicate suppression. */
    std::unordered_map<std::string, std::unordered_set<uint64_t>> hashes;
};

} // namespace neusight::core

#endif // NEUSIGHT_CORE_TILE_DB_HPP
