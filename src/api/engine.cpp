#include "api/engine.hpp"

#include <chrono>
#include <utility>

#include "common/logging.hpp"
#include "core/predictor.hpp"
#include "graph/cnn.hpp"
#include "graph/model_io.hpp"
#include "graph/models.hpp"
#include "gpusim/spec_io.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace neusight::api {

namespace {

/** The multi-GPU server a Distributed/Hybrid/Sweep request targets. */
dist::ServerConfig
serverFromRequest(const ForecastRequest &req)
{
    dist::ServerConfig server;
    server.systemName = req.gpu.name + "-server";
    server.numGpus = req.numGpus;
    server.linkGBps = req.linkGBps;
    server.setGpu(req.gpu);
    return server;
}

} // namespace

ForecastEngine::ForecastEngine(EngineConfig config_)
    : config(std::move(config_))
{
    // Validate eagerly so a typo fails at construction, not inside the
    // first forecast (where it would surface as an ok=false result).
    core::parsePrecision(config.precisionLane);
    reg = config.registry;
    if (!reg)
        reg = PredictorRegistry::withBuiltins(config.neusightPath,
                                              config.trainingGpus);
    cache = config.sharedCache;
    if (!cache && config.cacheCapacity > 0)
        cache = std::make_shared<serve::PredictionCache>(
            config.cacheCapacity);
    graphCache = config.sharedGraphCache;
    if (!graphCache && config.graphCacheCapacity > 0)
        graphCache = std::make_shared<serve::ModelGraphCache>(
            config.graphCacheCapacity);
    comms = config.comms;
    if (!comms)
        comms = std::make_shared<dist::EstimatedCollectives>(
            config.referenceSystem, config.referenceLinkGBps);
    metricsReg = config.sharedMetrics;
    if (!metricsReg)
        metricsReg = std::make_shared<obs::MetricsRegistry>();
    requestsTotal = metricsReg->counter("engine.requests");
    failuresTotal = metricsReg->counter("engine.failures");
    // Engines per registry: 1 here, and N in a merged cross-shard
    // snapshot (obs::mergeMetricsSnapshots sums gauges), so a cluster
    // stats reply reports how many engine processes produced it.
    metricsReg->gauge("engine.instances")->add(1);
    // Sweeps executed through this engine report into its registry
    // unless the caller already pointed them elsewhere.
    if (!config.sweep.metrics)
        config.sweep.metrics = metricsReg;
    // Adopt the caches' live counters: the registry snapshot and
    // cacheStats() now read the same atomics and cannot drift.
    if (cache)
        serve::PredictionCache::registerMetrics(cache, *metricsReg,
                                                "cache.prediction");
    if (graphCache)
        serve::ModelGraphCache::registerMetrics(graphCache, *metricsReg,
                                                "cache.graph");
    if (!config.cacheLoadPath.empty())
        loadPredictionCache(config.cacheLoadPath);
}

const ForecastEngine::WiredBackend &
ForecastEngine::wire(const std::string &name) const
{
    {
        // Fast path: already-wired backends must never wait behind a
        // cold backend's construction (training a NeuSight framework
        // can take minutes; stalling every server worker on the wire
        // lock meanwhile would freeze the whole pool).
        std::lock_guard<std::mutex> lock(wireMutex);
        const auto it = wired.find(name);
        if (it != wired.end())
            return it->second;
    }

    // Construct outside the wire lock. The registry serializes
    // construction internally, so a name builds exactly once even when
    // several workers race on it.
    const graph::LatencyPredictor &raw = reg->get(name);

    std::lock_guard<std::mutex> lock(wireMutex);
    const auto it = wired.find(name);
    if (it != wired.end()) // Another worker wired it meanwhile.
        return it->second;

    WiredBackend backend;
    auto *neusight = dynamic_cast<core::NeuSight *>(reg->getOwned(name));
    const core::KernelPredictor::Precision lane =
        core::parsePrecision(config.precisionLane);
    if (neusight && neusight->precision() != lane) {
        // Apply the configured numeric lane before the backend is ever
        // handed out by this engine. Wiring happens once per name, ahead
        // of any prediction through this engine, so the weight snapshot
        // the switch takes is never concurrent with our own inference.
        neusight->setPrecision(lane);
    }
    // The f32 lane rounds differently from the reference f64 lane, so
    // its entries get their own key scope: a persisted snapshot reloaded
    // under the other lane must miss, not serve near-but-not-bit-equal
    // values. The default lane keeps the bare name — existing snapshots
    // stay valid.
    const std::string scope =
        lane == core::KernelPredictor::Precision::F64
            ? name
            : name + "@" + core::precisionName(lane);
    if (!cache) {
        backend.predictor = &raw;
    } else if (neusight && neusight->predictionCache() == nullptr) {
        // Registry-owned NeuSight with no cache yet: attach the engine
        // cache natively (keeps the batched dedup path) under a
        // per-backend key scope. The instance has not been handed out
        // by this engine yet, so none of our workers predict through
        // it before the attach.
        neusight->attachCache(std::make_shared<serve::ScopedKernelCache>(
            cache, scope));
        backend.predictor = neusight;
    } else if (neusight) {
        // Already carries a cache (the registry is shared and another
        // engine attached first, or the user attached one): leave it
        // untouched — re-attaching would clobber that wiring and race
        // with in-flight predictions. Forecasts stay correct (entries
        // are deterministic per fingerprint); the hits simply land in
        // the first attacher's cache.
        backend.predictor = neusight;
    } else {
        // Generic (or externally-owned) backend: decorate with the
        // shared cache, scoped so two backends never trade entries.
        backend.wrapper = std::make_unique<serve::CachedPredictor>(
            raw, cache, name);
        backend.predictor = backend.wrapper.get();
    }
    return wired.emplace(name, std::move(backend)).first->second;
}

const graph::LatencyPredictor &
ForecastEngine::backend(const std::string &name) const
{
    return *wire(name.empty() ? config.defaultBackend : name).predictor;
}

gpusim::GpuSpec
ForecastEngine::resolveGpu(const std::string &name_or_path,
                           const std::string &json_override)
{
    if (!json_override.empty())
        return gpusim::loadGpuSpecs(json_override).front();
    return gpusim::resolveGpu(name_or_path);
}

std::shared_ptr<obs::Histogram>
ForecastEngine::requestHistogram(RequestKind kind,
                                 const std::string &backend_name) const
{
    const std::string name = std::string("engine.request_us.") +
                             requestKindName(kind) + '.' + backend_name;
    std::lock_guard<std::mutex> lock(histMutex);
    auto it = requestHist.find(name);
    if (it == requestHist.end())
        it = requestHist.emplace(name, metricsReg->histogram(name, "us"))
                 .first;
    return it->second;
}

ForecastResult
ForecastEngine::forecast(const ForecastRequest &req) const
{
    obs::Tracer &tracer = obs::Tracer::global();
    obs::TraceSpan span(
        tracer.enabled() ? std::string("engine.forecast.") +
                               requestKindName(req.kind)
                         : std::string(),
        "engine", tracer);
    const auto started = std::chrono::steady_clock::now();
    ForecastResult result;
    result.tag = req.tag;
    if (req.kind == RequestKind::Stats) {
        // Registry snapshot, shipped as an opaque payload so the wire
        // layer can embed it without knowing the metric vocabulary.
        // Counted before snapshotting so the snapshot includes itself.
        requestsTotal->inc();
        result.payload = metricsReg->toJson().dump(0);
        return result;
    }
    if (req.kind == RequestKind::Ping) {
        // Liveness probe: nothing to compute. The socket layer answers
        // pings inline without reaching here; this path serves the
        // stdin/script modes.
        requestsTotal->inc();
        return result;
    }
    try {
        const graph::LatencyPredictor &predictor = backend(req.backend);
        switch (req.kind) {
          case RequestKind::Inference:
          case RequestKind::DecodeStep:
          case RequestKind::Training: {
            // Model resolution stays inside the build closure: on a
            // graph-cache hit the request skips it entirely, which
            // matters when req.model is a JSON path (resolveModel
            // reads and parses the file per call).
            const auto build = [&] {
                const graph::ModelConfig model =
                    graph::resolveModel(req.model);
                if (req.kind == RequestKind::Inference)
                    return graph::buildInferenceGraph(model, req.batch,
                                                      req.dtype);
                if (req.kind == RequestKind::DecodeStep)
                    return graph::buildDecodeGraph(model, req.batch,
                                                   req.pastLen, req.dtype);
                return graph::buildTrainingGraph(model, req.batch,
                                                 req.dtype);
            };
            // The graph is GPU-independent, so the cache key deliberately
            // omits the target GPU (and the backend): requests differing
            // only there share one built graph.
            std::shared_ptr<const graph::KernelGraph> g;
            if (graphCache) {
                const std::string key =
                    std::string(requestKindName(req.kind)) + '|' +
                    req.model + '|' + std::to_string(req.batch) + '|' +
                    std::to_string(req.pastLen) + '|' +
                    std::to_string(static_cast<int>(req.dtype));
                g = graphCache->getOrBuild(key, build);
            } else {
                g = std::make_shared<const graph::KernelGraph>(build());
            }
            result.kernelCount = g->computeNodeCount();
            result.latencyMs = predictor.predictGraphMs(*g, req.gpu);
            break;
          }
          case RequestKind::Distributed: {
            const graph::ModelConfig model =
                graph::resolveModel(req.model);
            const dist::ServerConfig server = serverFromRequest(req);
            const std::string reject = dist::validateStrategy(
                model, server, req.globalBatch, req.strategy,
                req.pipeline);
            if (!reject.empty()) {
                result.ok = false;
                result.error = reject;
                break;
            }
            dist::DistributedResult dr;
            if (req.strategy == dist::Parallelism::Pipeline)
                dr = dist::pipelineTrainingMs(predictor, *comms, server,
                                              model, req.globalBatch,
                                              req.pipeline);
            else
                dr = dist::distributedTrainingMs(predictor, *comms,
                                                 server, model,
                                                 req.globalBatch,
                                                 req.strategy);
            result.latencyMs = dr.latencyMs;
            result.oom = dr.oom;
            result.commBytes = dr.commBytes;
            break;
          }
          case RequestKind::Hybrid:
          case RequestKind::Simulate: {
            const graph::ModelConfig model =
                graph::resolveModel(req.model);
            const dist::ServerConfig server = serverFromRequest(req);
            const std::string reject = dist::validateHybrid(
                model, server, req.globalBatch, req.hybrid);
            if (!reject.empty()) {
                result.ok = false;
                result.error = reject;
                break;
            }
            // Zero-bubble has no closed form: both request kinds route
            // it (and any explicit Simulate request) to the
            // discrete-event simulator.
            dist::HybridResult hr;
            if (req.kind == RequestKind::Simulate ||
                req.hybrid.schedule ==
                    dist::PipelineSchedule::ZeroBubble) {
                sim::SimOptions options;
                options.jitterFraction = req.jitterFraction;
                options.seed = req.simSeed;
                hr = sim::simulateHybrid(predictor, *comms, server,
                                         model, req.globalBatch,
                                         req.hybrid, options)
                         .hybrid;
            } else {
                hr = dist::hybridTrainingMs(predictor, *comms, server,
                                            model, req.globalBatch,
                                            req.hybrid);
            }
            result.latencyMs = hr.latencyMs;
            result.oom = hr.oom;
            result.commBytes = hr.commBytes;
            result.bubbleMs = hr.bubbleMs;
            result.exposedDdpMs = hr.exposedDdpMs;
            result.strategy = req.hybrid.describe();
            break;
          }
          case RequestKind::HybridSweep: {
            const graph::ModelConfig model =
                graph::resolveModel(req.model);
            const dist::ServerConfig server = serverFromRequest(req);
            const std::vector<dist::SweepEntry> entries =
                dist::sweepStrategies(predictor, *comms, server, model,
                                      req.globalBatch, config.sweep);
            if (entries.empty()) {
                result.ok = false;
                result.error =
                    "no runnable strategy: every (tp, pp, dp) "
                    "factorization failed validation or the memory "
                    "screen";
                break;
            }
            const dist::SweepEntry &winner = entries.front();
            result.latencyMs = winner.result.latencyMs;
            result.commBytes = winner.result.commBytes;
            result.strategy = winner.config.describe();
            break;
          }
          case RequestKind::Stats:
          case RequestKind::Ping:
            break; // Handled before the switch.
        }
    } catch (const std::exception &e) {
        result.ok = false;
        result.error = e.what();
    }
    if (cache)
        result.cache = cache->stats();
    requestsTotal->inc();
    if (!result.ok)
        failuresTotal->inc();
    const double elapsed_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - started)
            .count();
    requestHistogram(req.kind, req.backend.empty() ? config.defaultBackend
                                                   : req.backend)
        ->record(elapsed_us);
    return result;
}

CacheStats
ForecastEngine::cacheStats() const
{
    return cache ? cache->stats() : CacheStats{};
}

size_t
ForecastEngine::savePredictionCache(const std::string &path) const
{
    const std::string &target =
        path.empty() ? config.cacheSavePath : path;
    if (target.empty())
        fatal("ForecastEngine: no cache snapshot path configured "
              "(EngineConfig::saveCacheTo)");
    if (!cache)
        fatal("ForecastEngine: cannot snapshot a disabled cache");
    return cache->saveTo(target);
}

size_t
ForecastEngine::loadPredictionCache(const std::string &path)
{
    if (!cache)
        fatal("ForecastEngine: cannot load a snapshot into a disabled "
              "cache");
    return cache->loadFrom(path);
}

graph::KernelGraph
buildWorkloadGraph(const std::string &model, uint64_t batch, bool training,
                   gpusim::DataType dtype)
{
    if (model == "ResNet-50")
        return training ? graph::buildResNet50TrainingGraph(batch, dtype)
                        : graph::buildResNet50Graph(batch, dtype);
    if (model == "VGG-16") {
        if (training)
            fatal("VGG-16 training graph not provided; use inference");
        return graph::buildVgg16Graph(batch, dtype);
    }
    const graph::ModelConfig config = graph::resolveModel(model);
    return training ? graph::buildTrainingGraph(config, batch, dtype)
                    : graph::buildInferenceGraph(config, batch, dtype);
}

} // namespace neusight::api
