/**
 * @file
 * Named predictor-backend registry: the producer side of the public
 * forecasting API. Backends are registered as factories and constructed
 * lazily on first use — training or deserializing a predictor is
 * expensive, and most consumers only ever touch one or two of them —
 * then cached for the registry's lifetime. The built-in set mirrors the
 * predictors of the paper's evaluation: trained NeuSight frameworks
 * (one per predictor file, e.g. NVIDIA- and AMD-trained side by side),
 * the simulator oracle, and the three baselines (roofline, Habitat,
 * Li et al.). Consumers (ForecastEngine, the tools' --backend flags)
 * derive their accepted-backend lists from names(), so help text,
 * error messages, and reality cannot drift.
 */

#ifndef NEUSIGHT_API_REGISTRY_HPP
#define NEUSIGHT_API_REGISTRY_HPP

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gpusim/gpu_spec.hpp"
#include "graph/latency_predictor.hpp"

namespace neusight::api {

/**
 * Thread-safe registry of named, lazily-constructed latency-predictor
 * backends. References returned by get() stay valid for the registry's
 * lifetime. One registry typically serves one ForecastEngine (the
 * engine wires caches into the instances it hands out). Sharing a
 * registry across several cache-enabled engines works — an owned
 * NeuSight backend keeps whichever engine's cache was attached first,
 * and later engines leave it untouched — but the *first* use of such a
 * backend must not race across engines; wire it once (e.g. via
 * ForecastEngine::backend()) before fanning out, or share one
 * prediction cache between the engines.
 */
class PredictorRegistry
{
  public:
    /** Builds one backend; runs once, on first get() of the name. */
    using Factory =
        std::function<std::unique_ptr<graph::LatencyPredictor>()>;

    /** An empty registry (add backends before use). */
    PredictorRegistry() = default;

    PredictorRegistry(const PredictorRegistry &) = delete;
    PredictorRegistry &operator=(const PredictorRegistry &) = delete;

    /**
     * A registry pre-populated with the built-in backends:
     *   - "neusight": core::NeuSight::trainOrLoad at @p neusight_path
     *     on @p training_gpus (empty = the five NVIDIA training GPUs);
     *   - "oracle": the simulator ground truth (eval::SimulatorOracle);
     *   - "roofline", "habitat", "li": the paper's baselines — Habitat
     *     and Li train on a freshly generated operator corpus shared
     *     between the two (they define no cache format of their own).
     * Registration is cheap; nothing trains until a backend is used.
     */
    static std::shared_ptr<PredictorRegistry>
    withBuiltins(const std::string &neusight_path = "neusight_nvidia.bin",
                 std::vector<gpusim::GpuSpec> training_gpus = {});

    /** Register @p factory under @p name; fatal() on a duplicate. */
    void add(const std::string &name, Factory factory);

    /**
     * Register an externally-owned predictor (must outlive the
     * registry). External entries are handed out as-is: the engine
     * never mutates them (no cache attach), only wraps them.
     */
    void addExternal(const std::string &name,
                     const graph::LatencyPredictor &predictor);

    /**
     * Register a trained-NeuSight backend: trainOrLoad of @p path on
     * @p training_gpus (empty = nvidiaTrainingSet()) at first use.
     * This is how AMD-trained predictor files serve next to NVIDIA
     * ones: one entry per file, selected per request by name.
     */
    void addNeuSight(const std::string &name, const std::string &path,
                     std::vector<gpusim::GpuSpec> training_gpus = {});

    /** True when @p name is registered (loaded or not). */
    bool has(const std::string &name) const;

    /** True when @p name has already been constructed. */
    bool loaded(const std::string &name) const;

    /** Every registered name, sorted. */
    std::vector<std::string> names() const;

    /** The sorted names joined by @p separator (help/error text). */
    std::string namesJoined(const std::string &separator = " | ") const;

    /**
     * The backend named @p name, constructing it on first use. fatal()
     * (throws) on unknown names, listing every registered name.
     */
    const graph::LatencyPredictor &get(const std::string &name);

    /**
     * Mutable access to a registry-owned backend (constructing it like
     * get()), or nullptr when the entry was registered with
     * addExternal(). The ForecastEngine uses this to attach its
     * kernel-prediction cache to owned NeuSight instances at wiring
     * time, before the backend is ever shared.
     */
    graph::LatencyPredictor *getOwned(const std::string &name);

  private:
    struct Entry
    {
        /** Released after the build (closures can hold heavy state,
         *  e.g. the Habitat/Li training corpus memo). */
        Factory factory;
        std::unique_ptr<graph::LatencyPredictor> owned;
        const graph::LatencyPredictor *external = nullptr;
        /** Serializes this entry's one-time construction. */
        std::once_flag once;
        /** True once owned/external is safe to read without the flag. */
        std::atomic<bool> ready{false};
    };

    /**
     * Find @p name (registry lock held only for the map lookup) and
     * run its one-time construction under the entry's own once-flag,
     * so a minutes-long predictor training never blocks first use of
     * a *different* backend. fatal() on unknown names.
     */
    Entry &resolve(const std::string &name);

    void checkFresh(const std::string &name) const;

    mutable std::mutex mutex;
    /** Ordered so names() is sorted for free; node addresses are
     *  stable, so resolve() may construct outside the map lock. */
    std::map<std::string, Entry> entries;
};

} // namespace neusight::api

#endif // NEUSIGHT_API_REGISTRY_HPP
