/**
 * @file
 * ForecastEngine: the one entry point of the forecasting library. An
 * engine owns the predictor registry (named backends, selected per
 * request), the kernel-prediction cache, the model-graph cache, the
 * collective cost model, and GPU resolution — everything the tools,
 * the serving layer, and the examples previously wired by hand through
 * tools/tool_common.hpp. The typed request/result vocabulary is the
 * serving layer's (serve::ForecastRequest / serve::ForecastResult),
 * re-exported here as the public API; ForecastServer is a thin
 * concurrency shell (queue + workers + coalescing) over an engine.
 *
 *   api::ForecastEngine engine(api::EngineConfig()
 *                                  .predictor("neusight_nvidia.bin")
 *                                  .cache(1 << 16));
 *   api::ForecastRequest req;
 *   req.model = "GPT3-XL";
 *   req.gpu = api::ForecastEngine::resolveGpu("H100");
 *   api::ForecastResult r = engine.forecast(req);       // NeuSight
 *   req.backend = "oracle";
 *   api::ForecastResult truth = engine.forecast(req);   // simulator
 */

#ifndef NEUSIGHT_API_ENGINE_HPP
#define NEUSIGHT_API_ENGINE_HPP

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/registry.hpp"
#include "dist/collective.hpp"
#include "dist/parallel.hpp"
#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "serve/graph_cache.hpp"
#include "serve/prediction_cache.hpp"
#include "serve/request.hpp"

namespace neusight::api {

/// @name The public request/result vocabulary (defined with the wire
/// protocol in serve/, re-exported as the library API).
/// @{
using serve::CacheStats;
using serve::ForecastRequest;
using serve::ForecastResult;
using serve::RequestKind;
/// @}

/** Builder-style configuration of a ForecastEngine. */
struct EngineConfig
{
    /** Backend answering requests whose backend field is empty. */
    std::string defaultBackend = "neusight";
    /** Trained-predictor file of the built-in "neusight" backend. */
    std::string neusightPath = "neusight_nvidia.bin";
    /** Training GPUs of that backend; empty = nvidiaTrainingSet(). */
    std::vector<gpusim::GpuSpec> trainingGpus;
    /** Kernel-prediction cache entries, shared (key-scoped) across
     *  every backend; 0 disables caching. */
    size_t cacheCapacity = 1 << 16;
    /** Model-graph cache entries; 0 disables graph caching. */
    size_t graphCacheCapacity = 128;
    /** Warm-start snapshot loaded into the cache at construction. */
    std::string cacheLoadPath;
    /** Default path of savePredictionCache(). */
    std::string cacheSavePath;
    /**
     * Numeric lane of the built-in NeuSight backend's MLP inference:
     * "f64" (default, bit-exact with the reference pins) or "f32" (the
     * SIMD-friendly single-precision lane, ~equal predictions within
     * 1e-4 relative). Cache entries of the non-default lane are scoped
     * separately so persisted snapshots never mix lanes.
     */
    std::string precisionLane = "f64";
    /** Reference system calibrating the collective cost model. */
    std::string referenceSystem = "A100-NVLink";
    double referenceLinkGBps = 600.0;
    /** Search policy of HybridSweep requests. */
    dist::SweepOptions sweep;

    /** Custom registry; null = PredictorRegistry::withBuiltins(). */
    std::shared_ptr<PredictorRegistry> registry;
    /** Share an existing cache (overrides cacheCapacity). */
    std::shared_ptr<serve::PredictionCache> sharedCache;
    /** Share an existing graph cache (overrides graphCacheCapacity). */
    std::shared_ptr<serve::ModelGraphCache> sharedGraphCache;
    /** Custom collective model (overrides reference*). */
    std::shared_ptr<const dist::CollectiveModel> comms;
    /** Share an existing metrics registry (several engines reporting
     *  into one snapshot); null = the engine creates its own. */
    std::shared_ptr<obs::MetricsRegistry> sharedMetrics;

    /// @name Builder-style setters.
    /// @{
    EngineConfig &backend(std::string name)
    {
        defaultBackend = std::move(name);
        return *this;
    }
    EngineConfig &predictor(std::string path)
    {
        neusightPath = std::move(path);
        return *this;
    }
    EngineConfig &gpus(std::vector<gpusim::GpuSpec> set)
    {
        trainingGpus = std::move(set);
        return *this;
    }
    EngineConfig &cache(size_t capacity)
    {
        cacheCapacity = capacity;
        return *this;
    }
    EngineConfig &graphCache(size_t capacity)
    {
        graphCacheCapacity = capacity;
        return *this;
    }
    EngineConfig &loadCacheFrom(std::string path)
    {
        cacheLoadPath = std::move(path);
        return *this;
    }
    EngineConfig &saveCacheTo(std::string path)
    {
        cacheSavePath = std::move(path);
        return *this;
    }
    EngineConfig &precision(std::string lane)
    {
        precisionLane = std::move(lane);
        return *this;
    }
    EngineConfig &collectives(std::string system, double link_gbps)
    {
        referenceSystem = std::move(system);
        referenceLinkGBps = link_gbps;
        return *this;
    }
    EngineConfig &withRegistry(std::shared_ptr<PredictorRegistry> r)
    {
        registry = std::move(r);
        return *this;
    }
    EngineConfig &sweepOptions(dist::SweepOptions options)
    {
        sweep = std::move(options);
        return *this;
    }
    EngineConfig &metrics(std::shared_ptr<obs::MetricsRegistry> registry)
    {
        sharedMetrics = std::move(registry);
        return *this;
    }
    /// @}
};

/**
 * The forecasting facade. Thread-safe: forecast() may be called
 * concurrently (it is the ForecastServer worker body); backends are
 * wired lazily under an internal lock, and every predictor the engine
 * hands out is safe for concurrent const use once constructed.
 */
class ForecastEngine
{
  public:
    explicit ForecastEngine(EngineConfig config = EngineConfig());

    ForecastEngine(const ForecastEngine &) = delete;
    ForecastEngine &operator=(const ForecastEngine &) = delete;

    /**
     * Execute one typed request synchronously: resolve the backend
     * (request.backend, or the configured default), build or fetch the
     * kernel graph, and price it. Failures (unknown backend/model,
     * invalid strategy) come back as ok = false results, never as
     * exceptions.
     */
    ForecastResult forecast(const ForecastRequest &request) const;

    /**
     * The wired predictor of @p name ("" = the default backend):
     * the registry instance with this engine's kernel-prediction cache
     * attached (NeuSight natively, others through a key-scoped
     * CachedPredictor decorator; raw when caching is disabled).
     * Constructed on first use; fatal() (throws) on unknown names,
     * listing the registered backends. The reference lives as long as
     * the engine.
     */
    const graph::LatencyPredictor &
    backend(const std::string &name = std::string()) const;

    /**
     * Resolve a GPU: a Table-4 database name or a spec-JSON path; a
     * non-empty @p json_override forces file resolution (hypothetical
     * GPUs may shadow database names — the tools' --gpu-json flag).
     */
    static gpusim::GpuSpec
    resolveGpu(const std::string &name_or_path,
               const std::string &json_override = std::string());

    /** The backend registry (register more backends before use). */
    PredictorRegistry &registry() { return *reg; }
    const PredictorRegistry &registry() const { return *reg; }

    /** The engine-wide kernel-prediction cache; null when disabled. */
    const std::shared_ptr<serve::PredictionCache> &predictionCache() const
    {
        return cache;
    }

    /** The model-graph cache; null when disabled. */
    const std::shared_ptr<serve::ModelGraphCache> &modelGraphCache() const
    {
        return graphCache;
    }

    /** The collective cost model of Distributed/Hybrid forecasts. */
    const dist::CollectiveModel &collectives() const { return *comms; }

    /** Kernel-prediction cache counters (zero-valued when disabled). */
    CacheStats cacheStats() const;

    /**
     * This engine's metrics registry: request counters, per-kind/
     * per-backend end-to-end latency histograms (engine.request_us.*),
     * and the adopted cache counters (cache.prediction.*,
     * cache.graph.*). Never null. The "stats" wire op and the tools'
     * --metrics-json flag snapshot it.
     */
    const std::shared_ptr<obs::MetricsRegistry> &metrics() const
    {
        return metricsReg;
    }

    /**
     * Snapshot the prediction cache to @p path ("" = the configured
     * cacheSavePath); returns entries written. fatal() when no path is
     * configured or the cache is disabled.
     */
    size_t savePredictionCache(const std::string &path = std::string()) const;

    /** Load a snapshot into the cache; returns entries loaded. */
    size_t loadPredictionCache(const std::string &path);

    /** The configured default backend name. */
    const std::string &defaultBackendName() const
    {
        return config.defaultBackend;
    }

  private:
    struct WiredBackend
    {
        /** The predictor consumers call; points into the registry or
         *  at the engine-owned wrapper below. */
        const graph::LatencyPredictor *predictor = nullptr;
        std::unique_ptr<serve::CachedPredictor> wrapper;
    };

    const WiredBackend &wire(const std::string &name) const;

    /** The engine.request_us.<kind>.<backend> histogram, resolved once
     *  per (kind, backend) and memoized. */
    std::shared_ptr<obs::Histogram>
    requestHistogram(RequestKind kind, const std::string &backend) const;

    EngineConfig config;
    std::shared_ptr<PredictorRegistry> reg;
    std::shared_ptr<serve::PredictionCache> cache;
    std::shared_ptr<serve::ModelGraphCache> graphCache;
    std::shared_ptr<const dist::CollectiveModel> comms;
    std::shared_ptr<obs::MetricsRegistry> metricsReg;
    std::shared_ptr<obs::Counter> requestsTotal;
    std::shared_ptr<obs::Counter> failuresTotal;

    mutable std::mutex wireMutex;
    mutable std::unordered_map<std::string, WiredBackend> wired;
    mutable std::mutex histMutex;
    mutable std::unordered_map<std::string, std::shared_ptr<obs::Histogram>>
        requestHist;
};

/**
 * Build the kernel graph for a workload name: a Table-5 transformer
 * (or JSON model file) at the given batch, or the built-in CNN
 * workloads "ResNet-50" / "VGG-16". The workload-resolution half of
 * the old tools/tool_common.hpp, now part of the public API.
 */
graph::KernelGraph
buildWorkloadGraph(const std::string &model, uint64_t batch, bool training,
                   gpusim::DataType dtype = gpusim::DataType::Fp32);

} // namespace neusight::api

#endif // NEUSIGHT_API_ENGINE_HPP
