#include "api/registry.hpp"

#include <filesystem>
#include <utility>

#include "baselines/habitat.hpp"
#include "baselines/li.hpp"
#include "baselines/roofline.hpp"
#include "common/logging.hpp"
#include "core/predictor.hpp"
#include "dataset/dataset.hpp"
#include "eval/oracle.hpp"

namespace neusight::api {

namespace {

/**
 * Lazily-built operator corpus shared by the Habitat and Li factories:
 * both baselines train quickly but on the same Section-6.1 corpus, so
 * generating it twice would double the (dominant) sampling cost when a
 * study sweeps both.
 */
struct CorpusMemo
{
    std::mutex mutex;
    bool built = false;
    std::map<gpusim::OpType, dataset::OperatorDataset> corpus;

    const std::map<gpusim::OpType, dataset::OperatorDataset> &
    get(const std::vector<gpusim::GpuSpec> &gpus)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!built) {
            corpus =
                dataset::generateOperatorData(gpus,
                                              dataset::SamplerConfig{});
            built = true;
        }
        return corpus;
    }
};

} // namespace

std::shared_ptr<PredictorRegistry>
PredictorRegistry::withBuiltins(const std::string &neusight_path,
                                std::vector<gpusim::GpuSpec> training_gpus)
{
    auto registry = std::make_shared<PredictorRegistry>();
    if (training_gpus.empty())
        training_gpus = gpusim::nvidiaTrainingSet();
    registry->addNeuSight("neusight", neusight_path, training_gpus);
    registry->add("oracle", [] {
        return std::make_unique<eval::SimulatorOracle>();
    });
    registry->add("roofline", [] {
        return std::make_unique<baselines::RooflinePredictor>();
    });
    auto memo = std::make_shared<CorpusMemo>();
    registry->add("habitat", [memo, training_gpus] {
        auto habitat = std::make_unique<baselines::HabitatPredictor>(
            baselines::HabitatConfig{});
        habitat->train(memo->get(training_gpus));
        return habitat;
    });
    registry->add("li", [memo, training_gpus] {
        auto li = std::make_unique<baselines::LiPredictor>();
        li->train(memo->get(training_gpus));
        return li;
    });
    return registry;
}

void
PredictorRegistry::checkFresh(const std::string &name) const
{
    ensure(!name.empty(), "PredictorRegistry: backend name is empty");
    if (entries.count(name))
        fatal("PredictorRegistry: backend '" + name +
              "' already registered");
}

void
PredictorRegistry::add(const std::string &name, Factory factory)
{
    ensure(factory != nullptr,
           "PredictorRegistry: null factory for '" + name + "'");
    std::lock_guard<std::mutex> lock(mutex);
    checkFresh(name);
    entries[name].factory = std::move(factory);
}

void
PredictorRegistry::addExternal(const std::string &name,
                               const graph::LatencyPredictor &predictor)
{
    std::lock_guard<std::mutex> lock(mutex);
    checkFresh(name);
    Entry &entry = entries[name];
    entry.external = &predictor;
    entry.ready.store(true, std::memory_order_release);
}

void
PredictorRegistry::addNeuSight(const std::string &name,
                               const std::string &path,
                               std::vector<gpusim::GpuSpec> training_gpus)
{
    add(name, [path, gpus = std::move(training_gpus)]() mutable {
        if (gpus.empty())
            gpus = gpusim::nvidiaTrainingSet();
        if (!std::filesystem::exists(path))
            inform("predictor cache '" + path +
                   "' not found; training from scratch (one-time cost)");
        return std::make_unique<core::NeuSight>(core::NeuSight::trainOrLoad(
            path, gpus, dataset::SamplerConfig{}));
    });
}

bool
PredictorRegistry::has(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex);
    return entries.count(name) > 0;
}

bool
PredictorRegistry::loaded(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = entries.find(name);
    return it != entries.end() &&
           it->second.ready.load(std::memory_order_acquire);
}

std::vector<std::string>
PredictorRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mutex);
    std::vector<std::string> out;
    out.reserve(entries.size());
    for (const auto &[name, entry] : entries)
        out.push_back(name);
    return out;
}

std::string
PredictorRegistry::namesJoined(const std::string &separator) const
{
    std::string out;
    for (const std::string &name : names()) {
        if (!out.empty())
            out += separator;
        out += name;
    }
    return out;
}

PredictorRegistry::Entry &
PredictorRegistry::resolve(const std::string &name)
{
    Entry *entry = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex);
        const auto it = entries.find(name);
        if (it == entries.end()) {
            std::string known;
            for (const auto &[known_name, unused] : entries) {
                (void)unused;
                if (!known.empty())
                    known += " | ";
                known += known_name;
            }
            fatal("unknown predictor backend '" + name +
                  "' (registered: " + known + ")");
        }
        entry = &it->second;
    }
    // Construct outside the registry lock, under the entry's own
    // once-flag: a backend builds exactly once even when workers race
    // on a cold name, and a minutes-long training run never blocks
    // first use of a different backend (or names()/has() lookups).
    std::call_once(entry->once, [entry] {
        if (!entry->external) {
            entry->owned = entry->factory();
            // The closure can pin heavy state (e.g. the baselines'
            // training-corpus memo) and can never run again: drop it.
            entry->factory = nullptr;
        }
        entry->ready.store(true, std::memory_order_release);
    });
    return *entry;
}

const graph::LatencyPredictor &
PredictorRegistry::get(const std::string &name)
{
    Entry &entry = resolve(name);
    return entry.external ? *entry.external : *entry.owned;
}

graph::LatencyPredictor *
PredictorRegistry::getOwned(const std::string &name)
{
    return resolve(name).owned.get();
}

} // namespace neusight::api
