/**
 * @file
 * Status and error reporting, following the gem5 convention:
 * panic() for internal invariant violations (library bugs), fatal() for
 * user errors that make continuing impossible, warn()/inform() for
 * non-fatal status messages.
 */

#ifndef NEUSIGHT_COMMON_LOGGING_HPP
#define NEUSIGHT_COMMON_LOGGING_HPP

#include <sstream>
#include <string>

namespace neusight {

/**
 * Abort with a message: something happened that should never happen
 * regardless of what the user does (an internal bug). Calls std::abort().
 *
 * @param message Description of the violated invariant.
 */
[[noreturn]] void panic(const std::string &message);

/**
 * Exit with a message: the run cannot continue because of a condition that
 * is the caller's fault (bad configuration, invalid arguments). Throws
 * std::runtime_error so library users can recover at an API boundary.
 *
 * @param message Description of the user error.
 */
[[noreturn]] void fatal(const std::string &message);

/** Print a warning to stderr; execution continues. */
void warn(const std::string &message);

/** Print an informational message to stderr; execution continues. */
void inform(const std::string &message);

/** Globally silence warn()/inform() (used by tests and benches). */
void setQuiet(bool quiet);

/**
 * Prefix warn()/inform() lines with an ISO-8601 UTC timestamp and a
 * severity tag ("2026-08-08T12:34:56.789Z [WARN] ..."), so server logs
 * correlate with trace spans. Off by default (the bare legacy format);
 * also enabled by the NEUSIGHT_LOG_TIMESTAMPS=1 environment variable,
 * read on first use.
 */
void setLogTimestamps(bool enable);

/**
 * Assert an invariant that must hold independent of user input.
 * Active in all build types (unlike assert()).
 */
inline void
ensure(bool condition, const std::string &message)
{
    if (!condition)
        panic(message);
}

} // namespace neusight

#endif // NEUSIGHT_COMMON_LOGGING_HPP
