/**
 * @file
 * Small command-line option parser for the tools/ binaries: typed
 * --name value options and boolean --flag switches, with generated
 * usage text. Unknown options and malformed values are user errors
 * (fatal()); querying an unregistered option is a programmer error
 * (panic()).
 */

#ifndef NEUSIGHT_COMMON_ARGPARSE_HPP
#define NEUSIGHT_COMMON_ARGPARSE_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace neusight::common {

/** Declarative command-line parser for one tool. */
class ArgParser
{
  public:
    /**
     * @param program     binary name shown in usage.
     * @param description one-line summary shown in usage.
     */
    ArgParser(std::string program, std::string description);

    /// @name Option registration (call before parse()).
    /// @{
    void addString(const std::string &name, std::string fallback,
                   std::string help);
    void addInt(const std::string &name, int64_t fallback, std::string help);
    void addDouble(const std::string &name, double fallback,
                   std::string help);
    /** A presence switch: false unless given on the command line. */
    void addFlag(const std::string &name, std::string help);
    /// @}

    /**
     * Parse the command line.
     * @return false when --help was requested (usage printed to stdout);
     *         the tool should exit successfully without doing work.
     */
    bool parse(int argc, const char *const *argv);

    /// @name Typed queries (after parse()).
    /// @{
    const std::string &getString(const std::string &name) const;
    int64_t getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getFlag(const std::string &name) const;
    /** True when the user supplied the option explicitly. */
    bool given(const std::string &name) const;
    /// @}

    /** Generated usage text. */
    std::string usage() const;

  private:
    enum class Kind
    {
        String,
        Int,
        Double,
        Flag,
    };

    struct Option
    {
        std::string name;
        Kind kind;
        std::string help;
        std::string fallbackText;
        std::string stringValue;
        int64_t intValue = 0;
        double doubleValue = 0.0;
        bool flagValue = false;
        bool wasGiven = false;
    };

    Option &require(const std::string &name, Kind kind);
    const Option &require(const std::string &name, Kind kind) const;
    Option *find(const std::string &name);

    std::string program;
    std::string description;
    std::vector<Option> options;
};

} // namespace neusight::common

#endif // NEUSIGHT_COMMON_ARGPARSE_HPP
