#include "common/table.hpp"

#include <iomanip>
#include <iostream>
#include <sstream>

namespace neusight {

TextTable::TextTable(std::string title_, std::vector<std::string> header_)
    : title(std::move(title_)), header(std::move(header_))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    row.resize(header.size());
    rows.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(header.size());
    for (size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    size_t total = widths.size() ? 3 * (widths.size() - 1) : 0;
    for (size_t w : widths)
        total += w;

    std::ostringstream oss;
    oss << title << '\n' << std::string(std::max(total, title.size()), '=') << '\n';
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                oss << " | ";
            oss << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
        }
        oss << '\n';
    };
    emit(header);
    oss << std::string(total, '-') << '\n';
    for (const auto &row : rows)
        emit(row);
    return oss.str();
}

void
TextTable::print() const
{
    std::cout << render() << std::flush;
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
TextTable::pct(double value, int precision)
{
    return num(value, precision) + "%";
}

} // namespace neusight
