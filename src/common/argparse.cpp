#include "common/argparse.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/logging.hpp"

namespace neusight::common {

ArgParser::ArgParser(std::string program, std::string description)
    : program(std::move(program)), description(std::move(description))
{
}

void
ArgParser::addString(const std::string &name, std::string fallback,
                     std::string help)
{
    ensure(find(name) == nullptr, "argparse: duplicate option " + name);
    Option opt;
    opt.name = name;
    opt.kind = Kind::String;
    opt.help = std::move(help);
    opt.fallbackText = fallback;
    opt.stringValue = std::move(fallback);
    options.push_back(std::move(opt));
}

void
ArgParser::addInt(const std::string &name, int64_t fallback, std::string help)
{
    ensure(find(name) == nullptr, "argparse: duplicate option " + name);
    Option opt;
    opt.name = name;
    opt.kind = Kind::Int;
    opt.help = std::move(help);
    opt.fallbackText = std::to_string(fallback);
    opt.intValue = fallback;
    options.push_back(std::move(opt));
}

void
ArgParser::addDouble(const std::string &name, double fallback,
                     std::string help)
{
    ensure(find(name) == nullptr, "argparse: duplicate option " + name);
    Option opt;
    opt.name = name;
    opt.kind = Kind::Double;
    opt.help = std::move(help);
    std::ostringstream oss;
    oss << fallback;
    opt.fallbackText = oss.str();
    opt.doubleValue = fallback;
    options.push_back(std::move(opt));
}

void
ArgParser::addFlag(const std::string &name, std::string help)
{
    ensure(find(name) == nullptr, "argparse: duplicate option " + name);
    Option opt;
    opt.name = name;
    opt.kind = Kind::Flag;
    opt.help = std::move(help);
    opt.fallbackText = "false";
    options.push_back(std::move(opt));
}

bool
ArgParser::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage().c_str(), stdout);
            return false;
        }
        if (arg.rfind("--", 0) != 0)
            fatal("argparse: unexpected positional argument '" + arg +
                  "' (see --help)");
        Option *opt = find(arg.substr(2));
        if (opt == nullptr)
            fatal("argparse: unknown option '" + arg + "' (see --help)");
        opt->wasGiven = true;
        if (opt->kind == Kind::Flag) {
            opt->flagValue = true;
            continue;
        }
        if (i + 1 >= argc)
            fatal("argparse: option '" + arg + "' needs a value");
        const std::string value = argv[++i];
        switch (opt->kind) {
          case Kind::String:
            opt->stringValue = value;
            break;
          case Kind::Int: {
            try {
                size_t used = 0;
                opt->intValue = std::stoll(value, &used);
                if (used != value.size())
                    throw std::invalid_argument(value);
            } catch (const std::exception &) {
                fatal("argparse: '" + arg + "' expects an integer, got '" +
                      value + "'");
            }
            break;
          }
          case Kind::Double: {
            try {
                size_t used = 0;
                opt->doubleValue = std::stod(value, &used);
                if (used != value.size())
                    throw std::invalid_argument(value);
            } catch (const std::exception &) {
                fatal("argparse: '" + arg + "' expects a number, got '" +
                      value + "'");
            }
            break;
          }
          case Kind::Flag:
            break; // Unreachable: handled above.
        }
    }
    return true;
}

ArgParser::Option &
ArgParser::require(const std::string &name, Kind kind)
{
    Option *opt = find(name);
    ensure(opt != nullptr, "argparse: unregistered option " + name);
    ensure(opt->kind == kind, "argparse: wrong type for option " + name);
    return *opt;
}

const ArgParser::Option &
ArgParser::require(const std::string &name, Kind kind) const
{
    return const_cast<ArgParser *>(this)->require(name, kind);
}

ArgParser::Option *
ArgParser::find(const std::string &name)
{
    for (Option &opt : options)
        if (opt.name == name)
            return &opt;
    return nullptr;
}

const std::string &
ArgParser::getString(const std::string &name) const
{
    return require(name, Kind::String).stringValue;
}

int64_t
ArgParser::getInt(const std::string &name) const
{
    return require(name, Kind::Int).intValue;
}

double
ArgParser::getDouble(const std::string &name) const
{
    return require(name, Kind::Double).doubleValue;
}

bool
ArgParser::getFlag(const std::string &name) const
{
    return require(name, Kind::Flag).flagValue;
}

bool
ArgParser::given(const std::string &name) const
{
    for (const Option &opt : options)
        if (opt.name == name)
            return opt.wasGiven;
    panic("argparse: unregistered option " + name);
}

std::string
ArgParser::usage() const
{
    std::ostringstream oss;
    oss << program << " — " << description << "\n\nOptions:\n";
    size_t width = 6; // "--help"
    for (const Option &opt : options) {
        size_t w = opt.name.size() + 2;
        if (opt.kind != Kind::Flag)
            w += 8; // " <value>"
        width = std::max(width, w);
    }
    for (const Option &opt : options) {
        std::string left = "--" + opt.name;
        if (opt.kind != Kind::Flag)
            left += " <value>";
        oss << "  " << left << std::string(width - left.size() + 2, ' ')
            << opt.help;
        if (opt.kind != Kind::Flag)
            oss << " (default: " << opt.fallbackText << ")";
        oss << "\n";
    }
    oss << "  --help" << std::string(width - 6 + 2, ' ')
        << "show this message\n";
    return oss.str();
}

} // namespace neusight::common
