/**
 * @file
 * Error metrics and summary statistics. The paper reports mean absolute
 * percentage error ("percentage error") against measured latencies and
 * trains NeuSight with symmetric MAPE (Tofallis 2015).
 */

#ifndef NEUSIGHT_COMMON_STATS_HPP
#define NEUSIGHT_COMMON_STATS_HPP

#include <cstddef>
#include <vector>

namespace neusight {

/** |pred - actual| / |actual| * 100, the paper's "percentage error". */
double absPercentageError(double predicted, double actual);

/** Mean of absPercentageError over paired vectors (must be same length). */
double meanAbsPercentageError(const std::vector<double> &predicted,
                              const std::vector<double> &actual);

/** Symmetric MAPE: |p - a| / ((|p| + |a|) / 2) * 100, averaged. */
double symmetricMape(const std::vector<double> &predicted,
                     const std::vector<double> &actual);

/** Arithmetic mean; 0 for empty input. */
double mean(const std::vector<double> &values);

/** Population standard deviation; 0 for fewer than two values. */
double stddev(const std::vector<double> &values);

/** Maximum; 0 for empty input. */
double maxValue(const std::vector<double> &values);

/** Linear-interpolation percentile, p in [0, 100]; 0 for empty input. */
double percentile(std::vector<double> values, double p);

/**
 * Ordinary least squares for y ~ slope * x + intercept.
 * Used by the Li et al. baseline (FLOPs→latency, memBW→achieved FLOPS).
 */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;

    /** Evaluate the fitted line. */
    double operator()(double x) const { return slope * x + intercept; }
};

/** Fit OLS line through (x, y) pairs; requires at least two points. */
LinearFit fitLine(const std::vector<double> &x, const std::vector<double> &y);

/** Accumulates a running mean without storing samples. */
class RunningMean
{
  public:
    /** Fold one sample into the mean. */
    void
    add(double value)
    {
        ++count;
        total += value;
    }

    /** Current mean; 0 if no samples. */
    double value() const { return count ? total / static_cast<double>(count) : 0.0; }

    /** Number of samples folded in. */
    size_t samples() const { return count; }

  private:
    double total = 0.0;
    size_t count = 0;
};

} // namespace neusight

#endif // NEUSIGHT_COMMON_STATS_HPP
