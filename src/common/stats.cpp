#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace neusight {

double
absPercentageError(double predicted, double actual)
{
    ensure(actual != 0.0, "absPercentageError: actual latency is zero");
    return std::abs(predicted - actual) / std::abs(actual) * 100.0;
}

double
meanAbsPercentageError(const std::vector<double> &predicted,
                       const std::vector<double> &actual)
{
    ensure(predicted.size() == actual.size(),
           "meanAbsPercentageError: length mismatch");
    if (predicted.empty())
        return 0.0;
    double total = 0.0;
    for (size_t i = 0; i < predicted.size(); ++i)
        total += absPercentageError(predicted[i], actual[i]);
    return total / static_cast<double>(predicted.size());
}

double
symmetricMape(const std::vector<double> &predicted,
              const std::vector<double> &actual)
{
    ensure(predicted.size() == actual.size(), "symmetricMape: length mismatch");
    if (predicted.empty())
        return 0.0;
    double total = 0.0;
    for (size_t i = 0; i < predicted.size(); ++i) {
        const double denom = (std::abs(predicted[i]) + std::abs(actual[i])) / 2.0;
        ensure(denom != 0.0, "symmetricMape: both values zero");
        total += std::abs(predicted[i] - actual[i]) / denom * 100.0;
    }
    return total / static_cast<double>(predicted.size());
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double total = 0.0;
    for (double v : values)
        total += v;
    return total / static_cast<double>(values.size());
}

double
stddev(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    const double mu = mean(values);
    double ss = 0.0;
    for (double v : values)
        ss += (v - mu) * (v - mu);
    return std::sqrt(ss / static_cast<double>(values.size()));
}

double
maxValue(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return *std::max_element(values.begin(), values.end());
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    const size_t lo = static_cast<size_t>(std::floor(rank));
    const size_t hi = static_cast<size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

LinearFit
fitLine(const std::vector<double> &x, const std::vector<double> &y)
{
    ensure(x.size() == y.size(), "fitLine: length mismatch");
    ensure(x.size() >= 2, "fitLine: need at least two points");
    const double mx = mean(x);
    const double my = mean(y);
    double sxx = 0.0;
    double sxy = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
        sxx += (x[i] - mx) * (x[i] - mx);
        sxy += (x[i] - mx) * (y[i] - my);
    }
    LinearFit fit;
    if (sxx == 0.0) {
        // Degenerate: all x identical; fall back to a flat line at the mean.
        fit.slope = 0.0;
        fit.intercept = my;
    } else {
        fit.slope = sxy / sxx;
        fit.intercept = my - fit.slope * mx;
    }
    return fit;
}

} // namespace neusight
