/**
 * @file
 * Deterministic random number generation. All stochastic behaviour in the
 * library (weight init, dataset sampling, simulator measurement noise) is
 * seeded explicitly so every test and bench is reproducible.
 */

#ifndef NEUSIGHT_COMMON_RNG_HPP
#define NEUSIGHT_COMMON_RNG_HPP

#include <cmath>
#include <cstdint>
#include <vector>

namespace neusight {

/**
 * SplitMix64 PRNG. Tiny, fast, and statistically adequate for weight
 * initialization and sampling; chosen over std::mt19937 so streams are
 * identical across standard-library implementations.
 */
class Rng
{
  public:
    /** Construct a stream from an explicit seed. */
    explicit Rng(uint64_t seed) : state(seed) {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    uniformInt(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(next() % static_cast<uint64_t>(hi - lo + 1));
    }

    /** Standard normal via Box-Muller. */
    double
    normal()
    {
        double u1 = uniform();
        double u2 = uniform();
        if (u1 < 1e-300)
            u1 = 1e-300;
        return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    }

    /** Normal with given mean and standard deviation. */
    double
    normal(double mean, double stddev)
    {
        return mean + stddev * normal();
    }

    /** Pick an element of a non-empty vector uniformly at random. */
    template <typename T>
    const T &
    choice(const std::vector<T> &items)
    {
        return items[next() % items.size()];
    }

    /** Fisher-Yates shuffle of index order [0, n). */
    std::vector<size_t>
    permutation(size_t n)
    {
        std::vector<size_t> idx(n);
        for (size_t i = 0; i < n; ++i)
            idx[i] = i;
        for (size_t i = n; i > 1; --i) {
            size_t j = next() % i;
            std::swap(idx[i - 1], idx[j]);
        }
        return idx;
    }

  private:
    uint64_t state;
};

/**
 * Stateless deterministic hash → double in [-1, 1). Used by the GPU
 * simulator for reproducible "measurement noise": the same kernel on the
 * same device always perturbs identically.
 */
inline double
hashNoise(uint64_t a, uint64_t b, uint64_t c)
{
    uint64_t z = a * 0x9e3779b97f4a7c15ULL + b * 0xbf58476d1ce4e5b9ULL +
                 c * 0x94d049bb133111ebULL + 0x2545f4914f6cdd1dULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-52 - 1.0;
}

} // namespace neusight

#endif // NEUSIGHT_COMMON_RNG_HPP
