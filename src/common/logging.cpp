#include "common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <stdexcept>

namespace neusight {

namespace {

std::atomic<bool> quietFlag{false};

/** -1 = unset (consult the environment on first use), 0/1 = forced. */
std::atomic<int> timestampsFlag{-1};

bool
timestampsEnabled()
{
    int state = timestampsFlag.load(std::memory_order_relaxed);
    if (state < 0) {
        const char *env = std::getenv("NEUSIGHT_LOG_TIMESTAMPS");
        state = (env != nullptr && env[0] == '1') ? 1 : 0;
        timestampsFlag.store(state, std::memory_order_relaxed);
    }
    return state == 1;
}

/** "2026-08-08T12:34:56.789Z" (UTC, millisecond resolution). */
std::string
isoTimestamp()
{
    const auto now = std::chrono::system_clock::now();
    const std::time_t secs = std::chrono::system_clock::to_time_t(now);
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        now.time_since_epoch())
                        .count() %
                    1000;
    std::tm utc{};
#if defined(_WIN32)
    gmtime_s(&utc, &secs);
#else
    gmtime_r(&secs, &utc);
#endif
    char buf[64];
    std::snprintf(buf, sizeof(buf),
                  "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                  utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday,
                  utc.tm_hour, utc.tm_min, utc.tm_sec,
                  static_cast<int>(ms));
    return buf;
}

void
emit(const char *legacy_prefix, const char *severity,
     const std::string &message)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    if (timestampsEnabled())
        std::cerr << isoTimestamp() << " [" << severity << "] "
                  << message << std::endl;
    else
        std::cerr << legacy_prefix << message << std::endl;
}

} // namespace

void
panic(const std::string &message)
{
    std::cerr << "panic: " << message << std::endl;
    std::abort();
}

void
fatal(const std::string &message)
{
    throw std::runtime_error("fatal: " + message);
}

void
warn(const std::string &message)
{
    emit("warn: ", "WARN", message);
}

void
inform(const std::string &message)
{
    emit("info: ", "INFO", message);
}

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

void
setLogTimestamps(bool enable)
{
    timestampsFlag.store(enable ? 1 : 0, std::memory_order_relaxed);
}

} // namespace neusight
