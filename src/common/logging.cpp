#include "common/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace neusight {

namespace {
std::atomic<bool> quietFlag{false};
} // namespace

void
panic(const std::string &message)
{
    std::cerr << "panic: " << message << std::endl;
    std::abort();
}

void
fatal(const std::string &message)
{
    throw std::runtime_error("fatal: " + message);
}

void
warn(const std::string &message)
{
    if (!quietFlag.load(std::memory_order_relaxed))
        std::cerr << "warn: " << message << std::endl;
}

void
inform(const std::string &message)
{
    if (!quietFlag.load(std::memory_order_relaxed))
        std::cerr << "info: " << message << std::endl;
}

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

} // namespace neusight
