#include "common/csv.hpp"

#include <iomanip>
#include <sstream>

#include "common/logging.hpp"

namespace neusight {

namespace {

std::string
quoteIfNeeded(const std::string &field)
{
    if (field.find_first_of(",\"\n") == std::string::npos)
        return field;
    std::string quoted = "\"";
    for (char ch : field) {
        if (ch == '"')
            quoted += '"';
        quoted += ch;
    }
    quoted += '"';
    return quoted;
}

} // namespace

CsvWriter::CsvWriter(const std::string &path,
                     const std::vector<std::string> &header)
    : out(path), arity(header.size())
{
    if (!out)
        fatal("CsvWriter: cannot open '" + path + "' for writing");
    writeRow(header);
}

void
CsvWriter::writeRow(const std::vector<std::string> &fields)
{
    if (fields.size() != arity)
        fatal("CsvWriter: row arity " + std::to_string(fields.size()) +
              " != header arity " + std::to_string(arity));
    for (size_t i = 0; i < fields.size(); ++i) {
        if (i)
            out << ',';
        out << quoteIfNeeded(fields[i]);
    }
    out << '\n';
}

std::string
CsvWriter::fmt(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

} // namespace neusight
