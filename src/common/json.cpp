#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hpp"

namespace neusight::common {

namespace {

/** Recursive-descent parser over a text buffer with position tracking. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text(text) {}

    Json
    parseDocument()
    {
        skipWhitespace();
        Json value = parseValue();
        skipWhitespace();
        if (pos != text.size())
            fail("trailing characters after JSON document");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &message) const
    {
        size_t line = 1;
        size_t col = 1;
        for (size_t i = 0; i < pos && i < text.size(); ++i) {
            if (text[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        fatal("json: " + message + " at line " + std::to_string(line) +
              ", column " + std::to_string(col));
    }

    char
    peek() const
    {
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    char
    advance()
    {
        const char c = peek();
        ++pos;
        return c;
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', found '" + peek() +
                 "'");
        ++pos;
    }

    void
    skipWhitespace()
    {
        while (pos < text.size()) {
            const char c = text[pos];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos;
            else
                break;
        }
    }

    bool
    consumeLiteral(const char *literal)
    {
        const size_t len = std::char_traits<char>::length(literal);
        if (text.compare(pos, len, literal) != 0)
            return false;
        pos += len;
        return true;
    }

    Json
    parseValue()
    {
        skipWhitespace();
        const char c = peek();
        switch (c) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return Json(parseString());
          case 't':
            if (consumeLiteral("true"))
                return Json(true);
            fail("invalid literal");
          case 'f':
            if (consumeLiteral("false"))
                return Json(false);
            fail("invalid literal");
          case 'n':
            if (consumeLiteral("null"))
                return Json(nullptr);
            fail("invalid literal");
          default:
            return parseNumber();
        }
    }

    Json
    parseObject()
    {
        expect('{');
        Json::Object members;
        skipWhitespace();
        if (peek() == '}') {
            ++pos;
            return Json(std::move(members));
        }
        while (true) {
            skipWhitespace();
            if (peek() != '"')
                fail("expected object key string");
            std::string key = parseString();
            skipWhitespace();
            expect(':');
            members.emplace_back(std::move(key), parseValue());
            skipWhitespace();
            const char c = advance();
            if (c == '}')
                return Json(std::move(members));
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    Json
    parseArray()
    {
        expect('[');
        Json::Array elements;
        skipWhitespace();
        if (peek() == ']') {
            ++pos;
            return Json(std::move(elements));
        }
        while (true) {
            elements.push_back(parseValue());
            skipWhitespace();
            const char c = advance();
            if (c == ']')
                return Json(std::move(elements));
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            const char c = advance();
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            const char esc = advance();
            switch (esc) {
              case '"':
                out.push_back('"');
                break;
              case '\\':
                out.push_back('\\');
                break;
              case '/':
                out.push_back('/');
                break;
              case 'b':
                out.push_back('\b');
                break;
              case 'f':
                out.push_back('\f');
                break;
              case 'n':
                out.push_back('\n');
                break;
              case 'r':
                out.push_back('\r');
                break;
              case 't':
                out.push_back('\t');
                break;
              case 'u':
                appendUnicodeEscape(out);
                break;
              default:
                fail("invalid escape sequence");
            }
        }
    }

    /** Decode \uXXXX (with surrogate pairs) into UTF-8. */
    void
    appendUnicodeEscape(std::string &out)
    {
        uint32_t code = parseHex4();
        if (code >= 0xD800 && code <= 0xDBFF) {
            if (!consumeLiteral("\\u"))
                fail("unpaired UTF-16 surrogate");
            const uint32_t low = parseHex4();
            if (low < 0xDC00 || low > 0xDFFF)
                fail("invalid low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
        }
        if (code < 0x80) {
            out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else if (code < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (code >> 18)));
            out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
    }

    uint32_t
    parseHex4()
    {
        uint32_t value = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = advance();
            value <<= 4;
            if (c >= '0' && c <= '9')
                value |= static_cast<uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                value |= static_cast<uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                value |= static_cast<uint32_t>(c - 'A' + 10);
            else
                fail("invalid hex digit in \\u escape");
        }
        return value;
    }

    Json
    parseNumber()
    {
        const size_t start = pos;
        if (peek() == '-')
            ++pos;
        if (pos >= text.size() || !isDigit(text[pos]))
            fail("invalid number");
        if (text[pos] == '0') {
            ++pos;
        } else {
            while (pos < text.size() && isDigit(text[pos]))
                ++pos;
        }
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            if (pos >= text.size() || !isDigit(text[pos]))
                fail("digit required after decimal point");
            while (pos < text.size() && isDigit(text[pos]))
                ++pos;
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() && (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            if (pos >= text.size() || !isDigit(text[pos]))
                fail("digit required in exponent");
            while (pos < text.size() && isDigit(text[pos]))
                ++pos;
        }
        return Json(std::stod(text.substr(start, pos - start)));
    }

    static bool
    isDigit(char c)
    {
        return c >= '0' && c <= '9';
    }

    const std::string &text;
    size_t pos = 0;
};

/** Emit @p value as a JSON string literal with escapes. */
void
dumpString(std::string &out, const std::string &value)
{
    out.push_back('"');
    for (char c : value) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

/** Shortest text that round-trips the double (integers stay integral). */
std::string
dumpNumber(double value)
{
    if (std::isfinite(value) && value == std::floor(value) &&
        std::abs(value) < 1e15) {
        return std::to_string(static_cast<int64_t>(value));
    }
    std::ostringstream oss;
    oss.precision(17);
    oss << value;
    return oss.str();
}

} // namespace

Json
Json::parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

Json
Json::parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("json: cannot open '" + path + "'");
    std::ostringstream oss;
    oss << in.rdbuf();
    return parse(oss.str());
}

bool
Json::asBool() const
{
    if (type_ != Type::Bool)
        fatal("json: value is not a boolean");
    return boolean;
}

double
Json::asDouble() const
{
    if (type_ != Type::Number)
        fatal("json: value is not a number");
    return number;
}

int64_t
Json::asInt() const
{
    const double d = asDouble();
    if (d != std::floor(d) || std::abs(d) > 9.0e18)
        fatal("json: number is not an integer");
    return static_cast<int64_t>(d);
}

const std::string &
Json::asString() const
{
    if (type_ != Type::String)
        fatal("json: value is not a string");
    return string;
}

const Json::Array &
Json::asArray() const
{
    if (type_ != Type::Array)
        fatal("json: value is not an array");
    return array;
}

const Json::Object &
Json::asObject() const
{
    if (type_ != Type::Object)
        fatal("json: value is not an object");
    return object;
}

bool
Json::has(const std::string &key) const
{
    if (type_ != Type::Object)
        return false;
    for (const auto &[k, v] : object)
        if (k == key)
            return true;
    return false;
}

const Json &
Json::at(const std::string &key) const
{
    for (const auto &[k, v] : asObject())
        if (k == key)
            return v;
    fatal("json: missing key '" + key + "'");
}

double
Json::numberOr(const std::string &key, double fallback) const
{
    return has(key) ? at(key).asDouble() : fallback;
}

bool
Json::boolOr(const std::string &key, bool fallback) const
{
    return has(key) ? at(key).asBool() : fallback;
}

std::string
Json::stringOr(const std::string &key, const std::string &fallback) const
{
    return has(key) ? at(key).asString() : fallback;
}

void
Json::set(const std::string &key, Json value)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    if (type_ != Type::Object)
        fatal("json: set() on a non-object value");
    for (auto &[k, v] : object) {
        if (k == key) {
            v = std::move(value);
            return;
        }
    }
    object.emplace_back(key, std::move(value));
}

bool
Json::erase(const std::string &key)
{
    if (type_ != Type::Object)
        fatal("json: erase() on a non-object value");
    for (auto it = object.begin(); it != object.end(); ++it) {
        if (it->first == key) {
            object.erase(it);
            return true;
        }
    }
    return false;
}

void
Json::push(Json value)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    if (type_ != Type::Array)
        fatal("json: push() on a non-array value");
    array.push_back(std::move(value));
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const std::string pad =
        indent > 0 ? std::string(static_cast<size_t>(indent) *
                                     static_cast<size_t>(depth + 1),
                                 ' ')
                   : "";
    const std::string close_pad =
        indent > 0
            ? std::string(static_cast<size_t>(indent) *
                              static_cast<size_t>(depth),
                          ' ')
            : "";
    const char *newline = indent > 0 ? "\n" : "";
    const char *space = indent > 0 ? " " : "";

    switch (type_) {
      case Type::Null:
        out += "null";
        return;
      case Type::Bool:
        out += boolean ? "true" : "false";
        return;
      case Type::Number:
        out += dumpNumber(number);
        return;
      case Type::String:
        dumpString(out, string);
        return;
      case Type::Array: {
        if (array.empty()) {
            out += "[]";
            return;
        }
        out += "[";
        out += newline;
        for (size_t i = 0; i < array.size(); ++i) {
            out += pad;
            array[i].dumpTo(out, indent, depth + 1);
            if (i + 1 < array.size())
                out += ",";
            out += newline;
        }
        out += close_pad;
        out += "]";
        return;
      }
      case Type::Object: {
        if (object.empty()) {
            out += "{}";
            return;
        }
        out += "{";
        out += newline;
        for (size_t i = 0; i < object.size(); ++i) {
            out += pad;
            dumpString(out, object[i].first);
            out += ":";
            out += space;
            object[i].second.dumpTo(out, indent, depth + 1);
            if (i + 1 < object.size())
                out += ",";
            out += newline;
        }
        out += close_pad;
        out += "}";
        return;
      }
    }
}

bool
Json::operator==(const Json &other) const
{
    if (type_ != other.type_)
        return false;
    switch (type_) {
      case Type::Null:
        return true;
      case Type::Bool:
        return boolean == other.boolean;
      case Type::Number:
        return number == other.number;
      case Type::String:
        return string == other.string;
      case Type::Array:
        return array == other.array;
      case Type::Object:
        return object == other.object;
    }
    return false;
}

} // namespace neusight::common
