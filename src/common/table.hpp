/**
 * @file
 * Aligned text-table printer. Every bench binary prints its table/figure
 * rows in the same layout as the paper before persisting them as CSV.
 */

#ifndef NEUSIGHT_COMMON_TABLE_HPP
#define NEUSIGHT_COMMON_TABLE_HPP

#include <string>
#include <vector>

namespace neusight {

/** Column-aligned monospace table with a title and a header row. */
class TextTable
{
  public:
    /** Create a table with the given title and column names. */
    TextTable(std::string title, std::vector<std::string> header);

    /** Append one data row; short rows are padded with empty cells. */
    void addRow(std::vector<std::string> row);

    /** Render the full table (title, rule, header, rows). */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

    /** Number formatting helper (fixed decimals). */
    static std::string num(double value, int precision = 1);

    /** Percentage formatting helper: "12.3%". */
    static std::string pct(double value, int precision = 1);

  private:
    std::string title;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace neusight

#endif // NEUSIGHT_COMMON_TABLE_HPP
