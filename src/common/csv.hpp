/**
 * @file
 * Minimal CSV emission used by every bench to persist the rows it prints,
 * mirroring the paper artifact's CSV outputs.
 */

#ifndef NEUSIGHT_COMMON_CSV_HPP
#define NEUSIGHT_COMMON_CSV_HPP

#include <fstream>
#include <string>
#include <vector>

namespace neusight {

/** Streaming CSV writer; one row at a time, flushed on destruction. */
class CsvWriter
{
  public:
    /**
     * Open @p path for writing and emit @p header as the first row.
     * Throws via fatal() when the file cannot be created.
     */
    CsvWriter(const std::string &path, const std::vector<std::string> &header);

    /** Append one row; must have the same arity as the header. */
    void writeRow(const std::vector<std::string> &fields);

    /** Convenience: format doubles with fixed precision. */
    static std::string fmt(double value, int precision = 4);

  private:
    std::ofstream out;
    size_t arity;
};

} // namespace neusight

#endif // NEUSIGHT_COMMON_CSV_HPP
