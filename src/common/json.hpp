/**
 * @file
 * Minimal self-contained JSON reader/writer used for configuration files
 * (custom GPU specs, model descriptions, tool options). Implements the
 * full JSON grammar — objects, arrays, strings with escapes, numbers,
 * booleans, null — with position-annotated parse errors. No external
 * dependencies, matching the repository's stdlib-only rule.
 */

#ifndef NEUSIGHT_COMMON_JSON_HPP
#define NEUSIGHT_COMMON_JSON_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace neusight::common {

/** One JSON value: null, bool, number, string, array, or object. */
class Json
{
  public:
    /** Discriminator for the held value. */
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    /** Ordered key/value storage (preserves file order for writing). */
    using Object = std::vector<std::pair<std::string, Json>>;
    using Array = std::vector<Json>;

    /// @name Constructors for every value type.
    /// @{
    Json() : type_(Type::Null) {}
    Json(std::nullptr_t) : type_(Type::Null) {}
    Json(bool value) : type_(Type::Bool), boolean(value) {}
    Json(double value) : type_(Type::Number), number(value) {}
    Json(int value) : type_(Type::Number), number(value) {}
    Json(int64_t value)
        : type_(Type::Number), number(static_cast<double>(value))
    {}
    Json(uint64_t value)
        : type_(Type::Number), number(static_cast<double>(value))
    {}
    Json(const char *value) : type_(Type::String), string(value) {}
    Json(std::string value) : type_(Type::String), string(std::move(value)) {}
    Json(Array value) : type_(Type::Array), array(std::move(value)) {}
    Json(Object value) : type_(Type::Object), object(std::move(value)) {}
    /// @}

    /**
     * Parse @p text as a single JSON document.
     * fatal() with line/column on malformed input or trailing garbage.
     */
    static Json parse(const std::string &text);

    /** Parse the JSON document stored at @p path; fatal() on I/O error. */
    static Json parseFile(const std::string &path);

    /** The held value's type. */
    Type type() const { return type_; }

    /// @name Type predicates.
    /// @{
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }
    /// @}

    /// @name Checked accessors; fatal() on type mismatch.
    /// @{
    bool asBool() const;
    double asDouble() const;
    /** Number checked to be integral and in range. */
    int64_t asInt() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;
    /// @}

    /** True when an object holds @p key. */
    bool has(const std::string &key) const;

    /** Member lookup; fatal() when missing or not an object. */
    const Json &at(const std::string &key) const;

    /** Member lookup with a default for optional fields. */
    double numberOr(const std::string &key, double fallback) const;
    bool boolOr(const std::string &key, bool fallback) const;
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;

    /** Append/overwrite an object member (creates the object if null). */
    void set(const std::string &key, Json value);

    /** Remove an object member if present; returns whether it was. */
    bool erase(const std::string &key);

    /** Append an array element (creates the array if null). */
    void push(Json value);

    /**
     * Serialize back to JSON text.
     * @param indent spaces per nesting level; 0 emits a compact single line.
     */
    std::string dump(int indent = 2) const;

    /** Structural equality (numbers compared exactly). */
    bool operator==(const Json &other) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    Array array;
    Object object;
};

} // namespace neusight::common

#endif // NEUSIGHT_COMMON_JSON_HPP
