#include "obs/trace.hpp"

#include <fstream>
#include <utility>

#include "common/logging.hpp"

namespace neusight::obs {

namespace {

/** Per-thread nesting depth (global across tracers: spans of one
 *  thread nest regardless of which tracer collects them). */
thread_local int tlDepth = 0;

} // namespace

Tracer::Tracer() : epoch(std::chrono::steady_clock::now()) {}

void
Tracer::setEnabled(bool enable)
{
    on.store(enable, std::memory_order_relaxed);
}

double
Tracer::nowUs() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch)
        .count();
}

void
Tracer::add(std::string name, const char *category, double start_us,
            double duration_us, int depth)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.name = std::move(name);
    event.category = category;
    event.threadId = currentThreadId();
    event.depth = depth;
    event.startUs = start_us;
    event.durationUs = duration_us;
    std::lock_guard<std::mutex> lock(mutex);
    buffer.push_back(std::move(event));
}

std::vector<TraceEvent>
Tracer::events() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return buffer;
}

size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return buffer.size();
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex);
    buffer.clear();
}

common::Json
Tracer::toChromeJson() const
{
    const std::vector<TraceEvent> snapshot = events();
    common::Json::Array rows;
    rows.reserve(snapshot.size());
    for (const TraceEvent &event : snapshot) {
        common::Json row;
        row.set("name", event.name);
        row.set("cat", event.category);
        row.set("ph", "X");
        row.set("ts", event.startUs);
        row.set("dur", event.durationUs);
        row.set("pid", 1);
        row.set("tid", static_cast<uint64_t>(event.threadId));
        common::Json args;
        args.set("depth", event.depth);
        row.set("args", std::move(args));
        rows.push_back(std::move(row));
    }
    common::Json doc;
    doc.set("traceEvents", common::Json(std::move(rows)));
    doc.set("displayTimeUnit", "ms");
    return doc;
}

size_t
Tracer::writeChromeTrace(std::ostream &out) const
{
    const common::Json doc = toChromeJson();
    out << doc.dump(0) << "\n";
    return doc.at("traceEvents").asArray().size();
}

size_t
Tracer::writeChromeTrace(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("Tracer: cannot write '" + path + "'");
    return writeChromeTrace(out);
}

Tracer &
Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

uint32_t
Tracer::currentThreadId()
{
    static std::atomic<uint32_t> nextId{1};
    thread_local const uint32_t id =
        nextId.fetch_add(1, std::memory_order_relaxed);
    return id;
}

TraceSpan::TraceSpan(const char *name, const char *category_,
                     Tracer &tracer_)
{
    if (!tracer_.enabled())
        return;
    literalName = name;
    open(tracer_, category_);
}

TraceSpan::TraceSpan(std::string name, const char *category_,
                     Tracer &tracer_)
{
    if (!tracer_.enabled())
        return;
    dynamicName = std::move(name);
    open(tracer_, category_);
}

void
TraceSpan::open(Tracer &tracer_, const char *category_)
{
    tracer = &tracer_;
    category = category_;
    depth = tlDepth++;
    startUs = tracer->nowUs();
}

TraceSpan::~TraceSpan()
{
    if (tracer == nullptr)
        return;
    --tlDepth;
    const double duration = tracer->nowUs() - startUs;
    tracer->add(literalName != nullptr ? std::string(literalName)
                                       : std::move(dynamicName),
                category, startUs, duration, depth);
}

} // namespace neusight::obs
