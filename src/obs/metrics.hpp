/**
 * @file
 * Metrics substrate of the observability layer: named counters, gauges,
 * and log-bucketed latency histograms behind a lock-free atomic hot
 * path, collected in a MetricsRegistry that snapshots to JSON (the
 * tools' --metrics-json flag and the wire protocol's "stats" op) and to
 * a one-line-per-metric human table (--stats-interval reporting).
 *
 * The hot path follows the striped-atomic discipline of the prediction
 * cache: counters spread increments over cache-line-separated stripes
 * indexed by thread (readers sum on snapshot), and histogram records
 * are a single relaxed fetch_add on the value's bucket — no recording
 * operation ever takes a lock. Only name resolution (registry lookup /
 * creation) serializes, so callers on hot paths resolve a metric once
 * and keep the shared_ptr.
 *
 * Metric objects are shared_ptr-owned and may predate the registry:
 * subsystems that already keep their own atomic counters (the
 * prediction cache, the server) adopt those exact objects into the
 * registry, so a registry snapshot and the subsystem's own stats view
 * read the same atomics and can never drift apart.
 */

#ifndef NEUSIGHT_OBS_METRICS_HPP
#define NEUSIGHT_OBS_METRICS_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/json.hpp"

namespace neusight::obs {

/**
 * Monotonic counter. Increments land on one of kStripes cache-line-
 * separated atomics chosen by the calling thread, so concurrent
 * writers never contend on one line; value() sums the stripes (exact —
 * each increment lands in exactly one stripe).
 */
class Counter
{
  public:
    void inc(uint64_t n = 1)
    {
        cells[stripeIndex()].v.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t value() const
    {
        uint64_t total = 0;
        for (const Cell &cell : cells)
            total += cell.v.load(std::memory_order_relaxed);
        return total;
    }

  private:
    static constexpr size_t kStripes = 8;

    struct alignas(64) Cell
    {
        std::atomic<uint64_t> v{0};
    };

    /** Stable per-thread stripe choice (threads spread round-robin). */
    static size_t stripeIndex();

    std::array<Cell, kStripes> cells;
};

/** Last-write-wins instantaneous value (queue depth, pool size). */
class Gauge
{
  public:
    void set(int64_t value) { v.store(value, std::memory_order_relaxed); }
    void add(int64_t delta) { v.fetch_add(delta, std::memory_order_relaxed); }
    int64_t value() const { return v.load(std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> v{0};
};

/**
 * Log-bucketed latency histogram. Buckets grow geometrically by
 * 2^(1/kBucketsPerOctave) (~19% per bucket at 4/octave) from kMinValue,
 * so one fixed array spans nanosecond costs to quarter-hour requests
 * and any quantile estimate is within one bucket width of the true
 * order statistic. record() is one relaxed fetch_add on the bucket
 * plus fixed-point updates of sum/min/max — lock-free and wait-free on
 * the bucket itself.
 *
 * Values are unit-agnostic (the registry carries a display unit);
 * engine/server histograms record microseconds, the cache-contention
 * bench records nanoseconds.
 */
class Histogram
{
  public:
    /** Lower bound of bucket 0; values below it clamp into bucket 0. */
    static constexpr double kMinValue = 0.1;
    /** Buckets per doubling of the value. */
    static constexpr int kBucketsPerOctave = 4;
    /** Bucket count: covers [kMinValue, kMinValue * 2^37) ~ 1.3e10. */
    static constexpr size_t kNumBuckets =
        static_cast<size_t>(37 * kBucketsPerOctave);

    /** Bucket receiving @p value (clamped to the covered range). */
    static size_t bucketIndex(double value);

    /** Inclusive lower edge of bucket @p index. */
    static double bucketLowerBound(size_t index);

    /** Exclusive upper edge of bucket @p index. */
    static double bucketUpperBound(size_t index);

    /** Record one observation. Thread-safe, lock-free. */
    void record(double value);

    /** Observations recorded so far. */
    uint64_t count() const;

    /** Sum of recorded values (fixed-point, ~1e-3 resolution). */
    double sum() const;

    /** Mean of recorded values (0 when empty). */
    double mean() const;

    /** Smallest / largest recorded value (0 when empty). */
    double minValue() const;
    double maxValue() const;

    /**
     * Estimated @p q quantile (q in [0, 1]): the geometric midpoint of
     * the bucket holding the rank-ceil(q * count) observation, clamped
     * to the observed [min, max]. Within one bucket width (a factor of
     * 2^(1/kBucketsPerOctave)) of the exact order statistic.
     */
    double quantile(double q) const;

    /**
     * Summary object: count, mean, min, max, p50/p90/p99/p999, and the
     * non-empty buckets as [lower_bound, count] pairs.
     */
    common::Json toJson() const;

    /** Drop every recorded observation (tests and benches). */
    void reset();

  private:
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
    std::atomic<uint64_t> observations{0};
    /** Fixed-point (value * 1000) accumulators; ~584 years of micros. */
    std::atomic<uint64_t> sumFixed{0};
    std::atomic<uint64_t> minFixed{UINT64_MAX};
    std::atomic<uint64_t> maxFixed{0};
};

/**
 * Named metric directory. counter()/gauge()/histogram() create on
 * first use and return the shared instance afterwards; adopt()
 * registers a metric object that already lives elsewhere (the
 * prediction cache's own counters), making the registry snapshot and
 * the owner's stats read the same atomics; probe() registers a
 * callback sampled at snapshot time (cache sizes). All methods are
 * thread-safe; resolution takes a mutex, so hot paths resolve once and
 * keep the pointer.
 */
class MetricsRegistry
{
  public:
    /** The named counter, created on first use. fatal() if @p name is
     *  already a different metric type. */
    std::shared_ptr<Counter> counter(const std::string &name);

    /** The named gauge, created on first use. */
    std::shared_ptr<Gauge> gauge(const std::string &name);

    /** The named histogram, created on first use. @p unit is display
     *  metadata ("us", "ns"); the first registration wins. */
    std::shared_ptr<Histogram> histogram(const std::string &name,
                                         const std::string &unit = "us");

    /// @name Adopt externally-owned metric objects under a name
    /// (replaces any previous metric of that name).
    /// @{
    void adopt(const std::string &name, std::shared_ptr<Counter> metric);
    void adopt(const std::string &name, std::shared_ptr<Gauge> metric);
    void adopt(const std::string &name, std::shared_ptr<Histogram> metric,
               const std::string &unit = "us");
    /// @}

    /**
     * Register a snapshot-time callback: @p sample runs inside
     * toJson()/toTable() and its value is reported as a gauge. The
     * callback must own (capture) whatever it reads.
     */
    void probe(const std::string &name, std::function<double()> sample);

    /** Unregister @p name (no-op when absent). */
    void remove(const std::string &name);

    /** Number of registered metrics. */
    size_t size() const;

    /**
     * Point-in-time snapshot: one member per metric, sorted by name.
     * Counters and gauges map to numbers, histograms to their summary
     * objects (count/mean/min/max/p50/p90/p99/p999/unit/buckets).
     */
    common::Json toJson() const;

    /** toJson() written to @p path (indent 2); fatal() on I/O error. */
    void writeJson(const std::string &path) const;

    /**
     * One line per metric, name-sorted, for periodic stderr reporting:
     *   engine.request_us.inference.neusight  count=192 mean=812.4
     *   p50=790.1 p99=1201.9 max=1544.2 us
     */
    std::string toTable() const;

    /** The process-wide default registry. */
    static MetricsRegistry &global();

  private:
    struct Slot
    {
        std::shared_ptr<Counter> counter;
        std::shared_ptr<Gauge> gauge;
        std::shared_ptr<Histogram> histogram;
        std::function<double()> sample;
        std::string unit;
    };

    mutable std::mutex mutex;
    /** Ordered, so snapshots list metrics deterministically. */
    std::map<std::string, Slot> slots;
};

} // namespace neusight::obs

#endif // NEUSIGHT_OBS_METRICS_HPP
