/**
 * @file
 * Span-based request tracer of the observability layer. A TraceSpan is
 * an RAII scope: construction stamps the start, destruction records
 * one complete event (name, category, thread id, nesting depth, start,
 * duration) into the owning Tracer. The collected timeline exports as
 * Chrome trace-event JSON, loadable directly in chrome://tracing or
 * Perfetto (ui.perfetto.dev), where spans nest visually per thread.
 *
 * The disabled path is near-zero-cost: a disabled tracer makes the
 * span constructor one relaxed atomic load and the destructor one
 * branch — no clock read, no lock, and (with a string-literal name) no
 * allocation — so spans stay compiled into every hot path and tracing
 * is switched on per run (--trace-out). Dynamic span names should be
 * built only behind an enabled() check.
 */

#ifndef NEUSIGHT_OBS_TRACE_HPP
#define NEUSIGHT_OBS_TRACE_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace neusight::obs {

/** One completed span (Chrome trace-event "X" phase). */
struct TraceEvent
{
    std::string name;
    /** Subsystem label ("serve", "engine", "dist", "core", ...). */
    const char *category = "neusight";
    /** Small sequential id of the recording thread. */
    uint32_t threadId = 0;
    /** Nesting depth within the recording thread (0 = top level). */
    int depth = 0;
    /** Microseconds since the tracer's epoch. */
    double startUs = 0.0;
    double durationUs = 0.0;
};

/**
 * Collects TraceEvents behind an enabled flag. Recording appends under
 * a mutex (spans are request-granular — a few per forecast — so the
 * lock is not a hot-path concern; the *disabled* path never reaches
 * it). Thread-safe throughout.
 */
class Tracer
{
  public:
    Tracer();

    /** Whether spans record (one relaxed load; the hot-path check). */
    bool enabled() const { return on.load(std::memory_order_relaxed); }

    /** Turn collection on/off. Enabling resets the epoch only on the
     *  first enable, so repeated toggles share one timeline. */
    void setEnabled(bool enable);

    /** Microseconds since this tracer's epoch. */
    double nowUs() const;

    /**
     * Record a completed span with explicit timing — used where the
     * measured interval is not a C++ scope (queue wait between
     * enqueue and dequeue). No-op when disabled.
     */
    void add(std::string name, const char *category, double start_us,
             double duration_us, int depth = 0);

    /** Snapshot of every recorded event. */
    std::vector<TraceEvent> events() const;

    /** Recorded event count. */
    size_t eventCount() const;

    /** Drop all recorded events. */
    void clear();

    /**
     * The Chrome trace-event document: {"traceEvents": [...]}, each
     * event a complete ("ph":"X") event with ts/dur in microseconds
     * and the nesting depth in args.
     */
    common::Json toChromeJson() const;

    /** Write toChromeJson() to @p out; returns events written. */
    size_t writeChromeTrace(std::ostream &out) const;

    /** Write to @p path; fatal() on I/O error. Returns events. */
    size_t writeChromeTrace(const std::string &path) const;

    /** The process-wide tracer every TraceSpan defaults to. */
    static Tracer &global();

    /** Small sequential id of the calling thread (stable per thread). */
    static uint32_t currentThreadId();

  private:
    friend class TraceSpan;

    std::atomic<bool> on{false};
    std::chrono::steady_clock::time_point epoch;

    mutable std::mutex mutex;
    std::vector<TraceEvent> buffer;
};

/**
 * RAII span. Prefer the string-literal constructor on hot paths — it
 * allocates nothing either way; build dynamic names only behind
 * tracer.enabled().
 */
class TraceSpan
{
  public:
    /** Literal-named span against @p tracer (default: the global). */
    explicit TraceSpan(const char *name, const char *category = "neusight",
                       Tracer &tracer = Tracer::global());

    /** Dynamically-named span (name is moved in; gate construction of
     *  the string on tracer.enabled() to keep disabled paths free). */
    TraceSpan(std::string name, const char *category,
              Tracer &tracer = Tracer::global());

    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    void open(Tracer &tracer, const char *category);

    /** Null when the tracer was disabled at construction. */
    Tracer *tracer = nullptr;
    const char *literalName = nullptr;
    std::string dynamicName;
    const char *category = "neusight";
    double startUs = 0.0;
    int depth = 0;
};

} // namespace neusight::obs

#endif // NEUSIGHT_OBS_TRACE_HPP
