/**
 * @file
 * Cross-process metrics aggregation for the sharded serving mode: each
 * shard worker answers a "stats" op with its own MetricsRegistry
 * snapshot (JSON), and the router merges those snapshots into one
 * cluster view. Counters/gauges/probes sum; histograms merge their
 * [lower_bound, count] bucket pairs and recompute the quantile
 * estimates from the merged buckets — the same geometric-midpoint
 * estimator Histogram::quantile uses, so a 1-shard merged snapshot is
 * numerically identical to the shard's own snapshot.
 */

#ifndef NEUSIGHT_OBS_MERGE_HPP
#define NEUSIGHT_OBS_MERGE_HPP

#include <vector>

#include "common/json.hpp"

namespace neusight::obs {

/**
 * Merge per-shard MetricsRegistry::toJson() snapshots into one
 * aggregate snapshot. Metric names union; numeric metrics (counters,
 * gauges, probes) add; histogram summaries merge by bucket. Non-object
 * snapshots are skipped. An empty input merges to an empty object.
 */
common::Json mergeMetricsSnapshots(const std::vector<common::Json> &snapshots);

} // namespace neusight::obs

#endif // NEUSIGHT_OBS_MERGE_HPP
