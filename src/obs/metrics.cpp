#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <utility>

#include "common/logging.hpp"

namespace neusight::obs {

namespace {

/** Fixed-point scale of the histogram sum/min/max accumulators. */
constexpr double kFixedScale = 1000.0;

uint64_t
toFixed(double value)
{
    if (value <= 0.0)
        return 0;
    return static_cast<uint64_t>(value * kFixedScale);
}

double
fromFixed(uint64_t fixed)
{
    return static_cast<double>(fixed) / kFixedScale;
}

/** fetch_min / fetch_max via CAS (C++17 has no atomic fetch_min). */
void
atomicMin(std::atomic<uint64_t> &target, uint64_t value)
{
    uint64_t current = target.load(std::memory_order_relaxed);
    while (value < current &&
           !target.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed))
    {
    }
}

void
atomicMax(std::atomic<uint64_t> &target, uint64_t value)
{
    uint64_t current = target.load(std::memory_order_relaxed);
    while (value > current &&
           !target.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed))
    {
    }
}

} // namespace

size_t
Counter::stripeIndex()
{
    static std::atomic<size_t> nextThread{0};
    thread_local const size_t index =
        nextThread.fetch_add(1, std::memory_order_relaxed) % kStripes;
    return index;
}

size_t
Histogram::bucketIndex(double value)
{
    if (!(value > kMinValue)) // Also catches NaN and negatives.
        return 0;
    const double octaves = std::log2(value / kMinValue);
    const double raw = octaves * kBucketsPerOctave;
    if (raw >= static_cast<double>(kNumBuckets - 1))
        return kNumBuckets - 1;
    return static_cast<size_t>(raw);
}

double
Histogram::bucketLowerBound(size_t index)
{
    return kMinValue *
           std::exp2(static_cast<double>(index) / kBucketsPerOctave);
}

double
Histogram::bucketUpperBound(size_t index)
{
    return kMinValue *
           std::exp2(static_cast<double>(index + 1) / kBucketsPerOctave);
}

void
Histogram::record(double value)
{
    buckets[bucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    observations.fetch_add(1, std::memory_order_relaxed);
    const uint64_t fixed = toFixed(value);
    sumFixed.fetch_add(fixed, std::memory_order_relaxed);
    atomicMin(minFixed, fixed);
    atomicMax(maxFixed, fixed);
}

uint64_t
Histogram::count() const
{
    return observations.load(std::memory_order_relaxed);
}

double
Histogram::sum() const
{
    return fromFixed(sumFixed.load(std::memory_order_relaxed));
}

double
Histogram::mean() const
{
    const uint64_t n = count();
    return n ? sum() / static_cast<double>(n) : 0.0;
}

double
Histogram::minValue() const
{
    const uint64_t fixed = minFixed.load(std::memory_order_relaxed);
    return fixed == UINT64_MAX ? 0.0 : fromFixed(fixed);
}

double
Histogram::maxValue() const
{
    return fromFixed(maxFixed.load(std::memory_order_relaxed));
}

double
Histogram::quantile(double q) const
{
    const uint64_t n = count();
    if (n == 0)
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    // Rank of the order statistic we estimate (1-based, ceil(q * n)).
    const uint64_t rank = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::ceil(q * static_cast<double>(n))));
    uint64_t cumulative = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
        cumulative += buckets[i].load(std::memory_order_relaxed);
        if (cumulative >= rank) {
            // Geometric midpoint of the bucket, clamped to what was
            // actually observed so estimates never leave the data
            // range (bucket 0 also holds sub-kMinValue values).
            const double mid = std::sqrt(bucketLowerBound(i) *
                                         bucketUpperBound(i));
            return std::min(maxValue(), std::max(minValue(), mid));
        }
    }
    return maxValue();
}

common::Json
Histogram::toJson() const
{
    common::Json json;
    json.set("count", count());
    json.set("mean", mean());
    json.set("min", minValue());
    json.set("max", maxValue());
    json.set("p50", quantile(0.50));
    json.set("p90", quantile(0.90));
    json.set("p99", quantile(0.99));
    json.set("p999", quantile(0.999));
    common::Json::Array nonempty;
    for (size_t i = 0; i < kNumBuckets; ++i) {
        const uint64_t n = buckets[i].load(std::memory_order_relaxed);
        if (n == 0)
            continue;
        common::Json::Array pair;
        pair.push_back(common::Json(bucketLowerBound(i)));
        pair.push_back(common::Json(n));
        nonempty.push_back(common::Json(std::move(pair)));
    }
    json.set("buckets", common::Json(std::move(nonempty)));
    return json;
}

void
Histogram::reset()
{
    for (auto &bucket : buckets)
        bucket.store(0, std::memory_order_relaxed);
    observations.store(0, std::memory_order_relaxed);
    sumFixed.store(0, std::memory_order_relaxed);
    minFixed.store(UINT64_MAX, std::memory_order_relaxed);
    maxFixed.store(0, std::memory_order_relaxed);
}

std::shared_ptr<Counter>
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex);
    Slot &slot = slots[name];
    if (slot.gauge || slot.histogram || slot.sample)
        fatal("MetricsRegistry: '" + name +
              "' is already registered as a different metric type");
    if (!slot.counter)
        slot.counter = std::make_shared<Counter>();
    return slot.counter;
}

std::shared_ptr<Gauge>
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex);
    Slot &slot = slots[name];
    if (slot.counter || slot.histogram || slot.sample)
        fatal("MetricsRegistry: '" + name +
              "' is already registered as a different metric type");
    if (!slot.gauge)
        slot.gauge = std::make_shared<Gauge>();
    return slot.gauge;
}

std::shared_ptr<Histogram>
MetricsRegistry::histogram(const std::string &name, const std::string &unit)
{
    std::lock_guard<std::mutex> lock(mutex);
    Slot &slot = slots[name];
    if (slot.counter || slot.gauge || slot.sample)
        fatal("MetricsRegistry: '" + name +
              "' is already registered as a different metric type");
    if (!slot.histogram) {
        slot.histogram = std::make_shared<Histogram>();
        slot.unit = unit;
    }
    return slot.histogram;
}

void
MetricsRegistry::adopt(const std::string &name,
                       std::shared_ptr<Counter> metric)
{
    ensure(metric != nullptr, "MetricsRegistry: adopting null counter");
    std::lock_guard<std::mutex> lock(mutex);
    slots[name] = Slot{std::move(metric), nullptr, nullptr, nullptr, ""};
}

void
MetricsRegistry::adopt(const std::string &name, std::shared_ptr<Gauge> metric)
{
    ensure(metric != nullptr, "MetricsRegistry: adopting null gauge");
    std::lock_guard<std::mutex> lock(mutex);
    slots[name] = Slot{nullptr, std::move(metric), nullptr, nullptr, ""};
}

void
MetricsRegistry::adopt(const std::string &name,
                       std::shared_ptr<Histogram> metric,
                       const std::string &unit)
{
    ensure(metric != nullptr, "MetricsRegistry: adopting null histogram");
    std::lock_guard<std::mutex> lock(mutex);
    slots[name] = Slot{nullptr, nullptr, std::move(metric), nullptr, unit};
}

void
MetricsRegistry::probe(const std::string &name,
                       std::function<double()> sample)
{
    ensure(sample != nullptr, "MetricsRegistry: null probe callback");
    std::lock_guard<std::mutex> lock(mutex);
    slots[name] = Slot{nullptr, nullptr, nullptr, std::move(sample), ""};
}

void
MetricsRegistry::remove(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex);
    slots.erase(name);
}

size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return slots.size();
}

common::Json
MetricsRegistry::toJson() const
{
    // Copy the slot table so probe callbacks (which may take their
    // owner's locks) never run under the registry mutex.
    std::map<std::string, Slot> copy;
    {
        std::lock_guard<std::mutex> lock(mutex);
        copy = slots;
    }
    common::Json json{common::Json::Object{}};
    for (const auto &[name, slot] : copy) {
        if (slot.counter) {
            json.set(name, slot.counter->value());
        } else if (slot.gauge) {
            json.set(name, static_cast<int64_t>(slot.gauge->value()));
        } else if (slot.sample) {
            json.set(name, slot.sample());
        } else if (slot.histogram) {
            common::Json h = slot.histogram->toJson();
            if (!slot.unit.empty())
                h.set("unit", slot.unit);
            json.set(name, std::move(h));
        }
    }
    return json;
}

void
MetricsRegistry::writeJson(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("MetricsRegistry: cannot write '" + path + "'");
    out << toJson().dump(2) << "\n";
}

std::string
MetricsRegistry::toTable() const
{
    std::map<std::string, Slot> copy;
    {
        std::lock_guard<std::mutex> lock(mutex);
        copy = slots;
    }
    // Pad names so the value column lines up.
    size_t width = 0;
    for (const auto &[name, slot] : copy)
        width = std::max(width, name.size());
    std::string out;
    char buf[256];
    for (const auto &[name, slot] : copy) {
        out += name;
        out.append(width - name.size() + 2, ' ');
        if (slot.counter) {
            std::snprintf(buf, sizeof(buf), "%llu",
                          static_cast<unsigned long long>(
                              slot.counter->value()));
            out += buf;
        } else if (slot.gauge) {
            std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(slot.gauge->value()));
            out += buf;
        } else if (slot.sample) {
            std::snprintf(buf, sizeof(buf), "%.1f", slot.sample());
            out += buf;
        } else if (slot.histogram) {
            const Histogram &h = *slot.histogram;
            std::snprintf(buf, sizeof(buf),
                          "count=%llu mean=%.1f p50=%.1f p99=%.1f "
                          "p999=%.1f max=%.1f %s",
                          static_cast<unsigned long long>(h.count()),
                          h.mean(), h.quantile(0.5), h.quantile(0.99),
                          h.quantile(0.999), h.maxValue(),
                          slot.unit.c_str());
            out += buf;
        }
        out += '\n';
    }
    return out;
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace neusight::obs
