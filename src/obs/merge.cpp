#include "obs/merge.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>

#include "obs/metrics.hpp"

namespace neusight::obs {

namespace {

/** A histogram summary is the only object-valued metric we emit. */
bool
isHistogramSummary(const common::Json &value)
{
    return value.isObject() && value.has("buckets") && value.has("count");
}

/** Accumulated state of one histogram metric across shards. */
struct HistogramMerge
{
    /** Bucket lower bound -> summed count. Keys are the exact doubles
     *  Histogram::bucketLowerBound emits, so equal buckets collide. */
    std::map<double, uint64_t> buckets;
    uint64_t count = 0;
    double weightedMeanSum = 0.0;
    double minValue = std::numeric_limits<double>::infinity();
    double maxValue = 0.0;
    std::string unit;

    void absorb(const common::Json &summary)
    {
        const uint64_t n =
            static_cast<uint64_t>(summary.numberOr("count", 0.0));
        if (n > 0) {
            count += n;
            weightedMeanSum +=
                summary.numberOr("mean", 0.0) * static_cast<double>(n);
            minValue = std::min(minValue, summary.numberOr("min", 0.0));
            maxValue = std::max(maxValue, summary.numberOr("max", 0.0));
        }
        if (unit.empty())
            unit = summary.stringOr("unit", "");
        if (!summary.at("buckets").isArray())
            return;
        for (const common::Json &pair : summary.at("buckets").asArray()) {
            if (!pair.isArray() || pair.asArray().size() != 2)
                continue;
            buckets[pair.asArray()[0].asDouble()] +=
                static_cast<uint64_t>(pair.asArray()[1].asDouble());
        }
    }

    /** Same estimator as Histogram::quantile, over merged buckets. */
    double quantile(double q) const
    {
        if (count == 0)
            return 0.0;
        q = std::min(1.0, std::max(0.0, q));
        const uint64_t rank = std::max<uint64_t>(
            1, static_cast<uint64_t>(
                   std::ceil(q * static_cast<double>(count))));
        const double octave =
            std::pow(2.0, 1.0 / Histogram::kBucketsPerOctave);
        uint64_t cumulative = 0;
        for (const auto &[lower, n] : buckets) {
            cumulative += n;
            if (cumulative >= rank) {
                const double mid = std::sqrt(lower * (lower * octave));
                return std::min(maxValue, std::max(minValue, mid));
            }
        }
        return maxValue;
    }

    common::Json toJson() const
    {
        common::Json json;
        json.set("count", count);
        json.set("mean", count > 0
                             ? weightedMeanSum / static_cast<double>(count)
                             : 0.0);
        json.set("min", count > 0 ? minValue : 0.0);
        json.set("max", maxValue);
        json.set("p50", quantile(0.50));
        json.set("p90", quantile(0.90));
        json.set("p99", quantile(0.99));
        json.set("p999", quantile(0.999));
        common::Json::Array pairs;
        for (const auto &[lower, n] : buckets) {
            common::Json::Array pair;
            pair.push_back(common::Json(lower));
            pair.push_back(common::Json(n));
            pairs.push_back(common::Json(std::move(pair)));
        }
        json.set("buckets", common::Json(std::move(pairs)));
        if (!unit.empty())
            json.set("unit", unit);
        return json;
    }
};

} // namespace

common::Json
mergeMetricsSnapshots(const std::vector<common::Json> &snapshots)
{
    // std::map keeps the output name-sorted like a registry snapshot.
    std::map<std::string, double> numerics;
    std::map<std::string, HistogramMerge> histograms;
    for (const common::Json &snapshot : snapshots) {
        if (!snapshot.isObject())
            continue;
        for (const auto &[name, value] : snapshot.asObject()) {
            if (value.isNumber())
                numerics[name] += value.asDouble();
            else if (isHistogramSummary(value))
                histograms[name].absorb(value);
        }
    }
    common::Json merged{common::Json::Object{}};
    auto num = numerics.begin();
    auto hist = histograms.begin();
    while (num != numerics.end() || hist != histograms.end()) {
        const bool takeNum =
            hist == histograms.end() ||
            (num != numerics.end() && num->first < hist->first);
        if (takeNum) {
            // Counters and gauges are integral; keep them so in JSON.
            const double v = num->second;
            if (v == std::floor(v) && std::abs(v) < 9.0e15)
                merged.set(num->first, static_cast<int64_t>(v));
            else
                merged.set(num->first, v);
            ++num;
        } else {
            merged.set(hist->first, hist->second.toJson());
            ++hist;
        }
    }
    return merged;
}

} // namespace neusight::obs
