#include "serve/prediction_cache.hpp"

#include <fstream>
#include <functional>
#include <sstream>
#include <utility>

#include "common/json.hpp"
#include "common/logging.hpp"

namespace neusight::serve {

using core::PredictionDetail;
using gpusim::GpuSpec;
using gpusim::KernelDesc;

PredictionCache::PredictionCache(size_t capacity, size_t num_shards)
{
    ensure(capacity > 0, "PredictionCache: capacity must be positive");
    ensure(num_shards > 0, "PredictionCache: need at least one shard");
    if (num_shards > capacity)
        num_shards = capacity;
    // Floor division so the shards together never exceed the stated
    // budget (size() <= capacity() always holds); the clamp above
    // guarantees at least one entry per shard.
    totalCapacity = capacity;
    shardCapacity = capacity / num_shards;
    shards.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i)
        shards.push_back(std::make_unique<Shard>());
}

PredictionCache::Shard &
PredictionCache::shardFor(const std::string &key)
{
    return *shards[std::hash<std::string>{}(key) % shards.size()];
}

bool
PredictionCache::lookup(const std::string &key, PredictionDetail &out)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
        misses.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    out = it->second->second;
    hits.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
PredictionCache::insert(const std::string &key,
                        const PredictionDetail &detail)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
        it->second->second = detail;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    if (shard.lru.size() >= shardCapacity) {
        shard.index.erase(shard.lru.back().first);
        shard.lru.pop_back();
        evictions.fetch_add(1, std::memory_order_relaxed);
    }
    shard.lru.emplace_front(key, detail);
    shard.index.emplace(shard.lru.front().first, shard.lru.begin());
    inserts.fetch_add(1, std::memory_order_relaxed);
}

namespace {

/** One snapshot line: the key plus every PredictionDetail field. */
common::Json
entryToJson(const std::string &key, const PredictionDetail &detail)
{
    common::Json json;
    json.set("key", key);
    common::Json::Array tiles;
    tiles.reserve(detail.tileDims.size());
    for (const uint64_t dim : detail.tileDims)
        tiles.push_back(common::Json(dim));
    json.set("tile_dims", common::Json(std::move(tiles)));
    json.set("num_tiles", detail.numTiles);
    json.set("num_waves", detail.numWaves);
    json.set("alpha", detail.alpha);
    json.set("beta", detail.beta);
    json.set("utilization", detail.utilization);
    json.set("roofline_per_sm", detail.rooflinePerSm);
    json.set("latency_ms", detail.latencyMs);
    json.set("memory_fallback", detail.memoryFallback);
    return json;
}

PredictionDetail
entryFromJson(const common::Json &json, std::string &key_out)
{
    key_out = json.at("key").asString();
    PredictionDetail detail;
    for (const common::Json &dim : json.at("tile_dims").asArray())
        detail.tileDims.push_back(static_cast<uint64_t>(dim.asInt()));
    detail.numTiles =
        static_cast<uint64_t>(json.at("num_tiles").asInt());
    detail.numWaves =
        static_cast<uint64_t>(json.at("num_waves").asInt());
    detail.alpha = json.at("alpha").asDouble();
    detail.beta = json.at("beta").asDouble();
    detail.utilization = json.at("utilization").asDouble();
    detail.rooflinePerSm = json.at("roofline_per_sm").asDouble();
    detail.latencyMs = json.at("latency_ms").asDouble();
    detail.memoryFallback = json.at("memory_fallback").asBool();
    return detail;
}

} // namespace

size_t
PredictionCache::saveTo(std::ostream &out) const
{
    size_t written = 0;
    for (const auto &shard : shards) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        // Back-to-front = least recently used first, so loadFrom's
        // in-order inserts leave the most recent entries most recent.
        for (auto it = shard->lru.rbegin(); it != shard->lru.rend();
             ++it) {
            out << entryToJson(it->first, it->second).dump(0) << '\n';
            ++written;
        }
    }
    return written;
}

size_t
PredictionCache::saveTo(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("PredictionCache: cannot write snapshot '" + path + "'");
    const size_t written = saveTo(static_cast<std::ostream &>(out));
    // Flush before the state check: buffered write failures (disk
    // full) would otherwise surface only in the destructor, silently.
    out.flush();
    if (!out)
        fatal("PredictionCache: I/O error writing snapshot '" + path +
              "'");
    return written;
}

size_t
PredictionCache::loadFrom(std::istream &in)
{
    size_t loaded = 0;
    size_t line_no = 0;
    std::string line;
    while (std::getline(in, line)) {
        ++line_no;
        const size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        std::string key;
        PredictionDetail detail;
        try {
            detail = entryFromJson(common::Json::parse(line), key);
        } catch (const std::exception &e) {
            fatal("PredictionCache: snapshot line " +
                  std::to_string(line_no) + ": " + e.what());
        }
        insert(key, detail);
        ++loaded;
    }
    return loaded;
}

size_t
PredictionCache::loadFrom(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("PredictionCache: cannot read snapshot '" + path + "'");
    return loadFrom(static_cast<std::istream &>(in));
}

CacheStats
PredictionCache::stats() const
{
    CacheStats s;
    s.hits = hits.load(std::memory_order_relaxed);
    s.misses = misses.load(std::memory_order_relaxed);
    s.evictions = evictions.load(std::memory_order_relaxed);
    s.inserts = inserts.load(std::memory_order_relaxed);
    s.capacity = totalCapacity;
    for (const auto &shard : shards) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        s.size += shard->lru.size();
    }
    return s;
}

void
PredictionCache::clear()
{
    for (auto &shard : shards) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->lru.clear();
        shard->index.clear();
    }
}

size_t
PredictionCache::size() const
{
    size_t n = 0;
    for (const auto &shard : shards) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        n += shard->lru.size();
    }
    return n;
}

ScopedKernelCache::ScopedKernelCache(
    std::shared_ptr<PredictionCache> cache, std::string scope)
    : cachePtr(std::move(cache)),
      prefix(std::move(scope) + kCacheScopeSeparator)
{
    ensure(cachePtr != nullptr, "ScopedKernelCache: null cache");
}

bool
ScopedKernelCache::lookup(const std::string &key, PredictionDetail &out)
{
    return cachePtr->lookup(prefix + key, out);
}

void
ScopedKernelCache::insert(const std::string &key,
                          const PredictionDetail &detail)
{
    cachePtr->insert(prefix + key, detail);
}

CachedPredictor::CachedPredictor(const graph::LatencyPredictor &inner_,
                                 std::shared_ptr<PredictionCache> cache,
                                 std::string key_scope)
    : inner(inner_), cachePtr(std::move(cache))
{
    ensure(cachePtr != nullptr, "CachedPredictor: null cache");
    if (!key_scope.empty())
        prefix = std::move(key_scope) + kCacheScopeSeparator;
}

std::string
CachedPredictor::name() const
{
    return inner.name() + "+cache";
}

double
CachedPredictor::predictKernelMs(const KernelDesc &desc,
                                 const GpuSpec &gpu) const
{
    // Raw op name: the inner predictor may tell kernels apart that the
    // NeuSight canonicalization deliberately merges (the simulator's
    // ground truth does, via its per-kernel-name behaviour).
    const std::string key =
        prefix + cacheFingerprint(desc, gpu, /*canonical_op=*/false);
    PredictionDetail detail;
    if (cachePtr->lookup(key, detail))
        return detail.latencyMs;
    detail = PredictionDetail{};
    detail.latencyMs = inner.predictKernelMs(desc, gpu);
    cachePtr->insert(key, detail);
    return detail.latencyMs;
}

} // namespace neusight::serve
