#include "serve/prediction_cache.hpp"

#include <functional>

#include "common/logging.hpp"

namespace neusight::serve {

using core::PredictionDetail;
using gpusim::GpuSpec;
using gpusim::KernelDesc;

PredictionCache::PredictionCache(size_t capacity, size_t num_shards)
{
    ensure(capacity > 0, "PredictionCache: capacity must be positive");
    ensure(num_shards > 0, "PredictionCache: need at least one shard");
    if (num_shards > capacity)
        num_shards = capacity;
    // Floor division so the shards together never exceed the stated
    // budget (size() <= capacity() always holds); the clamp above
    // guarantees at least one entry per shard.
    totalCapacity = capacity;
    shardCapacity = capacity / num_shards;
    shards.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i)
        shards.push_back(std::make_unique<Shard>());
}

PredictionCache::Shard &
PredictionCache::shardFor(const std::string &key)
{
    return *shards[std::hash<std::string>{}(key) % shards.size()];
}

bool
PredictionCache::lookup(const std::string &key, PredictionDetail &out)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
        misses.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    out = it->second->second;
    hits.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
PredictionCache::insert(const std::string &key,
                        const PredictionDetail &detail)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
        it->second->second = detail;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    if (shard.lru.size() >= shardCapacity) {
        shard.index.erase(shard.lru.back().first);
        shard.lru.pop_back();
        evictions.fetch_add(1, std::memory_order_relaxed);
    }
    shard.lru.emplace_front(key, detail);
    shard.index.emplace(shard.lru.front().first, shard.lru.begin());
    inserts.fetch_add(1, std::memory_order_relaxed);
}

CacheStats
PredictionCache::stats() const
{
    CacheStats s;
    s.hits = hits.load(std::memory_order_relaxed);
    s.misses = misses.load(std::memory_order_relaxed);
    s.evictions = evictions.load(std::memory_order_relaxed);
    s.inserts = inserts.load(std::memory_order_relaxed);
    s.capacity = totalCapacity;
    for (const auto &shard : shards) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        s.size += shard->lru.size();
    }
    return s;
}

void
PredictionCache::clear()
{
    for (auto &shard : shards) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->lru.clear();
        shard->index.clear();
    }
}

size_t
PredictionCache::size() const
{
    size_t n = 0;
    for (const auto &shard : shards) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        n += shard->lru.size();
    }
    return n;
}

CachedPredictor::CachedPredictor(const graph::LatencyPredictor &inner_,
                                 std::shared_ptr<PredictionCache> cache)
    : inner(inner_), cachePtr(std::move(cache))
{
    ensure(cachePtr != nullptr, "CachedPredictor: null cache");
}

std::string
CachedPredictor::name() const
{
    return inner.name() + "+cache";
}

double
CachedPredictor::predictKernelMs(const KernelDesc &desc,
                                 const GpuSpec &gpu) const
{
    // Raw op name: the inner predictor may tell kernels apart that the
    // NeuSight canonicalization deliberately merges (the simulator's
    // ground truth does, via its per-kernel-name behaviour).
    const std::string key =
        cacheFingerprint(desc, gpu, /*canonical_op=*/false);
    PredictionDetail detail;
    if (cachePtr->lookup(key, detail))
        return detail.latencyMs;
    detail = PredictionDetail{};
    detail.latencyMs = inner.predictKernelMs(desc, gpu);
    cachePtr->insert(key, detail);
    return detail.latencyMs;
}

} // namespace neusight::serve
