#include "serve/prediction_cache.hpp"

#include <algorithm>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>
#include <utility>

#include "common/json.hpp"
#include "common/logging.hpp"

namespace neusight::serve {

using core::PredictionDetail;
using gpusim::GpuSpec;
using gpusim::KernelDesc;

struct PredictionCache::Entry
{
    std::string key;
    core::PredictionDetail detail;
    size_t hash = 0;
    /** LRU timestamp; the only field mutated after publication. */
    std::atomic<uint64_t> lastUsed{0};
};

struct PredictionCache::Stripe
{
    /** Serializes insert/evict/compact/clear; never taken by lookup. */
    mutable std::mutex writerMutex;
    /** Open-addressing slots: null = chain end, tombstone = deleted. */
    std::unique_ptr<std::atomic<Entry *>[]> slots;
    /** Live entries (writer-mutex guarded). */
    size_t liveCount = 0;
    /** Empty (null) slots left (writer-mutex guarded). */
    size_t nullCount = 0;
    /** In-flight lock-free readers; gates limbo reclamation. */
    mutable std::atomic<uint64_t> activeReaders{0};
    /** Unpublished entries awaiting a reader-free grace period. */
    std::vector<Entry *> limbo;
};

namespace {

/** Writers spin for a reader-free window past this limbo backlog. */
constexpr size_t kLimboBackstop = 4096;

size_t
nextPow2(size_t v)
{
    size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

PredictionCache::Entry *
PredictionCache::tombstone()
{
    // Distinguished sentinel address; never dereferenced, never freed.
    static Entry sentinel;
    return &sentinel;
}

PredictionCache::PredictionCache(size_t capacity, size_t num_shards)
{
    ensure(capacity > 0, "PredictionCache: capacity must be positive");
    ensure(num_shards > 0, "PredictionCache: need at least one shard");
    if (num_shards > capacity)
        num_shards = capacity;
    // Floor division so the stripes together never exceed the stated
    // budget (size() <= capacity() always holds); the clamp above
    // guarantees at least one entry per stripe.
    totalCapacity = capacity;
    stripeCapacity = capacity / num_shards;
    // At least 2x headroom over the per-stripe entry budget, so probe
    // chains stay short and a null terminator always exists.
    slotsPerStripe = nextPow2(std::max<size_t>(8, 2 * stripeCapacity));
    slotMask = slotsPerStripe - 1;
    stripes.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
        auto stripe = std::make_unique<Stripe>();
        stripe->slots =
            std::make_unique<std::atomic<Entry *>[]>(slotsPerStripe);
        for (size_t s = 0; s < slotsPerStripe; ++s)
            stripe->slots[s].store(nullptr, std::memory_order_relaxed);
        stripe->nullCount = slotsPerStripe;
        stripes.push_back(std::move(stripe));
    }
}

PredictionCache::~PredictionCache()
{
    // No concurrent access by contract at destruction time.
    for (auto &stripe : stripes) {
        for (size_t i = 0; i < slotsPerStripe; ++i) {
            Entry *e = stripe->slots[i].load(std::memory_order_relaxed);
            if (e != nullptr && e != tombstone())
                delete e;
        }
        for (Entry *e : stripe->limbo)
            delete e;
    }
}

PredictionCache::Stripe &
PredictionCache::stripeFor(size_t hash) const
{
    return *stripes[hash % stripes.size()];
}

uint64_t
PredictionCache::nextTick() const
{
    return clock.fetch_add(1, std::memory_order_relaxed);
}

bool
PredictionCache::lookup(const std::string &key, PredictionDetail &out)
{
    const size_t h = std::hash<std::string>{}(key);
    Stripe &stripe = stripeFor(h);
    // Reader protocol: register in the stripe's epoch counter BEFORE
    // loading any slot. A writer only frees a retired entry after
    // unpublishing it and then observing the counter at zero, so (by
    // the sequentially consistent ordering of the two counter accesses
    // against the slot store) any reader that could still hold the
    // pointer is either counted — blocking the free — or started after
    // the unpublish and cannot obtain the pointer at all.
    stripe.activeReaders.fetch_add(1, std::memory_order_seq_cst);
    bool hit = false;
    size_t idx = h & slotMask;
    for (size_t probe = 0; probe < slotsPerStripe;
         ++probe, idx = (idx + 1) & slotMask) {
        Entry *e = stripe.slots[idx].load(std::memory_order_seq_cst);
        if (e == nullptr)
            break; // End of probe chain: not present.
        if (e == tombstone())
            continue;
        if (e->hash == h && e->key == key) {
            out = e->detail;
            // LRU promotion is a timestamp bump — no list splice, no
            // lock, no contention with other readers.
            e->lastUsed.store(nextTick(), std::memory_order_relaxed);
            hit = true;
            break;
        }
    }
    stripe.activeReaders.fetch_sub(1, std::memory_order_seq_cst);
    (hit ? *hits : *misses).inc();
    return hit;
}

void
PredictionCache::evictLru(Stripe &stripe)
{
    // Exact LRU: the entry with the smallest timestamp. Ticks are
    // unique (one atomic counter), so the victim is deterministic.
    size_t victim_idx = slotsPerStripe;
    Entry *victim = nullptr;
    uint64_t oldest = UINT64_MAX;
    for (size_t i = 0; i < slotsPerStripe; ++i) {
        Entry *e = stripe.slots[i].load(std::memory_order_relaxed);
        if (e == nullptr || e == tombstone())
            continue;
        const uint64_t used = e->lastUsed.load(std::memory_order_relaxed);
        if (used < oldest) {
            oldest = used;
            victim = e;
            victim_idx = i;
        }
    }
    ensure(victim != nullptr, "PredictionCache: eviction on empty stripe");
    // Tombstone, not null: the victim may sit mid-chain for other keys.
    stripe.slots[victim_idx].store(tombstone(),
                                   std::memory_order_seq_cst);
    stripe.limbo.push_back(victim);
    --stripe.liveCount;
    evictions->inc();
}

void
PredictionCache::compact(Stripe &stripe)
{
    // Rewrite the slot array without tombstones. Entries are NOT moved
    // or freed — only the slot array is reshuffled — so a concurrent
    // reader can at worst see a transient spurious miss (the value is
    // deterministic, so a recompute returns the same detail), never a
    // stale or dangling pointer.
    std::vector<Entry *> live;
    live.reserve(stripe.liveCount);
    for (size_t i = 0; i < slotsPerStripe; ++i) {
        Entry *e = stripe.slots[i].load(std::memory_order_relaxed);
        if (e != nullptr && e != tombstone())
            live.push_back(e);
        stripe.slots[i].store(nullptr, std::memory_order_seq_cst);
    }
    stripe.nullCount = slotsPerStripe;
    for (Entry *e : live) {
        size_t idx = e->hash & slotMask;
        while (stripe.slots[idx].load(std::memory_order_relaxed) !=
               nullptr)
            idx = (idx + 1) & slotMask;
        stripe.slots[idx].store(e, std::memory_order_seq_cst);
        --stripe.nullCount;
    }
}

void
PredictionCache::reclaim(Stripe &stripe)
{
    if (stripe.limbo.empty())
        return;
    if (stripe.activeReaders.load(std::memory_order_seq_cst) != 0) {
        if (stripe.limbo.size() < kLimboBackstop)
            return; // Try again on a later write.
        // Backstop: readers are wait-free and short, so a reader-free
        // window arrives quickly; spin rather than grow without bound.
        while (stripe.activeReaders.load(std::memory_order_seq_cst) != 0)
            std::this_thread::yield();
    }
    // Grace period reached: every reader that could have loaded one of
    // these pointers has deregistered.
    for (Entry *e : stripe.limbo)
        delete e;
    stripe.limbo.clear();
}

void
PredictionCache::insert(const std::string &key,
                        const PredictionDetail &detail)
{
    const size_t h = std::hash<std::string>{}(key);
    Stripe &stripe = stripeFor(h);
    std::lock_guard<std::mutex> lock(stripe.writerMutex);

    // Probe for an existing entry first (refresh path).
    size_t idx = h & slotMask;
    for (size_t probe = 0; probe < slotsPerStripe;
         ++probe, idx = (idx + 1) & slotMask) {
        Entry *e = stripe.slots[idx].load(std::memory_order_relaxed);
        if (e == nullptr)
            break;
        if (e == tombstone())
            continue;
        if (e->hash == h && e->key == key) {
            // Refresh: publish a fresh immutable entry in place and
            // retire the old one. Counts neither as an insert nor as an
            // eviction, and promotes the key to most-recently-used —
            // the exact semantics of the locked implementation.
            Entry *fresh = new Entry;
            fresh->key = key;
            fresh->detail = detail;
            fresh->hash = h;
            fresh->lastUsed.store(nextTick(),
                                  std::memory_order_relaxed);
            stripe.slots[idx].store(fresh, std::memory_order_seq_cst);
            stripe.limbo.push_back(e);
            reclaim(stripe);
            return;
        }
    }

    if (stripe.liveCount >= stripeCapacity)
        evictLru(stripe);

    // Re-probe for the insertion slot: the eviction above may have
    // turned a slot of this very chain into a tombstone.
    Entry *fresh = new Entry;
    fresh->key = key;
    fresh->detail = detail;
    fresh->hash = h;
    fresh->lastUsed.store(nextTick(), std::memory_order_relaxed);
    idx = h & slotMask;
    for (;; idx = (idx + 1) & slotMask) {
        Entry *e = stripe.slots[idx].load(std::memory_order_relaxed);
        if (e == nullptr) {
            --stripe.nullCount;
            stripe.slots[idx].store(fresh, std::memory_order_seq_cst);
            break;
        }
        if (e == tombstone()) {
            stripe.slots[idx].store(fresh, std::memory_order_seq_cst);
            break;
        }
    }
    ++stripe.liveCount;
    inserts->inc();
    // Keep enough null terminators for short, always-terminating probe
    // chains; tombstones otherwise accumulate under eviction churn.
    if (stripe.nullCount < slotsPerStripe / 4)
        compact(stripe);
    reclaim(stripe);
}

namespace {

/** One snapshot line: the key plus every PredictionDetail field. */
common::Json
entryToJson(const std::string &key, const PredictionDetail &detail)
{
    common::Json json;
    json.set("key", key);
    common::Json::Array tiles;
    tiles.reserve(detail.tileDims.size());
    for (const uint64_t dim : detail.tileDims)
        tiles.push_back(common::Json(dim));
    json.set("tile_dims", common::Json(std::move(tiles)));
    json.set("num_tiles", detail.numTiles);
    json.set("num_waves", detail.numWaves);
    json.set("alpha", detail.alpha);
    json.set("beta", detail.beta);
    json.set("utilization", detail.utilization);
    json.set("roofline_per_sm", detail.rooflinePerSm);
    json.set("latency_ms", detail.latencyMs);
    json.set("memory_fallback", detail.memoryFallback);
    return json;
}

PredictionDetail
entryFromJson(const common::Json &json, std::string &key_out)
{
    key_out = json.at("key").asString();
    PredictionDetail detail;
    for (const common::Json &dim : json.at("tile_dims").asArray())
        detail.tileDims.push_back(static_cast<uint64_t>(dim.asInt()));
    detail.numTiles =
        static_cast<uint64_t>(json.at("num_tiles").asInt());
    detail.numWaves =
        static_cast<uint64_t>(json.at("num_waves").asInt());
    detail.alpha = json.at("alpha").asDouble();
    detail.beta = json.at("beta").asDouble();
    detail.utilization = json.at("utilization").asDouble();
    detail.rooflinePerSm = json.at("roofline_per_sm").asDouble();
    detail.latencyMs = json.at("latency_ms").asDouble();
    detail.memoryFallback = json.at("memory_fallback").asBool();
    return detail;
}

} // namespace

size_t
PredictionCache::saveTo(std::ostream &out) const
{
    size_t written = 0;
    for (const auto &stripe : stripes) {
        std::lock_guard<std::mutex> lock(stripe->writerMutex);
        // Least recently used first, so loadFrom's in-order inserts
        // leave the most recent entries most recent.
        std::vector<const Entry *> live;
        live.reserve(stripe->liveCount);
        for (size_t i = 0; i < slotsPerStripe; ++i) {
            const Entry *e =
                stripe->slots[i].load(std::memory_order_seq_cst);
            if (e != nullptr && e != tombstone())
                live.push_back(e);
        }
        std::sort(live.begin(), live.end(),
                  [](const Entry *a, const Entry *b) {
                      return a->lastUsed.load(
                                 std::memory_order_relaxed) <
                             b->lastUsed.load(std::memory_order_relaxed);
                  });
        for (const Entry *e : live) {
            out << entryToJson(e->key, e->detail).dump(0) << '\n';
            ++written;
        }
    }
    return written;
}

size_t
PredictionCache::saveTo(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("PredictionCache: cannot write snapshot '" + path + "'");
    const size_t written = saveTo(static_cast<std::ostream &>(out));
    // Flush before the state check: buffered write failures (disk
    // full) would otherwise surface only in the destructor, silently.
    out.flush();
    if (!out)
        fatal("PredictionCache: I/O error writing snapshot '" + path +
              "'");
    return written;
}

size_t
PredictionCache::loadFrom(std::istream &in)
{
    size_t loaded = 0;
    size_t line_no = 0;
    std::string line;
    while (std::getline(in, line)) {
        ++line_no;
        const size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        std::string key;
        PredictionDetail detail;
        try {
            detail = entryFromJson(common::Json::parse(line), key);
        } catch (const std::exception &e) {
            fatal("PredictionCache: snapshot line " +
                  std::to_string(line_no) + ": " + e.what());
        }
        insert(key, detail);
        ++loaded;
    }
    return loaded;
}

size_t
PredictionCache::loadFrom(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("PredictionCache: cannot read snapshot '" + path + "'");
    return loadFrom(static_cast<std::istream &>(in));
}

CacheStats
PredictionCache::stats() const
{
    CacheStats s;
    s.hits = hits->value();
    s.misses = misses->value();
    s.evictions = evictions->value();
    s.inserts = inserts->value();
    s.capacity = totalCapacity;
    for (const auto &stripe : stripes) {
        std::lock_guard<std::mutex> lock(stripe->writerMutex);
        s.size += stripe->liveCount;
    }
    return s;
}

void
PredictionCache::registerMetrics(
    const std::shared_ptr<PredictionCache> &cache,
    obs::MetricsRegistry &registry, const std::string &prefix)
{
    ensure(cache != nullptr,
           "PredictionCache::registerMetrics: null cache");
    registry.adopt(prefix + ".hits", cache->hits);
    registry.adopt(prefix + ".misses", cache->misses);
    registry.adopt(prefix + ".evictions", cache->evictions);
    registry.adopt(prefix + ".inserts", cache->inserts);
    registry.probe(prefix + ".size", [cache] {
        return static_cast<double>(cache->size());
    });
    registry.probe(prefix + ".capacity", [cache] {
        return static_cast<double>(cache->capacity());
    });
}

void
PredictionCache::clear()
{
    for (auto &stripe : stripes) {
        std::lock_guard<std::mutex> lock(stripe->writerMutex);
        for (size_t i = 0; i < slotsPerStripe; ++i) {
            Entry *e = stripe->slots[i].load(std::memory_order_relaxed);
            if (e != nullptr && e != tombstone())
                stripe->limbo.push_back(e);
            stripe->slots[i].store(nullptr, std::memory_order_seq_cst);
        }
        stripe->liveCount = 0;
        stripe->nullCount = slotsPerStripe;
        reclaim(*stripe);
    }
}

size_t
PredictionCache::size() const
{
    size_t n = 0;
    for (const auto &stripe : stripes) {
        std::lock_guard<std::mutex> lock(stripe->writerMutex);
        n += stripe->liveCount;
    }
    return n;
}

ScopedKernelCache::ScopedKernelCache(
    std::shared_ptr<PredictionCache> cache, std::string scope)
    : cachePtr(std::move(cache)),
      prefix(std::move(scope) + kCacheScopeSeparator)
{
    ensure(cachePtr != nullptr, "ScopedKernelCache: null cache");
}

bool
ScopedKernelCache::lookup(const std::string &key, PredictionDetail &out)
{
    return cachePtr->lookup(prefix + key, out);
}

void
ScopedKernelCache::insert(const std::string &key,
                          const PredictionDetail &detail)
{
    cachePtr->insert(prefix + key, detail);
}

CachedPredictor::CachedPredictor(const graph::LatencyPredictor &inner_,
                                 std::shared_ptr<PredictionCache> cache,
                                 std::string key_scope)
    : inner(inner_), cachePtr(std::move(cache))
{
    ensure(cachePtr != nullptr, "CachedPredictor: null cache");
    if (!key_scope.empty())
        prefix = std::move(key_scope) + kCacheScopeSeparator;
}

std::string
CachedPredictor::name() const
{
    return inner.name() + "+cache";
}

double
CachedPredictor::predictKernelMs(const KernelDesc &desc,
                                 const GpuSpec &gpu) const
{
    // Raw op name: the inner predictor may tell kernels apart that the
    // NeuSight canonicalization deliberately merges (the simulator's
    // ground truth does, via its per-kernel-name behaviour).
    const std::string key =
        prefix + cacheFingerprint(desc, gpu, /*canonical_op=*/false);
    PredictionDetail detail;
    if (cachePtr->lookup(key, detail))
        return detail.latencyMs;
    detail = PredictionDetail{};
    detail.latencyMs = inner.predictKernelMs(desc, gpu);
    cachePtr->insert(key, detail);
    return detail.latencyMs;
}

} // namespace neusight::serve
