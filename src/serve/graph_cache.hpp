/**
 * @file
 * Model-graph cache for the forecast-serving subsystem. At high
 * kernel-prediction-cache hit rates the residual per-request cost is
 * constructing the KernelGraph itself (thousands of KernelDesc nodes for
 * a large transformer), and production traffic asks about the same few
 * (model, batch, context) points over and over — so the server memoizes
 * built graphs behind a canonical request fingerprint. Graphs are
 * GPU-independent (the builders take only model/batch/dtype), shared as
 * immutable shared_ptr snapshots, and evicted LRU.
 */

#ifndef NEUSIGHT_SERVE_GRAPH_CACHE_HPP
#define NEUSIGHT_SERVE_GRAPH_CACHE_HPP

#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "graph/graph.hpp"
#include "serve/prediction_cache.hpp"

namespace neusight::serve {

/**
 * Thread-safe LRU cache from a graph fingerprint to an immutable built
 * KernelGraph. A single mutex guards the map: entries are two orders of
 * magnitude fewer (and three heavier) than kernel predictions, so shard
 * contention is not the bottleneck the prediction cache has to dodge.
 */
class ModelGraphCache
{
  public:
    /** @param capacity maximum cached graphs (>= 1). */
    explicit ModelGraphCache(size_t capacity = 128);

    /**
     * Find @p key; on a hit promote the entry and return it, else
     * nullptr. Counts one hit or one miss.
     */
    std::shared_ptr<const graph::KernelGraph>
    lookup(const std::string &key);

    /** Insert (or refresh) @p key, evicting the LRU entry when full. */
    void insert(const std::string &key,
                std::shared_ptr<const graph::KernelGraph> graph);

    /**
     * lookup(), falling back to @p build + insert on a miss. The
     * builder runs outside the lock; two threads racing on the same
     * cold key may both build (construction is idempotent) and the
     * later insert wins.
     */
    std::shared_ptr<const graph::KernelGraph>
    getOrBuild(const std::string &key,
               const std::function<graph::KernelGraph()> &build);

    /** Point-in-time counters. */
    CacheStats stats() const;

    /**
     * Adopt @p cache's live counters into @p registry as
     * "<prefix>.hits" etc., plus size/capacity probes, so registry
     * snapshots and stats() read the same objects (see
     * PredictionCache::registerMetrics).
     */
    static void registerMetrics(const std::shared_ptr<ModelGraphCache> &cache,
                                obs::MetricsRegistry &registry,
                                const std::string &prefix);

    /** Drop every entry; counters keep accumulating. */
    void clear();

    /** Current number of cached graphs. */
    size_t size() const;

    /** Maximum cached graphs. */
    size_t capacity() const { return maxEntries; }

  private:
    using Entry =
        std::pair<std::string, std::shared_ptr<const graph::KernelGraph>>;

    mutable std::mutex mutex;
    /** Front = most recently used. */
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    size_t maxEntries;
    /** obs counters (adoptable into a MetricsRegistry); incremented
     *  under the mutex but independently readable. */
    std::shared_ptr<obs::Counter> hitCount =
        std::make_shared<obs::Counter>();
    std::shared_ptr<obs::Counter> missCount =
        std::make_shared<obs::Counter>();
    std::shared_ptr<obs::Counter> evictionCount =
        std::make_shared<obs::Counter>();
    std::shared_ptr<obs::Counter> insertCount =
        std::make_shared<obs::Counter>();
};

} // namespace neusight::serve

#endif // NEUSIGHT_SERVE_GRAPH_CACHE_HPP
