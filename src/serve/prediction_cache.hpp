/**
 * @file
 * Kernel-prediction cache for the forecast-serving subsystem. The same
 * (kernel, GPU) pairs recur across nearly every model graph — all layers
 * of a transformer dispatch identically-shaped kernels — and a
 * PredictionDetail is tiny and immutable once the predictor is trained,
 * so memoizing per-kernel forecasts turns repeated graph predictions
 * into hash lookups.
 *
 * The read path is lock-light: each stripe is an open-addressing table
 * of atomically published, immutable entries, so a lookup takes no lock
 * at all — it registers in a per-stripe reader epoch counter, probes the
 * slots, copies the entry, and deregisters. Only writers (insert /
 * evict / clear) serialize, on a per-stripe mutex, and retired entries
 * are reclaimed only after the reader epoch drains to zero, so a reader
 * can never dereference freed memory. Because cached values are a
 * deterministic function of the key, a reader racing a writer can at
 * worst see a slightly stale value or a spurious miss (recompute) —
 * both semantically harmless — never a wrong value.
 */

#ifndef NEUSIGHT_SERVE_PREDICTION_CACHE_HPP
#define NEUSIGHT_SERVE_PREDICTION_CACHE_HPP

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/kernel_cache.hpp"
#include "core/predictor.hpp"
#include "gpusim/gpu_spec.hpp"
#include "gpusim/kernel_desc.hpp"
#include "graph/latency_predictor.hpp"
#include "obs/metrics.hpp"

namespace neusight::serve {

/**
 * The canonical (kernel, GPU) fingerprints live in core/kernel_cache.hpp
 * next to the cache seam they key (core::NeuSight consults them too);
 * re-exported here because they are part of the serving layer's wire
 * vocabulary (ForecastRequest::fingerprint builds on the GPU half).
 */
using core::cacheFingerprint;
using core::gpuFeatureFingerprint;

/** Monotonic counters of one cache (or a point-in-time snapshot). */
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t inserts = 0;
    size_t size = 0;
    size_t capacity = 0;

    /** Fraction of lookups served from the cache (0 when none yet). */
    double hitRate() const
    {
        const uint64_t total = hits + misses;
        return total ? static_cast<double>(hits) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/**
 * Striped LRU cache from fingerprint to PredictionDetail with wait-free
 * reads. All operations are thread-safe; lookups promote the entry to
 * most-recently-used within its stripe (a timestamp bump, no lock), and
 * inserts evict the stripe's least-recently-used entry once the stripe
 * is full. Implements the core predictor's cache seam, so it plugs into
 * core::NeuSight::attachCache directly.
 */
class PredictionCache : public core::KernelPredictionCache
{
  public:
    /**
     * @param capacity   total entry budget, split evenly across stripes.
     * @param num_shards stripe count (write-lock granularity; reads
     *                   never lock); 1 gives a single global LRU order
     *                   (deterministic eviction, used by tests).
     */
    explicit PredictionCache(size_t capacity, size_t num_shards = 16);

    ~PredictionCache() override;

    /**
     * Find @p key; on a hit copy the entry into @p out, promote it, and
     * return true. Counts one hit or one miss.
     */
    bool lookup(const std::string &key,
                core::PredictionDetail &out) override;

    /**
     * Insert (or refresh) @p key. Evicts the shard's LRU entry when the
     * shard is at capacity.
     */
    void insert(const std::string &key,
                const core::PredictionDetail &detail) override;

    /** Point-in-time counters (consistent enough for reporting). */
    CacheStats stats() const;

    /**
     * Adopt @p cache's live hit/miss/eviction/insert counters into
     * @p registry as "<prefix>.hits" etc., plus size/capacity probes.
     * The registry then snapshots the very atomics stats() reads, so
     * the two views cannot drift. @p cache is captured by the probes
     * (kept alive as long as the registry holds them).
     */
    static void registerMetrics(const std::shared_ptr<PredictionCache> &cache,
                                obs::MetricsRegistry &registry,
                                const std::string &prefix);

    /// @name Persistence: JSON-lines snapshots keyed on the stable
    /// fingerprints, so a warm cache survives server restarts (the
    /// ROADMAP's cache-persistence item). Entries are written least-
    /// recently-used first, so re-inserting them in file order restores
    /// each shard's recency order.
    /// @{

    /** Write every entry as one JSON object per line; returns the
     *  number of entries written. */
    size_t saveTo(std::ostream &out) const;

    /** saveTo() the file at @p path; fatal() on I/O error. */
    size_t saveTo(const std::string &path) const;

    /**
     * Insert every snapshot line (blank lines and '#' comments are
     * skipped); returns the number of entries loaded. Counts as
     * ordinary inserts: loading more entries than the capacity evicts.
     * fatal() with the line number on malformed lines.
     */
    size_t loadFrom(std::istream &in);

    /** loadFrom() the file at @p path; fatal() when unreadable. */
    size_t loadFrom(const std::string &path);

    /// @}

    /** Drop every entry; counters keep accumulating. */
    void clear();

    /** Current number of cached entries. */
    size_t size() const;

    /** Total entry budget. */
    size_t capacity() const { return totalCapacity; }

  private:
    /**
     * An immutable published entry. Only lastUsed (the LRU timestamp)
     * changes after publication, and it is atomic; key/detail/hash are
     * frozen, which is what makes lock-free readers safe.
     */
    struct Entry;

    /**
     * One stripe: a power-of-two open-addressing array of atomically
     * published Entry pointers (null = chain end, tombstone = deleted),
     * a writer mutex serializing all mutation, a reader-epoch counter
     * gating reclamation, and the limbo list of retired entries waiting
     * for in-flight readers to drain.
     */
    struct Stripe;

    Stripe &stripeFor(size_t hash) const;
    uint64_t nextTick() const;
    static Entry *tombstone();
    void evictLru(Stripe &stripe);
    void compact(Stripe &stripe);
    void reclaim(Stripe &stripe);

    std::vector<std::unique_ptr<Stripe>> stripes;
    size_t totalCapacity;
    size_t stripeCapacity;
    size_t slotsPerStripe;
    size_t slotMask;
    /** Global LRU clock; every touch gets a unique monotonic tick. */
    mutable std::atomic<uint64_t> clock{1};
    /** Striped obs counters, so a MetricsRegistry can adopt the same
     *  objects stats() reads (registerMetrics). */
    std::shared_ptr<obs::Counter> hits = std::make_shared<obs::Counter>();
    std::shared_ptr<obs::Counter> misses = std::make_shared<obs::Counter>();
    std::shared_ptr<obs::Counter> evictions =
        std::make_shared<obs::Counter>();
    std::shared_ptr<obs::Counter> inserts = std::make_shared<obs::Counter>();
};

/**
 * Key-scoping adapter over a shared PredictionCache: every lookup and
 * insert is prefixed with an opaque scope, so several predictor
 * backends can share one cache (one capacity budget, one stats line,
 * one persistence snapshot) without their entries ever colliding —
 * NeuSight's canonical fingerprints and a generic backend's raw-name
 * fingerprints can otherwise produce the same key for different
 * forecasts. The ForecastEngine attaches one scope per backend.
 */
class ScopedKernelCache : public core::KernelPredictionCache
{
  public:
    /** @p scope is typically the backend's registry name. */
    ScopedKernelCache(std::shared_ptr<PredictionCache> cache,
                      std::string scope);

    bool lookup(const std::string &key,
                core::PredictionDetail &out) override;

    void insert(const std::string &key,
                const core::PredictionDetail &detail) override;

  private:
    std::shared_ptr<PredictionCache> cachePtr;
    /** The scope plus the separator, ready to prepend. */
    std::string prefix;
};

/**
 * Caching decorator over any LatencyPredictor: per-kernel forecasts are
 * served from (and inserted into) a shared PredictionCache. Used to give
 * the non-NeuSight serving backends (simulator oracle, baselines) the
 * same cached path NeuSight gets natively through NeuSight::attachCache().
 */
class CachedPredictor : public graph::LatencyPredictor
{
  public:
    /**
     * @p inner must outlive this decorator. A non-empty @p key_scope
     * namespaces this decorator's entries inside a cache shared with
     * other backends (see ScopedKernelCache).
     */
    CachedPredictor(const graph::LatencyPredictor &inner,
                    std::shared_ptr<PredictionCache> cache,
                    std::string key_scope = "");

    std::string name() const override;

    double predictKernelMs(const gpusim::KernelDesc &desc,
                           const gpusim::GpuSpec &gpu) const override;

    /** The shared cache (for stats reporting). */
    const std::shared_ptr<PredictionCache> &cache() const
    {
        return cachePtr;
    }

  private:
    const graph::LatencyPredictor &inner;
    std::shared_ptr<PredictionCache> cachePtr;
    /** Key prefix (scope + separator), empty when unscoped. */
    std::string prefix;
};

/** The scope/key separator of ScopedKernelCache and CachedPredictor. */
inline constexpr char kCacheScopeSeparator = '\x1f';

} // namespace neusight::serve

#endif // NEUSIGHT_SERVE_PREDICTION_CACHE_HPP
