/**
 * @file
 * JSON line protocol for the forecast server: one request object per
 * line in, one result object per line out, so forecast workloads can be
 * scripted from files or pipes (and later from sockets) without any new
 * dependency — the reader/writer is common/json.
 *
 * Request lines:
 *   {"op":"inference","model":"GPT3-XL","batch":4,"gpu":"H100"}
 *   {"op":"decode","model":"GPT3-XL","batch":4,"past":2048,"gpu":"H100"}
 *   {"op":"training","model":"GPT2-Large","batch":8,"gpu":"A100-40GB"}
 *   {"op":"distributed","model":"GPT2-Large","gpu":"H100","num_gpus":4,
 *    "global_batch":8,"strategy":"tensor"}
 *   {"op":"hybrid","model":"GPT2-Large","gpu":"H100","global_batch":8,
 *    "tp":2,"dp":2,"micro_batches":2,"recompute":true}
 *   {"op":"sweep","model":"GPT2-Large","gpu":"H100","num_gpus":4,
 *    "global_batch":8}
 * Optional fields: "tag" (echoed), "dtype" ("fp32"|"fp16"), "backend"
 * (alias "predictor": registry name of the predictor answering this
 * request — one server hosts heterogeneous backends side by side), and
 * for multi-GPU requests "micro_batches", "schedule"
 * ("gpipe"|"1f1b"|"interleaved"), "virtual_stages", "recompute",
 * "link_gbps". "gpu" accepts a Table-4 name or a spec-JSON path
 * (gpusim::resolveGpu).
 */

#ifndef NEUSIGHT_SERVE_WIRE_HPP
#define NEUSIGHT_SERVE_WIRE_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "serve/request.hpp"

namespace neusight::serve {

/**
 * Decode one request object. fatal() (throws) on unknown ops, missing
 * fields, or unresolvable GPUs — callers reading untrusted scripts
 * should catch and report per line.
 */
ForecastRequest requestFromJson(const common::Json &json);

/** Encode a request back to its wire object (round-trips through
 *  requestFromJson up to GPU resolution). */
common::Json requestToJson(const ForecastRequest &request);

/** Encode a result as its wire object. */
common::Json resultToJson(const ForecastResult &result);

/**
 * True for lines a request stream ignores: blank, or first
 * non-whitespace character '#'. One definition shared by
 * readRequestScript and the neusight-serve REPL so script and REPL
 * mode always parse the same input identically.
 */
bool isSkippableRequestLine(const std::string &line);

/**
 * Read a JSON-lines request script: one object per line; skippable
 * lines (see isSkippableRequestLine) are ignored. fatal() with the
 * offending line number on parse errors.
 */
std::vector<ForecastRequest> readRequestScript(std::istream &in);

} // namespace neusight::serve

#endif // NEUSIGHT_SERVE_WIRE_HPP
