/**
 * @file
 * JSON line protocol for the forecast server: one request object per
 * line in, one result object per line out, so forecast workloads can be
 * scripted from files, pipes, or sockets (src/net/) without any new
 * dependency — the reader/writer is common/json. Byte-stream transports
 * reassemble partial lines through LineFramer below.
 *
 * Request lines:
 *   {"op":"inference","model":"GPT3-XL","batch":4,"gpu":"H100"}
 *   {"op":"decode","model":"GPT3-XL","batch":4,"past":2048,"gpu":"H100"}
 *   {"op":"training","model":"GPT2-Large","batch":8,"gpu":"A100-40GB"}
 *   {"op":"distributed","model":"GPT2-Large","gpu":"H100","num_gpus":4,
 *    "global_batch":8,"strategy":"tensor"}
 *   {"op":"hybrid","model":"GPT2-Large","gpu":"H100","global_batch":8,
 *    "tp":2,"dp":2,"micro_batches":2,"recompute":true}
 *   {"op":"sweep","model":"GPT2-Large","gpu":"H100","num_gpus":4,
 *    "global_batch":8}
 * Control ops carry no workload:
 *   {"op":"stats"}   — merged metrics-registry snapshot
 *   {"op":"ping"}    — liveness probe, answered inline by the socket
 *                      layer ({"ok":true,"pong":true})
 * Optional fields: "tag" (echoed), "dtype" ("fp32"|"fp16"), "backend"
 * (alias "predictor": registry name of the predictor answering this
 * request — one server hosts heterogeneous backends side by side),
 * "timeout_ms" (per-request deadline; expired requests answer
 * {"ok":false,"code":"timeout"}), and for multi-GPU requests
 * "micro_batches", "schedule" ("gpipe"|"1f1b"|"interleaved"),
 * "virtual_stages", "recompute", "link_gbps". "gpu" accepts a Table-4
 * name or a spec-JSON path (gpusim::resolveGpu). Error replies carry a
 * machine-readable "code" ("timeout"|"overload"|"unavailable"|
 * "draining") beside the human-readable "error" text.
 */

#ifndef NEUSIGHT_SERVE_WIRE_HPP
#define NEUSIGHT_SERVE_WIRE_HPP

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "serve/request.hpp"

namespace neusight::serve {

/**
 * Incremental line framer for byte-stream transports. Sockets deliver
 * the JSON-lines protocol in arbitrary chunks — a request line may
 * arrive split across reads or merged with its neighbors — so the
 * stream side feeds raw bytes in and pulls complete lines out. A bound
 * on the line length protects the server from a client that never sends
 * a newline: the oversized line's payload is discarded as it streams
 * through (memory stays bounded) and reported once, so the caller can
 * answer with an error and keep or drop the connection.
 *
 * Trailing '\r' is stripped (telnet/CRLF clients). The framer is a
 * pure byte machine: JSON validation stays with requestFromJson.
 */
class LineFramer
{
  public:
    /** What next() produced. */
    enum class Event
    {
        /** No complete line buffered; feed more bytes. */
        None,
        /** One complete line, in @p out (newline stripped). */
        Line,
        /** A line exceeded maxLineBytes; its payload was discarded. */
        Oversized,
    };

    explicit LineFramer(size_t max_line_bytes = kDefaultMaxLineBytes);

    /** Append @p size raw bytes from the transport. */
    void feed(const char *data, size_t size);

    /**
     * Pull the next framing event. Call until it returns None, then
     * feed more bytes. Line fills @p out; Oversized reports one
     * over-long line (already consumed up to its terminating newline —
     * if the newline has not arrived yet, subsequent bytes of that
     * line keep being discarded).
     */
    Event next(std::string &out);

    /** Bytes buffered waiting for a newline. */
    size_t buffered() const;

    /** True while inside an oversized line whose newline is pending. */
    bool discarding() const { return discardingLine; }

    static constexpr size_t kDefaultMaxLineBytes = 1 << 20;

  private:
    size_t maxLineBytes;
    std::string pending;
    /** Start of the unconsumed region (compacted lazily, so pulling
     *  many merged lines out of one big feed stays linear). */
    size_t consumed = 0;
    /** End of the region already scanned for '\n'. */
    size_t scanned = 0;
    bool discardingLine = false;
};

/**
 * Decode one request object. fatal() (throws) on unknown ops, missing
 * fields, or unresolvable GPUs — callers reading untrusted scripts
 * should catch and report per line.
 */
ForecastRequest requestFromJson(const common::Json &json);

/** Encode a request back to its wire object (round-trips through
 *  requestFromJson up to GPU resolution). */
common::Json requestToJson(const ForecastRequest &request);

/** Encode a result as its wire object. */
common::Json resultToJson(const ForecastResult &result);

/**
 * True for lines a request stream ignores: blank, or first
 * non-whitespace character '#'. One definition shared by
 * readRequestScript and the neusight-serve REPL so script and REPL
 * mode always parse the same input identically.
 */
bool isSkippableRequestLine(const std::string &line);

/**
 * Read a JSON-lines request script: one object per line; skippable
 * lines (see isSkippableRequestLine) are ignored. fatal() with the
 * offending line number on parse errors.
 */
std::vector<ForecastRequest> readRequestScript(std::istream &in);

} // namespace neusight::serve

#endif // NEUSIGHT_SERVE_WIRE_HPP
