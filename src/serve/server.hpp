/**
 * @file
 * In-process concurrent forecast server: a bounded MPMC request queue
 * feeding a worker-thread pool, with coalescing of identical in-flight
 * requests (two clients asking for the same forecast share one
 * computation) on top of the kernel-prediction cache (repeated kernels
 * across *different* requests skip the predictor). Shutdown drains: every
 * accepted request is answered before the workers exit.
 */

#ifndef NEUSIGHT_SERVE_SERVER_HPP
#define NEUSIGHT_SERVE_SERVER_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dist/collective.hpp"
#include "graph/latency_predictor.hpp"
#include "serve/graph_cache.hpp"
#include "serve/request.hpp"

namespace neusight::serve {

/** Construction-time configuration of a ForecastServer. */
struct ServerOptions
{
    /** Worker threads executing forecasts. */
    size_t workers = 4;
    /** Bound on queued (not yet executing) requests; submit() blocks
     *  when full. Coalesced requests never occupy a slot. */
    size_t queueCapacity = 256;
    /**
     * Shared kernel-prediction cache, reported in every result. The
     * server does not wire it into the predictor — attach it via
     * core::NeuSight::attachCache or wrap the predictor in a
     * CachedPredictor; passing the same cache here only adds its
     * counters to results and stats.
     */
    std::shared_ptr<PredictionCache> cache;
    /**
     * Collective cost model for Distributed requests; the server
     * constructs the default estimator (calibrated on A100-NVLink,
     * Section 5.1) when unset.
     */
    std::shared_ptr<const dist::CollectiveModel> comms;
    /**
     * Model-graph cache: single-GPU requests (inference / decode /
     * training) reuse constructed KernelGraphs keyed on the request's
     * (kind, model, batch, context, dtype) fingerprint — graph
     * construction is the residual per-request cost once the kernel-
     * prediction cache is hot. Unset, the server creates a private one
     * of graphCacheCapacity entries; share one here across servers.
     */
    std::shared_ptr<ModelGraphCache> graphCache;
    /** Capacity of the private graph cache; 0 disables graph caching. */
    size_t graphCacheCapacity = 128;
};

/** Point-in-time server counters. */
struct ServerStats
{
    uint64_t submitted = 0;
    uint64_t completed = 0;
    /** Requests answered by piggybacking on identical in-flight work. */
    uint64_t coalesced = 0;
    /** Requests refused because the server was stopping. */
    uint64_t rejected = 0;
    size_t queueDepth = 0;
    size_t workers = 0;
    CacheStats cache;
    /** Counters of the model-graph cache (zero when disabled). */
    CacheStats graphCache;
};

/**
 * Concurrent forecast server over any LatencyPredictor. The predictor
 * must be safe for concurrent const use (NeuSight and the simulator
 * oracle are, once trained) and must outlive the server.
 */
class ForecastServer
{
  public:
    explicit ForecastServer(const graph::LatencyPredictor &predictor,
                            ServerOptions options = ServerOptions());

    /** Drains and joins (equivalent to stop()). */
    ~ForecastServer();

    ForecastServer(const ForecastServer &) = delete;
    ForecastServer &operator=(const ForecastServer &) = delete;

    /**
     * Enqueue a request; blocks while the queue is full. Identical
     * in-flight requests (equal fingerprint()) coalesce onto one
     * computation. After stop() the returned future resolves
     * immediately to a rejection result.
     */
    std::future<ForecastResult> submit(ForecastRequest request);

    /** Block until every accepted request has been answered. */
    void drain();

    /**
     * Stop accepting, drain the queue, and join the workers. Every
     * request accepted before the call is answered. Idempotent.
     */
    void stop();

    ServerStats stats() const;

    /** The active model-graph cache, or nullptr when disabled. */
    const std::shared_ptr<ModelGraphCache> &modelGraphCache() const
    {
        return graphCache;
    }

  private:
    struct Pending
    {
        ForecastRequest request;
        /** (promise, tag) per coalesced submitter; front = first. */
        std::vector<std::pair<std::promise<ForecastResult>, std::string>>
            waiters;
    };

    void workerLoop();
    ForecastResult execute(const ForecastRequest &request) const;

    const graph::LatencyPredictor &predictor;
    ServerOptions options;
    std::shared_ptr<const dist::CollectiveModel> comms;
    std::shared_ptr<ModelGraphCache> graphCache;

    mutable std::mutex mutex;
    std::condition_variable notEmpty;
    std::condition_variable notFull;
    std::condition_variable idle;
    std::deque<std::shared_ptr<Pending>> queue;
    std::unordered_map<std::string, std::shared_ptr<Pending>> inFlight;
    size_t executing = 0;
    bool stopping = false;
    /** Set once the winning stop() has joined every worker. */
    bool workersJoined = false;

    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t coalescedCount = 0;
    uint64_t rejectedCount = 0;

    std::vector<std::thread> threads;
};

} // namespace neusight::serve

#endif // NEUSIGHT_SERVE_SERVER_HPP
