/**
 * @file
 * In-process concurrent forecast server: a thin concurrency shell —
 * bounded MPMC request queue, worker-thread pool, coalescing of
 * identical in-flight requests (two clients asking for the same
 * forecast share one computation) — over an api::ForecastEngine, which
 * owns the predictor backends, the caches, and request execution. One
 * server answers heterogeneous predictors side by side through the
 * request's backend field. Shutdown drains: every accepted request is
 * answered before the workers exit.
 */

#ifndef NEUSIGHT_SERVE_SERVER_HPP
#define NEUSIGHT_SERVE_SERVER_HPP

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/engine.hpp"
#include "dist/collective.hpp"
#include "graph/latency_predictor.hpp"
#include "obs/metrics.hpp"
#include "serve/graph_cache.hpp"
#include "serve/request.hpp"

namespace neusight::serve {

/** Construction-time configuration of a ForecastServer. */
struct ServerOptions
{
    /** Worker threads executing forecasts. */
    size_t workers = 4;
    /** Bound on queued (not yet executing) requests; submit() blocks
     *  when full. Coalesced requests never occupy a slot. */
    size_t queueCapacity = 256;
    /**
     * Shared kernel-prediction cache, reported in every result. The
     * server does not wire it into the predictor — attach it via
     * core::NeuSight::attachCache or wrap the predictor in a
     * CachedPredictor; passing the same cache here only adds its
     * counters to results and stats.
     */
    std::shared_ptr<PredictionCache> cache;
    /**
     * Collective cost model for Distributed requests; the default
     * estimator (calibrated on A100-NVLink, Section 5.1) when unset.
     * Honored by the predictor-ref constructor only — an explicitly
     * passed engine already owns its collective model.
     */
    std::shared_ptr<const dist::CollectiveModel> comms;
    /**
     * Model-graph cache: single-GPU requests (inference / decode /
     * training) reuse constructed KernelGraphs keyed on the request's
     * (kind, model, batch, context, dtype) fingerprint — graph
     * construction is the residual per-request cost once the kernel-
     * prediction cache is hot. Unset, the predictor-ref constructor
     * creates a private one of graphCacheCapacity entries; an
     * explicitly passed engine uses its own.
     */
    std::shared_ptr<ModelGraphCache> graphCache;
    /** Capacity of the private graph cache; 0 disables graph caching. */
    size_t graphCacheCapacity = 128;
};

/** Point-in-time server counters. */
struct ServerStats
{
    uint64_t submitted = 0;
    uint64_t completed = 0;
    /** Requests answered by piggybacking on identical in-flight work. */
    uint64_t coalesced = 0;
    /** Requests refused because the server was stopping. */
    uint64_t rejected = 0;
    size_t queueDepth = 0;
    size_t workers = 0;
    CacheStats cache;
    /** Counters of the model-graph cache (zero when disabled). */
    CacheStats graphCache;
};

/**
 * Concurrent forecast server over a ForecastEngine (or, for the
 * single-predictor setups of the benches and tests, directly over any
 * LatencyPredictor — the server then builds a minimal engine around
 * it). Predictors must be safe for concurrent const use (NeuSight and
 * the simulator oracle are, once trained) and must outlive the server.
 */
class ForecastServer
{
  public:
    /**
     * Serve @p engine: requests execute through engine->forecast(),
     * with per-request backend selection against the engine's
     * registry. options.comms / graphCache are ignored (the engine
     * owns both); options.cache still only adds counters to results
     * and stats — pass engine->predictionCache() to report the
     * engine's own cache.
     */
    explicit ForecastServer(std::shared_ptr<api::ForecastEngine> engine,
                            ServerOptions options = ServerOptions());

    /**
     * Serve a single predictor: builds an internal engine whose only
     * backend is @p predictor (registered externally, no cache wiring
     * — attach a cache to the predictor itself, exactly as before).
     */
    explicit ForecastServer(const graph::LatencyPredictor &predictor,
                            ServerOptions options = ServerOptions());

    /** Drains and joins (equivalent to stop()). */
    ~ForecastServer();

    ForecastServer(const ForecastServer &) = delete;
    ForecastServer &operator=(const ForecastServer &) = delete;

    /**
     * Enqueue a request; blocks while the queue is full. Identical
     * in-flight requests (equal fingerprint()) coalesce onto one
     * computation. After stop() the returned future resolves
     * immediately to a rejection result.
     */
    std::future<ForecastResult> submit(ForecastRequest request);

    /**
     * A request's completion callback: invoked exactly once with the
     * result, from a worker thread (never under the server's internal
     * lock) — or inline from trySubmit for immediate rejections. The
     * callback must not block on the server (submit/drain/stop from
     * inside it deadlocks by design).
     */
    using Completion = std::function<void(ForecastResult)>;

    /**
     * Non-blocking submit for event-loop callers (the socket
     * front-end): never waits. Returns false — without invoking
     * @p done — when the queue is full, so the caller can reject at
     * its own edge (that is the backpressure chain: engine queue ->
     * trySubmit -> rejection on the wire). Coalesces exactly like
     * submit(); after stop(), @p done is invoked inline with a
     * rejection result and trySubmit returns true.
     */
    bool trySubmit(ForecastRequest request, Completion done);

    /** Block until every accepted request has been answered. */
    void drain();

    /**
     * Stop accepting, drain the queue, and join the workers. Every
     * request accepted before the call is answered. Idempotent.
     */
    void stop();

    /**
     * Point-in-time counters — a thin view over the engine's metrics
     * registry (the serve.* counters and the adopted cache counters),
     * so this struct can never drift from what --metrics-json reports.
     */
    ServerStats stats() const;

    /** The engine executing this server's requests. */
    const std::shared_ptr<api::ForecastEngine> &forecastEngine() const
    {
        return engine;
    }

    /** The engine's metrics registry (serve.* metrics live there). */
    const std::shared_ptr<obs::MetricsRegistry> &metrics() const
    {
        return engine->metrics();
    }

    /** The engine's model-graph cache, or nullptr when disabled. */
    const std::shared_ptr<ModelGraphCache> &modelGraphCache() const
    {
        return engine->modelGraphCache();
    }

  private:
    struct Pending
    {
        ForecastRequest request;
        /** (completion, tag) per coalesced submitter; front = first. */
        std::vector<std::pair<Completion, std::string>> waiters;
        /** Enqueue instant (queue-wait histogram / e2e latency). */
        std::chrono::steady_clock::time_point enqueued;
    };

    void workerLoop();
    /** Invoke @p done (outside the lock) with a rejection result. */
    static void rejectNow(Completion &done, std::string tag);
    /** Queued (not yet executing) requests across both classes. Lock
     *  held. The queue capacity bounds this sum — priority changes who
     *  drains first, never how many fit. */
    size_t queuedCount() const
    {
        return queueHigh.size() + queueNormal.size();
    }

    std::shared_ptr<api::ForecastEngine> engine;
    ServerOptions options;

    mutable std::mutex mutex;
    std::condition_variable notEmpty;
    std::condition_variable notFull;
    std::condition_variable idle;
    /**
     * Two-level FIFO: workers drain queueHigh before queueNormal
     * (request.priority picks the class at submit; a coalesced request
     * keeps the position of whoever queued the work first). Within a
     * class, strict FIFO — no starvation guarantee for normal work
     * beyond the queue bound itself.
     */
    std::deque<std::shared_ptr<Pending>> queueHigh;
    std::deque<std::shared_ptr<Pending>> queueNormal;
    std::unordered_map<std::string, std::shared_ptr<Pending>> inFlight;
    size_t executing = 0;
    bool stopping = false;
    /** Set once the winning stop() has joined every worker. */
    bool workersJoined = false;

    /// @name Registry-backed counters (serve.* in engine->metrics()):
    /// the same objects a registry snapshot reads, so stats() and
    /// --metrics-json can never disagree. Resolved at construction.
    /// @{
    std::shared_ptr<obs::Counter> submitted;
    std::shared_ptr<obs::Counter> completed;
    std::shared_ptr<obs::Counter> coalescedCount;
    std::shared_ptr<obs::Counter> rejectedCount;
    std::shared_ptr<obs::Gauge> queueDepth;
    std::shared_ptr<obs::Histogram> queueWaitUs;
    std::shared_ptr<obs::Histogram> executeUs;
    std::shared_ptr<obs::Histogram> e2eUs;
    /// @}

    std::vector<std::thread> threads;
};

} // namespace neusight::serve

#endif // NEUSIGHT_SERVE_SERVER_HPP
