#include "serve/wire.hpp"

#include <cstring>
#include <istream>

#include "common/logging.hpp"
#include "gpusim/spec_io.hpp"

namespace neusight::serve {

using common::Json;

LineFramer::LineFramer(size_t max_line_bytes)
    : maxLineBytes(max_line_bytes)
{
    ensure(maxLineBytes > 0, "LineFramer: max line bytes must be positive");
}

void
LineFramer::feed(const char *data, size_t size)
{
    if (discardingLine) {
        // Inside an already-reported oversized line: drop bytes until
        // its terminating newline shows up, then resume buffering.
        const char *nl = static_cast<const char *>(memchr(data, '\n', size));
        if (nl == nullptr)
            return;
        discardingLine = false;
        const size_t dropped = static_cast<size_t>(nl - data) + 1;
        data += dropped;
        size -= dropped;
    }
    pending.append(data, size);
}

LineFramer::Event
LineFramer::next(std::string &out)
{
    // Compact once the consumed prefix dominates, so long sessions
    // don't grow the buffer without bound.
    if (consumed > 0 && consumed >= pending.size() / 2) {
        pending.erase(0, consumed);
        scanned -= consumed;
        consumed = 0;
    }
    const size_t nl = pending.find('\n', scanned);
    if (nl == std::string::npos) {
        scanned = pending.size();
        if (pending.size() - consumed > maxLineBytes) {
            // No newline in sight and the line is already over the
            // bound: report it once and stream the rest to /dev/null.
            pending.clear();
            consumed = 0;
            scanned = 0;
            discardingLine = true;
            return Event::Oversized;
        }
        return Event::None;
    }
    size_t end = nl;
    if (end > consumed && pending[end - 1] == '\r')
        --end;
    const size_t start = consumed;
    consumed = nl + 1;
    scanned = consumed;
    if (end - start > maxLineBytes)
        return Event::Oversized;
    out.assign(pending, start, end - start);
    return Event::Line;
}

size_t
LineFramer::buffered() const
{
    return pending.size() - consumed;
}

namespace {

RequestKind
kindFromString(const std::string &op)
{
    if (op == "inference")
        return RequestKind::Inference;
    if (op == "decode")
        return RequestKind::DecodeStep;
    if (op == "training")
        return RequestKind::Training;
    if (op == "distributed")
        return RequestKind::Distributed;
    if (op == "hybrid")
        return RequestKind::Hybrid;
    if (op == "simulate")
        return RequestKind::Simulate;
    if (op == "sweep")
        return RequestKind::HybridSweep;
    if (op == "stats")
        return RequestKind::Stats;
    if (op == "ping")
        return RequestKind::Ping;
    fatal("wire: unknown op '" + op +
          "' (expected inference|decode|training|distributed|hybrid|"
          "simulate|sweep|stats|ping)");
}

gpusim::DataType
dtypeFromString(const std::string &name)
{
    if (name == "fp32")
        return gpusim::DataType::Fp32;
    if (name == "fp16")
        return gpusim::DataType::Fp16;
    fatal("wire: unknown dtype '" + name + "' (expected fp32|fp16)");
}

dist::Parallelism
strategyFromString(const std::string &name)
{
    if (name == "data")
        return dist::Parallelism::Data;
    if (name == "tensor")
        return dist::Parallelism::Tensor;
    if (name == "pipeline")
        return dist::Parallelism::Pipeline;
    fatal("wire: unknown strategy '" + name +
          "' (expected data|tensor|pipeline)");
}

const char *
strategyToString(dist::Parallelism strategy)
{
    switch (strategy) {
      case dist::Parallelism::Data:
        return "data";
      case dist::Parallelism::Tensor:
        return "tensor";
      case dist::Parallelism::Pipeline:
        return "pipeline";
    }
    panic("wire: bad strategy");
}

uint64_t
positiveField(const Json &json, const std::string &key, uint64_t fallback)
{
    const double value =
        json.numberOr(key, static_cast<double>(fallback));
    if (value < 1.0)
        fatal("wire: '" + key + "' must be at least 1");
    return static_cast<uint64_t>(value);
}

dist::PipelineSchedule
scheduleFromString(const std::string &name)
{
    if (name == "gpipe")
        return dist::PipelineSchedule::GPipe;
    if (name == "1f1b")
        return dist::PipelineSchedule::OneFOneB;
    if (name == "interleaved")
        return dist::PipelineSchedule::Interleaved1F1B;
    if (name == "zero-bubble")
        return dist::PipelineSchedule::ZeroBubble;
    fatal("wire: unknown schedule '" + name +
          "' (expected gpipe|1f1b|interleaved|zero-bubble)");
}

const char *
scheduleToString(dist::PipelineSchedule schedule)
{
    switch (schedule) {
      case dist::PipelineSchedule::GPipe:
        return "gpipe";
      case dist::PipelineSchedule::OneFOneB:
        return "1f1b";
      case dist::PipelineSchedule::Interleaved1F1B:
        return "interleaved";
      case dist::PipelineSchedule::ZeroBubble:
        return "zero-bubble";
    }
    panic("wire: bad schedule");
}

RequestPriority
priorityFromString(const std::string &name)
{
    if (name == "normal")
        return RequestPriority::Normal;
    if (name == "high")
        return RequestPriority::High;
    fatal("wire: unknown priority '" + name + "' (expected normal|high)");
}

double
linkField(const Json &json)
{
    const double link = json.numberOr("link_gbps", 0.0);
    if (link < 0.0)
        fatal("wire: 'link_gbps' must be non-negative");
    return link;
}

} // namespace

ForecastRequest
requestFromJson(const Json &json)
{
    if (!json.isObject())
        fatal("wire: request must be a JSON object");
    ForecastRequest req;
    req.kind = kindFromString(json.at("op").asString());
    if (req.kind == RequestKind::Stats || req.kind == RequestKind::Ping) {
        // Stats/ping requests name no workload: only the echo tag
        // applies.
        req.model.clear();
        req.tag = json.stringOr("tag", "");
        return req;
    }
    const double timeout = json.numberOr("timeout_ms", 0.0);
    if (timeout < 0.0)
        fatal("wire: 'timeout_ms' must be non-negative");
    req.timeoutMs = static_cast<uint64_t>(timeout);
    req.priority = priorityFromString(json.stringOr("priority", "normal"));
    req.model = json.at("model").asString();
    req.gpu = gpusim::resolveGpu(json.at("gpu").asString());
    req.batch = positiveField(json, "batch", 1);
    req.dtype = dtypeFromString(json.stringOr("dtype", "fp32"));
    req.tag = json.stringOr("tag", "");
    req.backend = json.stringOr("backend", "");
    const std::string predictor_alias = json.stringOr("predictor", "");
    if (!predictor_alias.empty()) {
        if (!req.backend.empty() && req.backend != predictor_alias)
            fatal("wire: 'backend' and its alias 'predictor' disagree "
                  "('" + req.backend + "' vs '" + predictor_alias + "')");
        req.backend = predictor_alias;
    }
    if (req.kind == RequestKind::DecodeStep) {
        if (!json.has("past"))
            fatal("wire: decode requests need 'past' (KV-cache length)");
        req.pastLen = positiveField(json, "past", 1);
    }
    if (req.kind == RequestKind::Distributed) {
        req.numGpus =
            static_cast<int>(positiveField(json, "num_gpus", 4));
        req.globalBatch = positiveField(json, "global_batch", 4);
        req.strategy =
            strategyFromString(json.stringOr("strategy", "data"));
        req.pipeline.numMicroBatches =
            static_cast<int>(positiveField(json, "micro_batches", 1));
        req.pipeline.schedule =
            scheduleFromString(json.stringOr("schedule", "gpipe"));
        req.linkGBps = linkField(json);
    }
    if (req.kind == RequestKind::Hybrid ||
        req.kind == RequestKind::Simulate) {
        req.hybrid.tpDegree =
            static_cast<int>(positiveField(json, "tp", 1));
        req.hybrid.ppDegree =
            static_cast<int>(positiveField(json, "pp", 1));
        req.hybrid.dpDegree =
            static_cast<int>(positiveField(json, "dp", 1));
        // The degrees must multiply to the server's GPU count, so the
        // product is the natural default when num_gpus is omitted.
        req.numGpus = static_cast<int>(positiveField(
            json, "num_gpus",
            static_cast<uint64_t>(req.hybrid.totalGpus())));
        req.globalBatch = positiveField(json, "global_batch", 4);
        req.hybrid.numMicroBatches =
            static_cast<int>(positiveField(json, "micro_batches", 1));
        req.hybrid.schedule =
            scheduleFromString(json.stringOr("schedule", "1f1b"));
        req.hybrid.virtualStagesPerGpu =
            static_cast<int>(positiveField(json, "virtual_stages", 2));
        req.hybrid.recomputeActivations =
            json.boolOr("recompute", false);
        req.linkGBps = linkField(json);
        if (req.kind == RequestKind::Simulate) {
            req.jitterFraction = json.numberOr("jitter", 0.0);
            if (req.jitterFraction < 0.0)
                fatal("wire: 'jitter' must be non-negative");
            req.simSeed = static_cast<uint64_t>(
                json.numberOr("seed", 0.0));
        } else if (req.hybrid.schedule ==
                   dist::PipelineSchedule::ZeroBubble) {
            fatal("wire: the zero-bubble schedule needs the simulator "
                  "(op 'simulate', not 'hybrid')");
        }
    }
    if (req.kind == RequestKind::HybridSweep) {
        req.numGpus =
            static_cast<int>(positiveField(json, "num_gpus", 4));
        req.globalBatch = positiveField(json, "global_batch", 4);
        req.linkGBps = linkField(json);
    }
    return req;
}

Json
requestToJson(const ForecastRequest &req)
{
    Json json;
    json.set("op", requestKindName(req.kind));
    if (req.kind == RequestKind::Stats || req.kind == RequestKind::Ping) {
        if (!req.tag.empty())
            json.set("tag", req.tag);
        return json;
    }
    if (req.timeoutMs > 0)
        json.set("timeout_ms", req.timeoutMs);
    json.set("model", req.model);
    json.set("gpu", req.gpu.name);
    json.set("batch", req.batch);
    if (req.kind == RequestKind::DecodeStep)
        json.set("past", req.pastLen);
    if (req.dtype != gpusim::DataType::Fp32)
        json.set("dtype", "fp16");
    if (req.kind == RequestKind::Distributed) {
        json.set("num_gpus", req.numGpus);
        json.set("global_batch", req.globalBatch);
        json.set("strategy", strategyToString(req.strategy));
        if (req.pipeline.numMicroBatches != 1)
            json.set("micro_batches", req.pipeline.numMicroBatches);
        if (req.pipeline.schedule != dist::PipelineSchedule::GPipe)
            json.set("schedule",
                     scheduleToString(req.pipeline.schedule));
        if (req.linkGBps > 0.0)
            json.set("link_gbps", req.linkGBps);
    }
    if (req.kind == RequestKind::Hybrid ||
        req.kind == RequestKind::Simulate) {
        json.set("num_gpus", req.numGpus);
        json.set("global_batch", req.globalBatch);
        json.set("tp", req.hybrid.tpDegree);
        json.set("pp", req.hybrid.ppDegree);
        json.set("dp", req.hybrid.dpDegree);
        if (req.hybrid.numMicroBatches != 1)
            json.set("micro_batches", req.hybrid.numMicroBatches);
        json.set("schedule", scheduleToString(req.hybrid.schedule));
        json.set("virtual_stages", req.hybrid.virtualStagesPerGpu);
        if (req.hybrid.recomputeActivations)
            json.set("recompute", true);
        if (req.linkGBps > 0.0)
            json.set("link_gbps", req.linkGBps);
        if (req.kind == RequestKind::Simulate) {
            if (req.jitterFraction > 0.0)
                json.set("jitter", req.jitterFraction);
            if (req.simSeed != 0)
                json.set("seed", req.simSeed);
        }
    }
    if (req.kind == RequestKind::HybridSweep) {
        json.set("num_gpus", req.numGpus);
        json.set("global_batch", req.globalBatch);
        if (req.linkGBps > 0.0)
            json.set("link_gbps", req.linkGBps);
    }
    if (req.priority == RequestPriority::High)
        json.set("priority", "high");
    if (!req.backend.empty())
        json.set("backend", req.backend);
    if (!req.tag.empty())
        json.set("tag", req.tag);
    return json;
}

Json
resultToJson(const ForecastResult &result)
{
    Json json;
    if (!result.tag.empty())
        json.set("tag", result.tag);
    json.set("ok", result.ok);
    if (!result.ok) {
        json.set("error", result.error);
        if (!result.errorCode.empty())
            json.set("code", result.errorCode);
        return json;
    }
    if (!result.payload.empty()) {
        // Stats responses embed the registry snapshot in place of the
        // forecast fields.
        json.set("stats", Json::parse(result.payload));
        json.set("service_us", result.serviceMicros);
        return json;
    }
    if (result.oom) {
        json.set("oom", true);
    } else {
        json.set("latency_ms", result.latencyMs);
        if (result.commBytes > 0.0)
            json.set("comm_bytes", result.commBytes);
        if (result.bubbleMs > 0.0)
            json.set("bubble_ms", result.bubbleMs);
        if (result.exposedDdpMs > 0.0)
            json.set("exposed_ddp_ms", result.exposedDdpMs);
        if (result.kernelCount > 0)
            json.set("kernels", static_cast<uint64_t>(result.kernelCount));
    }
    if (!result.strategy.empty())
        json.set("strategy", result.strategy);
    json.set("service_us", result.serviceMicros);
    if (result.coalesced)
        json.set("coalesced", true);
    if (result.cache.hits + result.cache.misses > 0) {
        json.set("cache_hits", result.cache.hits);
        json.set("cache_misses", result.cache.misses);
        json.set("cache_hit_rate", result.cache.hitRate());
    }
    return json;
}

bool
isSkippableRequestLine(const std::string &line)
{
    const size_t first = line.find_first_not_of(" \t\r");
    return first == std::string::npos || line[first] == '#';
}

std::vector<ForecastRequest>
readRequestScript(std::istream &in)
{
    std::vector<ForecastRequest> requests;
    std::string line;
    size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (isSkippableRequestLine(line))
            continue;
        try {
            requests.push_back(requestFromJson(Json::parse(line)));
        } catch (const std::exception &e) {
            fatal("wire: request script line " + std::to_string(line_no) +
                  ": " + e.what());
        }
    }
    return requests;
}

} // namespace neusight::serve
