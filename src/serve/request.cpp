#include "serve/request.hpp"

#include <cstdio>

#include "common/logging.hpp"

namespace neusight::serve {

const char *
requestKindName(RequestKind kind)
{
    switch (kind) {
      case RequestKind::Inference:
        return "inference";
      case RequestKind::DecodeStep:
        return "decode";
      case RequestKind::Training:
        return "training";
      case RequestKind::Distributed:
        return "distributed";
    }
    panic("requestKindName: bad kind");
}

std::string
ForecastRequest::fingerprint() const
{
    std::string key;
    key.reserve(160);
    key += requestKindName(kind);
    key += '|';
    key += model;
    char buf[256];
    std::snprintf(buf, sizeof(buf), "|b%llu|p%llu|d%d",
                  static_cast<unsigned long long>(batch),
                  static_cast<unsigned long long>(pastLen),
                  static_cast<int>(dtype));
    key += buf;
    if (kind == RequestKind::Distributed) {
        std::snprintf(buf, sizeof(buf), "|n%d|g%llu|s%d|m%d|sch%d|l%.17g",
                      numGpus,
                      static_cast<unsigned long long>(globalBatch),
                      static_cast<int>(strategy),
                      pipeline.numMicroBatches,
                      static_cast<int>(pipeline.schedule), linkGBps);
        key += buf;
    }
    key += '@';
    key += gpuFeatureFingerprint(gpu);
    return key;
}

} // namespace neusight::serve
