#include "serve/request.hpp"

#include <cstdio>

#include "common/logging.hpp"

namespace neusight::serve {

const char *
requestKindName(RequestKind kind)
{
    switch (kind) {
      case RequestKind::Inference:
        return "inference";
      case RequestKind::DecodeStep:
        return "decode";
      case RequestKind::Training:
        return "training";
      case RequestKind::Distributed:
        return "distributed";
      case RequestKind::Hybrid:
        return "hybrid";
      case RequestKind::Simulate:
        return "simulate";
      case RequestKind::HybridSweep:
        return "sweep";
      case RequestKind::Stats:
        return "stats";
      case RequestKind::Ping:
        return "ping";
    }
    panic("requestKindName: bad kind");
}

std::string
ForecastRequest::fingerprint() const
{
    std::string key;
    key.reserve(160);
    if (kind == RequestKind::Stats || kind == RequestKind::Ping) {
        // A snapshot (or liveness probe) is point-in-time state, not a
        // deterministic function of the request: every one must run
        // (the tag keeps concurrent ones from coalescing with each
        // other).
        key += requestKindName(kind);
        key += '!';
        key += tag;
        return key;
    }
    // The backend leads the key: the same workload through two different
    // predictors is two different forecasts, so they must never coalesce.
    // Fingerprints are process-local (coalescing/dedup only), so the
    // format change relative to the pre-backend layout is free.
    key += backend;
    key += '!';
    key += requestKindName(kind);
    key += '|';
    key += model;
    char buf[256];
    std::snprintf(buf, sizeof(buf), "|b%llu|p%llu|d%d",
                  static_cast<unsigned long long>(batch),
                  static_cast<unsigned long long>(pastLen),
                  static_cast<int>(dtype));
    key += buf;
    if (kind == RequestKind::Distributed) {
        std::snprintf(buf, sizeof(buf), "|n%d|g%llu|s%d|m%d|sch%d|l%.17g",
                      numGpus,
                      static_cast<unsigned long long>(globalBatch),
                      static_cast<int>(strategy),
                      pipeline.numMicroBatches,
                      static_cast<int>(pipeline.schedule), linkGBps);
        key += buf;
    }
    if (kind == RequestKind::Hybrid || kind == RequestKind::Simulate) {
        std::snprintf(buf, sizeof(buf),
                      "|n%d|g%llu|tp%d|pp%d|dp%d|m%d|sch%d|v%d|r%d|l%.17g",
                      numGpus,
                      static_cast<unsigned long long>(globalBatch),
                      hybrid.tpDegree, hybrid.ppDegree, hybrid.dpDegree,
                      hybrid.numMicroBatches,
                      static_cast<int>(hybrid.schedule),
                      hybrid.virtualStagesPerGpu,
                      hybrid.recomputeActivations ? 1 : 0, linkGBps);
        key += buf;
        if (kind == RequestKind::Simulate) {
            // The jitter stream is part of the forecast's identity;
            // only identical (fraction, seed) pairs may coalesce.
            std::snprintf(buf, sizeof(buf), "|j%.17g|s%llu",
                          jitterFraction,
                          static_cast<unsigned long long>(simSeed));
            key += buf;
        }
    }
    if (kind == RequestKind::HybridSweep) {
        std::snprintf(buf, sizeof(buf), "|n%d|g%llu|l%.17g", numGpus,
                      static_cast<unsigned long long>(globalBatch),
                      linkGBps);
        key += buf;
    }
    key += '@';
    key += gpuFeatureFingerprint(gpu);
    return key;
}

} // namespace neusight::serve
