#include "serve/server.hpp"

#include <chrono>
#include <utility>

#include "common/logging.hpp"
#include "graph/models.hpp"

namespace neusight::serve {

namespace {

/** Fill the bookkeeping shared by every waiter of one computation. */
void
finishResult(ForecastResult &result, double service_micros,
             const std::shared_ptr<PredictionCache> &cache)
{
    result.serviceMicros = service_micros;
    if (cache)
        result.cache = cache->stats();
}

} // namespace

ForecastServer::ForecastServer(const graph::LatencyPredictor &predictor_,
                               ServerOptions options_)
    : predictor(predictor_), options(std::move(options_))
{
    ensure(options.workers > 0, "ForecastServer: need at least one worker");
    ensure(options.queueCapacity > 0,
           "ForecastServer: queue capacity must be positive");
    comms = options.comms;
    if (!comms)
        comms = std::make_shared<dist::EstimatedCollectives>("A100-NVLink",
                                                             600.0);
    graphCache = options.graphCache;
    if (!graphCache && options.graphCacheCapacity > 0)
        graphCache =
            std::make_shared<ModelGraphCache>(options.graphCacheCapacity);
    threads.reserve(options.workers);
    for (size_t i = 0; i < options.workers; ++i)
        threads.emplace_back([this] { workerLoop(); });
}

ForecastServer::~ForecastServer()
{
    stop();
}

std::future<ForecastResult>
ForecastServer::submit(ForecastRequest request)
{
    std::promise<ForecastResult> promise;
    std::future<ForecastResult> future = promise.get_future();
    const std::string key = request.fingerprint();

    std::unique_lock<std::mutex> lock(mutex);
    ++submitted;
    auto it = inFlight.find(key);
    if (it != inFlight.end()) {
        // Identical request already queued or executing: piggyback.
        ++coalescedCount;
        it->second->waiters.emplace_back(std::move(promise),
                                         std::move(request.tag));
        return future;
    }
    notFull.wait(lock, [this] {
        return queue.size() < options.queueCapacity || stopping;
    });
    // The wait released the mutex: an identical request may have been
    // published meanwhile — re-check, or two Pending entries for one
    // fingerprint would race on the inFlight mapping.
    it = inFlight.find(key);
    if (it != inFlight.end()) {
        ++coalescedCount;
        it->second->waiters.emplace_back(std::move(promise),
                                         std::move(request.tag));
        return future;
    }
    if (stopping) {
        ++rejectedCount;
        lock.unlock();
        ForecastResult rejected;
        rejected.tag = request.tag;
        rejected.ok = false;
        rejected.error = "server is shutting down";
        promise.set_value(std::move(rejected));
        return future;
    }
    auto pending = std::make_shared<Pending>();
    std::string tag = request.tag;
    pending->request = std::move(request);
    pending->waiters.emplace_back(std::move(promise), std::move(tag));
    inFlight.emplace(key, pending);
    queue.push_back(std::move(pending));
    lock.unlock();
    notEmpty.notify_one();
    return future;
}

void
ForecastServer::workerLoop()
{
    for (;;) {
        std::unique_lock<std::mutex> lock(mutex);
        notEmpty.wait(lock, [this] { return !queue.empty() || stopping; });
        if (queue.empty()) {
            if (stopping)
                return;
            continue;
        }
        std::shared_ptr<Pending> pending = std::move(queue.front());
        queue.pop_front();
        ++executing;
        lock.unlock();
        notFull.notify_one();

        const auto start = std::chrono::steady_clock::now();
        ForecastResult result = execute(pending->request);
        const double micros =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - start)
                .count();
        finishResult(result, micros, options.cache);

        lock.lock();
        // Unpublish first: submits from here on start a fresh
        // computation, while everyone who piggybacked meanwhile is in
        // waiters and gets this result. The promises are fulfilled
        // before executing is decremented (still under the lock —
        // set_value only stores, it runs no user code), so drain()'s
        // "every accepted request answered" contract is exact: its
        // predicate cannot come true while any future is unready.
        inFlight.erase(pending->request.fingerprint());
        auto waiters = std::move(pending->waiters);
        completed += waiters.size();
        for (size_t i = 0; i < waiters.size(); ++i) {
            ForecastResult copy = result;
            copy.tag = std::move(waiters[i].second);
            copy.coalesced = i > 0;
            waiters[i].first.set_value(std::move(copy));
        }
        --executing;
        const bool drained = queue.empty() && executing == 0;
        lock.unlock();
        if (drained)
            idle.notify_all();
    }
}

ForecastResult
ForecastServer::execute(const ForecastRequest &req) const
{
    ForecastResult result;
    result.tag = req.tag;
    try {
        switch (req.kind) {
          case RequestKind::Inference:
          case RequestKind::DecodeStep:
          case RequestKind::Training: {
            const graph::ModelConfig &model = graph::findModel(req.model);
            const auto build = [&] {
                if (req.kind == RequestKind::Inference)
                    return graph::buildInferenceGraph(model, req.batch,
                                                      req.dtype);
                if (req.kind == RequestKind::DecodeStep)
                    return graph::buildDecodeGraph(model, req.batch,
                                                   req.pastLen, req.dtype);
                return graph::buildTrainingGraph(model, req.batch,
                                                 req.dtype);
            };
            // The graph is GPU-independent, so the cache key deliberately
            // omits the target GPU: requests differing only in GPU share
            // one built graph.
            std::shared_ptr<const graph::KernelGraph> g;
            if (graphCache) {
                const std::string key =
                    std::string(requestKindName(req.kind)) + '|' +
                    req.model + '|' + std::to_string(req.batch) + '|' +
                    std::to_string(req.pastLen) + '|' +
                    std::to_string(static_cast<int>(req.dtype));
                g = graphCache->getOrBuild(key, build);
            } else {
                g = std::make_shared<const graph::KernelGraph>(build());
            }
            result.kernelCount = g->computeNodeCount();
            result.latencyMs = predictor.predictGraphMs(*g, req.gpu);
            break;
          }
          case RequestKind::Distributed: {
            const graph::ModelConfig &model = graph::findModel(req.model);
            dist::ServerConfig server;
            server.systemName = req.gpu.name + "-server";
            server.numGpus = req.numGpus;
            server.linkGBps = req.linkGBps;
            server.setGpu(req.gpu);
            const std::string reject = dist::validateStrategy(
                model, server, req.globalBatch, req.strategy,
                req.pipeline);
            if (!reject.empty()) {
                result.ok = false;
                result.error = reject;
                break;
            }
            dist::DistributedResult dr;
            if (req.strategy == dist::Parallelism::Pipeline)
                dr = dist::pipelineTrainingMs(predictor, *comms, server,
                                              model, req.globalBatch,
                                              req.pipeline);
            else
                dr = dist::distributedTrainingMs(predictor, *comms, server,
                                                 model, req.globalBatch,
                                                 req.strategy);
            result.latencyMs = dr.latencyMs;
            result.oom = dr.oom;
            result.commBytes = dr.commBytes;
            break;
          }
        }
    } catch (const std::exception &e) {
        result.ok = false;
        result.error = e.what();
    }
    return result;
}

void
ForecastServer::drain()
{
    std::unique_lock<std::mutex> lock(mutex);
    idle.wait(lock, [this] { return queue.empty() && executing == 0; });
}

void
ForecastServer::stop()
{
    // Claim the thread handles under the lock so concurrent stop()
    // callers never join the same std::thread twice; whoever loses the
    // claim blocks until the winner has joined every worker.
    std::vector<std::thread> claimed;
    {
        std::unique_lock<std::mutex> lock(mutex);
        stopping = true;
        claimed.swap(threads);
        if (claimed.empty()) {
            idle.wait(lock, [this] { return workersJoined; });
            return;
        }
    }
    // Workers keep popping until the queue is empty (drain-on-shutdown);
    // blocked submitters wake and reject.
    notEmpty.notify_all();
    notFull.notify_all();
    for (std::thread &t : claimed)
        t.join();
    {
        std::lock_guard<std::mutex> lock(mutex);
        workersJoined = true;
    }
    idle.notify_all();
}

ServerStats
ForecastServer::stats() const
{
    ServerStats s;
    {
        std::lock_guard<std::mutex> lock(mutex);
        s.submitted = submitted;
        s.completed = completed;
        s.coalesced = coalescedCount;
        s.rejected = rejectedCount;
        s.queueDepth = queue.size();
        s.workers = options.workers;
    }
    if (options.cache)
        s.cache = options.cache->stats();
    if (graphCache)
        s.graphCache = graphCache->stats();
    return s;
}

} // namespace neusight::serve
