#include "serve/server.hpp"

#include <chrono>
#include <utility>

#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace neusight::serve {

namespace {

/** Fill the bookkeeping shared by every waiter of one computation. */
void
finishResult(ForecastResult &result, double service_micros,
             const std::shared_ptr<PredictionCache> &cache)
{
    result.serviceMicros = service_micros;
    if (cache)
        result.cache = cache->stats();
}

/**
 * Minimal engine for the predictor-ref constructor: the predictor is
 * the only backend (registered externally, so the engine never mutates
 * it), no engine-level kernel-prediction cache (preserving the
 * documented ServerOptions::cache semantics — counters only), and the
 * server's collective-model / graph-cache options forwarded.
 */
std::shared_ptr<api::ForecastEngine>
makeDirectEngine(const graph::LatencyPredictor &predictor,
                 const ServerOptions &options)
{
    auto registry = std::make_shared<api::PredictorRegistry>();
    registry->addExternal("direct", predictor);
    api::EngineConfig config;
    config.defaultBackend = "direct";
    config.registry = std::move(registry);
    config.cacheCapacity = 0;
    config.graphCacheCapacity = options.graphCacheCapacity;
    config.sharedGraphCache = options.graphCache;
    config.comms = options.comms;
    return std::make_shared<api::ForecastEngine>(std::move(config));
}

} // namespace

ForecastServer::ForecastServer(std::shared_ptr<api::ForecastEngine> engine_,
                               ServerOptions options_)
    : engine(std::move(engine_)), options(std::move(options_))
{
    ensure(engine != nullptr, "ForecastServer: null engine");
    ensure(options.workers > 0, "ForecastServer: need at least one worker");
    ensure(options.queueCapacity > 0,
           "ForecastServer: queue capacity must be positive");
    // Resolve the serve.* metrics once; the hot path only touches the
    // kept pointers (registry lookups lock).
    obs::MetricsRegistry &reg = *engine->metrics();
    submitted = reg.counter("serve.submitted");
    completed = reg.counter("serve.completed");
    coalescedCount = reg.counter("serve.coalesced");
    rejectedCount = reg.counter("serve.rejected");
    queueDepth = reg.gauge("serve.queue_depth");
    queueWaitUs = reg.histogram("serve.queue_wait_us", "us");
    executeUs = reg.histogram("serve.execute_us", "us");
    e2eUs = reg.histogram("serve.e2e_us", "us");
    threads.reserve(options.workers);
    for (size_t i = 0; i < options.workers; ++i)
        threads.emplace_back([this] { workerLoop(); });
}

ForecastServer::ForecastServer(const graph::LatencyPredictor &predictor,
                               ServerOptions options_)
    : ForecastServer(makeDirectEngine(predictor, options_), options_)
{
}

ForecastServer::~ForecastServer()
{
    stop();
}

void
ForecastServer::rejectNow(Completion &done, std::string tag)
{
    ForecastResult rejected;
    rejected.tag = std::move(tag);
    rejected.ok = false;
    rejected.error = "server is shutting down";
    done(std::move(rejected));
}

std::future<ForecastResult>
ForecastServer::submit(ForecastRequest request)
{
    // Normalize "use the default backend" to its name before
    // fingerprinting, so a request naming the default explicitly
    // coalesces with an identical request that omitted it.
    if (request.backend.empty())
        request.backend = engine->defaultBackendName();
    // The promise rides inside a Completion (waiters hold callbacks,
    // not promises, so the future path and the trySubmit path share
    // every line of the worker's fulfilment code). shared_ptr because
    // std::function requires copyable captures.
    auto promise = std::make_shared<std::promise<ForecastResult>>();
    std::future<ForecastResult> future = promise->get_future();
    Completion done = [promise](ForecastResult result) {
        promise->set_value(std::move(result));
    };
    const std::string key = request.fingerprint();

    std::unique_lock<std::mutex> lock(mutex);
    submitted->inc();
    if (stopping) {
        // Reject before the piggyback lookup: a submit that raced
        // stop() must not coalesce onto still-draining work — the
        // documented contract is that every post-stop() submit resolves
        // immediately to a rejection, deterministically.
        rejectedCount->inc();
        lock.unlock();
        rejectNow(done, std::move(request.tag));
        return future;
    }
    auto it = inFlight.find(key);
    if (it != inFlight.end()) {
        // Identical request already queued or executing: piggyback.
        coalescedCount->inc();
        it->second->waiters.emplace_back(std::move(done),
                                         std::move(request.tag));
        return future;
    }
    notFull.wait(lock, [this] {
        return queuedCount() < options.queueCapacity || stopping;
    });
    // The wait released the mutex: an identical request may have been
    // published meanwhile — re-check, or two Pending entries for one
    // fingerprint would race on the inFlight mapping.
    it = inFlight.find(key);
    if (it != inFlight.end()) {
        coalescedCount->inc();
        it->second->waiters.emplace_back(std::move(done),
                                         std::move(request.tag));
        return future;
    }
    if (stopping) {
        rejectedCount->inc();
        lock.unlock();
        rejectNow(done, std::move(request.tag));
        return future;
    }
    auto pending = std::make_shared<Pending>();
    std::string tag = request.tag;
    const RequestPriority priority = request.priority;
    pending->request = std::move(request);
    pending->waiters.emplace_back(std::move(done), std::move(tag));
    pending->enqueued = std::chrono::steady_clock::now();
    inFlight.emplace(key, pending);
    (priority == RequestPriority::High ? queueHigh : queueNormal)
        .push_back(std::move(pending));
    queueDepth->set(static_cast<int64_t>(queuedCount()));
    lock.unlock();
    notEmpty.notify_one();
    return future;
}

bool
ForecastServer::trySubmit(ForecastRequest request, Completion done)
{
    if (request.backend.empty())
        request.backend = engine->defaultBackendName();
    const std::string key = request.fingerprint();

    std::unique_lock<std::mutex> lock(mutex);
    if (stopping) {
        submitted->inc();
        rejectedCount->inc();
        lock.unlock();
        rejectNow(done, std::move(request.tag));
        return true;
    }
    auto it = inFlight.find(key);
    if (it != inFlight.end()) {
        // Piggybacking never occupies a queue slot, so coalesced
        // requests are accepted even when the queue is full — they add
        // no work, only a waiter.
        submitted->inc();
        coalescedCount->inc();
        it->second->waiters.emplace_back(std::move(done),
                                         std::move(request.tag));
        return true;
    }
    if (queuedCount() >= options.queueCapacity)
        return false; // Caller rejects (and counts) at its own edge.
    submitted->inc();
    auto pending = std::make_shared<Pending>();
    std::string tag = request.tag;
    const RequestPriority priority = request.priority;
    pending->request = std::move(request);
    pending->waiters.emplace_back(std::move(done), std::move(tag));
    pending->enqueued = std::chrono::steady_clock::now();
    inFlight.emplace(key, pending);
    (priority == RequestPriority::High ? queueHigh : queueNormal)
        .push_back(std::move(pending));
    queueDepth->set(static_cast<int64_t>(queuedCount()));
    lock.unlock();
    notEmpty.notify_one();
    return true;
}

void
ForecastServer::workerLoop()
{
    for (;;) {
        std::unique_lock<std::mutex> lock(mutex);
        notEmpty.wait(lock,
                      [this] { return queuedCount() > 0 || stopping; });
        if (queuedCount() == 0) {
            if (stopping)
                return;
            continue;
        }
        // High-priority work drains first; FIFO within each class.
        std::deque<std::shared_ptr<Pending>> &source =
            queueHigh.empty() ? queueNormal : queueHigh;
        std::shared_ptr<Pending> pending = std::move(source.front());
        source.pop_front();
        queueDepth->set(static_cast<int64_t>(queuedCount()));
        ++executing;
        lock.unlock();
        notFull.notify_one();

        obs::Tracer &tracer = obs::Tracer::global();
        const auto start = std::chrono::steady_clock::now();
        const double wait_us =
            std::chrono::duration<double, std::micro>(
                start - pending->enqueued)
                .count();
        queueWaitUs->record(wait_us);
        if (tracer.enabled()) {
            // The wait is not a C++ scope (it straddles submit() and
            // this worker), so it is recorded explicitly, ending at the
            // dequeue instant.
            const double now_us = tracer.nowUs();
            tracer.add("serve.queue_wait", "serve", now_us - wait_us,
                       wait_us, 0);
        }
        ForecastResult result;
        {
            obs::TraceSpan execute("serve.execute", "serve", tracer);
            result = engine->forecast(pending->request);
        }
        const double micros =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - start)
                .count();
        executeUs->record(micros);
        finishResult(result, micros, options.cache);

        obs::TraceSpan respond("serve.respond", "serve", tracer);
        lock.lock();
        // Unpublish first: submits from here on start a fresh
        // computation, while everyone who piggybacked meanwhile is in
        // waiters and gets this result.
        inFlight.erase(pending->request.fingerprint());
        auto waiters = std::move(pending->waiters);
        completed->inc(waiters.size());
        e2eUs->record(std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() -
                          pending->enqueued)
                          .count());
        lock.unlock();
        // Completions run outside the lock (they are arbitrary caller
        // code — the socket front-end's, for one) but BEFORE executing
        // is decremented, so drain()'s "every accepted request
        // answered" contract stays exact: its predicate cannot come
        // true while any completion is still pending.
        for (size_t i = 0; i < waiters.size(); ++i) {
            ForecastResult copy = result;
            copy.tag = std::move(waiters[i].second);
            copy.coalesced = i > 0;
            waiters[i].first(std::move(copy));
        }
        lock.lock();
        --executing;
        const bool drained = queuedCount() == 0 && executing == 0;
        lock.unlock();
        if (drained)
            idle.notify_all();
    }
}

void
ForecastServer::drain()
{
    std::unique_lock<std::mutex> lock(mutex);
    idle.wait(lock,
              [this] { return queuedCount() == 0 && executing == 0; });
}

void
ForecastServer::stop()
{
    // Claim the thread handles under the lock so concurrent stop()
    // callers never join the same std::thread twice; whoever loses the
    // claim blocks until the winner has joined every worker.
    std::vector<std::thread> claimed;
    {
        std::unique_lock<std::mutex> lock(mutex);
        stopping = true;
        claimed.swap(threads);
        if (claimed.empty()) {
            idle.wait(lock, [this] { return workersJoined; });
            return;
        }
    }
    // Workers keep popping until the queue is empty (drain-on-shutdown);
    // blocked submitters wake and reject.
    notEmpty.notify_all();
    notFull.notify_all();
    for (std::thread &t : claimed)
        t.join();
    {
        std::lock_guard<std::mutex> lock(mutex);
        workersJoined = true;
    }
    idle.notify_all();
}

ServerStats
ForecastServer::stats() const
{
    ServerStats s;
    s.submitted = submitted->value();
    s.completed = completed->value();
    s.coalesced = coalescedCount->value();
    s.rejected = rejectedCount->value();
    s.workers = options.workers;
    {
        std::lock_guard<std::mutex> lock(mutex);
        s.queueDepth = queuedCount();
    }
    if (options.cache)
        s.cache = options.cache->stats();
    else
        s.cache = engine->cacheStats();
    if (engine->modelGraphCache())
        s.graphCache = engine->modelGraphCache()->stats();
    return s;
}

} // namespace neusight::serve
