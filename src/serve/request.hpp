/**
 * @file
 * Typed forecast requests and structured results for the serving layer.
 * A request names a workload (inference prefill, decode step, training
 * iteration, or a distributed training iteration) plus the target GPU;
 * the result carries the forecast, per-request service latency, and the
 * cache statistics observed at completion. Requests have a canonical
 * fingerprint so the server can coalesce identical in-flight work.
 */

#ifndef NEUSIGHT_SERVE_REQUEST_HPP
#define NEUSIGHT_SERVE_REQUEST_HPP

#include <cstdint>
#include <string>

#include "dist/parallel.hpp"
#include "gpusim/gpu_spec.hpp"
#include "gpusim/kernel_desc.hpp"
#include "serve/prediction_cache.hpp"

namespace neusight::serve {

/** The forecast families a ForecastEngine / ForecastServer accepts. */
enum class RequestKind
{
    /** Inference forward pass (the paper's first-token prefill metric). */
    Inference,
    /** One autoregressive decode step against a KV cache. */
    DecodeStep,
    /** One single-GPU training iteration (forward + backward). */
    Training,
    /** One distributed training iteration on a multi-GPU server. */
    Distributed,
    /** One composed TP x PP x DP training iteration (Section 5.1). */
    Hybrid,
    /**
     * Discrete-event simulation of a hybrid training iteration
     * (sim::simulateHybrid): prices the zero-bubble schedule and
     * deterministic jitter the closed-form Hybrid kind cannot.
     */
    Simulate,
    /** Strategy sweep: answer with the fastest runnable hybrid plan. */
    HybridSweep,
    /** Metrics-registry snapshot (the "stats" wire op); no forecast. */
    Stats,
    /**
     * Liveness probe (the "ping" wire op): answered inline by the
     * socket layer without touching the engine queue, so it proves the
     * event loop is alive even when every worker thread is busy. The
     * shard router heartbeats its workers with it.
     */
    Ping,
};

/** Display name, e.g. "inference". */
const char *requestKindName(RequestKind kind);

/**
 * Queue class of a request ("priority" on the wire). High-priority
 * requests drain before normal ones; admission control and
 * backpressure are identical for both, and coalescing ignores the
 * class entirely (the forecast is the same either way).
 */
enum class RequestPriority
{
    Normal,
    High,
};

/** One forecast request. */
struct ForecastRequest
{
    RequestKind kind = RequestKind::Inference;
    /** Table-5 model name (resolved through graph::findModel). */
    std::string model = "GPT2-Large";
    /** Batch size (per-GPU for single-device kinds). */
    uint64_t batch = 1;
    /** KV-cache length for DecodeStep. */
    uint64_t pastLen = 0;
    /** Fully resolved target GPU (database entry or JSON-defined). */
    gpusim::GpuSpec gpu;
    gpusim::DataType dtype = gpusim::DataType::Fp32;

    /// @name Multi-GPU fields (Distributed / Hybrid / HybridSweep).
    /// @{
    int numGpus = 4;
    /** Global batch across the server. */
    uint64_t globalBatch = 4;
    dist::Parallelism strategy = dist::Parallelism::Data;
    dist::PipelineConfig pipeline;
    /** Composed TP x PP x DP strategy of a Hybrid request. */
    dist::HybridConfig hybrid;
    /** Peak GPU-to-GPU bandwidth GB/s; 0 = the GPU spec's value. */
    double linkGBps = 0.0;
    /** Simulate kind: per-task compute jitter fraction (>= 0). */
    double jitterFraction = 0.0;
    /** Simulate kind: seed of the deterministic jitter stream. */
    uint64_t simSeed = 0;
    /// @}

    /**
     * Registry name of the predictor backend answering this request
     * (api::PredictorRegistry); empty selects the engine's default, so
     * one server can answer heterogeneous predictors side by side.
     * Part of the fingerprint: different backends never coalesce.
     */
    std::string backend;

    /**
     * Queue class; excluded from the fingerprint (a high and a normal
     * request for the same forecast coalesce — whoever queued first
     * determines the position).
     */
    RequestPriority priority = RequestPriority::Normal;

    /** Client-supplied id echoed in the response (never coalesced on). */
    std::string tag;

    /**
     * Per-request deadline in milliseconds ("timeout_ms" on the wire);
     * 0 defers to the server's --request-timeout default. Enforced by
     * the socket layer (the request is answered with a typed "timeout"
     * error once expired), and deliberately excluded from the
     * fingerprint: the forecast itself is deadline-independent, so
     * requests differing only in timeout still coalesce.
     */
    uint64_t timeoutMs = 0;

    /**
     * Canonical identity of the forecast this request asks for: two
     * requests with equal fingerprints are guaranteed equal results, so
     * the server answers both with one computation. The tag is excluded.
     */
    std::string fingerprint() const;
};

/** Structured outcome of one request. */
struct ForecastResult
{
    /** Echoed request tag. */
    std::string tag;
    /** False when the request was rejected or failed; see error. */
    bool ok = true;
    std::string error;
    /**
     * Machine-readable failure class ("code" on the wire): "timeout",
     * "overload", "unavailable", "draining", or empty for errors that
     * predate the vocabulary (parse failures, engine exceptions).
     * Clients branch on this instead of string-matching error text.
     */
    std::string errorCode;

    /** The forecast. */
    double latencyMs = 0.0;
    /** Distributed OOM screening verdict. */
    bool oom = false;
    /**
     * Composed strategy of the answer, e.g. "tp2 x pp2 x dp2": the
     * requested plan for Hybrid, the sweep winner for HybridSweep.
     */
    std::string strategy;
    /** Priced communication payload (distributed kinds). */
    double commBytes = 0.0;
    /** Pipeline fill/drain bubble (Hybrid / Simulate kinds). */
    double bubbleMs = 0.0;
    /** Exposed DP all-reduce tail (Hybrid / Simulate kinds). */
    double exposedDdpMs = 0.0;
    /** Compute nodes in the forecasted graph. */
    size_t kernelCount = 0;

    /** Wall-clock service time in the worker, microseconds. */
    double serviceMicros = 0.0;
    /** True when answered by piggybacking on an identical request. */
    bool coalesced = false;
    /** Server-wide cache counters observed at completion. */
    CacheStats cache;
    /**
     * Serialized JSON payload of non-forecast kinds (the Stats kind's
     * registry snapshot); empty for forecasts. Wire responses embed it
     * as a JSON object instead of the latency fields.
     */
    std::string payload;
};

} // namespace neusight::serve

#endif // NEUSIGHT_SERVE_REQUEST_HPP
