#include "serve/graph_cache.hpp"

#include <utility>

#include "common/logging.hpp"

namespace neusight::serve {

ModelGraphCache::ModelGraphCache(size_t capacity) : maxEntries(capacity)
{
    ensure(capacity >= 1, "ModelGraphCache: capacity must be at least 1");
}

std::shared_ptr<const graph::KernelGraph>
ModelGraphCache::lookup(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = index.find(key);
    if (it == index.end()) {
        missCount->inc();
        return nullptr;
    }
    hitCount->inc();
    lru.splice(lru.begin(), lru, it->second);
    return it->second->second;
}

void
ModelGraphCache::insert(const std::string &key,
                        std::shared_ptr<const graph::KernelGraph> graph)
{
    std::lock_guard<std::mutex> lock(mutex);
    insertCount->inc();
    const auto it = index.find(key);
    if (it != index.end()) {
        it->second->second = std::move(graph);
        lru.splice(lru.begin(), lru, it->second);
        return;
    }
    if (lru.size() >= maxEntries) {
        index.erase(lru.back().first);
        lru.pop_back();
        evictionCount->inc();
    }
    lru.emplace_front(key, std::move(graph));
    index[key] = lru.begin();
}

std::shared_ptr<const graph::KernelGraph>
ModelGraphCache::getOrBuild(
    const std::string &key,
    const std::function<graph::KernelGraph()> &build)
{
    if (auto hit = lookup(key))
        return hit;
    auto built = std::make_shared<const graph::KernelGraph>(build());
    insert(key, built);
    return built;
}

void
ModelGraphCache::registerMetrics(
    const std::shared_ptr<ModelGraphCache> &cache,
    obs::MetricsRegistry &registry, const std::string &prefix)
{
    ensure(cache != nullptr,
           "ModelGraphCache::registerMetrics: null cache");
    registry.adopt(prefix + ".hits", cache->hitCount);
    registry.adopt(prefix + ".misses", cache->missCount);
    registry.adopt(prefix + ".evictions", cache->evictionCount);
    registry.adopt(prefix + ".inserts", cache->insertCount);
    registry.probe(prefix + ".size", [cache] {
        return static_cast<double>(cache->size());
    });
    registry.probe(prefix + ".capacity", [cache] {
        return static_cast<double>(cache->capacity());
    });
}

CacheStats
ModelGraphCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex);
    CacheStats s;
    s.hits = hitCount->value();
    s.misses = missCount->value();
    s.evictions = evictionCount->value();
    s.inserts = insertCount->value();
    s.size = lru.size();
    s.capacity = maxEntries;
    return s;
}

void
ModelGraphCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex);
    lru.clear();
    index.clear();
}

size_t
ModelGraphCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return lru.size();
}

} // namespace neusight::serve
