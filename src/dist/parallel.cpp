#include "dist/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <functional>
#include <limits>
#include <thread>

#include "common/logging.hpp"
#include "gpusim/gpu_spec.hpp"
#include "obs/trace.hpp"

namespace neusight::dist {

using graph::KernelGraph;
using graph::KernelNode;
using graph::ModelConfig;
using graph::NodeKind;
using gpusim::DataType;
using gpusim::dtypeBytes;
using gpusim::makeBmm;
using gpusim::makeElementwise;
using gpusim::makeLayerNorm;
using gpusim::makeLinear;
using gpusim::makeMemoryOp;
using gpusim::makeSoftmax;

namespace {

/** True when layer @p l of a Switch-style model hosts an MoE FFN. */
bool
isMoeLayer(const ModelConfig &config, uint64_t l)
{
    return config.numExperts > 1 && (l % 2 == 1);
}

/**
 * Layer range [begin, end) owned by @p stage of @p num_stages: a
 * near-even split with the remainder spread over the leading stages.
 */
std::pair<uint64_t, uint64_t>
stageLayerRange(uint64_t num_layers, int stage, int num_stages)
{
    const uint64_t s = static_cast<uint64_t>(stage);
    const uint64_t n = static_cast<uint64_t>(num_stages);
    const uint64_t base = num_layers / n;
    const uint64_t rem = num_layers % n;
    const uint64_t begin = s * base + std::min(s, rem);
    const uint64_t end = begin + base + (s < rem ? 1 : 0);
    return {begin, end};
}

/**
 * Price the communication nodes of a per-GPU graph: all-reduces across
 * @p group_size peers, send-recvs over one link.
 */
double
commCostMs(const KernelGraph &g, const CollectiveModel &comms,
           int group_size, double link_gbps)
{
    double total = 0.0;
    for (const auto &node : g.nodes) {
        if (node.kind == NodeKind::AllReduce)
            total += comms.allReduceMs(node.commBytes, group_size,
                                       link_gbps);
        else if (node.kind == NodeKind::SendRecv)
            total += comms.sendRecvMs(node.commBytes, link_gbps);
    }
    return total;
}

/** Fp32 parameters + gradients + AdamW moments, in bytes. */
double
optimizerStateBytes(double parameter_count)
{
    return parameter_count * 16.0;
}

/**
 * Resident bytes per GPU of a tensor-parallel training run: block
 * parameters and most activations shard across the group; embeddings,
 * layer norms, and residual streams replicate.
 */
double
tensorParallelMemoryBytes(const ModelConfig &config, uint64_t batch,
                          int tp_degree)
{
    const double tp = static_cast<double>(tp_degree);
    const double replicated_params =
        graph::embeddingParameterCount(config) +
        graph::headParameterCount(config);
    const double params =
        (config.parameterCount() - replicated_params) / tp +
        replicated_params;
    const double h = static_cast<double>(config.hidden);
    const double s = static_cast<double>(config.seq);
    const double a = static_cast<double>(config.heads);
    const double b = static_cast<double>(batch);
    const double rows_h = b * s * h * 4.0;
    const double attn = b * a * s * s * 4.0;
    // Split of graph::savedActivationBytesPerLayer (14 rows_h + 3 attn):
    // the 8 (B*S, H)-sized tensors inside the sharded attention/FFN
    // blocks and the attention scores divide across the group; the 6
    // tensors at layer boundaries (norms, residuals) replicate.
    const double act_per_layer =
        6.0 * rows_h + 8.0 * rows_h / tp + 3.0 * attn / tp;
    return optimizerStateBytes(params) +
           static_cast<double>(config.numLayers) * act_per_layer;
}

/** Parameters resident on one pipeline stage. */
double
stageParameterCount(const ModelConfig &config, int stage, int num_stages)
{
    const auto [begin, end] =
        stageLayerRange(config.numLayers, stage, num_stages);
    double total = 0.0;
    for (uint64_t l = begin; l < end; ++l)
        total += graph::blockParameterCount(config, l);
    if (stage == 0)
        total += graph::embeddingParameterCount(config);
    if (stage == num_stages - 1)
        total += graph::headParameterCount(config);
    return total;
}

/** Append one tensor-parallel transformer block to @p g. */
void
appendTensorParallelLayer(KernelGraph &g, const ModelConfig &config,
                          uint64_t layer, uint64_t batch, int tp_degree,
                          DataType dtype, bool training)
{
    const uint64_t tp = static_cast<uint64_t>(tp_degree);
    const uint64_t h = config.hidden;
    const uint64_t a = config.heads / tp; // Local attention heads.
    const uint64_t s = config.seq;
    const uint64_t dh = config.hidden / config.heads;
    const uint64_t rows = batch * s;
    const uint64_t ff = config.ffWidth() / tp; // Local FFN width.
    const double act_bytes = static_cast<double>(rows * h) *
                             static_cast<double>(dtypeBytes(dtype));
    const std::string base = "layer" + std::to_string(layer);

    // Self-attention: QKV and scores shard by heads; the output
    // projection reduces over the sharded width, so its result needs an
    // all-reduce before the (replicated) residual stream.
    g.add(makeLayerNorm(rows, h, dtype), base + ".ln1");
    g.add(makeLinear(rows, h, 3 * h / tp, dtype), base + ".attn.qkv");
    g.add(makeBmm(batch * a, s, s, dh, dtype), base + ".attn.qk");
    g.add(makeElementwise("div", batch * a * s * s, 1, 1.0, dtype),
          base + ".attn.scale");
    g.add(makeSoftmax(batch * a * s, s, dtype), base + ".attn.softmax");
    if (training)
        g.add(makeElementwise("dropout", batch * a * s * s, 1, 1.0, dtype),
              base + ".attn.dropout");
    g.add(makeBmm(batch * a, s, dh, s, dtype), base + ".attn.pv");
    g.add(makeLinear(rows, h / tp, h, dtype), base + ".attn.proj");
    if (tp > 1)
        g.nodes.push_back(KernelNode::comm(NodeKind::AllReduce, act_bytes,
                                           base + ".attn.allreduce"));
    if (training)
        g.add(makeElementwise("dropout", rows * h, 1, 1.0, dtype),
              base + ".attn.proj_dropout");
    g.add(makeElementwise("add", rows * h, 2, 1.0, dtype),
          base + ".attn.residual");

    // Feed-forward: inner width shards; the down-projection reduces over
    // it, so the block output all-reduces as well.
    g.add(makeLayerNorm(rows, h, dtype), base + ".ln2");
    if (isMoeLayer(config, layer)) {
        const uint64_t e = config.numExperts;
        const uint64_t rows_per_expert = std::max<uint64_t>(rows / e, 1);
        g.add(makeLinear(rows, h, e, dtype), base + ".moe.router");
        g.add(makeSoftmax(rows, e, dtype), base + ".moe.gate");
        for (uint64_t x = 0; x < e; ++x) {
            const std::string expert =
                base + ".moe.expert" + std::to_string(x);
            g.add(makeLinear(rows_per_expert, h, ff, dtype),
                  expert + ".ff1");
            g.add(makeElementwise("gelu", rows_per_expert * ff, 1, 8.0,
                                  dtype),
                  expert + ".act");
            g.add(makeLinear(rows_per_expert, ff, h, dtype),
                  expert + ".ff2");
        }
        g.add(makeElementwise("mul", rows * h, 2, 1.0, dtype),
              base + ".moe.combine");
    } else {
        g.add(makeLinear(rows, h, ff, dtype), base + ".ff1");
        g.add(makeElementwise("gelu", rows * ff, 1, 8.0, dtype),
              base + ".act");
        g.add(makeLinear(rows, ff, h, dtype), base + ".ff2");
    }
    if (tp > 1)
        g.nodes.push_back(KernelNode::comm(NodeKind::AllReduce, act_bytes,
                                           base + ".ff.allreduce"));
    if (training)
        g.add(makeElementwise("dropout", rows * h, 1, 1.0, dtype),
              base + ".ff.dropout");
    g.add(makeElementwise("add", rows * h, 2, 1.0, dtype),
          base + ".ff.residual");
}

/**
 * TP-sharded kernel graph of layers [begin, end): the shared core of
 * buildTensorParallelGraph (full range) and buildHybridStageGraph (one
 * pipeline stage), so the pure-TP and hybrid forecasts price identical
 * graphs by construction.
 */
KernelGraph
buildTensorParallelRange(const ModelConfig &config, uint64_t batch,
                         int tp_degree, uint64_t begin, uint64_t end,
                         bool include_embedding, bool include_head,
                         bool training, DataType dtype)
{
    if (tp_degree < 1)
        fatal("buildTensorParallelRange: bad tensor-parallel degree");
    if (batch == 0)
        fatal("buildTensorParallelRange: batch must be positive");
    const uint64_t tp = static_cast<uint64_t>(tp_degree);
    // Death-tested precondition (dist_test): must abort, not throw —
    // callers with user-supplied degrees validate before calling.
    ensure(config.heads % tp == 0,
           "buildTensorParallelGraph: attention heads must divide "
           "evenly across the tensor-parallel degree (" +
               std::to_string(config.heads) + " heads, degree " +
               std::to_string(tp_degree) + ")");
    if (config.ffWidth() % tp != 0 || config.hidden % tp != 0)
        fatal("buildTensorParallelGraph: hidden and feed-forward widths "
              "must divide evenly across the tensor-parallel degree");
    ensure(config.hidden % config.heads == 0,
           "buildTensorParallelGraph: hidden must divide heads for " +
               config.name);

    KernelGraph g;
    const uint64_t h = config.hidden;
    const uint64_t rows = batch * config.seq;
    const double bytes = static_cast<double>(dtypeBytes(dtype));
    const double act_bytes = static_cast<double>(rows * h) * bytes;

    // Embedding prologue (replicated).
    if (include_embedding) {
        g.add(makeMemoryOp("embedding",
                           static_cast<double>(rows * h) * bytes, dtype),
              "embed.tokens");
        g.add(makeElementwise("add", rows * h, 2, 1.0, dtype),
              "embed.pos_add");
    }

    for (uint64_t l = begin; l < end; ++l)
        appendTensorParallelLayer(g, config, l, batch, tp_degree, dtype,
                                  training);

    // Head epilogue (replicated).
    if (include_head) {
        g.add(makeLayerNorm(rows, h, dtype), "final.ln");
        if (config.encoderOnly) {
            g.add(makeLinear(batch, h, h, dtype), "head.pooler");
            g.add(makeElementwise("tanh", batch * h, 1, 4.0, dtype),
                  "head.pooler_act");
            g.add(makeLinear(batch, h, 2, dtype), "head.classifier");
        } else {
            g.add(makeLinear(rows, h, config.vocab, dtype), "head.lm");
        }
    }

    if (training) {
        graph::appendBackwardPass(g);
        // The backward pass mirrors each forward all-reduce with an
        // input-gradient all-reduce (Megatron's g/f conjugates).
        if (tp > 1)
            for (uint64_t l = end; l-- > begin;) {
                const std::string base = "layer" + std::to_string(l);
                g.nodes.push_back(
                    KernelNode::comm(NodeKind::AllReduce, act_bytes,
                                     base + ".ff.bwd.allreduce"));
                g.nodes.push_back(
                    KernelNode::comm(NodeKind::AllReduce, act_bytes,
                                     base + ".attn.bwd.allreduce"));
            }
    }
    return g;
}

/**
 * Activation stash charged per layer, in micro-batches: how many
 * micro-batches of saved activations a stage holds at the schedule's
 * peak. GPipe stashes everything; 1F1B drains early and caps at the
 * stage count; interleaving keeps up to (2 - 1/v) chunks' worth of
 * extra in-flight work per GPU (Megatron Section 2.2) — more than plain
 * 1F1B, never more than all M micro-batches.
 */
double
scheduleStashMicroBatches(PipelineSchedule schedule, int num_micro,
                          int pp_degree, int virtual_stages)
{
    const double m = static_cast<double>(num_micro);
    const double s = static_cast<double>(pp_degree);
    switch (schedule) {
      case PipelineSchedule::GPipe:
        return m;
      case PipelineSchedule::OneFOneB:
        return std::min(m, s);
      case PipelineSchedule::Interleaved1F1B: {
        const double v =
            static_cast<double>(std::max(virtual_stages, 1));
        return std::min(m, s * (2.0 - 1.0 / v));
      }
      case PipelineSchedule::ZeroBubble:
        // ZB-H1: the W passes retire stashes on the 1F1B cadence, so
        // the peak stash matches plain 1F1B (that memory parity is the
        // schedule's design point).
        return std::min(m, s);
    }
    panic("scheduleStashMicroBatches: bad schedule");
}

/** Bucketed ring all-reduce: total cost and the trailing bucket's. */
struct BucketedAllReduce
{
    double totalMs = 0.0;
    double lastBucketMs = 0.0;
};

BucketedAllReduce
bucketedAllReduceMs(const CollectiveModel &comms, double bytes,
                    double bucket_bytes, int group, double link_gbps)
{
    BucketedAllReduce cost;
    double rest = bytes;
    while (rest > 0.0) {
        const double chunk = std::min(bucket_bytes, rest);
        cost.lastBucketMs = comms.allReduceMs(chunk, group, link_gbps);
        cost.totalMs += cost.lastBucketMs;
        rest -= chunk;
    }
    return cost;
}

} // namespace

DdpAllReduceCost
ddpAllReduceCost(const CollectiveModel &comms, double bytes,
                 double bucket_bytes, int group, double link_gbps)
{
    const BucketedAllReduce cost =
        bucketedAllReduceMs(comms, bytes, bucket_bytes, group, link_gbps);
    return {cost.totalMs, cost.lastBucketMs};
}

void
ServerConfig::setGpu(const gpusim::GpuSpec &spec)
{
    gpuSpec = spec;
    gpuName = spec.name;
    hasGpuSpec = true;
}

const gpusim::GpuSpec &
ServerConfig::resolvedGpu() const
{
    if (hasGpuSpec)
        return gpuSpec;
    return gpusim::findGpu(gpuName);
}

double
ServerConfig::effectiveLinkGBps() const
{
    if (linkGBps > 0.0)
        return linkGBps;
    return resolvedGpu().interconnectGBps;
}

const char *
parallelismName(Parallelism strategy)
{
    switch (strategy) {
      case Parallelism::Data:
        return "Data Parallel";
      case Parallelism::Tensor:
        return "Tensor Parallel";
      case Parallelism::Pipeline:
        return "Pipeline Parallel";
    }
    panic("parallelismName: bad strategy");
}

const char *
pipelineScheduleName(PipelineSchedule schedule)
{
    switch (schedule) {
      case PipelineSchedule::GPipe:
        return "GPipe";
      case PipelineSchedule::OneFOneB:
        return "1F1B";
      case PipelineSchedule::Interleaved1F1B:
        return "Interleaved-1F1B";
      case PipelineSchedule::ZeroBubble:
        return "Zero-Bubble";
    }
    panic("pipelineScheduleName: bad schedule");
}

const char *
sweepEngineName(SweepEngine engine)
{
    switch (engine) {
      case SweepEngine::ClosedForm:
        return "closed_form";
      case SweepEngine::Simulator:
        return "sim";
    }
    panic("sweepEngineName: bad engine");
}

std::string
HybridConfig::describe() const
{
    return "tp" + std::to_string(tpDegree) + " x pp" +
           std::to_string(ppDegree) + " x dp" + std::to_string(dpDegree);
}

KernelGraph
buildDataParallelGraph(const ModelConfig &config, uint64_t global_batch,
                       int num_gpus, DataType dtype)
{
    if (num_gpus < 1)
        fatal("buildDataParallelGraph: need at least one GPU");
    const uint64_t n = static_cast<uint64_t>(num_gpus);
    if (global_batch == 0 || global_batch % n != 0)
        fatal("buildDataParallelGraph: global batch must split evenly "
              "across " +
              std::to_string(num_gpus) + " GPUs");
    KernelGraph g = graph::buildTrainingGraph(config, global_batch / n,
                                              dtype);
    if (num_gpus > 1)
        g.nodes.push_back(KernelNode::comm(
            NodeKind::AllReduce,
            config.parameterCount() *
                static_cast<double>(dtypeBytes(dtype)),
            "grad.allreduce"));
    return g;
}

KernelGraph
buildTensorParallelGraph(const ModelConfig &config, uint64_t batch,
                         int tp_degree, bool training, DataType dtype)
{
    return buildTensorParallelRange(config, batch, tp_degree, 0,
                                    config.numLayers,
                                    /*include_embedding=*/true,
                                    /*include_head=*/true, training, dtype);
}

KernelGraph
buildHybridStageGraph(const ModelConfig &config, uint64_t micro_batch,
                      int tp_degree, int stage, int num_stages,
                      bool training, DataType dtype)
{
    if (num_stages < 1 || stage < 0 || stage >= num_stages)
        fatal("buildHybridStageGraph: bad stage index");
    if (static_cast<uint64_t>(num_stages) > config.numLayers)
        fatal("buildHybridStageGraph: more stages than layers");
    const auto [begin, end] =
        stageLayerRange(config.numLayers, stage, num_stages);
    return buildTensorParallelRange(config, micro_batch, tp_degree, begin,
                                    end,
                                    /*include_embedding=*/stage == 0,
                                    /*include_head=*/stage ==
                                        num_stages - 1,
                                    training, dtype);
}

KernelGraph
buildPipelineStageGraph(const ModelConfig &config, uint64_t micro_batch,
                        int stage, int num_stages, bool training,
                        DataType dtype)
{
    if (num_stages < 1 || stage < 0 || stage >= num_stages)
        fatal("buildPipelineStageGraph: bad stage index");
    if (static_cast<uint64_t>(num_stages) > config.numLayers)
        fatal("buildPipelineStageGraph: more stages than layers");
    const auto [begin, end] =
        stageLayerRange(config.numLayers, stage, num_stages);
    graph::LayerRange range;
    range.beginLayer = begin;
    range.endLayer = end;
    range.includeEmbedding = (stage == 0);
    range.includeHead = (stage == num_stages - 1);
    range.training = training;
    return graph::buildLayerRangeGraph(config, micro_batch, range, dtype);
}

std::string
validateStrategy(const ModelConfig &config, const ServerConfig &server,
                 uint64_t global_batch, Parallelism strategy,
                 const PipelineConfig &pipeline)
{
    const uint64_t gpus = static_cast<uint64_t>(server.numGpus);
    if (server.numGpus < 1)
        return "need at least one GPU";
    switch (strategy) {
      case Parallelism::Data:
        if (global_batch == 0 || global_batch % gpus != 0)
            return "global batch " + std::to_string(global_batch) +
                   " not divisible by " + std::to_string(server.numGpus) +
                   " GPUs";
        return "";
      case Parallelism::Tensor:
        if (config.heads % gpus != 0 || config.hidden % gpus != 0 ||
            config.ffWidth() % gpus != 0)
            return "model dimensions (" + std::to_string(config.heads) +
                   " heads, " + std::to_string(config.hidden) +
                   " hidden, " + std::to_string(config.ffWidth()) +
                   " ff) not all divisible by " +
                   std::to_string(server.numGpus) + " GPUs";
        return "";
      case Parallelism::Pipeline: {
        if (gpus > config.numLayers)
            return "more pipeline stages than layers (" +
                   std::to_string(config.numLayers) + ")";
        if (pipeline.numMicroBatches < 1)
            return "micro-batch count must be positive";
        if (pipeline.schedule == PipelineSchedule::Interleaved1F1B)
            return "interleaved 1F1B is modeled by the hybrid "
                   "forecaster only (use --pp/--sweep, or "
                   "hybridTrainingMs)";
        if (pipeline.schedule == PipelineSchedule::ZeroBubble)
            return "the zero-bubble schedule is priced by the "
                   "discrete-event simulator only (use --simulate, or "
                   "sim::simulateHybrid)";
        const uint64_t micro =
            static_cast<uint64_t>(pipeline.numMicroBatches);
        if (global_batch == 0 || global_batch % micro != 0)
            return "global batch " + std::to_string(global_batch) +
                   " not divisible into " + std::to_string(micro) +
                   " micro-batches";
        return "";
      }
    }
    panic("validateStrategy: bad strategy");
}

double
hybridStageParameterCount(const ModelConfig &config, int stage,
                          int pp_degree, int tp_degree)
{
    if (pp_degree < 1 || stage < 0 || stage >= pp_degree)
        fatal("hybridStageParameterCount: bad stage index");
    if (tp_degree < 1)
        fatal("hybridStageParameterCount: bad tensor-parallel degree");
    const auto [begin, end] =
        stageLayerRange(config.numLayers, stage, pp_degree);
    double blocks = 0.0;
    for (uint64_t l = begin; l < end; ++l)
        blocks += graph::blockParameterCount(config, l);
    double total = blocks / static_cast<double>(tp_degree);
    if (stage == 0)
        total += graph::embeddingParameterCount(config);
    if (stage == pp_degree - 1)
        total += graph::headParameterCount(config);
    return total;
}

double
hybridStageMemoryBytes(const ModelConfig &config, uint64_t micro_batch,
                       int stage, const HybridConfig &hybrid)
{
    const double tp = static_cast<double>(hybrid.tpDegree);
    const auto [begin, end] =
        stageLayerRange(config.numLayers, stage, hybrid.ppDegree);
    const double layers = static_cast<double>(end - begin);
    const double h = static_cast<double>(config.hidden);
    const double s = static_cast<double>(config.seq);
    const double a = static_cast<double>(config.heads);
    const double b = static_cast<double>(micro_batch);
    const double rows_h = b * s * h * 4.0;
    const double attn = b * a * s * s * 4.0;
    // TP split of graph::savedActivationBytesPerLayer — the same 6/8/3
    // decomposition as the pure-TP screen (tensorParallelMemoryBytes):
    // 8 block-internal tensors and the attention scores shard, the 6
    // layer-boundary tensors replicate. Recomputation stashes only the
    // layer-input checkpoint (plus its norm) and replays the rest.
    double act_per_layer = hybrid.recomputeActivations
                               ? 2.0 * rows_h
                               : 6.0 * rows_h + 8.0 * rows_h / tp +
                                     3.0 * attn / tp;
    const double stash = scheduleStashMicroBatches(
        hybrid.schedule, hybrid.numMicroBatches, hybrid.ppDegree,
        hybrid.virtualStagesPerGpu);
    double mem =
        optimizerStateBytes(hybridStageParameterCount(
            config, stage, hybrid.ppDegree, hybrid.tpDegree)) +
        stash * layers * act_per_layer;
    // DDP keeps a flattened bucket plus its reduction scratch live.
    if (hybrid.dpDegree > 1)
        mem += 2.0 * hybrid.ddp.bucketBytes;
    return mem;
}

std::string
validateHybrid(const ModelConfig &config, const ServerConfig &server,
               uint64_t global_batch, const HybridConfig &hybrid)
{
    if (server.numGpus < 1)
        return "need at least one GPU";
    if (hybrid.tpDegree < 1 || hybrid.ppDegree < 1 || hybrid.dpDegree < 1)
        return "parallel degrees must be positive";
    if (hybrid.totalGpus() != server.numGpus)
        return "tp x pp x dp = " + std::to_string(hybrid.totalGpus()) +
               " does not match the server's " +
               std::to_string(server.numGpus) + " GPUs";
    const uint64_t tp = static_cast<uint64_t>(hybrid.tpDegree);
    if (config.heads % tp != 0 || config.hidden % tp != 0 ||
        config.ffWidth() % tp != 0)
        return "model dimensions (" + std::to_string(config.heads) +
               " heads, " + std::to_string(config.hidden) + " hidden, " +
               std::to_string(config.ffWidth()) +
               " ff) not all divisible by tensor degree " +
               std::to_string(hybrid.tpDegree);
    if (static_cast<uint64_t>(hybrid.ppDegree) > config.numLayers)
        return "more pipeline stages than layers (" +
               std::to_string(config.numLayers) + ")";
    if (hybrid.numMicroBatches < 1)
        return "micro-batch count must be positive";
    if (hybrid.schedule == PipelineSchedule::Interleaved1F1B) {
        if (hybrid.ppDegree < 2)
            return "interleaved schedule needs at least two pipeline "
                   "stages";
        if (hybrid.virtualStagesPerGpu < 2)
            return "interleaved schedule needs at least two virtual "
                   "stages per GPU";
        if (static_cast<uint64_t>(hybrid.ppDegree) *
                static_cast<uint64_t>(hybrid.virtualStagesPerGpu) >
            config.numLayers)
            return "more virtual stages than layers (" +
                   std::to_string(config.numLayers) + ")";
    }
    if (hybrid.dpDegree > 1) {
        if (hybrid.ddp.bucketBytes <= 0.0)
            return "DDP bucket size must be positive";
        if (hybrid.ddp.overlapEfficiency < 0.0 ||
            hybrid.ddp.overlapEfficiency > 1.0)
            return "DDP overlap efficiency must be in [0, 1]";
    }
    const uint64_t dp = static_cast<uint64_t>(hybrid.dpDegree);
    if (global_batch == 0 || global_batch % dp != 0)
        return "global batch " + std::to_string(global_batch) +
               " not divisible across " + std::to_string(hybrid.dpDegree) +
               " data-parallel replicas";
    const uint64_t per_replica = global_batch / dp;
    const uint64_t m = static_cast<uint64_t>(hybrid.numMicroBatches);
    if (per_replica % m != 0)
        return "per-replica batch " + std::to_string(per_replica) +
               " not divisible into " + std::to_string(m) +
               " micro-batches";
    return "";
}

bool
StagePriceMemo::lookup(const std::string &key, Price &out) const
{
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = entries.find(key);
    if (it == entries.end()) {
        ++missCount;
        return false;
    }
    ++hitCount;
    out = it->second;
    return true;
}

void
StagePriceMemo::insert(const std::string &key, const Price &price)
{
    std::lock_guard<std::mutex> lock(mutex);
    entries[key] = price;
}

uint64_t
StagePriceMemo::hits() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return hitCount;
}

uint64_t
StagePriceMemo::misses() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return missCount;
}

namespace {

/** Price of one already-built graph: predicted compute + collectives. */
StagePriceMemo::Price
pricedGraph(const graph::LatencyPredictor &predictor,
            const CollectiveModel &comms, const gpusim::GpuSpec &gpu,
            double link, int tp, const KernelGraph &g)
{
    StagePriceMemo::Price price;
    price.totalMs =
        predictor.predictGraphMs(g, gpu) + commCostMs(g, comms, tp, link);
    price.commBytes = g.totalCommBytes();
    return price;
}

/**
 * Price one pipeline-stage graph (predicted compute plus its TP
 * collectives). Without a memo this builds and prices the stage graph
 * directly — bit-identical to what hybridTrainingMs always did, so the
 * degenerate-degree guarantees stay exact. With a memo (the sweep
 * path) stages are priced by component — embedding prologue, one
 * representative layer per MoE parity times the stage's layer count,
 * head epilogue — instead of building the whole stage graph: the graph
 * price is additive over nodes, appendBackwardPass mirrors each
 * forward node independently, and appendTensorParallelLayer depends on
 * the layer index only through the MoE parity, so the component sum
 * prices the exact node multiset of the full stage graph at O(1) graph
 * builds per stage (equal up to floating-point re-association). The
 * components also share across stage counts and pipeline positions —
 * the pLUTo move: predict each unique structure once, look the rest up.
 */
StagePriceMemo::Price
pricedStage(const graph::LatencyPredictor &predictor,
            const CollectiveModel &comms, const gpusim::GpuSpec &gpu,
            double link, const ModelConfig &config, uint64_t micro,
            int tp, int stage, int num_stages, bool training,
            StagePriceMemo *memo)
{
    const char train_tag = training ? 't' : 'f';
    if (!memo)
        return pricedGraph(predictor, comms, gpu, link, tp,
                           buildHybridStageGraph(config, micro, tp, stage,
                                                 num_stages, training));
    std::string key = std::to_string(tp) + '|' +
                      std::to_string(num_stages) + '|' +
                      std::to_string(stage) + '|' +
                      std::to_string(micro) + '|' + train_tag;
    {
        StagePriceMemo::Price hit;
        if (memo->lookup(key, hit))
            return hit;
    }

    // One component through the memo: a tiny graph priced at most once
    // per (kind, tp, micro, training, parity).
    const auto component = [&](char kind, int tp_used,
                               uint64_t parity) -> StagePriceMemo::Price {
        const std::string ckey =
            std::string("c|") + kind + '|' + std::to_string(tp_used) +
            '|' + std::to_string(micro) + '|' + train_tag + '|' +
            std::to_string(parity);
        StagePriceMemo::Price hit;
        if (memo->lookup(ckey, hit))
            return hit;
        KernelGraph g;
        if (kind == 'l')
            g = buildTensorParallelRange(config, micro, tp_used, parity,
                                         parity + 1, false, false,
                                         training, DataType::Fp32);
        else
            g = buildTensorParallelRange(config, micro, tp_used, 0, 0,
                                         /*include_embedding=*/kind == 'e',
                                         /*include_head=*/kind == 'h',
                                         training, DataType::Fp32);
        const StagePriceMemo::Price price =
            pricedGraph(predictor, comms, gpu, link, tp_used, g);
        memo->insert(ckey, price);
        return price;
    };

    const auto [begin, end] =
        stageLayerRange(config.numLayers, stage, num_stages);
    StagePriceMemo::Price price;
    // Layers, one representative build per MoE parity (plain models
    // collapse to a single component).
    uint64_t plain_layers = 0;
    uint64_t moe_layers = 0;
    for (uint64_t l = begin; l < end; ++l)
        (isMoeLayer(config, l) ? moe_layers : plain_layers) += 1;
    if (plain_layers > 0) {
        const StagePriceMemo::Price layer = component('l', tp, 0);
        price.totalMs += static_cast<double>(plain_layers) * layer.totalMs;
        price.commBytes +=
            static_cast<double>(plain_layers) * layer.commBytes;
    }
    if (moe_layers > 0) {
        const StagePriceMemo::Price layer = component('l', tp, 1);
        price.totalMs += static_cast<double>(moe_layers) * layer.totalMs;
        price.commBytes +=
            static_cast<double>(moe_layers) * layer.commBytes;
    }
    // Embedding and head replicate across TP ranks (their graphs hold
    // no sharded kernels and no collectives), so they are priced at
    // tp = 1 and shared across every tensor degree.
    if (stage == 0) {
        const StagePriceMemo::Price embed = component('e', 1, 0);
        price.totalMs += embed.totalMs;
        price.commBytes += embed.commBytes;
    }
    if (stage == num_stages - 1) {
        const StagePriceMemo::Price head = component('h', 1, 0);
        price.totalMs += head.totalMs;
        price.commBytes += head.commBytes;
    }
    memo->insert(key, price);
    return price;
}

/**
 * Run fn(0..count-1) on @p threads workers (0 = hardware concurrency).
 * The first exception thrown by any index is re-thrown on the caller
 * after every worker has stopped.
 */
void
parallelFor(size_t count, int threads, const std::function<void(size_t)> &fn)
{
    if (count == 0)
        return;
    size_t workers =
        threads > 0 ? static_cast<size_t>(threads)
                    : static_cast<size_t>(std::max(
                          1u, std::thread::hardware_concurrency()));
    workers = std::min(workers, count);
    if (workers <= 1) {
        for (size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    std::atomic<size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr error;
    const auto body = [&] {
        for (;;) {
            const size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
                return;
            }
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (size_t t = 1; t < workers; ++t)
        pool.emplace_back(body);
    body();
    for (std::thread &t : pool)
        t.join();
    if (error)
        std::rethrow_exception(error);
}

} // namespace

HybridStagePrices
hybridStagePrices(const graph::LatencyPredictor &predictor,
                  const CollectiveModel &comms, const ServerConfig &server,
                  const ModelConfig &config, uint64_t micro_batch,
                  const HybridConfig &hybrid, StagePriceMemo *memo)
{
    const gpusim::GpuSpec &gpu = server.resolvedGpu();
    const double link = server.effectiveLinkGBps();
    const int pp = hybrid.ppDegree;
    if (pp < 1)
        fatal("hybridStagePrices: bad pipeline degree");
    HybridStagePrices prices;
    prices.trainMs.assign(pp, 0.0);
    prices.replayMs.assign(pp, 0.0);
    prices.trainCommBytes.assign(pp, 0.0);
    prices.replayCommBytes.assign(pp, 0.0);
    for (int s = 0; s < pp; ++s) {
        const StagePriceMemo::Price train = pricedStage(
            predictor, comms, gpu, link, config, micro_batch,
            hybrid.tpDegree, s, pp, /*training=*/true, memo);
        prices.trainMs[s] = train.totalMs;
        prices.trainCommBytes[s] = train.commBytes;
        if (hybrid.recomputeActivations) {
            // Checkpointing replays the stage's forward (including its
            // activation all-reduces) before each backward.
            const StagePriceMemo::Price replay = pricedStage(
                predictor, comms, gpu, link, config, micro_batch,
                hybrid.tpDegree, s, pp, /*training=*/false, memo);
            prices.replayMs[s] = replay.totalMs;
            prices.replayCommBytes[s] = replay.commBytes;
        }
    }
    return prices;
}

HybridResult
hybridTrainingMs(const graph::LatencyPredictor &predictor,
                 const CollectiveModel &comms, const ServerConfig &server,
                 const ModelConfig &config, uint64_t global_batch,
                 const HybridConfig &hybrid, StagePriceMemo *memo)
{
    // Death-testable precondition: callers with user-supplied
    // configurations screen through validateHybrid() first.
    const std::string reject =
        validateHybrid(config, server, global_batch, hybrid);
    ensure(reject.empty(), "hybridTrainingMs: " + reject);
    // Also death-testable: no closed form exists for the zero-bubble
    // schedule — sim::simulateHybrid prices it, and callers route on
    // the schedule before reaching this entry point.
    ensure(hybrid.schedule != PipelineSchedule::ZeroBubble,
           "hybridTrainingMs: the zero-bubble schedule is priced by the "
           "discrete-event simulator only (sim::simulateHybrid)");

    const gpusim::GpuSpec &gpu = server.resolvedGpu();
    const double link = server.effectiveLinkGBps();
    const int pp = hybrid.ppDegree;
    const uint64_t m = static_cast<uint64_t>(hybrid.numMicroBatches);
    const uint64_t micro =
        global_batch / (static_cast<uint64_t>(hybrid.dpDegree) * m);

    HybridResult result;
    // OOM screen first: the memory model is closed-form, so a
    // non-fitting configuration never pays for graph prediction.
    for (int s = 0; s < pp; ++s) {
        const double mem =
            hybridStageMemoryBytes(config, micro, s, hybrid);
        result.memoryBytes = std::max(result.memoryBytes, mem);
        if (mem > gpu.memBytes())
            result.oom = true;
    }
    if (result.oom)
        return result;

    // Per-stage slot time: TP-sharded compute plus the stage's TP
    // collectives, plus one forward replay per micro-batch when
    // recomputing. The per-stage accumulation order matches the
    // pre-refactor loop exactly, so the latency stays bit-identical.
    const HybridStagePrices prices = hybridStagePrices(
        predictor, comms, server, config, micro, hybrid, memo);
    std::vector<double> stage_ms(pp, 0.0);
    double sum_ms = 0.0;
    double max_ms = 0.0;
    double tp_payload = 0.0; // Per pipeline line, per micro-batch.
    double recompute_ms = 0.0;
    for (int s = 0; s < pp; ++s) {
        double ms = prices.trainMs[s];
        tp_payload += prices.trainCommBytes[s];
        if (hybrid.recomputeActivations) {
            ms += prices.replayMs[s];
            recompute_ms += prices.replayMs[s];
            tp_payload += prices.replayCommBytes[s];
        }
        stage_ms[s] = ms;
        sum_ms += ms;
        max_ms = std::max(max_ms, ms);
    }
    result.recomputeMs = static_cast<double>(m) * recompute_ms;
    result.commBytes += static_cast<double>(m) * tp_payload;

    // Pipeline latency: M turns of the slowest stage in steady state,
    // plus the fill/drain bubble — one pass over the other stages,
    // divided by the virtual-stage count when interleaved (Megatron:
    // bubble fraction (S-1)/(vM) of the iteration).
    const int v = hybrid.schedule == PipelineSchedule::Interleaved1F1B
                      ? hybrid.virtualStagesPerGpu
                      : 1;
    result.bubbleMs = (sum_ms - max_ms) / static_cast<double>(v);
    double latency = static_cast<double>(m) * max_ms + result.bubbleMs;

    // Stage-boundary transfers: each micro-batch crosses every chunk
    // boundary once forward (activations) and once backward (their
    // gradients); interleaving multiplies the chunk count by v.
    if (pp > 1) {
        const double boundary_bytes =
            static_cast<double>(micro * config.seq * config.hidden) *
            static_cast<double>(dtypeBytes(DataType::Fp32));
        const double crossings =
            static_cast<double>(m) *
            static_cast<double>(pp * v - 1) * 2.0;
        latency += crossings * comms.sendRecvMs(boundary_bytes, link);
        result.commBytes += crossings * boundary_bytes;
    }

    // DP gradient all-reduce: buckets released through the last
    // micro-batch's backward pass overlap with it (backward is ~2/3 of
    // training compute); the trailing bucket is only ready at the end,
    // so it is always exposed. The stage groups reduce concurrently —
    // the iteration waits for the slowest.
    if (hybrid.dpDegree > 1) {
        double exposed_max = 0.0;
        double payload = 0.0;
        for (int s = 0; s < pp; ++s) {
            const double grad_bytes =
                hybridStageParameterCount(config, s, pp,
                                          hybrid.tpDegree) *
                4.0;
            payload += grad_bytes;
            const BucketedAllReduce cost = bucketedAllReduceMs(
                comms, grad_bytes, hybrid.ddp.bucketBytes,
                hybrid.dpDegree, link);
            const double window = hybrid.ddp.overlapEfficiency *
                                  (2.0 / 3.0) * stage_ms[s];
            const double exposed =
                cost.lastBucketMs +
                std::max(0.0,
                         cost.totalMs - cost.lastBucketMs - window);
            exposed_max = std::max(exposed_max, exposed);
        }
        latency += exposed_max;
        result.exposedDdpMs = exposed_max;
        result.commBytes += payload;
    }

    result.latencyMs = latency;
    return result;
}

namespace {

/** One (tp, pp, dp) factorization of the sweep with its bound. */
struct SweepFactor
{
    int tp = 1;
    int pp = 1;
    int dp = 1;
    double boundMs = 0.0;
};

} // namespace

std::vector<SweepEntry>
sweepStrategies(const graph::LatencyPredictor &predictor,
                const CollectiveModel &comms, const ServerConfig &server,
                const ModelConfig &config, uint64_t global_batch,
                const SweepOptions &options, SweepStats *stats)
{
    if (server.numGpus < 1)
        fatal("sweepStrategies: need at least one GPU");
    obs::Tracer &tracer = obs::Tracer::global();
    obs::TraceSpan sweep_span("dist.sweep", "dist", tracer);
    const int n = server.numGpus;
    const gpusim::GpuSpec &gpu = server.resolvedGpu();
    const double link = server.effectiveLinkGBps();

    StagePriceMemo memo_storage;
    StagePriceMemo *memo =
        options.reuseStagePrices ? &memo_storage : nullptr;
    SweepStats accounting;

    // Every (tp, pp, dp) factorization of the GPU count whose structure
    // can work at all, screened through validateHybrid itself on the
    // least-constrained grid point (one micro-batch, 1F1B, no
    // recompute) so this pre-filter can never drift stricter or looser
    // than the per-point validation.
    const auto viable = [&](int tp, int pp, int dp) {
        HybridConfig probe;
        probe.tpDegree = tp;
        probe.ppDegree = pp;
        probe.dpDegree = dp;
        probe.numMicroBatches = 1;
        probe.schedule = PipelineSchedule::OneFOneB;
        probe.ddp = options.ddp;
        return validateHybrid(config, server, global_batch, probe)
            .empty();
    };
    std::vector<SweepFactor> factors;
    for (int tp = 1; tp <= n; ++tp) {
        if (n % tp != 0)
            continue;
        for (int pp = 1; pp <= n / tp; ++pp) {
            if ((n / tp) % pp != 0)
                continue;
            const int dp = n / (tp * pp);
            if (viable(tp, pp, dp))
                factors.push_back({tp, pp, dp, 0.0});
        }
    }
    accounting.factorizations = factors.size();

    // The candidate grid of one factorization, pre-screened through
    // validateHybrid().
    const auto gridFor = [&](const SweepFactor &f) {
        std::vector<PipelineSchedule> schedules;
        if (f.pp == 1) {
            // Without a pipeline, micro-batching is gradient
            // accumulation: no bubble to amortize, but the 1F1B
            // stash (one micro-batch in flight) still shrinks the
            // activation footprint m-fold, so larger m can admit
            // configurations the full batch cannot fit. Only the
            // GPipe/1F1B distinction is moot — accumulation frees
            // each micro-batch's activations after its backward.
            schedules = {PipelineSchedule::OneFOneB};
        } else {
            schedules = {PipelineSchedule::GPipe,
                         PipelineSchedule::OneFOneB};
            if (options.tryInterleaved &&
                options.virtualStagesPerGpu >= 2 &&
                static_cast<uint64_t>(f.pp) *
                        static_cast<uint64_t>(
                            options.virtualStagesPerGpu) <=
                    config.numLayers)
                schedules.push_back(PipelineSchedule::Interleaved1F1B);
            // Zero-bubble candidates only when the installed pricer
            // can value them (the closed form cannot; at pp = 1 the
            // schedule degenerates to 1F1B and adds nothing).
            if (options.includeZeroBubble && options.pointEvaluator)
                schedules.push_back(PipelineSchedule::ZeroBubble);
        }
        std::vector<HybridConfig> grid;
        for (int micro_count : options.microBatchCandidates) {
            for (PipelineSchedule schedule : schedules) {
                for (int rec = 0; rec < (options.tryRecompute ? 2 : 1);
                     ++rec) {
                    HybridConfig hy;
                    hy.tpDegree = f.tp;
                    hy.ppDegree = f.pp;
                    hy.dpDegree = f.dp;
                    hy.numMicroBatches = micro_count;
                    hy.schedule = schedule;
                    hy.virtualStagesPerGpu = options.virtualStagesPerGpu;
                    hy.recomputeActivations = rec == 1;
                    hy.ddp = options.ddp;
                    if (validateHybrid(config, server, global_batch, hy)
                            .empty())
                        grid.push_back(hy);
                }
            }
        }
        return grid;
    };

    const bool pruning = !options.exhaustive;
    if (pruning) {
        // Branch-and-bound lower bound per factorization: the full
        // per-replica batch must flow through the slowest stage M
        // times, and stage compute (plus the mandatory TP collectives)
        // is subadditive in the micro-batch size — splitting a batch
        // never makes its total cheaper — so no micro-batch count,
        // schedule, or recompute setting beats the whole TP-sharded
        // model priced at the full per-replica batch, divided by the
        // stage count. The one-stage graph here both bounds the grid
        // and seeds the memo (it is the m = 1 stage of tp x dp plans).
        for (SweepFactor &f : factors) {
            const uint64_t per_replica =
                global_batch / static_cast<uint64_t>(f.dp);
            f.boundMs = pricedStage(predictor, comms, gpu, link, config,
                                    per_replica, f.tp, /*stage=*/0,
                                    /*num_stages=*/1, /*training=*/true,
                                    memo)
                            .totalMs /
                        static_cast<double>(f.pp);
        }
        // Most promising first: tight thresholds arrive early.
        std::stable_sort(factors.begin(), factors.end(),
                         [](const SweepFactor &a, const SweepFactor &b) {
                             return a.boundMs < b.boundMs;
                         });
    }

    const size_t keep_top =
        static_cast<size_t>(std::max(1, options.keepTop));
    std::vector<SweepEntry> out;
    // The keepTop-th best latency found so far: the prune threshold.
    const auto pruneThresholdMs = [&] {
        if (out.size() < keep_top)
            return std::numeric_limits<double>::infinity();
        std::vector<double> lat;
        lat.reserve(out.size());
        for (const SweepEntry &e : out)
            lat.push_back(e.result.latencyMs);
        std::nth_element(lat.begin(), lat.begin() + (keep_top - 1),
                         lat.end());
        return lat[keep_top - 1];
    };

    for (const SweepFactor &f : factors) {
        // One span per factorization; pruning shows up as a span that
        // ends right after the bound check.
        obs::TraceSpan factor_span(
            tracer.enabled()
                ? "dist.factor.tp" + std::to_string(f.tp) + ".pp" +
                      std::to_string(f.pp) + ".dp" + std::to_string(f.dp)
                : std::string(),
            "dist", tracer);
        const std::vector<HybridConfig> grid = gridFor(f);
        if (grid.empty())
            continue;
        const bool baseline =
            options.keepSingleAxisBaselines &&
            (f.tp > 1) + (f.pp > 1) + (f.dp > 1) <= 1;
        const double cutoff =
            pruneThresholdMs() * (1.0 + options.boundSlack);
        if (pruning && !baseline && f.boundMs > cutoff) {
            ++accounting.prunedFactorizations;
            accounting.skippedPoints += grid.size();
            if (tracer.enabled())
                tracer.add("dist.prune.factorization", "dist",
                           tracer.nowUs(), 0.0, 1);
            continue;
        }

        // Second cut level, per micro-batch row: the iteration runs the
        // slowest stage m times and the stage graphs partition the full
        // model's nodes, so latency >= m x price(model at the row's
        // micro size) / pp by arithmetic alone (no subadditivity
        // assumption). Wave quantization makes small micro-batches
        // expensive, so this is the bound that bites on deep grids.
        std::vector<HybridConfig> surviving;
        surviving.reserve(grid.size());
        if (pruning && !baseline) {
            const uint64_t per_replica =
                global_batch / static_cast<uint64_t>(f.dp);
            for (size_t i = 0; i < grid.size();) {
                size_t row_end = i;
                while (row_end < grid.size() &&
                       grid[row_end].numMicroBatches ==
                           grid[i].numMicroBatches)
                    ++row_end;
                const uint64_t m =
                    static_cast<uint64_t>(grid[i].numMicroBatches);
                const double row_bound =
                    pricedStage(predictor, comms, gpu, link, config,
                                per_replica / m, f.tp, /*stage=*/0,
                                /*num_stages=*/1, /*training=*/true,
                                memo)
                        .totalMs *
                    static_cast<double>(m) / static_cast<double>(f.pp);
                if (row_bound > cutoff) {
                    ++accounting.prunedMicroRows;
                    accounting.skippedPoints += row_end - i;
                    if (tracer.enabled())
                        tracer.add("dist.prune.micro_row", "dist",
                                   tracer.nowUs(), 0.0, 2);
                    i = row_end;
                    continue;
                }
                // Recompute points additionally pay the mandatory
                // forward replay of every micro-batch.
                double replay_bound = -1.0;
                for (size_t p = i; p < row_end; ++p) {
                    if (grid[p].recomputeActivations) {
                        if (replay_bound < 0.0)
                            replay_bound =
                                pricedStage(predictor, comms, gpu, link,
                                            config, per_replica / m,
                                            f.tp, /*stage=*/0,
                                            /*num_stages=*/1,
                                            /*training=*/false, memo)
                                    .totalMs *
                                static_cast<double>(m) /
                                static_cast<double>(f.pp);
                        if (row_bound + replay_bound > cutoff) {
                            ++accounting.skippedPoints;
                            continue;
                        }
                    }
                    surviving.push_back(grid[p]);
                }
                i = row_end;
            }
        } else {
            surviving = grid;
        }
        if (surviving.empty())
            continue;

        // Evaluate the surviving points on the thread pool; the memo
        // and an attached kernel-prediction cache are both thread-safe,
        // and results land in per-index slots so the outcome does not
        // depend on scheduling.
        std::vector<HybridResult> results(surviving.size());
        parallelFor(surviving.size(), options.threads, [&](size_t i) {
            results[i] =
                options.pointEvaluator
                    ? options.pointEvaluator(surviving[i], memo)
                    : hybridTrainingMs(predictor, comms, server, config,
                                       global_batch, surviving[i], memo);
        });
        accounting.evaluatedPoints += surviving.size();
        const SweepEngine engine = options.pointEvaluator
                                       ? SweepEngine::Simulator
                                       : SweepEngine::ClosedForm;
        for (size_t i = 0; i < surviving.size(); ++i)
            if (!results[i].oom)
                out.push_back({surviving[i], results[i], engine});
    }

    accounting.stagePriceHits = memo_storage.hits();
    accounting.stagePriceMisses = memo_storage.misses();
    if (stats != nullptr)
        *stats = accounting;
    if (options.metrics) {
        // One increment batch per call: SweepStats stays the per-call
        // view, the registry accumulates across calls — both fed from
        // the same accounting, so they cannot drift.
        obs::MetricsRegistry &reg = *options.metrics;
        reg.counter("sweep.factorizations")
            ->inc(accounting.factorizations);
        reg.counter("sweep.pruned_factorizations")
            ->inc(accounting.prunedFactorizations);
        reg.counter("sweep.pruned_micro_rows")
            ->inc(accounting.prunedMicroRows);
        reg.counter("sweep.evaluated_points")
            ->inc(accounting.evaluatedPoints);
        reg.counter("sweep.skipped_points")
            ->inc(accounting.skippedPoints);
        reg.counter("sweep.stage_price_hits")
            ->inc(accounting.stagePriceHits);
        reg.counter("sweep.stage_price_misses")
            ->inc(accounting.stagePriceMisses);
    }
    std::stable_sort(
        out.begin(), out.end(),
        [](const SweepEntry &a, const SweepEntry &b) {
            if (a.result.latencyMs != b.result.latencyMs)
                return a.result.latencyMs < b.result.latencyMs;
            // Ties break toward simpler configurations: fewer active
            // axes, no recompute, then the smaller degree tuple.
            const int aa = a.config.activeAxes();
            const int bb = b.config.activeAxes();
            if (aa != bb)
                return aa < bb;
            if (a.config.recomputeActivations !=
                b.config.recomputeActivations)
                return !a.config.recomputeActivations;
            if (a.config.tpDegree != b.config.tpDegree)
                return a.config.tpDegree < b.config.tpDegree;
            if (a.config.ppDegree != b.config.ppDegree)
                return a.config.ppDegree < b.config.ppDegree;
            if (a.config.numMicroBatches != b.config.numMicroBatches)
                return a.config.numMicroBatches <
                       b.config.numMicroBatches;
            return static_cast<int>(a.config.schedule) <
                   static_cast<int>(b.config.schedule);
        });
    return out;
}

const SweepEntry *
bestSingleAxisEntry(const std::vector<SweepEntry> &entries)
{
    // Entries are ranked fastest-first: the first single-axis hit wins.
    for (const SweepEntry &e : entries)
        if (e.config.activeAxes() <= 1)
            return &e;
    return nullptr;
}

DistributedResult
distributedTrainingMs(const graph::LatencyPredictor &predictor,
                      const CollectiveModel &comms,
                      const ServerConfig &server, const ModelConfig &config,
                      uint64_t global_batch, Parallelism strategy)
{
    if (server.numGpus < 1)
        fatal("distributedTrainingMs: need at least one GPU");
    const gpusim::GpuSpec &gpu = server.resolvedGpu();
    const double link = server.effectiveLinkGBps();

    DistributedResult result;
    switch (strategy) {
      case Parallelism::Data: {
        const uint64_t per_gpu =
            global_batch / static_cast<uint64_t>(server.numGpus);
        const KernelGraph g =
            buildDataParallelGraph(config, global_batch, server.numGpus);
        if (graph::modelMemoryBytes(config, per_gpu, true) >
            gpu.memBytes()) {
            result.oom = true;
            return result;
        }
        result.latencyMs = predictor.predictGraphMs(g, gpu) +
                           commCostMs(g, comms, server.numGpus, link);
        result.commBytes = g.totalCommBytes();
        return result;
      }
      case Parallelism::Tensor: {
        const KernelGraph g = buildTensorParallelGraph(
            config, global_batch, server.numGpus, true);
        if (tensorParallelMemoryBytes(config, global_batch,
                                      server.numGpus) > gpu.memBytes()) {
            result.oom = true;
            return result;
        }
        result.latencyMs = predictor.predictGraphMs(g, gpu) +
                           commCostMs(g, comms, server.numGpus, link);
        result.commBytes = g.totalCommBytes();
        return result;
      }
      case Parallelism::Pipeline:
        // The paper's Table-8 configuration: a single micro-batch.
        return pipelineTrainingMs(predictor, comms, server, config,
                                  global_batch, PipelineConfig{});
    }
    panic("distributedTrainingMs: bad strategy");
}

DistributedResult
pipelineTrainingMs(const graph::LatencyPredictor &predictor,
                   const CollectiveModel &comms, const ServerConfig &server,
                   const ModelConfig &config, uint64_t global_batch,
                   const PipelineConfig &pipeline)
{
    // Death-tested precondition (dist_test): must abort, not throw.
    ensure(pipeline.numMicroBatches >= 1,
           "pipelineTrainingMs: micro-batch count must be positive");
    // This legacy Table-8 path models GPipe and plain 1F1B; the
    // interleaved schedule (bubble / v, virtual-stage stash) lives in
    // hybridTrainingMs. validateStrategy screens this for callers.
    ensure(pipeline.schedule != PipelineSchedule::Interleaved1F1B,
           "pipelineTrainingMs: interleaved 1F1B is modeled by the "
           "hybrid forecaster only");
    ensure(pipeline.schedule != PipelineSchedule::ZeroBubble,
           "pipelineTrainingMs: the zero-bubble schedule is priced by "
           "the discrete-event simulator only (sim::simulatePipeline)");
    if (server.numGpus < 1)
        fatal("pipelineTrainingMs: need at least one GPU");
    const uint64_t m = static_cast<uint64_t>(pipeline.numMicroBatches);
    if (global_batch == 0 || global_batch % m != 0)
        fatal("pipelineTrainingMs: global batch must split evenly into " +
              std::to_string(m) + " micro-batches");
    const uint64_t micro = global_batch / m;
    const int stages = server.numGpus;
    const gpusim::GpuSpec &gpu = server.resolvedGpu();
    const double link = server.effectiveLinkGBps();

    DistributedResult result;
    // The schedules differ in how many micro-batches of activations a
    // stage holds at once: GPipe stashes all M before the first backward;
    // non-interleaved 1F1B drains early and caps the stash at the stage
    // count.
    const double stash = scheduleStashMicroBatches(
        pipeline.schedule, pipeline.numMicroBatches, stages,
        /*virtual_stages=*/1);

    double sum_ms = 0.0;
    double max_ms = 0.0;
    for (int s = 0; s < stages; ++s) {
        const KernelGraph g =
            buildPipelineStageGraph(config, micro, s, stages, true);
        const auto [begin, end] =
            stageLayerRange(config.numLayers, s, stages);
        const double layers = static_cast<double>(end - begin);
        const double mem =
            optimizerStateBytes(stageParameterCount(config, s, stages)) +
            stash * layers *
                graph::savedActivationBytesPerLayer(config, micro);
        if (mem > gpu.memBytes()) {
            result.oom = true;
            return result;
        }
        const double ms = predictor.predictGraphMs(g, gpu);
        sum_ms += ms;
        max_ms = std::max(max_ms, ms);
    }

    // Both schedules fill the same M + S - 1 slots: fill/drain costs one
    // pass over every stage plus M - 1 extra turns of the slowest stage.
    double latency = sum_ms + static_cast<double>(m - 1) * max_ms;

    // Each micro-batch crosses every stage boundary once forward
    // (activations) and once backward (their gradients).
    const double boundary_bytes =
        static_cast<double>(micro * config.seq * config.hidden) *
        static_cast<double>(dtypeBytes(DataType::Fp32));
    const double crossings = static_cast<double>(m) *
                             static_cast<double>(stages - 1) * 2.0;
    latency += crossings * comms.sendRecvMs(boundary_bytes, link);

    result.latencyMs = latency;
    result.commBytes = crossings * boundary_bytes;
    return result;
}

double
MultiNodeConfig::fabricEfficiency(int nodes) const
{
    // Quadratic collapse past the knee: a hyperbolic decay in n keeps
    // falling visibly through the thousands-of-nodes range, but the
    // published Table-9 tail is nearly flat from 384 nodes on — the
    // fabric is already fully contended — so the decay must have
    // essentially reached the floor by then.
    const double n = static_cast<double>(std::max(nodes, 1));
    const double knee = (n - 1.0) / fabricSaturationNodes;
    return fabricFloorFraction +
           (1.0 - fabricFloorFraction) / (1.0 + knee * knee);
}

double
multiNodeIterationMs(const graph::LatencyPredictor &predictor,
                     const CollectiveModel &comms, const ModelConfig &config,
                     const gpusim::GpuSpec &gpu, int num_nodes,
                     const MultiNodeConfig &cfg)
{
    if (num_nodes < 1)
        fatal("multiNodeIterationMs: need at least one node");
    if (cfg.tpDegree < 1 || cfg.tpDegree > cfg.gpusPerNode)
        fatal("multiNodeIterationMs: tensor-parallel degree must fit in "
              "the node");

    // Inside the node: tensor parallelism over the NVLink-class fabric.
    const KernelGraph g = buildTensorParallelGraph(
        config, cfg.perNodeBatch, cfg.tpDegree, true);
    double total = predictor.predictGraphMs(g, gpu) +
                   commCostMs(g, comms, cfg.tpDegree, gpu.interconnectGBps);

    // Across nodes: data parallelism. Each TP rank all-reduces its
    // parameter shard with its peers over the cluster fabric, whose
    // achievable bandwidth decays with scale (fat-tree contention) until
    // the Table-9 plateau.
    if (num_nodes > 1) {
        const double grad_bytes =
            config.parameterCount() * 4.0 /
            static_cast<double>(cfg.tpDegree);
        const double fabric_gbps = cfg.interNodeGbps / 8.0 *
                                   cfg.fabricEfficiency(num_nodes);
        total += comms.allReduceMs(grad_bytes, num_nodes, fabric_gbps);
    }
    return total;
}

} // namespace neusight::dist
