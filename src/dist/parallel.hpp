/**
 * @file
 * Distributed-training forecasting (paper Section 5.1): graph transforms
 * that turn a single-GPU kernel graph into the per-GPU graph of a data-,
 * tensor-, or pipeline-parallel execution, plus the orchestration that
 * combines a latency predictor with a collective cost model into an
 * end-to-end iteration forecast — including the out-of-memory screening
 * of the paper's tables, micro-batched pipeline schedules (GPipe and
 * 1F1B), and the multi-node hierarchy of Table 9.
 */

#ifndef NEUSIGHT_DIST_PARALLEL_HPP
#define NEUSIGHT_DIST_PARALLEL_HPP

#include <string>

#include "dist/collective.hpp"
#include "graph/latency_predictor.hpp"
#include "graph/models.hpp"
#include "gpusim/gpu_spec.hpp"

namespace neusight::dist {

/** A homogeneous multi-GPU server. */
struct ServerConfig
{
    /** Identity of the box; seeds SimCollectives' hidden behaviour. */
    std::string systemName = "server";
    /** GPU model name, resolved through gpusim::findGpu(). */
    std::string gpuName = "A100-40GB";
    int numGpus = 4;
    /** Peak GPU-to-GPU bandwidth in GB/s; 0 means "use the GPU spec". */
    double linkGBps = 0.0;

    /**
     * Pin an explicit GPU spec: distributed forecasts then use it
     * directly instead of resolving gpuName through the Table-4
     * database, so JSON-defined hypothetical GPUs (gpusim::resolveGpu,
     * the paper's Blackwell scenario) work in distributed forecasts.
     * Also updates gpuName for display.
     */
    void setGpu(const gpusim::GpuSpec &spec);

    /** The pinned spec, or the database entry named by gpuName. */
    const gpusim::GpuSpec &resolvedGpu() const;

    /** The configured link bandwidth, or the GPU spec's when unset. */
    double effectiveLinkGBps() const;

  private:
    gpusim::GpuSpec gpuSpec;
    bool hasGpuSpec = false;
};

/** The three parallelization strategies of paper Table 8. */
enum class Parallelism
{
    Data,
    Tensor,
    Pipeline,
};

/** Display name, e.g. "Data Parallel". */
const char *parallelismName(Parallelism strategy);

/** Micro-batch execution orders for pipeline parallelism. */
enum class PipelineSchedule
{
    /** All forwards, then all backwards: stashes every micro-batch. */
    GPipe,
    /** One-forward-one-backward: stash capped at the stage count. */
    OneFOneB,
};

/** Display name, e.g. "GPipe". */
const char *pipelineScheduleName(PipelineSchedule schedule);

/** Micro-batching configuration for the pipeline forecaster. */
struct PipelineConfig
{
    /** Micro-batches per iteration; the global batch splits across them. */
    int numMicroBatches = 1;
    PipelineSchedule schedule = PipelineSchedule::GPipe;
};

/** Outcome of a distributed forecast: latency, or "does not fit". */
struct DistributedResult
{
    double latencyMs = 0.0;
    bool oom = false;
    /**
     * Summed payload bytes of the communication operations the forecast
     * priced: the per-GPU collectives of the DP/TP graph, or every
     * micro-batch stage-boundary transfer of the pipeline.
     */
    double commBytes = 0.0;
};

/**
 * Per-GPU kernel graph of a data-parallel training iteration: the local
 * training graph at batch @p global_batch / @p num_gpus plus one gradient
 * all-reduce of every parameter (Section 5.1).
 */
graph::KernelGraph
buildDataParallelGraph(const graph::ModelConfig &config,
                       uint64_t global_batch, int num_gpus,
                       gpusim::DataType dtype = gpusim::DataType::Fp32);

/**
 * Per-GPU kernel graph of a Megatron-style tensor-parallel execution at
 * degree @p tp_degree: attention heads and feed-forward width shard
 * across GPUs; embeddings, layer norms, residuals, and the head
 * replicate. Each layer all-reduces its attention and feed-forward
 * outputs in the forward pass, and the matching input gradients when
 * @p training — 2 (resp. 4) all-reduces per layer.
 */
graph::KernelGraph
buildTensorParallelGraph(const graph::ModelConfig &config, uint64_t batch,
                         int tp_degree, bool training,
                         gpusim::DataType dtype = gpusim::DataType::Fp32);

/**
 * Kernel graph of pipeline stage @p stage of @p num_stages at micro-batch
 * size @p micro_batch: a near-even slice of the layers, with the
 * embedding prologue on the first stage and the head epilogue on the
 * last.
 */
graph::KernelGraph
buildPipelineStageGraph(const graph::ModelConfig &config,
                        uint64_t micro_batch, int stage, int num_stages,
                        bool training = true,
                        gpusim::DataType dtype = gpusim::DataType::Fp32);

/**
 * Check the structural preconditions of running @p config at
 * @p global_batch on @p server under @p strategy (batch/head/width
 * divisibility, stages vs layers, micro-batch split). Returns an empty
 * string when the combination is valid, else a human-readable reason.
 * The forecast entry points enforce the same conditions by aborting or
 * throwing; callers with user-supplied configurations should screen
 * through this first.
 */
std::string
validateStrategy(const graph::ModelConfig &config,
                 const ServerConfig &server, uint64_t global_batch,
                 Parallelism strategy,
                 const PipelineConfig &pipeline = PipelineConfig{});

/**
 * Forecast one training iteration of @p config at @p global_batch on
 * @p server under @p strategy: per-GPU kernel latency through
 * @p predictor, collective latency through @p comms, with the paper's
 * out-of-memory screening. Pipeline parallelism runs a single
 * micro-batch (the paper's Table 8 configuration); use
 * pipelineTrainingMs() for micro-batched schedules.
 */
DistributedResult
distributedTrainingMs(const graph::LatencyPredictor &predictor,
                      const CollectiveModel &comms,
                      const ServerConfig &server,
                      const graph::ModelConfig &config,
                      uint64_t global_batch, Parallelism strategy);

/**
 * Micro-batched pipeline-parallel forecast with one stage per server
 * GPU. The global batch splits into @p pipeline.numMicroBatches
 * micro-batches filling M + S - 1 schedule slots (bubble fraction
 * (S-1)/(M+S-1)); GPipe and non-interleaved 1F1B share this latency and
 * differ in the activation stash the OOM screen charges (M vs min(M, S)
 * micro-batches).
 */
DistributedResult
pipelineTrainingMs(const graph::LatencyPredictor &predictor,
                   const CollectiveModel &comms, const ServerConfig &server,
                   const graph::ModelConfig &config, uint64_t global_batch,
                   const PipelineConfig &pipeline);

/** The Table-9 cluster hierarchy: TP inside a node, DP across nodes. */
struct MultiNodeConfig
{
    int gpusPerNode = 8;
    /** Tensor-parallel degree inside each node (must divide the heads). */
    int tpDegree = 8;
    uint64_t perNodeBatch = 8;
    /** Inter-node fabric bandwidth per node in Gbit/s (InfiniBand). */
    double interNodeGbps = 100.0;
    /**
     * Fat-tree contention: the achievable fraction of the fabric starts
     * at 1 on one node and collapses quadratically past the
     * @p fabricSaturationNodes knee toward @p fabricFloorFraction — the
     * Table-9 shape of one large jump to cluster scale followed by a
     * nearly flat tail. The defaults are calibrated so the GPT-3
     * forecast of bench/table09_multinode.cpp reproduces the paper's
     * published ~12 s plateau (12028 / 12136 / 12565 ms at 384 / 768 /
     * 3840 nodes) on 8 x H100 nodes over 100 Gbps InfiniBand.
     */
    double fabricFloorFraction = 0.023;
    double fabricSaturationNodes = 3.0;

    /** Achievable fraction of the nominal fabric bandwidth at @p nodes. */
    double fabricEfficiency(int nodes) const;
};

/**
 * Forecast one training iteration on @p num_nodes nodes of
 * @p cfg.gpusPerNode x @p gpu: tensor parallelism over the intra-node
 * link, data parallelism over the inter-node fabric (gradients already
 * sharded by TP), per-node batch @p cfg.perNodeBatch.
 */
double
multiNodeIterationMs(const graph::LatencyPredictor &predictor,
                     const CollectiveModel &comms,
                     const graph::ModelConfig &config,
                     const gpusim::GpuSpec &gpu, int num_nodes,
                     const MultiNodeConfig &cfg);

} // namespace neusight::dist

#endif // NEUSIGHT_DIST_PARALLEL_HPP
