/**
 * @file
 * Distributed-training forecasting (paper Section 5.1): graph transforms
 * that turn a single-GPU kernel graph into the per-GPU graph of a data-,
 * tensor-, or pipeline-parallel execution, plus the orchestration that
 * combines a latency predictor with a collective cost model into an
 * end-to-end iteration forecast — including the out-of-memory screening
 * of the paper's tables, micro-batched pipeline schedules (GPipe and
 * 1F1B), and the multi-node hierarchy of Table 9.
 */

#ifndef NEUSIGHT_DIST_PARALLEL_HPP
#define NEUSIGHT_DIST_PARALLEL_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "dist/collective.hpp"
#include "obs/metrics.hpp"
#include "graph/latency_predictor.hpp"
#include "graph/models.hpp"
#include "gpusim/gpu_spec.hpp"

namespace neusight::dist {

/** A homogeneous multi-GPU server. */
struct ServerConfig
{
    /** Identity of the box; seeds SimCollectives' hidden behaviour. */
    std::string systemName = "server";
    /** GPU model name, resolved through gpusim::findGpu(). */
    std::string gpuName = "A100-40GB";
    int numGpus = 4;
    /** Peak GPU-to-GPU bandwidth in GB/s; 0 means "use the GPU spec". */
    double linkGBps = 0.0;

    /**
     * Pin an explicit GPU spec: distributed forecasts then use it
     * directly instead of resolving gpuName through the Table-4
     * database, so JSON-defined hypothetical GPUs (gpusim::resolveGpu,
     * the paper's Blackwell scenario) work in distributed forecasts.
     * Also updates gpuName for display.
     */
    void setGpu(const gpusim::GpuSpec &spec);

    /** The pinned spec, or the database entry named by gpuName. */
    const gpusim::GpuSpec &resolvedGpu() const;

    /** The configured link bandwidth, or the GPU spec's when unset. */
    double effectiveLinkGBps() const;

  private:
    gpusim::GpuSpec gpuSpec;
    bool hasGpuSpec = false;
};

/** The three parallelization strategies of paper Table 8. */
enum class Parallelism
{
    Data,
    Tensor,
    Pipeline,
};

/** Display name, e.g. "Data Parallel". */
const char *parallelismName(Parallelism strategy);

/** Micro-batch execution orders for pipeline parallelism. */
enum class PipelineSchedule
{
    /** All forwards, then all backwards: stashes every micro-batch. */
    GPipe,
    /** One-forward-one-backward: stash capped at the stage count. */
    OneFOneB,
    /**
     * Megatron-style interleaved 1F1B: each GPU owns several
     * non-contiguous virtual stages (model chunks), shrinking the
     * fill/drain bubble by the chunk count at the price of a larger
     * activation stash and more stage-boundary transfers.
     */
    Interleaved1F1B,
    /**
     * Zero-bubble-style schedule (ZB-H1): the backward pass splits into
     * an input-gradient pass B (on the pipeline's critical path) and a
     * weight-gradient pass W (free to fill the drain bubble). No closed
     * form prices it — the discrete-event simulator
     * (sim::simulateHybrid) is the only forecaster for this schedule;
     * the closed-form entry points reject it as a precondition.
     */
    ZeroBubble,
};

/** Display name, e.g. "GPipe". */
const char *pipelineScheduleName(PipelineSchedule schedule);

/** Micro-batching configuration for the pipeline forecaster. */
struct PipelineConfig
{
    /** Micro-batches per iteration; the global batch splits across them. */
    int numMicroBatches = 1;
    PipelineSchedule schedule = PipelineSchedule::GPipe;
};

/** Outcome of a distributed forecast: latency, or "does not fit". */
struct DistributedResult
{
    double latencyMs = 0.0;
    bool oom = false;
    /**
     * Summed payload bytes of the communication operations the forecast
     * priced: the per-GPU collectives of the DP/TP graph, or every
     * micro-batch stage-boundary transfer of the pipeline.
     */
    double commBytes = 0.0;
};

/**
 * Per-GPU kernel graph of a data-parallel training iteration: the local
 * training graph at batch @p global_batch / @p num_gpus plus one gradient
 * all-reduce of every parameter (Section 5.1).
 */
graph::KernelGraph
buildDataParallelGraph(const graph::ModelConfig &config,
                       uint64_t global_batch, int num_gpus,
                       gpusim::DataType dtype = gpusim::DataType::Fp32);

/**
 * Per-GPU kernel graph of a Megatron-style tensor-parallel execution at
 * degree @p tp_degree: attention heads and feed-forward width shard
 * across GPUs; embeddings, layer norms, residuals, and the head
 * replicate. Each layer all-reduces its attention and feed-forward
 * outputs in the forward pass, and the matching input gradients when
 * @p training — 2 (resp. 4) all-reduces per layer.
 */
graph::KernelGraph
buildTensorParallelGraph(const graph::ModelConfig &config, uint64_t batch,
                         int tp_degree, bool training,
                         gpusim::DataType dtype = gpusim::DataType::Fp32);

/**
 * Kernel graph of pipeline stage @p stage of @p num_stages at micro-batch
 * size @p micro_batch: a near-even slice of the layers, with the
 * embedding prologue on the first stage and the head epilogue on the
 * last.
 */
graph::KernelGraph
buildPipelineStageGraph(const graph::ModelConfig &config,
                        uint64_t micro_batch, int stage, int num_stages,
                        bool training = true,
                        gpusim::DataType dtype = gpusim::DataType::Fp32);

/**
 * Check the structural preconditions of running @p config at
 * @p global_batch on @p server under @p strategy (batch/head/width
 * divisibility, stages vs layers, micro-batch split). Returns an empty
 * string when the combination is valid, else a human-readable reason.
 * The forecast entry points enforce the same conditions by aborting or
 * throwing; callers with user-supplied configurations should screen
 * through this first.
 */
std::string
validateStrategy(const graph::ModelConfig &config,
                 const ServerConfig &server, uint64_t global_batch,
                 Parallelism strategy,
                 const PipelineConfig &pipeline = PipelineConfig{});

/**
 * Forecast one training iteration of @p config at @p global_batch on
 * @p server under @p strategy: per-GPU kernel latency through
 * @p predictor, collective latency through @p comms, with the paper's
 * out-of-memory screening. Pipeline parallelism runs a single
 * micro-batch (the paper's Table 8 configuration); use
 * pipelineTrainingMs() for micro-batched schedules.
 */
DistributedResult
distributedTrainingMs(const graph::LatencyPredictor &predictor,
                      const CollectiveModel &comms,
                      const ServerConfig &server,
                      const graph::ModelConfig &config,
                      uint64_t global_batch, Parallelism strategy);

/**
 * Micro-batched pipeline-parallel forecast with one stage per server
 * GPU. The global batch splits into @p pipeline.numMicroBatches
 * micro-batches filling M + S - 1 schedule slots (bubble fraction
 * (S-1)/(M+S-1)); GPipe and non-interleaved 1F1B share this latency and
 * differ in the activation stash the OOM screen charges (M vs min(M, S)
 * micro-batches).
 */
DistributedResult
pipelineTrainingMs(const graph::LatencyPredictor &predictor,
                   const CollectiveModel &comms, const ServerConfig &server,
                   const graph::ModelConfig &config, uint64_t global_batch,
                   const PipelineConfig &pipeline);

/**
 * Bucketed data-parallel gradient all-reduce (PyTorch-DDP style): the
 * backward pass releases gradients bucket by bucket, so all but the
 * trailing bucket can overlap with backward compute.
 */
struct DdpOverlapConfig
{
    /** Gradient bucket size in bytes (PyTorch's default is 25 MiB). */
    double bucketBytes = 25.0 * 1024.0 * 1024.0;
    /**
     * Fraction of the backward-compute window usable to hide collective
     * traffic: below 1 because the all-reduce steals link/SM bandwidth
     * from the very kernels it hides behind.
     */
    double overlapEfficiency = 0.75;
};

/**
 * A composed TP x PP x DP execution of one training iteration
 * (Megatron-LM-style hybrid sharding): the kernel graph shards by
 * tpDegree first, the TP-sharded layers cut into ppDegree pipeline
 * stages, and dpDegree replicas of that grid each take 1/dp of the
 * global batch, all-reducing gradients with bucketed overlap. The three
 * degrees must multiply to the server's GPU count.
 */
struct HybridConfig
{
    int tpDegree = 1;
    int ppDegree = 1;
    int dpDegree = 1;
    /** Micro-batches per data-parallel replica (pipeline interleaving). */
    int numMicroBatches = 1;
    PipelineSchedule schedule = PipelineSchedule::OneFOneB;
    /** Model chunks per GPU; honored when schedule is Interleaved1F1B. */
    int virtualStagesPerGpu = 2;
    /**
     * Activation recomputation (gradient checkpointing): stash only each
     * layer's input and replay the forward during backward, trading
     * recompute FLOPs for stash memory in the OOM screen.
     */
    bool recomputeActivations = false;
    DdpOverlapConfig ddp;

    /** GPUs the strategy occupies: the product of the three degrees. */
    int totalGpus() const { return tpDegree * ppDegree * dpDegree; }

    /** Number of axes with degree > 1 (2+ means genuinely hybrid). */
    int activeAxes() const
    {
        return (tpDegree > 1) + (ppDegree > 1) + (dpDegree > 1);
    }

    /** Compact display form, e.g. "tp2 x pp2 x dp2". */
    std::string describe() const;
};

/** Outcome of a hybrid forecast, with the screened per-GPU footprint. */
struct HybridResult
{
    double latencyMs = 0.0;
    bool oom = false;
    /**
     * Summed payload bytes priced per iteration: TP activation
     * all-reduces of every micro-batch, pipeline boundary transfers, and
     * the bucketed DP gradient all-reduce.
     */
    double commBytes = 0.0;
    /** Peak resident bytes per GPU (the max over pipeline stages). */
    double memoryBytes = 0.0;
    /** Pipeline fill/drain cost in excess of the steady state. */
    double bubbleMs = 0.0;
    /** DP gradient all-reduce time not hidden under backward compute. */
    double exposedDdpMs = 0.0;
    /** Forward-replay time added by activation recomputation. */
    double recomputeMs = 0.0;
};

/**
 * Kernel graph of pipeline stage @p stage of @p num_stages with every
 * layer sharded at @p tp_degree: the TP transform of the stage's layer
 * range, embedding prologue on the first stage, head epilogue on the
 * last. With one stage this is exactly buildTensorParallelGraph().
 */
graph::KernelGraph
buildHybridStageGraph(const graph::ModelConfig &config,
                      uint64_t micro_batch, int tp_degree, int stage,
                      int num_stages, bool training = true,
                      gpusim::DataType dtype = gpusim::DataType::Fp32);

/**
 * Trainable parameters resident on one GPU of the (stage, tp-rank)
 * grid: the stage's block parameters shard by @p tp_degree; embedding
 * (first stage) and head (last stage) replicate across TP ranks. DP
 * replicates whole grids, so the per-GPU count is independent of the DP
 * degree. Summing tp * count over the stages recovers the model's total
 * parameter count plus (tp - 1) extra copies of the replicated tensors.
 */
double hybridStageParameterCount(const graph::ModelConfig &config,
                                 int stage, int pp_degree, int tp_degree);

/**
 * Peak resident bytes on one GPU of stage @p stage under @p hybrid at
 * per-replica micro-batch size @p micro_batch: optimizer state for the
 * stage's TP-sharded parameters, the schedule's activation stash
 * (GPipe: all M micro-batches; 1F1B: min(M, stages); interleaved:
 * larger than 1F1B by the virtual-stage factor, never beyond M), and
 * DDP bucket buffers. Recomputation shrinks the per-layer stash to the
 * layer-input checkpoint.
 */
double hybridStageMemoryBytes(const graph::ModelConfig &config,
                              uint64_t micro_batch, int stage,
                              const HybridConfig &hybrid);

/**
 * Structural preconditions of running @p config at @p global_batch on
 * @p server under @p hybrid: degrees multiply to the GPU count, TP
 * divides the model widths, stages fit the layers (times the virtual
 * factor when interleaved), and the batch splits evenly into replicas
 * and micro-batches. Empty string when valid, else the reason. The
 * forecast entry point aborts on the same conditions.
 */
std::string validateHybrid(const graph::ModelConfig &config,
                           const ServerConfig &server,
                           uint64_t global_batch,
                           const HybridConfig &hybrid);

/**
 * Thread-safe memo of priced pipeline-stage graphs, shared across the
 * forecasts of one strategy sweep. A stage's predicted latency (compute
 * plus its TP collectives) depends only on (tp, stages, stage index,
 * micro-batch size, training-vs-forward) — not on the DP degree, the
 * schedule, or the recompute flag — so the dozens of sweep points that
 * share a (tp, pp) split re-price the same handful of graphs. One memo
 * is valid for a single (predictor, collective model, server, model
 * config) tuple; sweepStrategies() owns one internally.
 */
class StagePriceMemo
{
  public:
    /** Price of one stage graph. */
    struct Price
    {
        /** Predicted compute + TP-collective latency, milliseconds. */
        double totalMs = 0.0;
        /** TP-collective payload bytes of the graph. */
        double commBytes = 0.0;
    };

    /** Find @p key; on a hit copy the entry to @p out, return true. */
    bool lookup(const std::string &key, Price &out) const;

    /** Insert (or refresh) @p key. */
    void insert(const std::string &key, const Price &price);

    /** Lookups served from the memo. */
    uint64_t hits() const;

    /** Lookups that had to price a graph. */
    uint64_t misses() const;

  private:
    mutable std::mutex mutex;
    std::unordered_map<std::string, Price> entries;
    mutable uint64_t hitCount = 0;
    mutable uint64_t missCount = 0;
};

/**
 * Forecast one training iteration of @p config at @p global_batch on
 * @p server under the composed strategy @p hybrid: per-GPU stage
 * latency through @p predictor (TP collectives priced per micro-batch),
 * the pipeline bubble of the schedule, boundary send-recvs, and the DP
 * gradient all-reduce overlapped bucket-by-bucket against the last
 * micro-batch's backward pass — with the per-stage OOM screen of
 * hybridStageMemoryBytes(). Degenerate degrees recover the single-axis
 * forecasts (tp = N: buildTensorParallelGraph's latency exactly).
 * With @p memo, stage-graph prices are read from (and inserted into)
 * the memo instead of re-predicted — the cross-point reuse of the
 * strategy sweep.
 */
HybridResult
hybridTrainingMs(const graph::LatencyPredictor &predictor,
                 const CollectiveModel &comms, const ServerConfig &server,
                 const graph::ModelConfig &config, uint64_t global_batch,
                 const HybridConfig &hybrid,
                 StagePriceMemo *memo = nullptr);

/**
 * Per-stage price vectors of one hybrid configuration at micro-batch
 * size @p micro_batch: exactly the numbers hybridTrainingMs() folds
 * into its latency formula, exposed so alternative schedule pricers
 * (the discrete-event simulator) work from bit-identical stage costs.
 * replayMs/replayCommBytes are zero-filled unless
 * @p hybrid.recomputeActivations.
 */
struct HybridStagePrices
{
    /** Predicted stage latency incl. TP collectives, per stage. */
    std::vector<double> trainMs;
    /** Forward-replay latency of activation recomputation, per stage. */
    std::vector<double> replayMs;
    /** TP-collective payload of the training graph, per stage. */
    std::vector<double> trainCommBytes;
    /** TP-collective payload of the replay graph, per stage. */
    std::vector<double> replayCommBytes;
};

HybridStagePrices
hybridStagePrices(const graph::LatencyPredictor &predictor,
                  const CollectiveModel &comms, const ServerConfig &server,
                  const graph::ModelConfig &config, uint64_t micro_batch,
                  const HybridConfig &hybrid,
                  StagePriceMemo *memo = nullptr);

/** Cost split of a bucketed DDP gradient all-reduce. */
struct DdpAllReduceCost
{
    /** Sum over every bucket. */
    double totalMs = 0.0;
    /** The trailing bucket, which can never hide under backward. */
    double lastBucketMs = 0.0;
};

/**
 * Bucketed ring all-reduce of @p bytes across @p group peers — the DDP
 * cost model hybridTrainingMs() overlaps against the backward window,
 * exposed for the simulator's collective tasks.
 */
DdpAllReduceCost
ddpAllReduceCost(const CollectiveModel &comms, double bytes,
                 double bucket_bytes, int group, double link_gbps);

/** Which forecaster priced a sweep entry. */
enum class SweepEngine
{
    /** The algebraic pipeline model (hybridTrainingMs). */
    ClosedForm,
    /** The discrete-event simulator (sim::simulateHybrid). */
    Simulator,
};

/** Wire/JSON name: "closed_form" or "sim". */
const char *sweepEngineName(SweepEngine engine);

/** Search space and execution policy of sweepStrategies(). */
struct SweepOptions
{
    /** Micro-batch counts to try for pipelined strategies. */
    std::vector<int> microBatchCandidates = {1, 2, 4, 8, 16, 32};
    /** Also try each configuration with activation recomputation. */
    bool tryRecompute = true;
    /** Include the interleaved schedule (when stages permit). */
    bool tryInterleaved = true;
    /** Virtual stages per GPU for interleaved candidates. */
    int virtualStagesPerGpu = 2;
    DdpOverlapConfig ddp;

    /**
     * Evaluate every runnable grid point, disabling branch-and-bound
     * pruning — the escape hatch for auditing the full space (it is
     * what `neusight-distributed --sweep --exhaustive` sets). The
     * pruned default returns the identical winner and the identical
     * top-@ref keepTop ranking prefix, just without the entries that
     * provably cannot reach that prefix.
     */
    bool exhaustive = false;

    /**
     * Depth of the ranking prefix the pruned sweep preserves exactly: a
     * factorization is pruned only when its lower bound exceeds the
     * keepTop-th best latency found so far, so any pruned point is
     * strictly slower than keepTop surviving plans.
     */
    int keepTop = 10;

    /**
     * Safety slack on the branch-and-bound cut: prune only when the
     * bound exceeds the threshold by this fraction. The compute bound
     * assumes stage latency is subadditive in the micro-batch size
     * (splitting a batch never makes the total cheaper), which the
     * learned predictor honors almost everywhere; the slack absorbs
     * the residual nonlinearity.
     */
    double boundSlack = 0.05;

    /**
     * Never prune the pure-TP / pure-PP / pure-DP factorizations, so
     * the ranked result always carries the single-axis baselines that
     * bestSingleAxisEntry() and the Table-8 benches compare against.
     */
    bool keepSingleAxisBaselines = true;

    /**
     * Worker threads evaluating surviving grid points (0 = one per
     * hardware thread, 1 = serial). The predictor must be safe for
     * concurrent const use — trained NeuSight and the simulator oracle
     * both are.
     */
    int threads = 0;

    /** Share priced stage graphs across sweep points (StagePriceMemo). */
    bool reuseStagePrices = true;

    /**
     * Registry receiving the sweep.* counters (factorizations, prune
     * and memo accounting — the same values SweepStats reports),
     * incremented once at the end of each sweepStrategies() call.
     * Null disables registry reporting; the ForecastEngine passes its
     * own registry here.
     */
    std::shared_ptr<obs::MetricsRegistry> metrics;

    /**
     * Alternative point pricer: when set, every surviving grid point is
     * evaluated through this callable instead of hybridTrainingMs()
     * (the simulator's sweep arm installs sim::simulateHybrid here via
     * sim::simulatorSweepOptions). The branch-and-bound cuts stay sound
     * for any pricer that never beats m x (slowest stage) — true of the
     * simulator, whose bottleneck GPU is busy at least that long. The
     * memo argument is the sweep's shared StagePriceMemo (may be null).
     */
    std::function<HybridResult(const HybridConfig &, StagePriceMemo *)>
        pointEvaluator;

    /**
     * Add zero-bubble candidates to pipelined factorizations. Honored
     * only alongside a @ref pointEvaluator that can price them — the
     * closed-form default cannot, and ignores this flag.
     */
    bool includeZeroBubble = false;
};

/** One surviving point of the strategy sweep. */
struct SweepEntry
{
    HybridConfig config;
    HybridResult result;
    /** Which forecaster produced @ref result. */
    SweepEngine engine = SweepEngine::ClosedForm;
};

/** Work accounting of one sweepStrategies() call. */
struct SweepStats
{
    /** (tp, pp, dp) factorizations of the GPU count. */
    size_t factorizations = 0;
    /** Factorizations whose whole grid the bound eliminated. */
    size_t prunedFactorizations = 0;
    /** Micro-batch rows the per-m bound eliminated inside survivors. */
    size_t prunedMicroRows = 0;
    /** Grid points priced through hybridTrainingMs. */
    size_t evaluatedPoints = 0;
    /** Valid grid points skipped by either pruning level. */
    size_t skippedPoints = 0;
    /** Stage-graph prices served from the cross-point memo. */
    uint64_t stagePriceHits = 0;
    /** Stage-graph prices computed through the predictor. */
    uint64_t stagePriceMisses = 0;
};

/**
 * Strategy search: every (tp, pp, dp) factorization of the server's
 * GPU count, crossed with the micro-batch counts, schedules, and
 * recomputation settings of @p options, screened through
 * validateHybrid() and the OOM check, and ranked by forecast iteration
 * time (ties broken toward simpler configurations). Entries that fail
 * validation or do not fit are dropped — the returned list contains
 * only runnable configurations, fastest first. Micro-batching is swept
 * for non-pipelined splits too (gradient accumulation: the in-flight
 * stash shrinks m-fold, which can admit plans the full batch cannot
 * fit), with the schedule pinned to 1F1B since GPipe-vs-1F1B only
 * distinguishes pipeline stash behaviour.
 *
 * By default the search is branch-and-bound with two cut levels. Per
 * (tp, pp, dp) factorization: a compute-plus-TP-collective lower bound
 * — the full per-replica batch through the whole TP-sharded model,
 * divided by the stage count, which no micro-batch count, schedule, or
 * recompute setting can beat — skips whole grids (bounds are processed
 * most-promising first). Inside surviving grids, each micro-batch row
 * gets the tighter bound m x price(model at the row's micro size) / pp:
 * the iteration runs the slowest stage m times and the stage graphs
 * partition the model's nodes exactly, so the bound holds by
 * arithmetic alone — this is the cut that bites on deep micro-batch
 * grids, where wave quantization makes small micro-batches expensive.
 * Both levels prune against the keepTop-th best latency found so far.
 * Surviving points evaluate on a thread pool with stage-graph prices
 * shared through a StagePriceMemo. Set options.exhaustive to audit the
 * full space; @p stats, when given, reports how much work the bounds
 * and the memo saved.
 */
std::vector<SweepEntry>
sweepStrategies(const graph::LatencyPredictor &predictor,
                const CollectiveModel &comms, const ServerConfig &server,
                const graph::ModelConfig &config, uint64_t global_batch,
                const SweepOptions &options = SweepOptions{},
                SweepStats *stats = nullptr);

/**
 * The fastest single-axis (pure TP, pure PP, or pure DP) entry of a
 * ranked sweep, or nullptr when every runnable plan is hybrid. The
 * pointer aliases @p entries.
 */
const SweepEntry *
bestSingleAxisEntry(const std::vector<SweepEntry> &entries);

/** The Table-9 cluster hierarchy: TP inside a node, DP across nodes. */
struct MultiNodeConfig
{
    int gpusPerNode = 8;
    /** Tensor-parallel degree inside each node (must divide the heads). */
    int tpDegree = 8;
    uint64_t perNodeBatch = 8;
    /** Inter-node fabric bandwidth per node in Gbit/s (InfiniBand). */
    double interNodeGbps = 100.0;
    /**
     * Fat-tree contention: the achievable fraction of the fabric starts
     * at 1 on one node and collapses quadratically past the
     * @p fabricSaturationNodes knee toward @p fabricFloorFraction — the
     * Table-9 shape of one large jump to cluster scale followed by a
     * nearly flat tail. The defaults are calibrated so the GPT-3
     * forecast of bench/table09_multinode.cpp reproduces the paper's
     * published ~12 s plateau (12028 / 12136 / 12565 ms at 384 / 768 /
     * 3840 nodes) on 8 x H100 nodes over 100 Gbps InfiniBand.
     */
    double fabricFloorFraction = 0.023;
    double fabricSaturationNodes = 3.0;

    /** Achievable fraction of the nominal fabric bandwidth at @p nodes. */
    double fabricEfficiency(int nodes) const;
};

/**
 * Forecast one training iteration on @p num_nodes nodes of
 * @p cfg.gpusPerNode x @p gpu: tensor parallelism over the intra-node
 * link, data parallelism over the inter-node fabric (gradients already
 * sharded by TP), per-node batch @p cfg.perNodeBatch.
 */
double
multiNodeIterationMs(const graph::LatencyPredictor &predictor,
                     const CollectiveModel &comms,
                     const graph::ModelConfig &config,
                     const gpusim::GpuSpec &gpu, int num_nodes,
                     const MultiNodeConfig &cfg);

} // namespace neusight::dist

#endif // NEUSIGHT_DIST_PARALLEL_HPP
