/**
 * @file
 * Collective-communication cost models for multi-GPU forecasting
 * (paper Section 5.1). SimCollectives is the measurement substrate: the
 * ground-truth cost of a ring all-reduce / stage-to-stage send-recv on a
 * concrete server, including hidden per-system behaviour (hop latency,
 * link-utilization curve) a predictor cannot read from a spec sheet.
 * EstimatedCollectives is NeuSight's side of the methodology: it profiles
 * the one reference system that is in hand, recovers the hop latency and
 * the utilization-vs-message-size curve from those measurements alone,
 * and transfers them to servers it has never touched by rescaling to the
 * target's published peak link bandwidth.
 */

#ifndef NEUSIGHT_DIST_COLLECTIVE_HPP
#define NEUSIGHT_DIST_COLLECTIVE_HPP

#include <string>
#include <vector>

namespace neusight::dist {

/** Cost model for the collectives the parallelism transforms emit. */
class CollectiveModel
{
  public:
    virtual ~CollectiveModel() = default;

    /**
     * Ring all-reduce of @p bytes across @p num_gpus peers connected by
     * links of @p link_gbps peak bandwidth, in milliseconds. Zero when
     * there is nothing to reduce or only one participant.
     */
    virtual double allReduceMs(double bytes, int num_gpus,
                               double link_gbps) const = 0;

    /** Point-to-point transfer of @p bytes over one link, in ms. */
    virtual double sendRecvMs(double bytes, double link_gbps) const = 0;
};

/**
 * Ground-truth collective cost on a named server. The system name seeds
 * the hidden behavioural parameters (per-hop launch/synchronization
 * latency and the link-utilization saturation curve), so two servers
 * with the same nominal link bandwidth still differ — exactly the
 * residual the estimator has to absorb when it transfers.
 */
class SimCollectives : public CollectiveModel
{
  public:
    /** @param system_name server identity, e.g. "A100-NVLink". */
    explicit SimCollectives(const std::string &system_name);

    double allReduceMs(double bytes, int num_gpus,
                       double link_gbps) const override;
    double sendRecvMs(double bytes, double link_gbps) const override;

    /** Hidden achieved fraction of peak for a message of @p bytes. */
    double linkUtilization(double bytes) const;

    /** Hidden per-hop latency in milliseconds. */
    double hopLatencyMs() const { return hopMs; }

  private:
    std::string systemName;
    double hopMs = 0.0;          // Per-hop latency.
    double maxUtilization = 0.0; // Saturated fraction of peak bandwidth.
    double halfSatBytes = 0.0;   // Message size reaching half of that.
};

/**
 * Calibrated collective estimator (Section 5.1): measures ring
 * all-reduces of two group sizes on the reference system, solves for the
 * per-hop latency and the utilization curve, and predicts any (message
 * size, group size, link bandwidth) triple from those two quantities.
 * Applied to a different system, the error is the hidden per-system
 * residual — small, because utilization curves are shaped by the ring
 * algorithm more than by the fabric.
 */
class EstimatedCollectives : public CollectiveModel
{
  public:
    /**
     * @param reference_system name of the in-hand server to calibrate on.
     * @param reference_link_gbps its peak per-link bandwidth in GB/s.
     */
    EstimatedCollectives(const std::string &reference_system,
                         double reference_link_gbps);

    double allReduceMs(double bytes, int num_gpus,
                       double link_gbps) const override;
    double sendRecvMs(double bytes, double link_gbps) const override;

    /** Utilization recovered from calibration, interpolated at @p bytes. */
    double linkUtilization(double bytes) const;

  private:
    double hopMs = 0.0;
    /** Piecewise-linear utilization curve over log(message bytes). */
    std::vector<double> logBytesGrid;
    std::vector<double> utilizationGrid;
};

} // namespace neusight::dist

#endif // NEUSIGHT_DIST_COLLECTIVE_HPP
