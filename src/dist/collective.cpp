#include "dist/collective.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/logging.hpp"

namespace neusight::dist {

namespace {

/** FNV-1a hash of the system name: seeds the hidden parameters. */
uint64_t
fnv1a(const std::string &text)
{
    uint64_t hash = 14695981039346656037ull;
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 1099511628211ull;
    }
    return hash;
}

/** The @p index-th deterministic uniform draw in [0, 1) for @p name. */
double
systemDraw(const std::string &name, int index)
{
    const uint64_t h = fnv1a(name + "#" + std::to_string(index));
    return static_cast<double>(h % 1000003ull) / 1000003.0;
}

/**
 * Time to move @p bytes over a @p link_gbps link running at utilization
 * @p util, in milliseconds.
 */
double
transferMs(double bytes, double link_gbps, double util)
{
    return bytes / (link_gbps * 1e9 * util) * 1e3;
}

/** Ring all-reduce structure shared by the simulator and the estimator. */
double
ringAllReduceMs(double bytes, int num_gpus, double link_gbps, double hop_ms,
                double util)
{
    if (bytes <= 0.0 || num_gpus <= 1)
        return 0.0;
    ensure(link_gbps > 0.0, "ringAllReduceMs: link bandwidth must be > 0");
    // Reduce-scatter + all-gather: 2(n-1) steps; each GPU cycles the full
    // payload through its link once per phase, (n-1)/n of it per phase.
    const double n = static_cast<double>(num_gpus);
    const double steps = 2.0 * (n - 1.0);
    return steps * hop_ms +
           transferMs(2.0 * (n - 1.0) / n * bytes, link_gbps, util);
}

} // namespace

SimCollectives::SimCollectives(const std::string &system_name)
    : systemName(system_name)
{
    // Hidden per-system behaviour, deterministic in the name: hop latency
    // 6-10 us, saturated utilization 78-90% of peak, half-saturation
    // message size 6-10 MB.
    hopMs = 0.006 + 0.004 * systemDraw(system_name, 0);
    maxUtilization = 0.78 + 0.12 * systemDraw(system_name, 1);
    halfSatBytes = 6e6 + 4e6 * systemDraw(system_name, 2);
}

double
SimCollectives::linkUtilization(double bytes) const
{
    if (bytes <= 0.0)
        return maxUtilization;
    return maxUtilization * bytes / (bytes + halfSatBytes);
}

double
SimCollectives::allReduceMs(double bytes, int num_gpus,
                            double link_gbps) const
{
    return ringAllReduceMs(bytes, num_gpus, link_gbps, hopMs,
                           linkUtilization(bytes));
}

double
SimCollectives::sendRecvMs(double bytes, double link_gbps) const
{
    if (bytes <= 0.0)
        return 0.0;
    ensure(link_gbps > 0.0, "sendRecvMs: link bandwidth must be > 0");
    return hopMs + transferMs(bytes, link_gbps, linkUtilization(bytes));
}

EstimatedCollectives::EstimatedCollectives(
    const std::string &reference_system, double reference_link_gbps)
{
    if (reference_link_gbps <= 0.0)
        fatal("EstimatedCollectives: reference link bandwidth must be > 0");
    const SimCollectives reference(reference_system);

    // Profile ring all-reduces at two group sizes over a log-spaced sweep
    // of message sizes. With t2 = 2h + x and t4 = 6h + 1.5x (h the hop
    // latency, x the saturated wire time of the payload), each pair
    // solves exactly: h = (t4 - 1.5 t2) / 3, x = t2 - 2h.
    constexpr double kMinBytes = 512.0;
    constexpr double kMaxBytes = 16e9;
    constexpr int kPointsPerDecade = 8;
    const int points =
        static_cast<int>(std::ceil(std::log10(kMaxBytes / kMinBytes) *
                                   kPointsPerDecade)) +
        1;
    double hop_sum = 0.0;
    for (int i = 0; i < points; ++i) {
        const double bytes =
            kMinBytes * std::pow(10.0, static_cast<double>(i) /
                                           kPointsPerDecade);
        const double t2 =
            reference.allReduceMs(bytes, 2, reference_link_gbps);
        const double t4 =
            reference.allReduceMs(bytes, 4, reference_link_gbps);
        const double hop = (t4 - 1.5 * t2) / 3.0;
        const double wire_ms = t2 - 2.0 * hop;
        ensure(wire_ms > 0.0,
               "EstimatedCollectives: degenerate calibration point");
        // wire_ms = bytes / (link * u): invert for the utilization.
        const double util =
            bytes / (reference_link_gbps * 1e9) * 1e3 / wire_ms;
        logBytesGrid.push_back(std::log(bytes));
        utilizationGrid.push_back(util);
        hop_sum += hop;
    }
    hopMs = hop_sum / static_cast<double>(points);
}

double
EstimatedCollectives::linkUtilization(double bytes) const
{
    const double x = std::log(std::max(bytes, 1.0));
    if (x <= logBytesGrid.front())
        return utilizationGrid.front();
    if (x >= logBytesGrid.back())
        return utilizationGrid.back();
    const auto it = std::upper_bound(logBytesGrid.begin(),
                                     logBytesGrid.end(), x);
    const size_t hi = static_cast<size_t>(it - logBytesGrid.begin());
    const size_t lo = hi - 1;
    const double t = (x - logBytesGrid[lo]) /
                     (logBytesGrid[hi] - logBytesGrid[lo]);
    return utilizationGrid[lo] +
           t * (utilizationGrid[hi] - utilizationGrid[lo]);
}

double
EstimatedCollectives::allReduceMs(double bytes, int num_gpus,
                                  double link_gbps) const
{
    return ringAllReduceMs(bytes, num_gpus, link_gbps, hopMs,
                           linkUtilization(bytes));
}

double
EstimatedCollectives::sendRecvMs(double bytes, double link_gbps) const
{
    if (bytes <= 0.0)
        return 0.0;
    ensure(link_gbps > 0.0, "sendRecvMs: link bandwidth must be > 0");
    return hopMs + transferMs(bytes, link_gbps, linkUtilization(bytes));
}

} // namespace neusight::dist
