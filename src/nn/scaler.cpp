#include "nn/scaler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <cstdint>
#include <istream>
#include <ostream>

#include "common/logging.hpp"

namespace neusight::nn {

double
FeatureScaler::compress(double v) const
{
    if (!useLog)
        return v;
    return v >= 0.0 ? std::log1p(v) : -std::log1p(-v);
}

void
FeatureScaler::fit(const Matrix &x)
{
    ensure(x.rows() > 0, "FeatureScaler::fit: empty matrix");
    means.assign(x.cols(), 0.0);
    stds.assign(x.cols(), 0.0);
    for (size_t c = 0; c < x.cols(); ++c) {
        double total = 0.0;
        for (size_t r = 0; r < x.rows(); ++r)
            total += compress(x.at(r, c));
        means[c] = total / static_cast<double>(x.rows());
        double ss = 0.0;
        for (size_t r = 0; r < x.rows(); ++r) {
            const double d = compress(x.at(r, c)) - means[c];
            ss += d * d;
        }
        stds[c] = std::sqrt(ss / static_cast<double>(x.rows()));
        if (stds[c] < 1e-12)
            stds[c] = 1.0; // Constant column: pass through centered.
    }
    // Record the transformed range for optional clamping.
    fitMin.assign(x.cols(), 0.0);
    fitMax.assign(x.cols(), 0.0);
    for (size_t c = 0; c < x.cols(); ++c) {
        double lo = std::numeric_limits<double>::max();
        double hi = std::numeric_limits<double>::lowest();
        for (size_t r = 0; r < x.rows(); ++r) {
            const double z = (compress(x.at(r, c)) - means[c]) / stds[c];
            lo = std::min(lo, z);
            hi = std::max(hi, z);
        }
        fitMin[c] = lo;
        fitMax[c] = hi;
    }
}

Matrix
FeatureScaler::transform(const Matrix &x) const
{
    ensure(fitted(), "FeatureScaler::transform before fit");
    ensure(x.cols() == means.size(), "FeatureScaler: column count mismatch");
    Matrix out(x.rows(), x.cols());
    for (size_t r = 0; r < x.rows(); ++r) {
        for (size_t c = 0; c < x.cols(); ++c) {
            double z = (compress(x.at(r, c)) - means[c]) / stds[c];
            if (clampRange)
                z = std::clamp(z, fitMin[c], fitMax[c]);
            out.at(r, c) = z;
        }
    }
    return out;
}

Matrix
FeatureScaler::fitTransform(const Matrix &x)
{
    fit(x);
    return transform(x);
}

void
FeatureScaler::save(std::ostream &out) const
{
    const uint8_t log_flag = useLog ? 1 : 0;
    const uint8_t clamp_flag = clampRange ? 1 : 0;
    const uint64_t count = means.size();
    out.write(reinterpret_cast<const char *>(&log_flag), sizeof(log_flag));
    out.write(reinterpret_cast<const char *>(&clamp_flag),
              sizeof(clamp_flag));
    out.write(reinterpret_cast<const char *>(&count), sizeof(count));
    for (const auto *vec : {&means, &stds, &fitMin, &fitMax})
        out.write(reinterpret_cast<const char *>(vec->data()),
                  static_cast<std::streamsize>(sizeof(double) * count));
    if (!out)
        fatal("FeatureScaler::save: write failed");
}

void
FeatureScaler::load(std::istream &in)
{
    uint8_t log_flag = 0;
    uint8_t clamp_flag = 0;
    uint64_t count = 0;
    in.read(reinterpret_cast<char *>(&log_flag), sizeof(log_flag));
    in.read(reinterpret_cast<char *>(&clamp_flag), sizeof(clamp_flag));
    in.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!in)
        fatal("FeatureScaler::load: bad header");
    useLog = log_flag != 0;
    clampRange = clamp_flag != 0;
    means.assign(count, 0.0);
    stds.assign(count, 0.0);
    fitMin.assign(count, 0.0);
    fitMax.assign(count, 0.0);
    for (auto *vec : {&means, &stds, &fitMin, &fitMax})
        in.read(reinterpret_cast<char *>(vec->data()),
                static_cast<std::streamsize>(sizeof(double) * count));
    if (!in)
        fatal("FeatureScaler::load: truncated file");
}

} // namespace neusight::nn
