#include "nn/trainer.hpp"

#include <algorithm>
#include <iostream>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace neusight::nn {

Matrix
gatherRows(const Matrix &x, const std::vector<size_t> &rows)
{
    Matrix out(rows.size(), x.cols());
    for (size_t r = 0; r < rows.size(); ++r) {
        ensure(rows[r] < x.rows(), "gatherRows: index out of range");
        for (size_t c = 0; c < x.cols(); ++c)
            out.at(r, c) = x.at(rows[r], c);
    }
    return out;
}

namespace {

/** Mean loss over a set of rows without touching gradients. */
double
evaluateSplit(const std::vector<size_t> &rows, const Matrix &x,
              const std::vector<double> &y, const ForwardFn &fwd,
              const TrainConfig &config)
{
    if (rows.empty())
        return 0.0;
    double total = 0.0;
    size_t counted = 0;
    const size_t bs = config.batchSize;
    for (size_t start = 0; start < rows.size(); start += bs) {
        const size_t end = std::min(start + bs, rows.size());
        Batch batch;
        batch.indices.assign(rows.begin() + static_cast<long>(start),
                             rows.begin() + static_cast<long>(end));
        batch.x = gatherRows(x, batch.indices);
        batch.y.reserve(batch.indices.size());
        for (size_t idx : batch.indices)
            batch.y.push_back(y[idx]);
        Var pred = fwd(batch);
        Var loss = lossAv(pred, batch.y, config.loss);
        total += loss.value().at(0, 0) * static_cast<double>(batch.y.size());
        counted += batch.y.size();
    }
    return total / static_cast<double>(counted);
}

} // namespace

TrainHistory
fit(Module &module, const Matrix &x, const std::vector<double> &y,
    const ForwardFn &fwd, const TrainConfig &config)
{
    ensure(x.rows() == y.size(), "fit: feature/target length mismatch");
    ensure(x.rows() > 0, "fit: empty dataset");
    ensure(config.batchSize > 0, "fit: batchSize must be positive");

    Rng rng(config.seed);
    std::vector<size_t> order = rng.permutation(x.rows());

    // Hold out the tail of the shuffled order for validation.
    const size_t val_count = static_cast<size_t>(
        static_cast<double>(x.rows()) * config.validationFraction);
    std::vector<size_t> val_rows(order.end() - static_cast<long>(val_count),
                                 order.end());
    std::vector<size_t> train_rows(order.begin(),
                                   order.end() - static_cast<long>(val_count));
    ensure(!train_rows.empty(), "fit: validation split leaves no train rows");

    AdamWConfig opt_config;
    opt_config.lr = config.lr;
    opt_config.weightDecay = config.weightDecay;
    AdamW optimizer(module, opt_config);

    TrainHistory history;
    for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
        // Reshuffle the training rows each epoch.
        std::vector<size_t> perm = rng.permutation(train_rows.size());
        double epoch_loss = 0.0;
        size_t counted = 0;
        for (size_t start = 0; start < train_rows.size();
             start += config.batchSize) {
            const size_t end =
                std::min(start + config.batchSize, train_rows.size());
            Batch batch;
            batch.indices.reserve(end - start);
            for (size_t i = start; i < end; ++i)
                batch.indices.push_back(train_rows[perm[i]]);
            batch.x = gatherRows(x, batch.indices);
            batch.y.reserve(batch.indices.size());
            for (size_t idx : batch.indices)
                batch.y.push_back(y[idx]);

            module.zeroGrad();
            Var pred = fwd(batch);
            Var loss = lossAv(pred, batch.y, config.loss);
            backward(loss);
            optimizer.step();

            epoch_loss +=
                loss.value().at(0, 0) * static_cast<double>(batch.y.size());
            counted += batch.y.size();
        }
        history.trainLoss.push_back(epoch_loss /
                                    static_cast<double>(counted));
        history.valLoss.push_back(
            evaluateSplit(val_rows, x, y, fwd, config));
        optimizer.setLearningRate(optimizer.learningRate() * config.lrDecay);
        if (config.verbose) {
            std::cerr << "epoch " << epoch + 1 << "/" << config.epochs
                      << " train=" << history.trainLoss.back()
                      << " val=" << history.valLoss.back() << std::endl;
        }
    }
    return history;
}

} // namespace neusight::nn
