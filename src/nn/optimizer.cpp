#include "nn/optimizer.hpp"

#include <cmath>

namespace neusight::nn {

AdamW::AdamW(Module &module_, const AdamWConfig &config_)
    : module(module_), config(config_)
{
    for (const auto &p : module.parameters()) {
        m.emplace_back(p.value().rows(), p.value().cols());
        v.emplace_back(p.value().rows(), p.value().cols());
    }
}

void
AdamW::step()
{
    ++t;
    const double bc1 = 1.0 - std::pow(config.beta1, static_cast<double>(t));
    const double bc2 = 1.0 - std::pow(config.beta2, static_cast<double>(t));
    const auto &params = module.parameters();
    for (size_t i = 0; i < params.size(); ++i) {
        auto &node = *params[i].node();
        const Matrix &g = node.ensureGrad();
        Matrix &val = node.value;
        double *mp = m[i].raw();
        double *vp = v[i].raw();
        for (size_t j = 0; j < val.size(); ++j) {
            const double grad = g.raw()[j];
            mp[j] = config.beta1 * mp[j] + (1.0 - config.beta1) * grad;
            vp[j] = config.beta2 * vp[j] + (1.0 - config.beta2) * grad * grad;
            const double mhat = mp[j] / bc1;
            const double vhat = vp[j] / bc2;
            // Decoupled weight decay (AdamW), then the Adam step.
            val.raw()[j] -= config.lr * config.weightDecay * val.raw()[j];
            val.raw()[j] -= config.lr * mhat / (std::sqrt(vhat) + config.eps);
        }
    }
}

} // namespace neusight::nn
