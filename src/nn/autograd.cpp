#include "nn/autograd.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <unordered_set>

#include "common/logging.hpp"

namespace neusight::nn {

namespace {

std::atomic<uint64_t> nextNodeId{1};

std::shared_ptr<Node>
makeNode(Matrix value, std::vector<std::shared_ptr<Node>> parents,
         std::function<void(Node &)> backfn)
{
    auto node = std::make_shared<Node>();
    node->value = std::move(value);
    node->parents = std::move(parents);
    node->backfn = std::move(backfn);
    node->id = nextNodeId.fetch_add(1, std::memory_order_relaxed);
    for (const auto &p : node->parents)
        node->requiresGrad = node->requiresGrad || p->requiresGrad;
    return node;
}

} // namespace

Var
makeOpNode(Matrix value, std::vector<std::shared_ptr<Node>> parents,
           std::function<void(Node &)> backfn)
{
    return Var(makeNode(std::move(value), std::move(parents),
                        std::move(backfn)));
}

Matrix &
Node::ensureGrad()
{
    if (!gradAllocated) {
        grad = Matrix(value.rows(), value.cols());
        gradAllocated = true;
    }
    return grad;
}

const Matrix &
Var::grad() const
{
    ensure(node_ != nullptr, "Var::grad on null Var");
    return node_->ensureGrad();
}

Var
parameter(Matrix value, std::string name)
{
    auto node = std::make_shared<Node>();
    node->value = std::move(value);
    node->requiresGrad = true;
    node->name = std::move(name);
    node->id = nextNodeId.fetch_add(1, std::memory_order_relaxed);
    return Var(node);
}

Var
constant(Matrix value)
{
    auto node = std::make_shared<Node>();
    node->value = std::move(value);
    node->id = nextNodeId.fetch_add(1, std::memory_order_relaxed);
    return Var(node);
}

void
backward(const Var &output)
{
    ensure(output && output.value().rows() == 1 && output.value().cols() == 1,
           "backward: output must be a 1x1 scalar");

    // Gather every node reachable from the output.
    std::vector<std::shared_ptr<Node>> tape;
    std::unordered_set<Node *> seen;
    std::vector<std::shared_ptr<Node>> stack{output.node()};
    while (!stack.empty()) {
        auto node = stack.back();
        stack.pop_back();
        if (!seen.insert(node.get()).second)
            continue;
        tape.push_back(node);
        for (const auto &p : node->parents)
            stack.push_back(p);
    }
    // Creation order is a topological order: parents precede children.
    std::sort(tape.begin(), tape.end(),
              [](const auto &a, const auto &b) { return a->id > b->id; });

    output.node()->ensureGrad().fill(1.0);
    for (const auto &node : tape) {
        if (node->backfn && node->gradAllocated && node->requiresGrad)
            node->backfn(*node);
    }
}

Var
matmulAv(const Var &a, const Var &b)
{
    Matrix out = matmul(a.value(), b.value());
    return Var(makeNode(std::move(out), {a.node(), b.node()}, [](Node &self) {
        auto &pa = *self.parents[0];
        auto &pb = *self.parents[1];
        if (pa.requiresGrad)
            addInPlace(pa.ensureGrad(), matmulNT(self.grad, pb.value));
        if (pb.requiresGrad)
            addInPlace(pb.ensureGrad(), matmulTN(pa.value, self.grad));
    }));
}

Var
addAv(const Var &a, const Var &b)
{
    Matrix out = add(a.value(), b.value());
    return Var(makeNode(std::move(out), {a.node(), b.node()}, [](Node &self) {
        for (auto &p : self.parents)
            if (p->requiresGrad)
                addInPlace(p->ensureGrad(), self.grad);
    }));
}

Var
subAv(const Var &a, const Var &b)
{
    Matrix out = sub(a.value(), b.value());
    return Var(makeNode(std::move(out), {a.node(), b.node()}, [](Node &self) {
        if (self.parents[0]->requiresGrad)
            addInPlace(self.parents[0]->ensureGrad(), self.grad);
        if (self.parents[1]->requiresGrad)
            axpyInPlace(self.parents[1]->ensureGrad(), -1.0, self.grad);
    }));
}

Var
mulAv(const Var &a, const Var &b)
{
    Matrix out = mul(a.value(), b.value());
    return Var(makeNode(std::move(out), {a.node(), b.node()}, [](Node &self) {
        auto &pa = *self.parents[0];
        auto &pb = *self.parents[1];
        if (pa.requiresGrad)
            addInPlace(pa.ensureGrad(), mul(self.grad, pb.value));
        if (pb.requiresGrad)
            addInPlace(pb.ensureGrad(), mul(self.grad, pa.value));
    }));
}

Var
scaleAv(const Var &a, double s)
{
    Matrix out = scale(a.value(), s);
    return Var(makeNode(std::move(out), {a.node()}, [s](Node &self) {
        if (self.parents[0]->requiresGrad)
            axpyInPlace(self.parents[0]->ensureGrad(), s, self.grad);
    }));
}

Var
addRowBroadcastAv(const Var &x, const Var &bias)
{
    Matrix out = addRowBroadcast(x.value(), bias.value());
    return Var(makeNode(std::move(out), {x.node(), bias.node()},
                        [](Node &self) {
        if (self.parents[0]->requiresGrad)
            addInPlace(self.parents[0]->ensureGrad(), self.grad);
        if (self.parents[1]->requiresGrad)
            addInPlace(self.parents[1]->ensureGrad(), colSum(self.grad));
    }));
}

Var
reluAv(const Var &x)
{
    Matrix out = x.value();
    for (size_t i = 0; i < out.size(); ++i)
        out.raw()[i] = std::max(out.raw()[i], 0.0);
    return Var(makeNode(std::move(out), {x.node()}, [](Node &self) {
        auto &p = *self.parents[0];
        if (!p.requiresGrad)
            return;
        Matrix &g = p.ensureGrad();
        for (size_t i = 0; i < g.size(); ++i)
            if (p.value.raw()[i] > 0.0)
                g.raw()[i] += self.grad.raw()[i];
    }));
}

Var
sigmoidAv(const Var &x)
{
    Matrix out = x.value();
    out.apply([](double v) { return 1.0 / (1.0 + std::exp(-v)); });
    return Var(makeNode(std::move(out), {x.node()}, [](Node &self) {
        auto &p = *self.parents[0];
        if (!p.requiresGrad)
            return;
        Matrix &g = p.ensureGrad();
        for (size_t i = 0; i < g.size(); ++i) {
            const double y = self.value.raw()[i];
            g.raw()[i] += self.grad.raw()[i] * y * (1.0 - y);
        }
    }));
}

Var
tanhAv(const Var &x)
{
    Matrix out = x.value();
    out.apply([](double v) { return std::tanh(v); });
    return Var(makeNode(std::move(out), {x.node()}, [](Node &self) {
        auto &p = *self.parents[0];
        if (!p.requiresGrad)
            return;
        Matrix &g = p.ensureGrad();
        for (size_t i = 0; i < g.size(); ++i) {
            const double y = self.value.raw()[i];
            g.raw()[i] += self.grad.raw()[i] * (1.0 - y * y);
        }
    }));
}

Var
geluAv(const Var &x)
{
    constexpr double kSqrt2OverPi = 0.7978845608028654;
    constexpr double kCubic = 0.044715;
    Matrix out = x.value();
    out.apply([&](double v) {
        const double u = kSqrt2OverPi * (v + kCubic * v * v * v);
        return 0.5 * v * (1.0 + std::tanh(u));
    });
    return Var(makeNode(std::move(out), {x.node()}, [=](Node &self) {
        auto &p = *self.parents[0];
        if (!p.requiresGrad)
            return;
        Matrix &g = p.ensureGrad();
        for (size_t i = 0; i < g.size(); ++i) {
            const double v = p.value.raw()[i];
            const double u = kSqrt2OverPi * (v + kCubic * v * v * v);
            const double t = std::tanh(u);
            const double du = kSqrt2OverPi * (1.0 + 3.0 * kCubic * v * v);
            const double dy = 0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * du;
            g.raw()[i] += self.grad.raw()[i] * dy;
        }
    }));
}

Var
softmaxRowsAv(const Var &x)
{
    Matrix out = x.value();
    for (size_t r = 0; r < out.rows(); ++r) {
        double mx = out.at(r, 0);
        for (size_t c = 1; c < out.cols(); ++c)
            mx = std::max(mx, out.at(r, c));
        double total = 0.0;
        for (size_t c = 0; c < out.cols(); ++c) {
            out.at(r, c) = std::exp(out.at(r, c) - mx);
            total += out.at(r, c);
        }
        for (size_t c = 0; c < out.cols(); ++c)
            out.at(r, c) /= total;
    }
    return Var(makeNode(std::move(out), {x.node()}, [](Node &self) {
        auto &p = *self.parents[0];
        if (!p.requiresGrad)
            return;
        Matrix &g = p.ensureGrad();
        for (size_t r = 0; r < self.value.rows(); ++r) {
            double dot = 0.0;
            for (size_t c = 0; c < self.value.cols(); ++c)
                dot += self.grad.at(r, c) * self.value.at(r, c);
            for (size_t c = 0; c < self.value.cols(); ++c)
                g.at(r, c) += self.value.at(r, c) *
                              (self.grad.at(r, c) - dot);
        }
    }));
}

Var
meanAllAv(const Var &x)
{
    const double n = static_cast<double>(x.value().size());
    Matrix out(1, 1);
    out.at(0, 0) = x.value().sum() / n;
    return Var(makeNode(std::move(out), {x.node()}, [n](Node &self) {
        auto &p = *self.parents[0];
        if (!p.requiresGrad)
            return;
        Matrix &g = p.ensureGrad();
        const double d = self.grad.at(0, 0) / n;
        for (size_t i = 0; i < g.size(); ++i)
            g.raw()[i] += d;
    }));
}

Var
utilizationLawAv(const Var &alpha_beta, const std::vector<double> &waves)
{
    const Matrix &ab = alpha_beta.value();
    ensure(ab.cols() == 2 && ab.rows() == waves.size(),
           "utilizationLawAv: expected (B,2) inputs matching waves length");
    Matrix out(ab.rows(), 1);
    for (size_t i = 0; i < ab.rows(); ++i)
        out.at(i, 0) = ab.at(i, 0) - ab.at(i, 1) / waves[i];
    return Var(makeNode(std::move(out), {alpha_beta.node()},
                        [waves](Node &self) {
        auto &p = *self.parents[0];
        if (!p.requiresGrad)
            return;
        Matrix &g = p.ensureGrad();
        for (size_t i = 0; i < self.grad.rows(); ++i) {
            g.at(i, 0) += self.grad.at(i, 0);
            g.at(i, 1) += -self.grad.at(i, 0) / waves[i];
        }
    }));
}

Var
clampMinAv(const Var &x, double lo)
{
    Matrix out = x.value();
    for (size_t i = 0; i < out.size(); ++i)
        out.raw()[i] = std::max(out.raw()[i], lo);
    return Var(makeNode(std::move(out), {x.node()}, [lo](Node &self) {
        auto &p = *self.parents[0];
        if (!p.requiresGrad)
            return;
        Matrix &g = p.ensureGrad();
        for (size_t i = 0; i < g.size(); ++i)
            if (p.value.raw()[i] > lo)
                g.raw()[i] += self.grad.raw()[i];
    }));
}

Var
reciprocalScaleAv(const Var &x, const std::vector<double> &c)
{
    const Matrix &xv = x.value();
    ensure(xv.cols() == 1 && xv.rows() == c.size(),
           "reciprocalScaleAv: expected (B,1) input matching constants");
    Matrix out(xv.rows(), 1);
    for (size_t i = 0; i < xv.rows(); ++i) {
        ensure(xv.at(i, 0) != 0.0, "reciprocalScaleAv: division by zero");
        out.at(i, 0) = c[i] / xv.at(i, 0);
    }
    return Var(makeNode(std::move(out), {x.node()}, [c](Node &self) {
        auto &p = *self.parents[0];
        if (!p.requiresGrad)
            return;
        Matrix &g = p.ensureGrad();
        for (size_t i = 0; i < g.rows(); ++i) {
            const double xi = p.value.at(i, 0);
            g.at(i, 0) += -c[i] / (xi * xi) * self.grad.at(i, 0);
        }
    }));
}

Var
tokenizeFeaturesAv(const Var &x, const Var &w, const Var &b)
{
    const Matrix &xv = x.value();
    const Matrix &wv = w.value();
    const Matrix &bv = b.value();
    const size_t batch = xv.rows();
    const size_t feats = xv.cols();
    const size_t dim = wv.cols();
    ensure(wv.rows() == feats && bv.rows() == feats && bv.cols() == dim,
           "tokenizeFeaturesAv: weight/bias must be (F,d)");
    Matrix out(batch * feats, dim);
    for (size_t s = 0; s < batch; ++s)
        for (size_t i = 0; i < feats; ++i)
            for (size_t j = 0; j < dim; ++j)
                out.at(s * feats + i, j) = xv.at(s, i) * wv.at(i, j) +
                                           bv.at(i, j);
    return Var(makeNode(std::move(out), {x.node(), w.node(), b.node()},
                        [batch, feats, dim](Node &self) {
        auto &px = *self.parents[0];
        auto &pw = *self.parents[1];
        auto &pb = *self.parents[2];
        for (size_t s = 0; s < batch; ++s) {
            for (size_t i = 0; i < feats; ++i) {
                const size_t r = s * feats + i;
                double dxsum = 0.0;
                for (size_t j = 0; j < dim; ++j) {
                    const double go = self.grad.at(r, j);
                    dxsum += go * pw.value.at(i, j);
                    if (pw.requiresGrad)
                        pw.ensureGrad().at(i, j) += go * px.value.at(s, i);
                    if (pb.requiresGrad)
                        pb.ensureGrad().at(i, j) += go;
                }
                if (px.requiresGrad)
                    px.ensureGrad().at(s, i) += dxsum;
            }
        }
    }));
}

Var
addBlockBroadcastAv(const Var &x, const Var &pos)
{
    const Matrix &xv = x.value();
    const Matrix &pv = pos.value();
    const size_t seq = pv.rows();
    ensure(seq > 0 && xv.rows() % seq == 0 && xv.cols() == pv.cols(),
           "addBlockBroadcastAv: rows must be a multiple of pos rows");
    Matrix out = xv;
    for (size_t r = 0; r < xv.rows(); ++r)
        for (size_t j = 0; j < xv.cols(); ++j)
            out.at(r, j) += pv.at(r % seq, j);
    return Var(makeNode(std::move(out), {x.node(), pos.node()},
                        [seq](Node &self) {
        auto &px = *self.parents[0];
        auto &pp = *self.parents[1];
        if (px.requiresGrad)
            addInPlace(px.ensureGrad(), self.grad);
        if (pp.requiresGrad) {
            Matrix &g = pp.ensureGrad();
            for (size_t r = 0; r < self.grad.rows(); ++r)
                for (size_t j = 0; j < self.grad.cols(); ++j)
                    g.at(r % seq, j) += self.grad.at(r, j);
        }
    }));
}

Var
blockAttentionAv(const Var &q, const Var &k, const Var &v, size_t seq_len,
                 size_t num_heads)
{
    const Matrix &qv = q.value();
    const Matrix &kv = k.value();
    const Matrix &vv = v.value();
    const size_t n = qv.rows();
    const size_t dim = qv.cols();
    ensure(seq_len > 0 && n % seq_len == 0,
           "blockAttentionAv: rows must be a multiple of seq_len");
    ensure(kv.rows() == n && vv.rows() == n && kv.cols() == dim &&
               vv.cols() == dim,
           "blockAttentionAv: q/k/v shape mismatch");
    ensure(num_heads > 0 && dim % num_heads == 0,
           "blockAttentionAv: dim must divide num_heads");
    const size_t blocks = n / seq_len;
    const size_t dh = dim / num_heads;
    const double inv = 1.0 / std::sqrt(static_cast<double>(dh));

    // probs[b * num_heads + h] is the (seq,seq) softmax matrix, cached for
    // the backward pass.
    auto probs = std::make_shared<std::vector<Matrix>>();
    probs->reserve(blocks * num_heads);
    Matrix out(n, dim);
    for (size_t blk = 0; blk < blocks; ++blk) {
        const size_t r0 = blk * seq_len;
        for (size_t h = 0; h < num_heads; ++h) {
            const size_t c0 = h * dh;
            Matrix score(seq_len, seq_len);
            for (size_t i = 0; i < seq_len; ++i)
                for (size_t j = 0; j < seq_len; ++j) {
                    double acc = 0.0;
                    for (size_t p = 0; p < dh; ++p)
                        acc += qv.at(r0 + i, c0 + p) * kv.at(r0 + j, c0 + p);
                    score.at(i, j) = acc * inv;
                }
            // Row softmax.
            for (size_t i = 0; i < seq_len; ++i) {
                double mx = score.at(i, 0);
                for (size_t j = 1; j < seq_len; ++j)
                    mx = std::max(mx, score.at(i, j));
                double total = 0.0;
                for (size_t j = 0; j < seq_len; ++j) {
                    score.at(i, j) = std::exp(score.at(i, j) - mx);
                    total += score.at(i, j);
                }
                for (size_t j = 0; j < seq_len; ++j)
                    score.at(i, j) /= total;
            }
            for (size_t i = 0; i < seq_len; ++i)
                for (size_t p = 0; p < dh; ++p) {
                    double acc = 0.0;
                    for (size_t j = 0; j < seq_len; ++j)
                        acc += score.at(i, j) * vv.at(r0 + j, c0 + p);
                    out.at(r0 + i, c0 + p) = acc;
                }
            probs->push_back(std::move(score));
        }
    }
    return Var(makeNode(std::move(out), {q.node(), k.node(), v.node()},
                        [probs, blocks, seq_len, num_heads, dh,
                         inv](Node &self) {
        auto &pq = *self.parents[0];
        auto &pk = *self.parents[1];
        auto &pv = *self.parents[2];
        Matrix &gq = pq.ensureGrad();
        Matrix &gk = pk.ensureGrad();
        Matrix &gv = pv.ensureGrad();
        for (size_t blk = 0; blk < blocks; ++blk) {
            const size_t r0 = blk * seq_len;
            for (size_t h = 0; h < num_heads; ++h) {
                const size_t c0 = h * dh;
                const Matrix &prob = (*probs)[blk * num_heads + h];
                // dV += P^T dO
                for (size_t j = 0; j < seq_len; ++j)
                    for (size_t p = 0; p < dh; ++p) {
                        double acc = 0.0;
                        for (size_t i = 0; i < seq_len; ++i)
                            acc += prob.at(i, j) * self.grad.at(r0 + i, c0 + p);
                        gv.at(r0 + j, c0 + p) += acc;
                    }
                // dP = dO V^T ; dS = softmax-backward(dP)
                Matrix dscore(seq_len, seq_len);
                for (size_t i = 0; i < seq_len; ++i) {
                    for (size_t j = 0; j < seq_len; ++j) {
                        double acc = 0.0;
                        for (size_t p = 0; p < dh; ++p)
                            acc += self.grad.at(r0 + i, c0 + p) *
                                   pv.value.at(r0 + j, c0 + p);
                        dscore.at(i, j) = acc;
                    }
                    double dot = 0.0;
                    for (size_t j = 0; j < seq_len; ++j)
                        dot += dscore.at(i, j) * prob.at(i, j);
                    for (size_t j = 0; j < seq_len; ++j)
                        dscore.at(i, j) = prob.at(i, j) *
                                          (dscore.at(i, j) - dot);
                }
                // dQ += dS K * inv ; dK += dS^T Q * inv
                for (size_t i = 0; i < seq_len; ++i)
                    for (size_t p = 0; p < dh; ++p) {
                        double accq = 0.0;
                        for (size_t j = 0; j < seq_len; ++j)
                            accq += dscore.at(i, j) * pk.value.at(r0 + j, c0 + p);
                        gq.at(r0 + i, c0 + p) += accq * inv;
                    }
                for (size_t j = 0; j < seq_len; ++j)
                    for (size_t p = 0; p < dh; ++p) {
                        double acck = 0.0;
                        for (size_t i = 0; i < seq_len; ++i)
                            acck += dscore.at(i, j) * pq.value.at(r0 + i, c0 + p);
                        gk.at(r0 + j, c0 + p) += acck * inv;
                    }
            }
        }
    }));
}

Var
layerNormRowsAv(const Var &x, const Var &gain, const Var &bias)
{
    constexpr double kEps = 1e-5;
    const Matrix &xv = x.value();
    const size_t dim = xv.cols();
    ensure(gain.value().rows() == 1 && gain.value().cols() == dim &&
               bias.value().rows() == 1 && bias.value().cols() == dim,
           "layerNormRowsAv: gain/bias must be (1,d)");

    auto xhat = std::make_shared<Matrix>(xv.rows(), dim);
    auto invstd = std::make_shared<std::vector<double>>(xv.rows());
    Matrix out(xv.rows(), dim);
    for (size_t r = 0; r < xv.rows(); ++r) {
        double mu = 0.0;
        for (size_t j = 0; j < dim; ++j)
            mu += xv.at(r, j);
        mu /= static_cast<double>(dim);
        double var = 0.0;
        for (size_t j = 0; j < dim; ++j) {
            const double d = xv.at(r, j) - mu;
            var += d * d;
        }
        var /= static_cast<double>(dim);
        const double is = 1.0 / std::sqrt(var + kEps);
        (*invstd)[r] = is;
        for (size_t j = 0; j < dim; ++j) {
            const double xh = (xv.at(r, j) - mu) * is;
            xhat->at(r, j) = xh;
            out.at(r, j) = xh * gain.value().at(0, j) + bias.value().at(0, j);
        }
    }
    return Var(makeNode(std::move(out), {x.node(), gain.node(), bias.node()},
                        [xhat, invstd, dim](Node &self) {
        auto &px = *self.parents[0];
        auto &pg = *self.parents[1];
        auto &pb = *self.parents[2];
        const double dn = static_cast<double>(dim);
        for (size_t r = 0; r < self.grad.rows(); ++r) {
            double mean_dxhat = 0.0;
            double mean_dxhat_xhat = 0.0;
            for (size_t j = 0; j < dim; ++j) {
                const double go = self.grad.at(r, j);
                if (pg.requiresGrad)
                    pg.ensureGrad().at(0, j) += go * xhat->at(r, j);
                if (pb.requiresGrad)
                    pb.ensureGrad().at(0, j) += go;
                const double dxh = go * pg.value.at(0, j);
                mean_dxhat += dxh;
                mean_dxhat_xhat += dxh * xhat->at(r, j);
            }
            mean_dxhat /= dn;
            mean_dxhat_xhat /= dn;
            if (px.requiresGrad) {
                Matrix &gx = px.ensureGrad();
                for (size_t j = 0; j < dim; ++j) {
                    const double dxh = self.grad.at(r, j) * pg.value.at(0, j);
                    gx.at(r, j) += (*invstd)[r] *
                                   (dxh - mean_dxhat -
                                    xhat->at(r, j) * mean_dxhat_xhat);
                }
            }
        }
    }));
}

Var
meanPoolBlocksAv(const Var &x, size_t seq_len)
{
    const Matrix &xv = x.value();
    ensure(seq_len > 0 && xv.rows() % seq_len == 0,
           "meanPoolBlocksAv: rows must be a multiple of seq_len");
    const size_t blocks = xv.rows() / seq_len;
    Matrix out(blocks, xv.cols());
    for (size_t b = 0; b < blocks; ++b)
        for (size_t i = 0; i < seq_len; ++i)
            for (size_t j = 0; j < xv.cols(); ++j)
                out.at(b, j) += xv.at(b * seq_len + i, j) /
                                static_cast<double>(seq_len);
    return Var(makeNode(std::move(out), {x.node()}, [seq_len](Node &self) {
        auto &p = *self.parents[0];
        if (!p.requiresGrad)
            return;
        Matrix &g = p.ensureGrad();
        const double inv = 1.0 / static_cast<double>(seq_len);
        for (size_t r = 0; r < g.rows(); ++r)
            for (size_t j = 0; j < g.cols(); ++j)
                g.at(r, j) += self.grad.at(r / seq_len, j) * inv;
    }));
}

} // namespace neusight::nn
