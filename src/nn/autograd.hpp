/**
 * @file
 * Tape-based reverse-mode automatic differentiation over Matrix values.
 *
 * Every forward op appends a node to an implicit tape (creation order is a
 * valid topological order). backward() walks the tape in reverse and
 * accumulates gradients into the leaves. Parameters are persistent leaf
 * nodes owned by modules; intermediate nodes are freed when the last Var
 * referencing them goes out of scope.
 *
 * Beyond the generic ops (matmul, elementwise, activations) this engine
 * carries a few fused, domain-specific ops used by the NeuSight predictor
 * (utilization law, latency inversion) and by the Table-1 transformer
 * baseline (block attention, feature tokenizer) so training stays fast
 * without a batched-tensor abstraction.
 */

#ifndef NEUSIGHT_NN_AUTOGRAD_HPP
#define NEUSIGHT_NN_AUTOGRAD_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace neusight::nn {

/** One tape entry: a value, its gradient, and how to push grads upstream. */
struct Node
{
    Matrix value;
    Matrix grad;
    bool requiresGrad = false;
    bool gradAllocated = false;
    uint64_t id = 0;
    std::string name;
    std::vector<std::shared_ptr<Node>> parents;
    /** Propagate this node's grad into parents' grads. */
    std::function<void(Node &)> backfn;

    /** Lazily allocate (and zero) the gradient buffer. */
    Matrix &ensureGrad();
};

/** Value handle in the autograd graph. */
class Var
{
  public:
    /** Null handle. */
    Var() = default;

    /** Wrap an existing node. */
    explicit Var(std::shared_ptr<Node> n) : node_(std::move(n)) {}

    /** The wrapped node (never null for a valid Var). */
    const std::shared_ptr<Node> &node() const { return node_; }

    /** Forward value. */
    const Matrix &value() const { return node_->value; }

    /** Gradient after backward(); zero matrix when never touched. */
    const Matrix &grad() const;

    /** True when this Var participates in differentiation. */
    bool requiresGrad() const { return node_->requiresGrad; }

    /** True when wrapping a node. */
    explicit operator bool() const { return node_ != nullptr; }

  private:
    std::shared_ptr<Node> node_;
};

/** Create a trainable leaf (gradient accumulated across steps until reset). */
Var parameter(Matrix value, std::string name = "");

/** Create a non-trainable leaf. */
Var constant(Matrix value);

/**
 * Create an interior op node. Exposed so other modules (e.g. the fused
 * losses) can define custom differentiable ops; requiresGrad is inherited
 * from the parents and the node id preserves tape (topological) order.
 */
Var makeOpNode(Matrix value, std::vector<std::shared_ptr<Node>> parents,
               std::function<void(Node &)> backfn);

/**
 * Reverse-mode sweep from @p output, which must be a 1x1 scalar.
 * Accumulates into every reachable leaf with requiresGrad.
 */
void backward(const Var &output);

/// @name Generic ops
/// @{
Var matmulAv(const Var &a, const Var &b);
Var addAv(const Var &a, const Var &b);
Var subAv(const Var &a, const Var &b);
Var mulAv(const Var &a, const Var &b);
Var scaleAv(const Var &a, double s);
Var addRowBroadcastAv(const Var &x, const Var &bias);
Var reluAv(const Var &x);
Var sigmoidAv(const Var &x);
Var tanhAv(const Var &x);
Var geluAv(const Var &x);
Var softmaxRowsAv(const Var &x);
Var meanAllAv(const Var &x);
/// @}

/// @name Fused NeuSight ops
/// @{

/**
 * The paper's utilization law (Eq. 7): util_i = ab[i,0] - ab[i,1] / waves_i.
 * @param alpha_beta (B,2) matrix, columns already sigmoid-bounded.
 * @param waves      per-sample wave counts (length B).
 */
Var utilizationLawAv(const Var &alpha_beta, const std::vector<double> &waves);

/** max(x, lo) elementwise with subgradient 0 on the clamped side. */
Var clampMinAv(const Var &x, double lo);

/**
 * Latency inversion (Eq. 4-6): lat_i = c_i / x_i for per-sample constants
 * c_i = flops_tile * waves / rooflineBW.
 */
Var reciprocalScaleAv(const Var &x, const std::vector<double> &c);
/// @}

/// @name Fused transformer ops (Table-1 "Prime" baseline)
/// @{

/**
 * Turn a (B,F) feature matrix into B blocks of F tokens, each token a
 * d-dimensional embedding: out[s*F+i, :] = x[s,i] * w[i,:] + b[i,:].
 */
Var tokenizeFeaturesAv(const Var &x, const Var &w, const Var &b);

/** Add a (F,d) positional table to every block of F rows. */
Var addBlockBroadcastAv(const Var &x, const Var &pos);

/**
 * Multi-head scaled-dot self-attention applied independently to each block
 * of @p seq_len rows (block-diagonal attention, no cross-sample mixing).
 * q,k,v are (B*seq_len, d) with d divisible by @p num_heads.
 */
Var blockAttentionAv(const Var &q, const Var &k, const Var &v,
                     size_t seq_len, size_t num_heads);

/** Row-wise layer norm with learned gain/bias (each (1,d)). */
Var layerNormRowsAv(const Var &x, const Var &gain, const Var &bias);

/** Mean over each block of @p seq_len rows: (B*seq_len,d) -> (B,d). */
Var meanPoolBlocksAv(const Var &x, size_t seq_len);
/// @}

} // namespace neusight::nn

#endif // NEUSIGHT_NN_AUTOGRAD_HPP
