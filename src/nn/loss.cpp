#include "nn/loss.hpp"

#include <cmath>
#include <memory>

#include "common/logging.hpp"

namespace neusight::nn {

namespace {

constexpr double kEps = 1e-9;
constexpr double kHuberDelta = 1.0;

double
signOf(double v)
{
    return v > 0.0 ? 1.0 : (v < 0.0 ? -1.0 : 0.0);
}

/** Per-sample loss and derivative with respect to the prediction. */
void
pointLoss(double p, double t, LossKind kind, double &loss, double &dloss)
{
    const double r = p - t;
    switch (kind) {
      case LossKind::Mse:
        loss = r * r;
        dloss = 2.0 * r;
        return;
      case LossKind::Mape: {
        const double denom = std::max(std::abs(t), kEps);
        loss = std::abs(r) / denom;
        dloss = signOf(r) / denom;
        return;
      }
      case LossKind::Smape: {
        const double denom = (std::abs(p) + std::abs(t)) / 2.0 + kEps;
        loss = std::abs(r) / denom;
        dloss = signOf(r) / denom -
                std::abs(r) * signOf(p) / (2.0 * denom * denom);
        return;
      }
      case LossKind::Huber:
        if (std::abs(r) <= kHuberDelta) {
            loss = 0.5 * r * r;
            dloss = r;
        } else {
            loss = kHuberDelta * (std::abs(r) - 0.5 * kHuberDelta);
            dloss = kHuberDelta * signOf(r);
        }
        return;
    }
    panic("pointLoss: unknown LossKind");
}

} // namespace

const char *
lossName(LossKind kind)
{
    switch (kind) {
      case LossKind::Mse:
        return "mse";
      case LossKind::Mape:
        return "mape";
      case LossKind::Smape:
        return "smape";
      case LossKind::Huber:
        return "huber";
    }
    return "?";
}

Var
lossAv(const Var &pred, const std::vector<double> &target, LossKind kind)
{
    const Matrix &pv = pred.value();
    ensure(pv.cols() == 1 && pv.rows() == target.size(),
           "lossAv: prediction must be (B,1) matching target length");
    const size_t n = target.size();
    ensure(n > 0, "lossAv: empty batch");

    // Cache the per-sample derivative computed in the forward pass.
    auto dloss = std::make_shared<std::vector<double>>(n);
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
        double li = 0.0;
        pointLoss(pv.at(i, 0), target[i], kind, li, (*dloss)[i]);
        total += li;
    }
    Matrix out(1, 1);
    out.at(0, 0) = total / static_cast<double>(n);

    return makeOpNode(std::move(out), {pred.node()},
                      [dloss, n](Node &self) {
        auto &p = *self.parents[0];
        if (!p.requiresGrad)
            return;
        Matrix &g = p.ensureGrad();
        const double scale = self.grad.at(0, 0) / static_cast<double>(n);
        for (size_t i = 0; i < n; ++i)
            g.at(i, 0) += scale * (*dloss)[i];
    });
}

double
lossValue(const std::vector<double> &pred, const std::vector<double> &target,
          LossKind kind)
{
    ensure(pred.size() == target.size(), "lossValue: length mismatch");
    if (pred.empty())
        return 0.0;
    double total = 0.0;
    for (size_t i = 0; i < pred.size(); ++i) {
        double li = 0.0;
        double unused = 0.0;
        pointLoss(pred[i], target[i], kind, li, unused);
        total += li;
    }
    return total / static_cast<double>(pred.size());
}

} // namespace neusight::nn
