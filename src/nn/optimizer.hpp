/**
 * @file
 * AdamW optimizer with decoupled weight decay (the paper trains all MLPs
 * with "AdamW ... with L2 regularization", Section 6.1).
 */

#ifndef NEUSIGHT_NN_OPTIMIZER_HPP
#define NEUSIGHT_NN_OPTIMIZER_HPP

#include <vector>

#include "nn/module.hpp"

namespace neusight::nn {

/** AdamW hyper-parameters. */
struct AdamWConfig
{
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double weightDecay = 1e-4;
};

/** AdamW over a module's parameter list. */
class AdamW
{
  public:
    /** Bind to @p module's parameters (state allocated lazily). */
    AdamW(Module &module, const AdamWConfig &config);

    /** Apply one update from the currently accumulated gradients. */
    void step();

    /** Override the learning rate (for schedules). */
    void setLearningRate(double lr) { config.lr = lr; }

    /** Current learning rate. */
    double learningRate() const { return config.lr; }

  private:
    Module &module;
    AdamWConfig config;
    std::vector<Matrix> m;
    std::vector<Matrix> v;
    uint64_t t = 0;
};

} // namespace neusight::nn

#endif // NEUSIGHT_NN_OPTIMIZER_HPP
