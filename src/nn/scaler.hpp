/**
 * @file
 * Feature standardization. Predictor inputs span many orders of magnitude
 * (per-tile FLOPs vs cache ratios), so features are log1p-compressed and
 * standardized to zero mean / unit variance before entering an MLP.
 */

#ifndef NEUSIGHT_NN_SCALER_HPP
#define NEUSIGHT_NN_SCALER_HPP

#include <iosfwd>
#include <vector>

#include "tensor/matrix.hpp"

namespace neusight::nn {

/** Column-wise (optionally log1p) standardizer fitted on training data. */
class FeatureScaler
{
  public:
    /** @param use_log apply log1p to |x| (sign preserved) before scaling. */
    explicit FeatureScaler(bool use_log = true) : useLog(use_log) {}

    /**
     * Clamp transformed values to the per-column range seen during
     * fit(). Bounds the downstream MLP's inputs so out-of-distribution
     * kernels saturate to the nearest seen regime instead of driving
     * the network into arbitrary extrapolation — the input-side
     * counterpart of NeuSight's sigmoid output bound (Section 4.2).
     */
    void setClampToFitRange(bool clamp) { clampRange = clamp; }

    /** Fit column means and stddevs on @p x. */
    void fit(const Matrix &x);

    /** Apply the fitted transform. */
    Matrix transform(const Matrix &x) const;

    /** fit() then transform(). */
    Matrix fitTransform(const Matrix &x);

    /** True after fit(). */
    bool fitted() const { return !means.empty(); }

    /** Serialize (binary). */
    void save(std::ostream &out) const;

    /** Restore state written by save(). */
    void load(std::istream &in);

  private:
    double compress(double v) const;

    bool useLog;
    bool clampRange = false;
    std::vector<double> means;
    std::vector<double> stds;
    std::vector<double> fitMin;
    std::vector<double> fitMax;
};

} // namespace neusight::nn

#endif // NEUSIGHT_NN_SCALER_HPP
