/**
 * @file
 * Trainable modules: parameter registry base class, Linear layer, the MLP
 * used by NeuSight's utilization predictor and the Habitat baseline, and a
 * small transformer-encoder regressor used by the Table-1 study (the
 * "Prime" architecture: one token per input feature).
 */

#ifndef NEUSIGHT_NN_MODULE_HPP
#define NEUSIGHT_NN_MODULE_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/autograd.hpp"

namespace neusight::nn {

/** Fully-connected layer y = xW + b. Parameters are owned by a Module. */
class Linear
{
  public:
    /** Empty layer; assigned by Module::makeLinear. */
    Linear() = default;

    /** Wrap already-registered parameters. */
    Linear(Var weight, Var bias)
        : weight(std::move(weight)), bias(std::move(bias))
    {
    }

    /** y = xW + b. */
    Var forward(const Var &x) const;

    Var weight; ///< (in, out) weight.
    Var bias;   ///< (1, out) bias.
};

/** Base class owning the trainable parameters of a model. */
class Module
{
  public:
    virtual ~Module() = default;

    /** Map a (B, inputDim) feature batch to a (B, outputDim) prediction. */
    virtual Var forward(const Var &x) = 0;

    /** Width of the expected input feature vector. */
    virtual size_t inputDim() const = 0;

    /** All trainable parameters, in registration order. */
    const std::vector<Var> &parameters() const { return params; }

    /** Reset accumulated gradients to zero. */
    void zeroGrad();

    /** Total scalar parameter count. */
    size_t parameterCount() const;

    /** Serialize parameter values (binary). */
    void saveParameters(std::ostream &out) const;

    /**
     * Restore parameter values written by saveParameters. Shapes and order
     * must match the constructed architecture; mismatch raises fatal().
     */
    void loadParameters(std::istream &in);

  protected:
    /** Register a trainable leaf and return its handle. */
    Var registerParameter(Matrix init, const std::string &name);

    /** Register a Linear layer with Kaiming-normal init. */
    Linear makeLinear(size_t in, size_t out, Rng &rng,
                      const std::string &name);

    /** Kaiming-normal init for a (rows, cols) weight feeding ReLU. */
    static Matrix kaimingInit(size_t rows, size_t cols, Rng &rng);

  private:
    std::vector<Var> params;
};

/** Configuration for Mlp. */
struct MlpConfig
{
    size_t inputDim = 5;
    size_t hiddenDim = 512;
    /** Number of hidden layers (paper default: 8 of width 512). */
    size_t hiddenLayers = 8;
    size_t outputDim = 1;
    uint64_t seed = 1;
};

/**
 * Multi-layer perceptron with ReLU after every layer except the last,
 * matching the paper's predictor architecture (Section 4.3).
 */
class Mlp : public Module
{
  public:
    /** Build and initialize per @p config. */
    explicit Mlp(const MlpConfig &config);

    Var forward(const Var &x) override;

    /**
     * Inference-mode forward: maps a (B, inputDim) feature batch to the
     * (B, outputDim) prediction without allocating any autograd tape
     * nodes. Runs the exact same kernels in the same order as the taped
     * forward(), so the result is bit-identical — the hot path for
     * batched kernel prediction (KernelPredictor::predictBatch), where
     * the per-row tape bookkeeping would dominate the math.
     */
    Matrix inferRows(const Matrix &x) const;

    /**
     * fp32 inference lane: the same layer stack as inferRows, run on
     * float32 snapshots of the weights with fused, explicitly
     * vectorizable linear+bias+ReLU kernels (see linearF32). Results
     * agree with inferRows to single-precision tolerance, not bit-exact;
     * callers opt in via KernelPredictor::Precision. Requires syncF32()
     * after the parameters were trained or loaded.
     */
    MatrixF32 inferRowsF32(const MatrixF32 &x) const;

    /**
     * (Re)build the fp32 weight snapshots from the current parameter
     * values. Call once after training or loadParameters, before any
     * inferRowsF32 call, and never concurrently with inference — the
     * same single-writer rule the rest of the predictor stack follows.
     */
    void syncF32();

    /** True once syncF32 has captured the current parameters. */
    bool f32Ready() const { return !w32.empty(); }

    size_t inputDim() const override { return config.inputDim; }

    /** The construction configuration. */
    const MlpConfig &configuration() const { return config; }

  private:
    MlpConfig config;
    std::vector<Linear> layers;
    std::vector<MatrixF32> w32; ///< fp32 weight snapshots (syncF32).
    std::vector<MatrixF32> b32; ///< fp32 bias snapshots (syncF32).
};

/** Configuration for TransformerRegressor. */
struct TransformerConfig
{
    /** Number of scalar input features; each becomes one token. */
    size_t numFeatures = 5;
    size_t dModel = 32;
    size_t numLayers = 3;
    size_t numHeads = 4;
    size_t ffDim = 64;
    uint64_t seed = 1;
};

/**
 * Pre-LN transformer encoder over feature tokens with mean pooling and a
 * linear regression head. Used only as the "larger predictor" baseline in
 * the Table-1 reproduction.
 */
class TransformerRegressor : public Module
{
  public:
    /** Build and initialize per @p config. */
    explicit TransformerRegressor(const TransformerConfig &config);

    Var forward(const Var &x) override;

    size_t inputDim() const override { return config.numFeatures; }

  private:
    struct Block
    {
        Linear wq, wk, wv, wo, ff1, ff2;
        Var ln1Gain, ln1Bias, ln2Gain, ln2Bias;
    };

    TransformerConfig config;
    Var tokenW, tokenB, posTable;
    std::vector<Block> blocks;
    Var finalGain, finalBias;
    Linear head;
};

} // namespace neusight::nn

#endif // NEUSIGHT_NN_MODULE_HPP
