/**
 * @file
 * Generic mini-batch training loop shared by the NeuSight predictors and
 * the learned baselines. The forward pass is a callback so callers can
 * thread per-sample auxiliary data (wave counts, roofline constants)
 * through the prediction graph — NeuSight trains *through* the utilization
 * law and latency inversion, not on raw labels.
 */

#ifndef NEUSIGHT_NN_TRAINER_HPP
#define NEUSIGHT_NN_TRAINER_HPP

#include <functional>
#include <vector>

#include "nn/loss.hpp"
#include "nn/module.hpp"
#include "nn/optimizer.hpp"

namespace neusight::nn {

/** A mini-batch handed to the forward callback. */
struct Batch
{
    /** (B, inputDim) feature block, already gathered. */
    Matrix x;
    /** Targets aligned with rows of x. */
    std::vector<double> y;
    /** Original dataset row of each batch row (for auxiliary lookups). */
    std::vector<size_t> indices;
};

/** Training-loop configuration (paper Section 6.1 defaults). */
struct TrainConfig
{
    size_t epochs = 100;
    size_t batchSize = 64;
    double lr = 1e-3;
    /** Multiplicative LR decay applied each epoch. */
    double lrDecay = 0.99;
    double weightDecay = 1e-4;
    LossKind loss = LossKind::Smape;
    double validationFraction = 0.2;
    uint64_t seed = 7;
    bool verbose = false;
};

/** Loss trajectory of one fit() call. */
struct TrainHistory
{
    std::vector<double> trainLoss;
    std::vector<double> valLoss;

    /** Final training loss (0 when no epochs ran). */
    double
    finalTrainLoss() const
    {
        return trainLoss.empty() ? 0.0 : trainLoss.back();
    }

    /** Final validation loss (0 when no validation split). */
    double
    finalValLoss() const
    {
        return valLoss.empty() ? 0.0 : valLoss.back();
    }
};

/**
 * Builds the differentiable prediction (B,1) for a batch. The callback owns
 * the module reference and any auxiliary per-sample vectors.
 */
using ForwardFn = std::function<Var(const Batch &)>;

/**
 * Train @p module on (X, y) with AdamW.
 *
 * @param module  Model whose parameters are optimized.
 * @param x       (N, inputDim) features.
 * @param y       N targets.
 * @param fwd     Differentiable forward pass for one batch.
 * @param config  Loop hyper-parameters.
 * @return loss history (train and validation per epoch).
 */
TrainHistory fit(Module &module, const Matrix &x,
                 const std::vector<double> &y, const ForwardFn &fwd,
                 const TrainConfig &config);

/** Gather the given rows of @p x into a dense batch matrix. */
Matrix gatherRows(const Matrix &x, const std::vector<size_t> &rows);

} // namespace neusight::nn

#endif // NEUSIGHT_NN_TRAINER_HPP
