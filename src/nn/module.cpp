#include "nn/module.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <istream>
#include <ostream>

#include "common/logging.hpp"

namespace neusight::nn {

Var
Linear::forward(const Var &x) const
{
    return addRowBroadcastAv(matmulAv(x, weight), bias);
}

void
Module::zeroGrad()
{
    for (auto &p : params) {
        p.node()->ensureGrad().setZero();
    }
}

size_t
Module::parameterCount() const
{
    size_t total = 0;
    for (const auto &p : params)
        total += p.value().size();
    return total;
}

namespace {
constexpr uint32_t kMagic = 0x4e535731; // "NSW1"
} // namespace

void
Module::saveParameters(std::ostream &out) const
{
    const uint32_t magic = kMagic;
    const uint64_t count = params.size();
    out.write(reinterpret_cast<const char *>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char *>(&count), sizeof(count));
    for (const auto &p : params) {
        const uint64_t rows = p.value().rows();
        const uint64_t cols = p.value().cols();
        out.write(reinterpret_cast<const char *>(&rows), sizeof(rows));
        out.write(reinterpret_cast<const char *>(&cols), sizeof(cols));
        out.write(reinterpret_cast<const char *>(p.value().raw()),
                  static_cast<std::streamsize>(sizeof(double) *
                                               p.value().size()));
    }
    if (!out)
        fatal("Module::saveParameters: write failed");
}

void
Module::loadParameters(std::istream &in)
{
    uint32_t magic = 0;
    uint64_t count = 0;
    in.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    in.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!in || magic != kMagic)
        fatal("Module::loadParameters: bad header");
    if (count != params.size())
        fatal("Module::loadParameters: parameter count mismatch (file has " +
              std::to_string(count) + ", module has " +
              std::to_string(params.size()) + ")");
    for (auto &p : params) {
        uint64_t rows = 0;
        uint64_t cols = 0;
        in.read(reinterpret_cast<char *>(&rows), sizeof(rows));
        in.read(reinterpret_cast<char *>(&cols), sizeof(cols));
        if (!in || rows != p.value().rows() || cols != p.value().cols())
            fatal("Module::loadParameters: shape mismatch for '" +
                  p.node()->name + "'");
        in.read(reinterpret_cast<char *>(
                    const_cast<Matrix &>(p.value()).raw()),
                static_cast<std::streamsize>(sizeof(double) * rows * cols));
    }
    if (!in)
        fatal("Module::loadParameters: truncated file");
}

Var
Module::registerParameter(Matrix init, const std::string &name)
{
    Var p = parameter(std::move(init), name);
    params.push_back(p);
    return p;
}

Linear
Module::makeLinear(size_t in, size_t out, Rng &rng, const std::string &name)
{
    Var w = registerParameter(kaimingInit(in, out, rng), name + ".weight");
    Var b = registerParameter(Matrix(1, out), name + ".bias");
    return Linear(w, b);
}

Matrix
Module::kaimingInit(size_t rows, size_t cols, Rng &rng)
{
    Matrix w(rows, cols);
    const double std_dev = std::sqrt(2.0 / static_cast<double>(rows));
    for (size_t i = 0; i < w.size(); ++i)
        w.raw()[i] = rng.normal(0.0, std_dev);
    return w;
}

Mlp::Mlp(const MlpConfig &config_) : config(config_)
{
    ensure(config.inputDim > 0 && config.hiddenDim > 0 &&
               config.outputDim > 0,
           "MlpConfig: dimensions must be positive");
    Rng rng(config.seed);
    size_t in = config.inputDim;
    for (size_t l = 0; l < config.hiddenLayers; ++l) {
        layers.push_back(
            makeLinear(in, config.hiddenDim, rng,
                       "mlp.hidden" + std::to_string(l)));
        in = config.hiddenDim;
    }
    layers.push_back(makeLinear(in, config.outputDim, rng, "mlp.out"));
}

Var
Mlp::forward(const Var &x)
{
    Var h = x;
    for (size_t l = 0; l + 1 < layers.size(); ++l)
        h = reluAv(layers[l].forward(h));
    return layers.back().forward(h);
}

Matrix
Mlp::inferRows(const Matrix &x) const
{
    ensure(x.cols() == config.inputDim,
           "Mlp::inferRows: feature width mismatch");
    // Mirror forward() kernel-for-kernel (matmul, row-broadcast bias,
    // max(0, .)) so the two paths stay bit-identical.
    Matrix h = x;
    for (size_t l = 0; l < layers.size(); ++l) {
        h = addRowBroadcast(matmul(h, layers[l].weight.value()),
                            layers[l].bias.value());
        if (l + 1 < layers.size())
            for (size_t i = 0; i < h.size(); ++i)
                h.raw()[i] = std::max(h.raw()[i], 0.0);
    }
    return h;
}

void
Mlp::syncF32()
{
    w32.clear();
    b32.clear();
    w32.reserve(layers.size());
    b32.reserve(layers.size());
    for (const Linear &layer : layers) {
        w32.push_back(MatrixF32::fromMatrix(layer.weight.value()));
        b32.push_back(MatrixF32::fromMatrix(layer.bias.value()));
    }
}

MatrixF32
Mlp::inferRowsF32(const MatrixF32 &x) const
{
    ensure(x.cols() == config.inputDim,
           "Mlp::inferRowsF32: feature width mismatch");
    ensure(f32Ready(), "Mlp::inferRowsF32: call syncF32() first");
    MatrixF32 h = x;
    for (size_t l = 0; l < layers.size(); ++l)
        h = linearF32(h, w32[l], b32[l],
                      /*applyRelu=*/l + 1 < layers.size());
    return h;
}

TransformerRegressor::TransformerRegressor(const TransformerConfig &config_)
    : config(config_)
{
    ensure(config.dModel % config.numHeads == 0,
           "TransformerConfig: dModel must divide numHeads");
    Rng rng(config.seed);
    const size_t f = config.numFeatures;
    const size_t d = config.dModel;

    tokenW = registerParameter(kaimingInit(f, d, rng), "tok.weight");
    tokenB = registerParameter(Matrix(f, d), "tok.bias");
    Matrix pos(f, d);
    for (size_t i = 0; i < pos.size(); ++i)
        pos.raw()[i] = rng.normal(0.0, 0.02);
    posTable = registerParameter(std::move(pos), "tok.pos");

    for (size_t l = 0; l < config.numLayers; ++l) {
        Block blk;
        const std::string base = "enc" + std::to_string(l);
        blk.wq = makeLinear(d, d, rng, base + ".wq");
        blk.wk = makeLinear(d, d, rng, base + ".wk");
        blk.wv = makeLinear(d, d, rng, base + ".wv");
        blk.wo = makeLinear(d, d, rng, base + ".wo");
        blk.ff1 = makeLinear(d, config.ffDim, rng, base + ".ff1");
        blk.ff2 = makeLinear(config.ffDim, d, rng, base + ".ff2");
        blk.ln1Gain = registerParameter(Matrix(1, d, 1.0), base + ".ln1.g");
        blk.ln1Bias = registerParameter(Matrix(1, d), base + ".ln1.b");
        blk.ln2Gain = registerParameter(Matrix(1, d, 1.0), base + ".ln2.g");
        blk.ln2Bias = registerParameter(Matrix(1, d), base + ".ln2.b");
        blocks.push_back(std::move(blk));
    }
    finalGain = registerParameter(Matrix(1, d, 1.0), "final.ln.g");
    finalBias = registerParameter(Matrix(1, d), "final.ln.b");
    head = makeLinear(d, 1, rng, "head");
}

Var
TransformerRegressor::forward(const Var &x)
{
    const size_t f = config.numFeatures;
    ensure(x.value().cols() == f,
           "TransformerRegressor: feature width mismatch");
    Var tokens = tokenizeFeaturesAv(x, tokenW, tokenB);
    Var h = addBlockBroadcastAv(tokens, posTable);
    for (const auto &blk : blocks) {
        // Pre-LN attention sub-block.
        Var normed = layerNormRowsAv(h, blk.ln1Gain, blk.ln1Bias);
        Var attn = blockAttentionAv(blk.wq.forward(normed),
                                    blk.wk.forward(normed),
                                    blk.wv.forward(normed), f,
                                    config.numHeads);
        h = addAv(h, blk.wo.forward(attn));
        // Pre-LN feed-forward sub-block.
        Var normed2 = layerNormRowsAv(h, blk.ln2Gain, blk.ln2Bias);
        Var ff = blk.ff2.forward(geluAv(blk.ff1.forward(normed2)));
        h = addAv(h, ff);
    }
    Var pooled = meanPoolBlocksAv(
        layerNormRowsAv(h, finalGain, finalBias), f);
    return head.forward(pooled);
}

} // namespace neusight::nn
