/**
 * @file
 * Regression losses. The paper trains the Habitat baseline with MAPE and
 * NeuSight with symmetric MAPE (Tofallis 2015); MSE and Huber are provided
 * for tests and ablations.
 */

#ifndef NEUSIGHT_NN_LOSS_HPP
#define NEUSIGHT_NN_LOSS_HPP

#include <vector>

#include "nn/autograd.hpp"

namespace neusight::nn {

/** Supported loss functions. */
enum class LossKind
{
    Mse,
    Mape,
    Smape,
    Huber,
};

/** Human-readable loss name. */
const char *lossName(LossKind kind);

/**
 * Scalar loss between predictions (B,1) and targets (length B).
 * Differentiable with respect to @p pred.
 */
Var lossAv(const Var &pred, const std::vector<double> &target, LossKind kind);

/** Non-differentiating evaluation of the same losses. */
double lossValue(const std::vector<double> &pred,
                 const std::vector<double> &target, LossKind kind);

} // namespace neusight::nn

#endif // NEUSIGHT_NN_LOSS_HPP
