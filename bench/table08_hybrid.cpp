/**
 * @file
 * Table 8 hybrid extension: composed TP x PP x DP strategy sweeps on the
 * two 4-GPU servers of the paper's Table 8 — GPT2-Large (memory-easy)
 * and GPT3-2.7B (memory-bound on the 40 GB A100) at global batch 16.
 * For each (model, server) the full sweep of
 * (tp, pp, dp, micro-batches, schedule, recompute) is ranked by the
 * NeuSight + estimated-collectives forecast; the top strategies and
 * every runnable point go to the CSV artifact. A third, scale-out
 * sweep — GPT3-2.7B at global batch 32 on 8x A100-40GB, where pure DP
 * cannot replicate the optimizer state and tp8 pays 8-way per-layer
 * collectives — asserts the sweep's headline claim: the best hybrid
 * strategy beats every single-axis plan. The bench exits nonzero if
 * calibration ever drifts away from it.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "dist/parallel.hpp"
#include "serve/prediction_cache.hpp"

using namespace neusight;

int
main()
{
    setQuiet(false);
    core::NeuSight &neusight = bench::nvidiaNeuSight();
    // Sweeps re-predict near-identical stage graphs; cache the kernels.
    neusight.attachCache(
        std::make_shared<serve::PredictionCache>(1 << 16));
    const dist::EstimatedCollectives estimator("A100-NVLink", 600.0);

    std::vector<dist::ServerConfig> servers(3);
    servers[0].systemName = "A100-NVLink";
    servers[0].gpuName = "A100-40GB";
    servers[0].numGpus = 4;
    servers[1].systemName = "H100-DGX";
    servers[1].gpuName = "H100";
    servers[1].numGpus = 4;
    servers[2].systemName = "A100-NVLink-x8";
    servers[2].gpuName = "A100-40GB";
    servers[2].numGpus = 8;

    // The 8-GPU server only runs the scale-out flagship workload.
    const std::vector<std::pair<std::string, uint64_t>> workloads = {
        {"GPT2-Large", 16}, {"GPT3-2.7B", 16}, {"GPT3-2.7B", 32}};

    TextTable table("Table 8 (hybrid): best composed strategies per "
                    "server, global batch 16",
                    {"Model", "Server", "Rank", "Strategy", "Micro",
                     "Schedule", "Recompute", "Predicted ms",
                     "Mem GB/GPU"});
    CsvWriter csv(bench::csvPath("table08_hybrid"),
                  {"model", "server", "rank", "tp", "pp", "dp",
                   "micro_batches", "schedule", "recompute",
                   "predicted_ms", "bubble_ms", "exposed_ddp_ms",
                   "recompute_ms", "mem_gb_per_gpu", "comm_gb"});

    bool memory_bound_claim_holds = false;
    for (const auto &[model_name, batch] : workloads) {
        const auto &model = graph::findModel(model_name);
        for (const auto &server : servers) {
            const bool flagship = server.numGpus == 8;
            if (flagship != (model_name == "GPT3-2.7B" && batch == 32))
                continue;
            // This bench audits (and archives as CSV) the complete
            // ranked space, so it opts out of branch-and-bound pruning;
            // the cross-point stage-price memo and the thread pool
            // still apply.
            dist::SweepOptions options;
            options.exhaustive = true;
            const auto entries = dist::sweepStrategies(
                neusight, estimator, server, model, batch, options);
            if (entries.empty()) {
                std::fprintf(stderr,
                             "no runnable strategy for %s on %s\n",
                             model_name.c_str(),
                             server.systemName.c_str());
                return 1;
            }
            for (size_t i = 0; i < entries.size(); ++i) {
                const auto &e = entries[i];
                if (i < 5)
                    table.addRow(
                        {model_name, server.systemName,
                         std::to_string(i + 1), e.config.describe(),
                         std::to_string(e.config.numMicroBatches),
                         e.config.ppDegree > 1
                             ? dist::pipelineScheduleName(
                                   e.config.schedule)
                             : "-",
                         e.config.recomputeActivations ? "yes" : "no",
                         TextTable::num(e.result.latencyMs, 1),
                         TextTable::num(e.result.memoryBytes / 1e9, 1)});
                csv.writeRow(
                    {model_name, server.systemName, std::to_string(i + 1),
                     std::to_string(e.config.tpDegree),
                     std::to_string(e.config.ppDegree),
                     std::to_string(e.config.dpDegree),
                     std::to_string(e.config.numMicroBatches),
                     dist::pipelineScheduleName(e.config.schedule),
                     e.config.recomputeActivations ? "1" : "0",
                     CsvWriter::fmt(e.result.latencyMs, 2),
                     CsvWriter::fmt(e.result.bubbleMs, 2),
                     CsvWriter::fmt(e.result.exposedDdpMs, 2),
                     CsvWriter::fmt(e.result.recomputeMs, 2),
                     CsvWriter::fmt(e.result.memoryBytes / 1e9, 2),
                     CsvWriter::fmt(e.result.commBytes / 1e9, 2)});
            }

            // The memory-bound flagship case: pure DP cannot fit
            // GPT3-2.7B on the 40 GB A100 and tp8 pays 8-way
            // collectives, so composing axes must win.
            if (flagship) {
                const auto &winner = entries.front();
                const dist::SweepEntry *best_single =
                    dist::bestSingleAxisEntry(entries);
                if (winner.config.activeAxes() >= 2 &&
                    best_single != nullptr &&
                    winner.result.latencyMs <
                        best_single->result.latencyMs) {
                    memory_bound_claim_holds = true;
                    std::printf("\n%s on 8x A100-40GB: hybrid %s "
                                "(%.1f ms) beats the best single-axis "
                                "%s (%.1f ms) by %.2fx.\n",
                                model_name.c_str(),
                                winner.config.describe().c_str(),
                                winner.result.latencyMs,
                                best_single->config.describe().c_str(),
                                best_single->result.latencyMs,
                                best_single->result.latencyMs /
                                    winner.result.latencyMs);
                }
            }
        }
    }
    table.print();
    if (!memory_bound_claim_holds) {
        std::fprintf(stderr,
                     "FAIL: the sweep winner for GPT3-2.7B on 8x "
                     "A100-40GB is no longer a hybrid strategy faster "
                     "than every single-axis plan\n");
        return 1;
    }
    return 0;
}
