/**
 * @file
 * Table 2 reproduction: measured compute utilization of the H100 when
 * executing a (512x64) x (64x512) batched matrix multiplication across
 * batch sizes — GPUs rarely reach peak FLOPS at modest occupancy.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "gpusim/device.hpp"

using namespace neusight;

int
main()
{
    const gpusim::GpuSpec &h100 = gpusim::findGpu("H100");
    const gpusim::Device device(h100);

    TextTable table("Table 2: H100 peak-FLOPS utilization, "
                    "(512x64)x(64x512) matmul",
                    {"Batch size", "Waves", "Utilization"});
    CsvWriter csv(bench::csvPath("table02_h100_utilization"),
                  {"batch", "waves", "utilization_pct"});

    for (uint64_t batch : {32u, 64u, 128u, 256u, 512u}) {
        const auto desc = gpusim::makeBmm(batch, 512, 512, 64);
        const gpusim::KernelLaunch launch = device.profileKernel(desc);
        // Achieved fraction of peak FLOPS from the measured latency.
        const double achieved =
            desc.flops / (launch.latencyMs * 1e-3) / h100.peakFlops();
        table.addRow({std::to_string(batch),
                      std::to_string(launch.numWaves),
                      TextTable::pct(achieved * 100.0)});
        csv.writeRow({std::to_string(batch),
                      std::to_string(launch.numWaves),
                      CsvWriter::fmt(achieved * 100.0, 1)});
    }
    table.print();
    std::printf("\nPaper reports: 53.2%% / 70.7%% / 69.4%% / 72.3%% / "
                "86.0%% for batch 32..512.\n");
    return 0;
}
