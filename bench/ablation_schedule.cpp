/**
 * @file
 * Extension study (paper Section 5.1: the GPipe schedule "can be easily
 * extended to other schedules"): micro-batched GPipe vs 1F1B on a
 * 4-stage pipeline. The two schedules share the ideal (M + S - 1)-slot
 * latency; the study shows (a) the bubble fraction shrinking as
 * micro-batches amortize the fill/drain slots and (b) the memory
 * frontier — the activation stash is M micro-batches under GPipe but at
 * most S under 1F1B, so 1F1B keeps fitting where GPipe runs out of HBM.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "dist/parallel.hpp"
#include "eval/oracle.hpp"

using namespace neusight;

int
main()
{
    setQuiet(false);
    const eval::SimulatorOracle oracle;
    const dist::SimCollectives comms("V100-server");
    dist::ServerConfig server;
    server.systemName = "V100-server";
    server.gpuName = "V100";
    server.numGpus = 4;
    const auto &model = graph::findModel("GPT2-Large");

    TextTable table("GPipe vs 1F1B, GPT2-Large on 4x V100, "
                    "micro-batch size 1",
                    {"micro-batches", "bubble frac", "GPipe (ms)",
                     "1F1B (ms)", "GPipe stash", "1F1B stash"});
    CsvWriter csv(bench::csvPath("ablation_schedule"),
                  {"micro_batches", "bubble_fraction", "gpipe_ms",
                   "ofob_ms", "gpipe_oom", "ofob_oom"});

    for (int m : {1, 2, 4, 8, 16, 32}) {
        dist::PipelineConfig gpipe;
        gpipe.numMicroBatches = m;
        gpipe.schedule = dist::PipelineSchedule::GPipe;
        dist::PipelineConfig ofob = gpipe;
        ofob.schedule = dist::PipelineSchedule::OneFOneB;

        const auto a = dist::pipelineTrainingMs(
            oracle, comms, server, model, static_cast<uint64_t>(m), gpipe);
        const auto b = dist::pipelineTrainingMs(
            oracle, comms, server, model, static_cast<uint64_t>(m), ofob);

        const double bubble = 3.0 / (static_cast<double>(m) + 3.0);
        table.addRow(
            {std::to_string(m), TextTable::pct(100.0 * bubble),
             a.oom ? "OOM" : TextTable::num(a.latencyMs, 1),
             b.oom ? "OOM" : TextTable::num(b.latencyMs, 1),
             std::to_string(m) + " micro",
             std::to_string(std::min(m, server.numGpus)) + " micro"});
        csv.writeRow({std::to_string(m), CsvWriter::fmt(bubble),
                      a.oom ? "" : CsvWriter::fmt(a.latencyMs, 2),
                      b.oom ? "" : CsvWriter::fmt(b.latencyMs, 2),
                      a.oom ? "1" : "0", b.oom ? "1" : "0"});
    }
    table.print();
    std::printf("\nSame-M rows share latency by construction; the frontier "
                "is memory — 1F1B's stash caps at the stage count.\n");
    return 0;
}
