/**
 * @file
 * Socket load generator: drives the TCP front-end (net::runFrontend)
 * end to end — fork a server, replay a mixed hot-cache request stream
 * over real sockets from pipelined client connections, and report
 * req/s plus end-to-end latency quantiles per shard count. The gate
 * compares the highest shard count against shards=1: multi-process
 * sharding must not lose throughput on a hot-cache workload (and is
 * expected to gain, since shards own disjoint cache populations).
 *
 *   bench_load_generator --requests 1000000 --shards 1,4 \
 *       --json BENCH_net.json --min-scaling 1.0
 *
 * --chaos turns each run into a fault-tolerance benchmark: a chaos
 * thread SIGKILLs a live shard worker every --chaos-period-ms while
 * the clients keep driving load, and the report gains the kill count,
 * the error rate (typed errors are tolerated, not required to be
 * zero), and recovery-time quantiles (kill to respawned worker).
 */

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <unordered_map>
#include <vector>

#include "api/engine.hpp"
#include "common/argparse.hpp"
#include "common/json.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "net/frontend.hpp"
#include "net/io.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

namespace {

using namespace neusight;

std::vector<std::string>
splitList(const std::string &value)
{
    std::vector<std::string> items;
    std::stringstream ss(value);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            items.push_back(item);
    return items;
}

/**
 * The mixed hot-cache wire workload: a few models at a few batch sizes
 * and context lengths — a modest set of distinct fingerprints hit over
 * and over (the production pattern), pre-encoded once so the timed
 * loop's client-side cost is a write() per line.
 */
std::vector<std::string>
buildRequestLines()
{
    const std::vector<std::string> models = {"GPT2-Large", "GPT3-XL",
                                             "BERT-Large", "OPT-1.3B"};
    std::vector<std::string> lines;
    for (size_t m = 0; m < models.size(); ++m) {
        for (uint64_t batch = 1; batch <= 4; ++batch) {
            common::Json prefill;
            prefill.set("op", "inference");
            prefill.set("model", models[m]);
            prefill.set("batch", batch);
            prefill.set("gpu", "H100");
            lines.push_back(prefill.dump(0));
            common::Json decode;
            decode.set("op", "decode");
            decode.set("model", models[m]);
            decode.set("batch", batch);
            decode.set("past", 256 * batch);
            decode.set("gpu", "H100");
            lines.push_back(decode.dump(0));
        }
    }
    return lines;
}

/** Fork a TCP server child; returns its pid and the bound port. */
pid_t
spawnServer(size_t shards, size_t workers, bool chaos,
            uint16_t *port_out)
{
    int report[2];
    if (::pipe(report) != 0)
        fatal(std::string("load_generator: pipe failed: ") +
              strerror(errno));
    const pid_t pid = ::fork();
    if (pid < 0)
        fatal(std::string("load_generator: fork failed: ") +
              strerror(errno));
    if (pid == 0) {
        net::closeFd(report[0]);
        net::FrontendOptions fopt;
        fopt.port = 0;
        fopt.shards = shards;
        fopt.portReportFd = report[1];
        fopt.readyLabel = ""; // The port pipe is the ready signal.
        if (chaos) {
            // Under kill injection no request may hang forever, and a
            // fast heartbeat keeps detection off the critical path.
            fopt.requestTimeoutMs = 10000;
            fopt.heartbeatIntervalMs = 200;
        }
        const auto factory = [workers]() {
            auto engine = std::make_shared<api::ForecastEngine>(
                api::EngineConfig().backend("oracle"));
            engine->backend();
            serve::ServerOptions options;
            options.workers = workers;
            options.cache = engine->predictionCache();
            return std::make_unique<serve::ForecastServer>(engine,
                                                           options);
        };
        std::_Exit(net::runFrontend(fopt, factory));
    }
    net::closeFd(report[1]);
    // Read "<port>\n" — written once the socket listens, so connecting
    // after this read can never race the bind.
    std::string text;
    char c = 0;
    while (net::readRetry(report[0], &c, 1) == 1 && c != '\n')
        text.push_back(c);
    net::closeFd(report[0]);
    if (text.empty())
        fatal("load_generator: server child died before listening");
    *port_out = static_cast<uint16_t>(std::stoul(text));
    return pid;
}

/** One connection's share of the load, pipelined @p window deep. */
void
clientLoop(uint16_t port, const std::vector<std::string> &lines,
           size_t requests, size_t window, size_t offset,
           obs::Histogram &latency, std::atomic<uint64_t> &errors)
{
    const int fd = net::connectTcp("127.0.0.1", port);
    if (fd < 0)
        fatal(std::string("load_generator: connect failed: ") +
              strerror(errno));
    serve::LineFramer framer;
    std::unordered_map<uint64_t, std::chrono::steady_clock::time_point>
        sent;
    uint64_t next_tag = 0;
    size_t inflight = 0;

    const auto readReply = [&]() {
        std::string line;
        for (;;) {
            if (framer.next(line) == serve::LineFramer::Event::Line) {
                const auto now = std::chrono::steady_clock::now();
                uint64_t tag = UINT64_MAX;
                bool ok = false;
                try {
                    const common::Json json = common::Json::parse(line);
                    tag = static_cast<uint64_t>(
                        std::stoull(json.stringOr("tag", "")));
                    ok = json.boolOr("ok", false);
                } catch (const std::exception &) {
                }
                const auto it = sent.find(tag);
                if (it == sent.end()) {
                    errors.fetch_add(1, std::memory_order_relaxed);
                    return;
                }
                if (ok)
                    latency.record(
                        std::chrono::duration<double, std::micro>(
                            now - it->second)
                            .count());
                else
                    errors.fetch_add(1, std::memory_order_relaxed);
                sent.erase(it);
                return;
            }
            char buf[64 * 1024];
            const ssize_t n = net::readRetry(fd, buf, sizeof(buf));
            if (n <= 0)
                fatal("load_generator: server closed the connection "
                      "mid-run");
            framer.feed(buf, static_cast<size_t>(n));
        }
    };

    for (size_t i = 0; i < requests; ++i) {
        while (inflight >= window) {
            readReply();
            --inflight;
        }
        const uint64_t tag = next_tag++;
        // Append the tag into the pre-encoded line: ...} -> ...,"tag":"N"}
        std::string line = lines[(offset + i) % lines.size()];
        line.pop_back();
        line += ",\"tag\":\"" + std::to_string(tag) + "\"}\n";
        sent.emplace(tag, std::chrono::steady_clock::now());
        if (!net::writeFully(fd, line.data(), line.size()))
            fatal("load_generator: write failed mid-run");
        ++inflight;
    }
    while (inflight > 0) {
        readReply();
        --inflight;
    }
    ::shutdown(fd, SHUT_WR);
    net::closeFd(fd);
}

/** The server's direct children (= live shard workers). */
std::vector<pid_t>
childrenOf(pid_t pid)
{
    const std::string path = "/proc/" + std::to_string(pid) + "/task/" +
                             std::to_string(pid) + "/children";
    std::ifstream in(path);
    std::vector<pid_t> pids;
    long long child = 0;
    while (in >> child)
        pids.push_back(static_cast<pid_t>(child));
    return pids;
}

/**
 * The chaos thread: every @p period_ms, SIGKILL one live shard worker
 * (rotating across the fleet) and time how long the supervisor takes
 * to bring the fleet back to strength — kill to respawned child, as
 * seen from /proc. Runs until @p done; skips a round while a previous
 * kill is still recovering.
 */
void
chaosLoop(pid_t server, size_t shards, int period_ms,
          std::atomic<bool> &done, obs::Histogram &recovery_ms,
          std::atomic<uint64_t> &kills)
{
    const auto sleepUnlessDone = [&done](int ms) {
        for (int waited = 0; waited < ms && !done.load(); waited += 5)
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
    };
    while (!done.load()) {
        sleepUnlessDone(period_ms);
        if (done.load())
            return;
        const std::vector<pid_t> pids = childrenOf(server);
        if (pids.size() < shards)
            continue; // Still short-handed from the previous kill.
        const pid_t victim =
            pids[static_cast<size_t>(kills.load()) % pids.size()];
        if (::kill(victim, SIGKILL) != 0)
            continue;
        kills.fetch_add(1);
        const auto killed_at = std::chrono::steady_clock::now();
        // The dead child leaves /proc once the router reaps it; the
        // fleet is whole again once the respawned worker appears.
        bool shrank = false;
        while (!done.load()) {
            const size_t alive = childrenOf(server).size();
            if (alive < shards)
                shrank = true;
            else if (shrank) {
                recovery_ms.record(
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - killed_at)
                        .count());
                break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    }
}

struct RunResult
{
    double reqPerSec = 0.0;
    double p50Us = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;
    uint64_t errors = 0;
    uint64_t answered = 0;
    uint64_t kills = 0;
    double errorRate = 0.0;
    double recoveryP50Ms = 0.0;
    double recoveryP99Ms = 0.0;
};

RunResult
runOnce(size_t shards, size_t workers, size_t requests,
        size_t connections, size_t window,
        const std::vector<std::string> &lines, bool chaos,
        int chaos_period_ms)
{
    uint16_t port = 0;
    const pid_t server = spawnServer(shards, workers, chaos, &port);

    obs::Histogram latency;
    obs::Histogram recovery_ms;
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> kills{0};
    std::atomic<bool> chaos_done{false};
    std::thread chaos_thread;
    if (chaos && shards > 1)
        chaos_thread = std::thread(chaosLoop, server, shards,
                                   chaos_period_ms, std::ref(chaos_done),
                                   std::ref(recovery_ms),
                                   std::ref(kills));
    std::vector<std::thread> clients;
    const size_t per_conn = requests / connections;
    const auto start = std::chrono::steady_clock::now();
    for (size_t c = 0; c < connections; ++c) {
        const size_t extra = c == 0 ? requests % connections : 0;
        clients.emplace_back(clientLoop, port, std::cref(lines),
                             per_conn + extra, window,
                             c * 7919 /* decorrelate the mixes */,
                             std::ref(latency), std::ref(errors));
    }
    for (std::thread &t : clients)
        t.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (chaos_thread.joinable()) {
        chaos_done.store(true);
        chaos_thread.join();
    }

    ::kill(server, SIGTERM);
    int status = 0;
    pid_t rc;
    do {
        rc = ::waitpid(server, &status, 0);
    } while (rc < 0 && errno == EINTR);
    ensure(rc == server && WIFEXITED(status) && WEXITSTATUS(status) == 0,
           "load_generator: server did not drain cleanly on SIGTERM");

    RunResult out;
    out.answered = latency.count();
    out.errors = errors.load();
    out.reqPerSec =
        static_cast<double>(requests) / std::max(seconds, 1e-9);
    out.p50Us = latency.quantile(0.50);
    out.p99Us = latency.quantile(0.99);
    out.p999Us = latency.quantile(0.999);
    out.kills = kills.load();
    out.errorRate = static_cast<double>(out.errors) /
                    static_cast<double>(std::max<size_t>(requests, 1));
    out.recoveryP50Ms = recovery_ms.quantile(0.50);
    out.recoveryP99Ms = recovery_ms.quantile(0.99);
    return out;
}

int
run(int argc, const char *const *argv)
{
    common::ArgParser args(
        "bench_load_generator",
        "req/s and latency quantiles through the TCP front-end vs "
        "shard count");
    args.addInt("requests", 1000000, "requests per shard-count run");
    args.addString("shards", "1,4", "comma list of shard counts");
    args.addInt("workers", 2, "forecast workers per shard");
    args.addInt("connections", 8, "client connections");
    args.addInt("window", 64, "pipelined requests per connection");
    args.addString("json", "load_generator.json",
                   "JSON report output path");
    args.addDouble("min-scaling", 0.0,
                   "fail (exit 3) when req/s at the highest shard count "
                   "falls below this multiple of the shards=1 req/s; "
                   "0 disables");
    args.addFlag("chaos",
                 "SIGKILL a shard worker every --chaos-period-ms during "
                 "each run and report error rate plus recovery-time "
                 "quantiles (sharded runs only)");
    args.addInt("chaos-period-ms", 2000,
                "interval between chaos kills with --chaos");
    if (!args.parse(argc, argv))
        return 0;

    setQuiet(false);
    const int64_t requests = args.getInt("requests");
    const int64_t workers = args.getInt("workers");
    const int64_t connections = args.getInt("connections");
    const int64_t window = args.getInt("window");
    const bool chaos = args.getFlag("chaos");
    const int64_t chaos_period_ms = args.getInt("chaos-period-ms");
    if (requests < 1 || workers < 1 || connections < 1 || window < 1)
        fatal("--requests, --workers, --connections and --window must "
              "be at least 1");
    if (chaos && chaos_period_ms < 1)
        fatal("--chaos-period-ms must be at least 1");

    const std::vector<std::string> lines = buildRequestLines();

    TextTable table(
        "Socket front-end load (" + std::to_string(requests) +
            " requests, " + std::to_string(connections) +
            " connections, window " + std::to_string(window) +
            (chaos ? ", chaos" : "") + ")",
        {"shards", "req/s", "p50 (us)", "p99 (us)", "p999 (us)",
         "errors", "kills", "recover p99"});
    common::Json runs;
    double first_reqps = 0.0;
    double last_reqps = 0.0;
    for (const std::string &item : splitList(args.getString("shards"))) {
        const size_t shards = static_cast<size_t>(std::stoul(item));
        if (shards < 1)
            fatal("--shards entries must be at least 1");
        const RunResult r = runOnce(
            shards, static_cast<size_t>(workers),
            static_cast<size_t>(requests),
            static_cast<size_t>(connections),
            static_cast<size_t>(window), lines, chaos,
            static_cast<int>(chaos_period_ms));
        // Under chaos, typed errors (timeouts on a killed shard) are
        // part of the deal; every request still got exactly one reply.
        if (!chaos)
            ensure(r.errors == 0, "load_generator: " +
                                      std::to_string(r.errors) +
                                      " requests failed");
        ensure(r.answered + r.errors ==
                   static_cast<uint64_t>(requests),
               "load_generator: replies do not account for every "
               "request");
        if (first_reqps == 0.0)
            first_reqps = r.reqPerSec;
        last_reqps = r.reqPerSec;
        table.addRow({std::to_string(shards),
                      TextTable::num(r.reqPerSec, 0),
                      TextTable::num(r.p50Us, 0),
                      TextTable::num(r.p99Us, 0),
                      TextTable::num(r.p999Us, 0),
                      std::to_string(r.errors),
                      std::to_string(r.kills),
                      r.kills > 0
                          ? TextTable::num(r.recoveryP99Ms, 0) + " ms"
                          : "-"});
        common::Json entry;
        entry.set("shards", static_cast<uint64_t>(shards));
        entry.set("req_per_s", r.reqPerSec);
        entry.set("p50_us", r.p50Us);
        entry.set("p99_us", r.p99Us);
        entry.set("p999_us", r.p999Us);
        entry.set("answered", r.answered);
        entry.set("errors", r.errors);
        if (chaos) {
            entry.set("kills", r.kills);
            entry.set("error_rate", r.errorRate);
            entry.set("recovery_ms_p50", r.recoveryP50Ms);
            entry.set("recovery_ms_p99", r.recoveryP99Ms);
        }
        runs.push(std::move(entry));
    }
    table.print();

    const double scaling =
        first_reqps > 0.0 ? last_reqps / first_reqps : 0.0;
    std::printf("\nscaling (highest shard count vs 1): %.2fx\n", scaling);

    common::Json report;
    report.set("requests", static_cast<uint64_t>(requests));
    report.set("connections", static_cast<uint64_t>(connections));
    report.set("window", static_cast<uint64_t>(window));
    report.set("workers_per_shard", static_cast<uint64_t>(workers));
    report.set("chaos", chaos);
    if (chaos)
        report.set("chaos_period_ms",
                   static_cast<uint64_t>(chaos_period_ms));
    report.set("scaling", scaling);
    report.set("runs", std::move(runs));
    const std::string path = args.getString("json");
    std::ofstream out(path);
    if (!out)
        fatal("cannot write JSON report '" + path + "'");
    out << report.dump(2) << "\n";
    std::printf("JSON report written to %s\n", path.c_str());

    const double required = args.getDouble("min-scaling");
    if (required > 0.0 && scaling < required) {
        std::fprintf(stderr,
                     "load_generator: shard scaling %.2fx is below the "
                     "required %.2fx\n",
                     scaling, required);
        return 3;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    net::ignoreSigpipe();
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
