/**
 * @file
 * google-benchmark microbenchmarks of the framework itself: simulator
 * kernel measurement, NeuSight per-kernel prediction, full-graph
 * prediction, and graph construction. NeuSight's selling point over
 * cycle-accurate simulation is speed (Section 3: Accel-Sim needs ~18 h
 * for ResNet-50); these numbers document what this implementation costs.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "common/logging.hpp"
#include "eval/oracle.hpp"
#include "graph/fusion.hpp"
#include "graph/models.hpp"
#include "gpusim/device.hpp"

using namespace neusight;

namespace {

void
BM_SimulatorKernel(benchmark::State &state)
{
    const gpusim::Device device(gpusim::findGpu("H100"));
    const auto desc = gpusim::makeBmm(16, 2048, 2048, 2048);
    for (auto _ : state)
        benchmark::DoNotOptimize(device.measureKernelMs(desc));
}
BENCHMARK(BM_SimulatorKernel);

void
BM_NeuSightKernelPrediction(benchmark::State &state)
{
    core::NeuSight &framework = bench::nvidiaNeuSight();
    const gpusim::GpuSpec &gpu = gpusim::findGpu("H100");
    const auto desc = gpusim::makeBmm(16, 2048, 2048, 2048);
    for (auto _ : state)
        benchmark::DoNotOptimize(framework.predictKernelMs(desc, gpu));
}
BENCHMARK(BM_NeuSightKernelPrediction);

void
BM_GraphConstruction(benchmark::State &state)
{
    const auto &model = graph::findModel("GPT3-XL");
    for (auto _ : state)
        benchmark::DoNotOptimize(graph::buildTrainingGraph(model, 4));
}
BENCHMARK(BM_GraphConstruction);

void
BM_FusionPass(benchmark::State &state)
{
    const auto g =
        graph::buildInferenceGraph(graph::findModel("GPT2-Large"), 8);
    for (auto _ : state)
        benchmark::DoNotOptimize(graph::fuseGraph(g));
}
BENCHMARK(BM_FusionPass);

void
BM_EndToEndModelForecast(benchmark::State &state)
{
    core::NeuSight &framework = bench::nvidiaNeuSight();
    const gpusim::GpuSpec &gpu = gpusim::findGpu("H100");
    const auto g =
        graph::buildInferenceGraph(graph::findModel("GPT3-XL"), 2);
    for (auto _ : state)
        benchmark::DoNotOptimize(framework.predictGraphMs(g, gpu));
}
BENCHMARK(BM_EndToEndModelForecast);

void
BM_SimulatedModelMeasurement(benchmark::State &state)
{
    const eval::SimulatorOracle oracle;
    const gpusim::GpuSpec &gpu = gpusim::findGpu("H100");
    const auto g =
        graph::buildInferenceGraph(graph::findModel("GPT3-XL"), 2);
    for (auto _ : state)
        benchmark::DoNotOptimize(oracle.predictGraphMs(g, gpu));
}
BENCHMARK(BM_SimulatedModelMeasurement);

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    bench::nvidiaNeuSight(); // Train/load outside the timed regions.
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
