/**
 * @file
 * Figure 2 reproduction: prediction error of prior work (Habitat's MLP
 * and Li et al.'s linear regression) on batched matrix multiplication,
 * across matrix dimensions and GPUs. Both are trained only on GPUs up to
 * V100 (P4, P100, T4, V100) with dimensions up to 1024 and batch < 128;
 * larger dims and the A100s / L4 / H100 are out of distribution.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "baselines/habitat.hpp"
#include "baselines/li.hpp"
#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "eval/oracle.hpp"
#include "gpusim/device.hpp"

using namespace neusight;

namespace {

/** Fig. 2 training split: GPUs predating 2019. */
std::vector<gpusim::GpuSpec>
fig2TrainingGpus()
{
    std::vector<gpusim::GpuSpec> gpus;
    for (const char *name : {"P4", "P100", "V100", "T4"})
        gpus.push_back(gpusim::findGpu(name));
    return gpus;
}

/** MAPE of @p predictor on b=8 square BMMs of dimension @p dim. */
double
cellError(const graph::LatencyPredictor &predictor,
          const gpusim::GpuSpec &gpu, uint64_t dim)
{
    const gpusim::Device device(gpu);
    std::vector<double> pred;
    std::vector<double> meas;
    for (uint64_t batch : {4u, 8u, 16u}) {
        const auto desc = gpusim::makeBmm(batch, dim, dim, dim);
        meas.push_back(device.measureKernelMs(desc));
        pred.push_back(predictor.predictKernelMs(desc, gpu));
    }
    return meanAbsPercentageError(pred, meas);
}

} // namespace

int
main()
{
    setQuiet(false);
    inform("Figure 2: training Habitat and Li et al. on pre-2019 GPUs...");

    // Section 3.1 training data: dims up to 1024, small batches.
    dataset::SamplerConfig sampler = bench::defaultSampler();
    sampler.bmmSamples = 2400;
    const auto corpus =
        dataset::generateOperatorData(fig2TrainingGpus(), sampler);

    baselines::HabitatPredictor habitat;
    habitat.train(corpus);
    baselines::LiPredictor li;
    li.train(corpus);

    const std::vector<std::string> gpu_names = {
        "P100", "V100", "T4", "A100-40GB", "A100-80GB", "L4", "H100"};
    const std::vector<uint64_t> dims = {256, 512, 1024, 2048, 4096};

    CsvWriter csv(bench::csvPath("fig02_prior_work_bmm"),
                  {"predictor", "gpu", "dim", "ood_gpu", "ood_dim",
                   "error_pct"});

    const std::map<std::string, const graph::LatencyPredictor *>
        predictors = {{"Habitat (MLP)", &habitat},
                      {"Li et al. (linear regression)", &li}};
    for (const auto &[pname, predictor] : predictors) {
        std::vector<std::string> header = {"GPU \\ dim"};
        for (uint64_t d : dims)
            header.push_back(std::to_string(d) +
                             (d > 1024 ? " [OOD]" : ""));
        TextTable table("Figure 2: " + pname +
                            " percentage error on BMM (b=4/8/16)",
                        header);
        for (const auto &gname : gpu_names) {
            const gpusim::GpuSpec &gpu = gpusim::findGpu(gname);
            const bool ood_gpu = gpu.year >= 2019 || !gpu.inTrainingSet;
            std::vector<std::string> row = {
                gname + (ood_gpu ? " [OOD]" : "")};
            for (uint64_t d : dims) {
                const double err = cellError(*predictor, gpu, d);
                row.push_back(TextTable::pct(err));
                csv.writeRow({pname, gname, std::to_string(d),
                              ood_gpu ? "1" : "0", d > 1024 ? "1" : "0",
                              CsvWriter::fmt(err, 1)});
            }
            table.addRow(row);
        }
        table.print();
        std::printf("\n");
    }
    return 0;
}
