/**
 * @file
 * Table 6 reproduction: contribution of each operator family to the
 * end-to-end measured inference latency on H100 (BERT-Large b16,
 * GPT2-Large b4, OPT-1.3B b2, GPT3-XL b2).
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "eval/harness.hpp"
#include "graph/models.hpp"

using namespace neusight;

int
main()
{
    const gpusim::GpuSpec &h100 = gpusim::findGpu("H100");
    const std::vector<std::pair<std::string, uint64_t>> rows = {
        {"BERT-Large", 16}, {"GPT2-Large", 4}, {"OPT-1.3B", 2},
        {"GPT3-XL", 2}};

    TextTable table("Table 6: per-operator contribution to H100 "
                    "inference latency",
                    {"Model", "Batch", "BMM", "LINEAR", "EW", "SOFTMAX",
                     "LN", "OTHERS"});
    CsvWriter csv(bench::csvPath("table06_op_contribution"),
                  {"model", "batch", "bmm_pct", "linear_pct", "ew_pct",
                   "softmax_pct", "ln_pct", "others_pct"});

    for (const auto &[name, batch] : rows) {
        const auto g =
            graph::buildInferenceGraph(graph::findModel(name), batch);
        const auto contrib = eval::operatorContribution(g, h100);
        auto pct = [&](gpusim::OpType t) {
            return contrib.count(t) ? contrib.at(t) * 100.0 : 0.0;
        };
        table.addRow({name, std::to_string(batch),
                      TextTable::pct(pct(gpusim::OpType::BatchedMatmul)),
                      TextTable::pct(pct(gpusim::OpType::FullyConnected)),
                      TextTable::pct(pct(gpusim::OpType::Elementwise)),
                      TextTable::pct(pct(gpusim::OpType::Softmax)),
                      TextTable::pct(pct(gpusim::OpType::LayerNorm)),
                      TextTable::pct(pct(gpusim::OpType::Memory))});
        csv.writeRow(
            {name, std::to_string(batch),
             CsvWriter::fmt(pct(gpusim::OpType::BatchedMatmul), 1),
             CsvWriter::fmt(pct(gpusim::OpType::FullyConnected), 1),
             CsvWriter::fmt(pct(gpusim::OpType::Elementwise), 1),
             CsvWriter::fmt(pct(gpusim::OpType::Softmax), 1),
             CsvWriter::fmt(pct(gpusim::OpType::LayerNorm), 1),
             CsvWriter::fmt(pct(gpusim::OpType::Memory), 1)});
    }
    table.print();
    std::printf("\nPaper reports LINEAR dominating (62-76%%), BMM "
                "~10-13%%, EW ~8-15%%, softmax 2.5-6%%, LN <2%%.\n");
    return 0;
}
