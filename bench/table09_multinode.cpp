/**
 * @file
 * Table 9 reproduction: multi-node GPT-3 forecast. Nodes of 8 x H100
 * (TP-8 within the node over NVLink; data parallel across nodes over a
 * 100 Gbps InfiniBand fat tree; per-node batch 8), for 1 / 4 / 384 /
 * 768 / 3840 nodes. Like the paper, these are predictions only — no
 * ground truth exists at this scale.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "dist/parallel.hpp"

using namespace neusight;

int
main()
{
    setQuiet(false);
    core::NeuSight &neusight = bench::nvidiaNeuSight();
    const dist::EstimatedCollectives estimator("A100-NVLink", 600.0);

    dist::MultiNodeConfig cfg; // 8 GPUs/node, TP-8, batch 8, IB 100 Gbps.
    const auto &gpu = gpusim::findGpu("H100");
    // The paper's Table 9 does not pin the GPT-3 variant; we use
    // GPT3-2.7B, the largest Table-5 model (see EXPERIMENTS.md).
    const auto &model = graph::findModel("GPT3-2.7B");

    TextTable table("Table 9: multi-node GPT-3 training forecast "
                    "(8 x H100 per node, TP-8 + DP)",
                    {"# Nodes", "Global batch", "Predicted ms"});
    CsvWriter csv(bench::csvPath("table09_multinode"),
                  {"nodes", "global_batch", "predicted_ms"});

    for (int nodes : {1, 4, 384, 768, 3840}) {
        const double ms = dist::multiNodeIterationMs(
            neusight, estimator, model, gpu, nodes, cfg);
        const uint64_t global_batch =
            cfg.perNodeBatch * static_cast<uint64_t>(nodes);
        table.addRow({std::to_string(nodes),
                      std::to_string(global_batch),
                      TextTable::num(ms, 1)});
        csv.writeRow({std::to_string(nodes), std::to_string(global_batch),
                      CsvWriter::fmt(ms, 1)});
    }
    table.print();
    std::printf("\nPaper reports 1514.9 / 1836.7 / 12028.3 / 12135.5 / "
                "12564.6 ms — compare the *shape*: one large jump to "
                "cluster scale, then a nearly flat tail.\n");
    return 0;
}
