/**
 * @file
 * Figure 5 reproduction: achieved throughput of a (256x256) x (256x256)
 * matrix multiplication on V100 as the number of waves grows (batch size
 * 1..300) — the latency-hiding occupancy ramp NeuSight's Eq. 7 models.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "gpusim/device.hpp"

using namespace neusight;

int
main()
{
    const gpusim::GpuSpec &v100 = gpusim::findGpu("V100");
    const gpusim::Device device(v100);

    TextTable table("Figure 5: (256x256)x(256x256) matmul on V100 vs "
                    "#waves",
                    {"Batch", "Tiles", "Waves", "TFLOPS", "Fraction of "
                                                          "peak"});
    CsvWriter csv(bench::csvPath("fig05_wave_scaling"),
                  {"batch", "tiles", "waves", "tflops", "peak_fraction"});

    for (uint64_t batch :
         {1u, 2u, 4u, 8u, 16u, 25u, 50u, 75u, 100u, 150u, 200u, 300u}) {
        const auto desc = gpusim::makeBmm(batch, 256, 256, 256);
        const gpusim::KernelLaunch launch = device.profileKernel(desc);
        const double tflops =
            desc.flops / (launch.latencyMs * 1e-3) / 1e12;
        const double frac = tflops * 1e12 / v100.peakFlops();
        table.addRow({std::to_string(batch),
                      std::to_string(launch.numTiles),
                      std::to_string(launch.numWaves),
                      TextTable::num(tflops, 2),
                      TextTable::pct(frac * 100.0)});
        csv.writeRow({std::to_string(batch),
                      std::to_string(launch.numTiles),
                      std::to_string(launch.numWaves),
                      CsvWriter::fmt(tflops, 3),
                      CsvWriter::fmt(frac, 4)});
    }
    table.print();
    std::printf("\nExpected shape: throughput climbs steeply over the "
                "first few waves, then saturates (paper Fig. 5).\n");
    return 0;
}
