/**
 * @file
 * Table 1 reproduction: making the direct-latency predictor bigger does
 * not fix out-of-distribution error. Four architectures — MLPs with 8 and
 * 16 layers and transformer regressors (Prime-style, one token per
 * feature) with 3 and 6 layers — are trained to predict BMM latency
 * directly from Habitat-style features (dims <= 1024), then evaluated on
 * dims up to 4096.
 */

#include <cstdio>
#include <memory>

#include "baselines/habitat.hpp"
#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "gpusim/device.hpp"
#include "nn/trainer.hpp"

using namespace neusight;

namespace {

std::vector<gpusim::GpuSpec>
trainingGpus()
{
    std::vector<gpusim::GpuSpec> gpus;
    for (const char *name : {"P4", "P100", "V100", "T4"})
        gpus.push_back(gpusim::findGpu(name));
    return gpus;
}

/** Habitat feature matrix + latency targets from a BMM dataset. */
void
toXy(const dataset::OperatorDataset &data, Matrix &x,
     std::vector<double> &y)
{
    x = Matrix(data.size(), 8);
    y.resize(data.size());
    for (size_t i = 0; i < data.size(); ++i) {
        const auto f = baselines::HabitatPredictor::features(
            data.samples[i].desc, gpusim::findGpu(data.samples[i].gpuName));
        for (size_t c = 0; c < 8; ++c)
            x.at(i, c) = f[c];
        y[i] = data.samples[i].latencyMs;
    }
}

struct EvalSplit
{
    double inDist = 0.0;
    double outDist = 0.0;
};

/** In- vs out-of-distribution MAPE on the test sweep. */
EvalSplit
evaluate(nn::Module &model, const nn::FeatureScaler &scaler,
         const dataset::OperatorDataset &test)
{
    RunningMean in_dist;
    RunningMean out_dist;
    for (const auto &s : test.samples) {
        const auto f = baselines::HabitatPredictor::features(
            s.desc, gpusim::findGpu(s.gpuName));
        Matrix x(1, 8);
        for (size_t c = 0; c < 8; ++c)
            x.at(0, c) = f[c];
        const double pred = std::max(
            model.forward(nn::constant(scaler.transform(x))).value().at(0,
                                                                        0),
            1e-6);
        const double err = absPercentageError(pred, s.latencyMs);
        const bool ood = s.desc.outDims[1] >= 1024 ||
                         s.desc.outDims[2] >= 1024 ||
                         s.desc.reduceDim >= 1024;
        (ood ? out_dist : in_dist).add(err);
    }
    return {in_dist.value(), out_dist.value()};
}

} // namespace

int
main()
{
    setQuiet(false);
    inform("Table 1: sweeping predictor architectures on BMM...");
    const auto gpus = trainingGpus();

    // Train: dims 1..1024 (paper Section 3.2); test: dims 1..4096.
    const auto train_ds = dataset::generateBmmSweep(gpus, 1, 1024, 2000, 3);
    const auto test_ds = dataset::generateBmmSweep(gpus, 64, 4096, 600, 5);

    Matrix x;
    std::vector<double> y;
    toXy(train_ds, x, y);
    nn::FeatureScaler scaler;
    const Matrix scaled = scaler.fitTransform(x);

    nn::TrainConfig tc;
    tc.epochs = 50;
    tc.batchSize = 64;
    tc.lr = 1e-3;
    tc.loss = nn::LossKind::Mape;

    TextTable table("Table 1: direct latency prediction of BMM with "
                    "larger ML models",
                    {"Predictor", "Layers", "In-dist err", "OOD err"});
    CsvWriter csv(bench::csvPath("table01_larger_predictors"),
                  {"architecture", "layers", "in_dist_err_pct",
                   "ood_err_pct"});

    for (size_t layers : {8u, 16u}) {
        nn::MlpConfig mcfg;
        mcfg.inputDim = 8;
        mcfg.hiddenDim = 64;
        mcfg.hiddenLayers = layers;
        mcfg.outputDim = 1;
        mcfg.seed = 31 + layers;
        nn::Mlp mlp(mcfg);
        nn::ForwardFn fwd = [&mlp](const nn::Batch &b) {
            return mlp.forward(nn::constant(b.x));
        };
        nn::fit(mlp, scaled, y, fwd, tc);
        const EvalSplit split = evaluate(mlp, scaler, test_ds);
        table.addRow({"MLP", std::to_string(layers),
                      TextTable::pct(split.inDist),
                      TextTable::pct(split.outDist)});
        csv.writeRow({"MLP", std::to_string(layers),
                      CsvWriter::fmt(split.inDist, 1),
                      CsvWriter::fmt(split.outDist, 1)});
    }

    for (size_t layers : {3u, 6u}) {
        nn::TransformerConfig tcfg;
        tcfg.numFeatures = 8;
        tcfg.dModel = 16;
        tcfg.numLayers = layers;
        tcfg.numHeads = 4;
        tcfg.ffDim = 32;
        tcfg.seed = 47 + layers;
        nn::TransformerRegressor transformer(tcfg);
        nn::ForwardFn fwd = [&transformer](const nn::Batch &b) {
            return transformer.forward(nn::constant(b.x));
        };
        nn::fit(transformer, scaled, y, fwd, tc);
        const EvalSplit split = evaluate(transformer, scaler, test_ds);
        table.addRow({"Transformer", std::to_string(layers),
                      TextTable::pct(split.inDist),
                      TextTable::pct(split.outDist)});
        csv.writeRow({"Transformer", std::to_string(layers),
                      CsvWriter::fmt(split.inDist, 1),
                      CsvWriter::fmt(split.outDist, 1)});
    }

    table.print();
    std::printf("\nPaper reports: MLP 8/16 -> 28.0/22.3 in-dist, "
                "70.9/81.4 OOD; Transformer 3/6 -> 22.3/21.0 in-dist, "
                "126.1/86.4 OOD.\n");
    return 0;
}
