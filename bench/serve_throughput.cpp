/**
 * @file
 * Serving-throughput bench: forecast requests/s through ForecastServer
 * versus worker count, with the kernel-prediction cache enabled and
 * disabled, on a repeated-model workload (the production pattern: the
 * same few models asked about over and over at varying batch and
 * context length). Prints a table and writes a JSON report for CI.
 *
 *   bench_serve_throughput                    # NeuSight backend
 *   bench_serve_throughput --backend oracle --json out.json
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/argparse.hpp"
#include "common/json.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "eval/oracle.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/prediction_cache.hpp"
#include "serve/server.hpp"

#include <sstream>

namespace {

using namespace neusight;

std::vector<std::string>
splitList(const std::string &value)
{
    std::vector<std::string> items;
    std::stringstream ss(value);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            items.push_back(item);
    return items;
}

/**
 * The repeated-model request mix: a handful of models, each asked for
 * prefill at a few batch sizes and decode at a few context lengths —
 * every request distinct, but nearly every kernel shared with earlier
 * requests (transformer layers repeat shapes).
 */
std::vector<serve::ForecastRequest>
buildWorkload(size_t count)
{
    const std::vector<std::string> models = {"GPT2-Large", "GPT3-XL",
                                             "BERT-Large", "OPT-1.3B"};
    const gpusim::GpuSpec &gpu = gpusim::findGpu("H100");
    std::vector<serve::ForecastRequest> requests;
    requests.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        serve::ForecastRequest req;
        req.model = models[i % models.size()];
        req.gpu = gpu;
        if (i % 3 == 0) {
            req.kind = serve::RequestKind::Inference;
            req.batch = 1 + (i / 3) % 4;
        } else {
            req.kind = serve::RequestKind::DecodeStep;
            req.batch = 4;
            req.pastLen = 256 + 128 * ((i / 3) % 8);
        }
        req.tag = "r" + std::to_string(i);
        requests.push_back(std::move(req));
    }
    return requests;
}

struct RunResult
{
    double reqPerSec = 0.0;
    double hitRate = 0.0;
    /** End-to-end request latency quantiles (serve.e2e_us histogram). */
    double p50Us = 0.0;
    double p99Us = 0.0;
};

/**
 * Per-span cost of the disabled tracer path, nanoseconds: the overhead
 * every instrumented hot path pays when tracing is off. Deterministic
 * (one relaxed load + a branch), so CI gates on it instead of a noisy
 * req/s A/B comparison.
 */
double
disabledSpanNs(size_t iterations)
{
    obs::Tracer tracer; // Never enabled.
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < iterations; ++i) {
        obs::TraceSpan span("bench.disabled", "bench", tracer);
    }
    const double ns =
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - start)
            .count();
    return ns / static_cast<double>(iterations);
}

RunResult
runOnce(const graph::LatencyPredictor &backend, size_t workers,
        const std::shared_ptr<serve::PredictionCache> &cache,
        const std::vector<serve::ForecastRequest> &requests)
{
    serve::ServerOptions options;
    options.workers = workers;
    options.queueCapacity = requests.size() + 1;
    options.cache = cache;
    serve::ForecastServer server(backend, options);

    std::vector<std::future<serve::ForecastResult>> futures;
    futures.reserve(requests.size());
    const auto start = std::chrono::steady_clock::now();
    for (const serve::ForecastRequest &req : requests)
        futures.push_back(server.submit(req));
    for (auto &future : futures) {
        const serve::ForecastResult result = future.get();
        ensure(result.ok, "serve_throughput: request failed: " +
                              result.error);
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    server.stop();

    RunResult out;
    out.reqPerSec =
        static_cast<double>(requests.size()) / std::max(seconds, 1e-9);
    if (cache)
        out.hitRate = cache->stats().hitRate();
    // The server's own end-to-end histogram (each runOnce builds a
    // fresh internal engine, so the distribution is this run's alone).
    const auto e2e = server.metrics()->histogram("serve.e2e_us");
    out.p50Us = e2e->quantile(0.50);
    out.p99Us = e2e->quantile(0.99);
    return out;
}

int
run(int argc, const char *const *argv)
{
    common::ArgParser args("bench_serve_throughput",
                           "forecast requests/s vs worker count, cached "
                           "vs uncached");
    args.addString("backend", "neusight", "neusight | oracle");
    args.addInt("requests", 192, "requests per timed run");
    args.addString("workers", "1,2,4,8", "comma list of worker counts");
    args.addInt("cache-capacity", 65536, "prediction-cache entries");
    args.addString("json", "serve_throughput.json",
                   "JSON report output path");
    args.addDouble("min-speedup", 0.0,
                   "fail (exit 3) when the cached/uncached speedup of "
                   "any worker count falls below this; 0 disables");
    args.addDouble("max-disabled-span-ns", 0.0,
                   "fail (exit 3) when the disabled-tracer span "
                   "overhead exceeds this many ns; 0 disables");
    if (!args.parse(argc, argv))
        return 0;

    setQuiet(false);
    const size_t count = static_cast<size_t>(args.getInt("requests"));
    const size_t capacity =
        static_cast<size_t>(args.getInt("cache-capacity"));
    if (count < 1 || capacity < 1)
        fatal("--requests and --cache-capacity must be at least 1");

    // Backends. The cached NeuSight path goes through attachCache (the
    // native wiring); the oracle is wrapped in the CachedPredictor
    // decorator — both exercise the same PredictionCache.
    const std::string backend_name = args.getString("backend");
    eval::SimulatorOracle oracle;
    core::NeuSight *neusight = nullptr;
    if (backend_name == "neusight")
        neusight = &bench::nvidiaNeuSight();
    else if (backend_name != "oracle")
        fatal("--backend must be neusight or oracle");

    const std::vector<serve::ForecastRequest> requests =
        buildWorkload(count);

    TextTable table("Serving throughput, " + backend_name +
                        " backend (" + std::to_string(count) +
                        " repeated-model requests)",
                    {"workers", "cached req/s", "uncached req/s",
                     "speedup", "hit rate", "p50 (us)", "p99 (us)"});
    common::Json runs;
    double min_speedup = 0.0;
    for (const std::string &item : splitList(args.getString("workers"))) {
        const size_t workers =
            static_cast<size_t>(std::stoul(item));
        if (workers < 1)
            fatal("--workers entries must be at least 1");

        auto cache =
            std::make_shared<serve::PredictionCache>(capacity);
        RunResult cached;
        RunResult uncached;
        if (neusight) {
            neusight->attachCache(cache);
            cached = runOnce(*neusight, workers, cache, requests);
            neusight->attachCache(nullptr);
            uncached = runOnce(*neusight, workers, nullptr, requests);
        } else {
            const serve::CachedPredictor decorated(oracle, cache);
            cached = runOnce(decorated, workers, cache, requests);
            uncached = runOnce(oracle, workers, nullptr, requests);
        }
        const double speedup = cached.reqPerSec / uncached.reqPerSec;
        min_speedup = min_speedup == 0.0
                          ? speedup
                          : std::min(min_speedup, speedup);
        table.addRow({std::to_string(workers),
                      TextTable::num(cached.reqPerSec, 0),
                      TextTable::num(uncached.reqPerSec, 0),
                      TextTable::num(speedup, 1) + "x",
                      TextTable::num(100.0 * cached.hitRate, 1) + "%",
                      TextTable::num(cached.p50Us, 0),
                      TextTable::num(cached.p99Us, 0)});

        common::Json entry;
        entry.set("workers", static_cast<uint64_t>(workers));
        entry.set("cached_req_per_s", cached.reqPerSec);
        entry.set("uncached_req_per_s", uncached.reqPerSec);
        entry.set("speedup", speedup);
        entry.set("cache_hit_rate", cached.hitRate);
        entry.set("e2e_p50_us", cached.p50Us);
        entry.set("e2e_p99_us", cached.p99Us);
        entry.set("uncached_e2e_p50_us", uncached.p50Us);
        entry.set("uncached_e2e_p99_us", uncached.p99Us);
        runs.push(std::move(entry));
    }
    table.print();

    // Disabled-path overhead: the cost the observability layer adds to
    // every instrumented scope when tracing is off.
    const double span_ns = disabledSpanNs(1u << 20);
    std::printf("\ndisabled-tracer span overhead: %.1f ns/span\n",
                span_ns);

    common::Json report;
    report.set("backend", backend_name);
    report.set("requests", static_cast<uint64_t>(count));
    report.set("cache_capacity", static_cast<uint64_t>(capacity));
    report.set("min_speedup", min_speedup);
    report.set("disabled_span_ns", span_ns);
    report.set("runs", std::move(runs));
    const std::string path = args.getString("json");
    std::ofstream out(path);
    if (!out)
        fatal("cannot write JSON report '" + path + "'");
    out << report.dump(2) << "\n";
    std::printf("\nJSON report written to %s\n", path.c_str());

    const double required = args.getDouble("min-speedup");
    if (required > 0.0 && min_speedup < required) {
        std::fprintf(stderr,
                     "serve_throughput: cache speedup %.1fx is below "
                     "the required %.1fx\n",
                     min_speedup, required);
        return 3;
    }
    const double span_budget = args.getDouble("max-disabled-span-ns");
    if (span_budget > 0.0 && span_ns > span_budget) {
        std::fprintf(stderr,
                     "serve_throughput: disabled-span overhead %.1f ns "
                     "exceeds the %.1f ns budget\n",
                     span_ns, span_budget);
        return 3;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
