/**
 * @file
 * Forecast-throughput bench seeding the perf trajectory of the batched
 * inference path (PR 4): single-kernel vs deduplicated/batched
 * kernels/s on a repeated-model graph forecast, and exhaustive-serial
 * vs branch-and-bound/memoized/parallel strategy-sweep wall-clock on
 * the 8x A100-40GB GPT3-2.7B flagship. Writes a BENCH_forecast.json
 * artifact for CI and exits nonzero when the batched speedup falls
 * under --min-kernel-speedup, the sweep speedup falls under
 * --min-sweep-speedup, or the pruned sweep's winner disagrees with the
 * exhaustive winner.
 *
 *   bench_forecast_throughput --json BENCH_forecast.json \
 *       --min-kernel-speedup 3
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/argparse.hpp"
#include "common/json.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "dist/parallel.hpp"
#include "graph/models.hpp"
#include "serve/prediction_cache.hpp"

namespace {

using namespace neusight;

double
secondsSince(const std::chrono::steady_clock::time_point &start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * The pre-PR-4 forecast semantics, for the baseline sweep arm: forward
 * per-kernel predictions but inherit the base-class per-node graph
 * loop, hiding NeuSight's dedup + batched override — exactly what
 * every sweep point paid before the batched path existed.
 */
class PerNodePredictor : public graph::LatencyPredictor
{
  public:
    explicit PerNodePredictor(const graph::LatencyPredictor &inner_)
        : inner(inner_)
    {
    }

    std::string name() const override { return inner.name(); }

    double
    predictKernelMs(const gpusim::KernelDesc &desc,
                    const gpusim::GpuSpec &gpu) const override
    {
        return inner.predictKernelMs(desc, gpu);
    }

  private:
    const graph::LatencyPredictor &inner;
};

} // namespace

int
run(int argc, const char *const *argv)
{
    common::ArgParser args(
        "bench_forecast_throughput",
        "kernels/s single vs batched, and strategy-sweep wall-clock "
        "exhaustive vs pruned");
    args.addInt("reps", 12, "timed repetitions of each graph forecast");
    args.addString("json", "BENCH_forecast.json",
                   "JSON report output path");
    args.addDouble("min-kernel-speedup", 0.0,
                   "fail (exit 3) when batched/single kernels/s falls "
                   "below this; 0 disables");
    args.addDouble("min-sweep-speedup", 0.0,
                   "fail (exit 5) when exhaustive/pruned sweep "
                   "wall-clock falls below this; 0 disables");
    if (!args.parse(argc, argv))
        return 0;
    setQuiet(false);
    const int reps = static_cast<int>(args.getInt("reps"));
    if (reps < 1)
        fatal("--reps must be at least 1");

    core::NeuSight &neusight = bench::nvidiaNeuSight();
    common::Json report;

    // ------------------------------------------------------------------
    // 1. Kernel-prediction throughput on a repeated-model graph: the
    // GPT2-Large training graph dispatches the same few dozen kernel
    // shapes across its 36 layers — the dedup + one-matrix-pass-per-
    // family path must beat per-node prediction by a wide margin.
    // ------------------------------------------------------------------
    const gpusim::GpuSpec &gpu = gpusim::findGpu("A100-40GB");
    const graph::KernelGraph g = graph::buildTrainingGraph(
        graph::findModel("GPT2-Large"), 8);
    const double kernels =
        static_cast<double>(g.computeNodeCount()) * reps;

    neusight.attachCache(nullptr);
    double checksum_single = 0.0;
    auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r)
        for (const auto &node : g.nodes)
            if (node.kind == graph::NodeKind::Compute)
                checksum_single +=
                    neusight.predictKernelMs(node.kernel, gpu);
    const double single_s = secondsSince(t0);

    double checksum_batched = 0.0;
    t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r)
        checksum_batched += neusight.predictGraphMs(g, gpu);
    const double batched_s = secondsSince(t0);

    // Third lane: batched path with the kernel-prediction cache warm —
    // the serving steady state.
    auto cache = std::make_shared<serve::PredictionCache>(1 << 16);
    neusight.attachCache(cache);
    neusight.predictGraphMs(g, gpu); // Warm.
    double checksum_cached = 0.0;
    t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r)
        checksum_cached += neusight.predictGraphMs(g, gpu);
    const double cached_s = secondsSince(t0);
    neusight.attachCache(nullptr);

    ensure(std::abs(checksum_single - checksum_batched) <
               1e-6 * checksum_single,
           "single and batched forecasts disagree");
    ensure(std::abs(checksum_single - checksum_cached) <
               1e-6 * checksum_single,
           "cached forecast disagrees");

    const double single_kps = kernels / std::max(single_s, 1e-9);
    const double batched_kps = kernels / std::max(batched_s, 1e-9);
    const double cached_kps = kernels / std::max(cached_s, 1e-9);
    const double kernel_speedup = batched_kps / single_kps;

    TextTable kernel_table(
        "Kernel-prediction throughput (GPT2-Large training graph, " +
            std::to_string(g.computeNodeCount()) + " kernels, " +
            std::to_string(reps) + " reps)",
        {"path", "kernels/s", "speedup"});
    kernel_table.addRow({"single (per-node)", TextTable::num(single_kps, 0),
                         "1.0x"});
    kernel_table.addRow({"batched (dedup + matrix pass)",
                         TextTable::num(batched_kps, 0),
                         TextTable::num(kernel_speedup, 1) + "x"});
    kernel_table.addRow({"batched + warm kernel cache",
                         TextTable::num(cached_kps, 0),
                         TextTable::num(cached_kps / single_kps, 1) + "x"});
    kernel_table.print();

    common::Json kernel_json;
    kernel_json.set("graph", "GPT2-Large-training-b8");
    kernel_json.set("gpu", gpu.name);
    kernel_json.set("kernels_per_graph",
                    static_cast<uint64_t>(g.computeNodeCount()));
    kernel_json.set("single_kernels_per_s", single_kps);
    kernel_json.set("batched_kernels_per_s", batched_kps);
    kernel_json.set("cached_kernels_per_s", cached_kps);
    kernel_json.set("batched_speedup", kernel_speedup);
    report.set("kernel_throughput", std::move(kernel_json));

    // ------------------------------------------------------------------
    // 2. Strategy-sweep wall-clock on the flagship grid (GPT3-2.7B,
    // global batch 32, 8x A100-40GB): the PR-3 baseline semantics
    // (exhaustive, serial, no cross-point memo) against the default
    // branch-and-bound + memo + thread-pool sweep. Both arms get a
    // fresh kernel-prediction cache; the winner must be identical.
    // ------------------------------------------------------------------
    dist::ServerConfig server;
    server.systemName = "A100-NVLink-x8";
    server.gpuName = "A100-40GB";
    server.numGpus = 8;
    const dist::EstimatedCollectives comms("A100-NVLink", 600.0);
    const graph::ModelConfig &model = graph::findModel("GPT3-2.7B");
    const uint64_t global_batch = 32;

    dist::SweepOptions exhaustive;
    exhaustive.exhaustive = true;
    exhaustive.threads = 1;
    exhaustive.reuseStagePrices = false;
    dist::SweepStats ex_stats;
    neusight.attachCache(
        std::make_shared<serve::PredictionCache>(1 << 16));
    const PerNodePredictor baseline(neusight);
    t0 = std::chrono::steady_clock::now();
    const auto full =
        dist::sweepStrategies(baseline, comms, server, model,
                              global_batch, exhaustive, &ex_stats);
    const double exhaustive_ms = secondsSince(t0) * 1e3;

    dist::SweepStats pr_stats;
    neusight.attachCache(
        std::make_shared<serve::PredictionCache>(1 << 16));
    t0 = std::chrono::steady_clock::now();
    const auto pruned =
        dist::sweepStrategies(neusight, comms, server, model,
                              global_batch, dist::SweepOptions{},
                              &pr_stats);
    const double pruned_ms = secondsSince(t0) * 1e3;
    neusight.attachCache(nullptr);

    if (full.empty() || pruned.empty())
        fatal("flagship sweep produced no runnable strategy");
    const double sweep_speedup = exhaustive_ms / std::max(pruned_ms, 1e-9);
    const auto &ex_win = full.front();
    const auto &pr_win = pruned.front();
    const bool winner_matches =
        ex_win.config.tpDegree == pr_win.config.tpDegree &&
        ex_win.config.ppDegree == pr_win.config.ppDegree &&
        ex_win.config.dpDegree == pr_win.config.dpDegree &&
        ex_win.config.numMicroBatches == pr_win.config.numMicroBatches &&
        ex_win.config.schedule == pr_win.config.schedule &&
        ex_win.config.recomputeActivations ==
            pr_win.config.recomputeActivations &&
        // The per-node baseline sums kernels in node order, the batched
        // path as count x ms — identical to the last ulp or two.
        std::abs(ex_win.result.latencyMs - pr_win.result.latencyMs) <=
            1e-9 * ex_win.result.latencyMs;

    TextTable sweep_table(
        "Strategy-sweep wall-clock (GPT3-2.7B, batch 32, 8x A100-40GB)",
        {"arm", "wall ms", "points priced", "winner"});
    sweep_table.addRow(
        {"exhaustive serial (PR-3 semantics)",
         TextTable::num(exhaustive_ms, 0),
         std::to_string(ex_stats.evaluatedPoints),
         ex_win.config.describe() + " m" +
             std::to_string(ex_win.config.numMicroBatches)});
    sweep_table.addRow(
        {"pruned + memo + threads (default)",
         TextTable::num(pruned_ms, 0),
         std::to_string(pr_stats.evaluatedPoints),
         pr_win.config.describe() + " m" +
             std::to_string(pr_win.config.numMicroBatches)});
    sweep_table.print();
    std::printf("\nsweep speedup %.1fx (memo %llu hits / %llu misses, "
                "%zu points pruned), winner %s\n",
                sweep_speedup,
                static_cast<unsigned long long>(pr_stats.stagePriceHits),
                static_cast<unsigned long long>(pr_stats.stagePriceMisses),
                pr_stats.skippedPoints,
                winner_matches ? "identical" : "MISMATCH");

    common::Json sweep_json;
    sweep_json.set("model", model.name);
    sweep_json.set("server", "8x A100-40GB");
    sweep_json.set("global_batch", global_batch);
    sweep_json.set("exhaustive_ms", exhaustive_ms);
    sweep_json.set("pruned_ms", pruned_ms);
    sweep_json.set("speedup", sweep_speedup);
    sweep_json.set("exhaustive_points",
                   static_cast<uint64_t>(ex_stats.evaluatedPoints));
    sweep_json.set("pruned_points",
                   static_cast<uint64_t>(pr_stats.evaluatedPoints));
    sweep_json.set("skipped_points",
                   static_cast<uint64_t>(pr_stats.skippedPoints));
    sweep_json.set("winner_matches", winner_matches);
    common::Json winner;
    winner.set("strategy", pr_win.config.describe());
    winner.set("micro_batches", pr_win.config.numMicroBatches);
    winner.set("schedule",
               dist::pipelineScheduleName(pr_win.config.schedule));
    winner.set("recompute", pr_win.config.recomputeActivations);
    winner.set("latency_ms", pr_win.result.latencyMs);
    sweep_json.set("winner", std::move(winner));
    report.set("sweep", std::move(sweep_json));

    const std::string path = args.getString("json");
    std::ofstream out(path);
    if (!out)
        fatal("cannot write JSON report '" + path + "'");
    out << report.dump(2) << "\n";
    std::printf("\nJSON report written to %s\n", path.c_str());

    if (!winner_matches) {
        std::fprintf(stderr,
                     "forecast_throughput: pruned sweep winner differs "
                     "from the exhaustive winner\n");
        return 4;
    }
    const double min_kernel = args.getDouble("min-kernel-speedup");
    if (min_kernel > 0.0 && kernel_speedup < min_kernel) {
        std::fprintf(stderr,
                     "forecast_throughput: batched/single kernel "
                     "speedup %.1fx is below the required %.1fx\n",
                     kernel_speedup, min_kernel);
        return 3;
    }
    const double min_sweep = args.getDouble("min-sweep-speedup");
    if (min_sweep > 0.0 && sweep_speedup < min_sweep) {
        std::fprintf(stderr,
                     "forecast_throughput: sweep speedup %.1fx is "
                     "below the required %.1fx\n",
                     sweep_speedup, min_sweep);
        return 5;
    }
    return 0;
}

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
