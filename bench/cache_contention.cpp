/**
 * @file
 * Prediction-cache read-contention bench: aggregate reader req/s on a
 * warm serve::PredictionCache at 1/4/8/16 threads, plus a mixed arm
 * (one writer refreshing entries under the same load) showing that
 * writes do not stall the lock-free read path. Writes a
 * BENCH_cache_contention.json artifact for CI and exits nonzero when
 * the 16-thread reader scaling falls under the hardware-aware gate
 * derived from --min-scaling (a 1-core runner cannot exhibit 6x
 * parallel speedup, so the requirement is capped by the core count).
 *
 *   bench_cache_contention --json BENCH_cache_contention.json \
 *       --min-scaling 6
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/argparse.hpp"
#include "common/json.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/predictor.hpp"
#include "obs/metrics.hpp"
#include "serve/prediction_cache.hpp"

namespace {

using namespace neusight;

/** A recognizable synthetic forecast for key index @p i. */
core::PredictionDetail
detailFor(size_t i)
{
    core::PredictionDetail d;
    d.tileDims = {1 + i % 7, 1 + i % 13};
    d.numTiles = 1 + i;
    d.numWaves = 1 + i / 8;
    d.alpha = 0.5 + 1e-3 * static_cast<double>(i % 100);
    d.beta = 0.1;
    d.utilization = 0.75;
    d.rooflinePerSm = 1e9;
    d.latencyMs = 1e-3 * static_cast<double>(1 + i);
    return d;
}

/**
 * Aggregate lookups/s of @p threads readers hammering the warm cache
 * for @p seconds, each walking the key space from its own offset (so
 * threads do not probe the same stripe in lockstep). With
 * @p with_writer, one extra thread continuously re-inserts (refreshes)
 * existing keys, exercising the writer path concurrently.
 */
double
readerThroughput(serve::PredictionCache &cache,
                 const std::vector<std::string> &keys, int threads,
                 double seconds, bool with_writer,
                 obs::Histogram *lookup_ns = nullptr)
{
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> total{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads) + 1);
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            core::PredictionDetail out;
            uint64_t local = 0;
            size_t i = static_cast<size_t>(t) * 7919 % keys.size();
            // Per-lookup latency is sampled in 1024-lookup chunks (one
            // clock read per chunk keeps the timing out of the loop),
            // then recorded as amortized ns/lookup.
            constexpr uint64_t kChunk = 1024;
            auto chunk_start = std::chrono::steady_clock::now();
            while (!stop.load(std::memory_order_relaxed)) {
                if (!cache.lookup(keys[i], out))
                    fatal("cache_contention: unexpected miss");
                i = (i + 1) % keys.size();
                ++local;
                if (lookup_ns != nullptr && local % kChunk == 0) {
                    const auto now = std::chrono::steady_clock::now();
                    lookup_ns->record(
                        std::chrono::duration<double, std::nano>(
                            now - chunk_start)
                            .count() /
                        static_cast<double>(kChunk));
                    chunk_start = now;
                }
            }
            total.fetch_add(local, std::memory_order_relaxed);
        });
    }
    if (with_writer) {
        pool.emplace_back([&] {
            size_t i = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                cache.insert(keys[i], detailFor(i));
                i = (i + 1) % keys.size();
            }
        });
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(seconds));
    stop.store(true, std::memory_order_relaxed);
    for (std::thread &th : pool)
        th.join();
    return static_cast<double>(total.load()) / seconds;
}

} // namespace

int
run(int argc, const char *const *argv)
{
    common::ArgParser args(
        "bench_cache_contention",
        "prediction-cache reader req/s at 1/4/8/16 threads");
    args.addInt("entries", 4096, "warm entries in the cache");
    args.addDouble("secs", 0.5, "measured seconds per thread count");
    args.addString("json", "BENCH_cache_contention.json",
                   "JSON report output path");
    args.addDouble("min-scaling", 0.0,
                   "fail (exit 3) when 16-thread/1-thread reader "
                   "throughput falls below min(this, 0.4 x usable "
                   "cores); 0 disables");
    args.addFlag("smoke",
                 "tiny run (1 and 4 threads, short window, no gate) "
                 "for sanitizer jobs");
    if (!args.parse(argc, argv))
        return 0;
    setQuiet(false);
    const bool smoke = args.getFlag("smoke");
    const size_t entries =
        static_cast<size_t>(std::max<int64_t>(1, args.getInt("entries")));
    const double seconds =
        smoke ? 0.05 : std::max(0.01, args.getDouble("secs"));

    // Capacity above the entry count: the pure-reader phases must never
    // evict, or a miss would abort the run.
    serve::PredictionCache cache(2 * entries);
    std::vector<std::string> keys;
    keys.reserve(entries);
    for (size_t i = 0; i < entries; ++i) {
        keys.push_back("bench|kernel" + std::to_string(i));
        cache.insert(keys.back(), detailFor(i));
    }

    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const std::vector<int> thread_counts =
        smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 4, 8, 16};

    TextTable table("Prediction-cache reader throughput (" +
                        std::to_string(entries) + " warm entries, " +
                        std::to_string(hw) + " hardware threads)",
                    {"readers", "req/s", "scaling", "req/s +writer",
                     "p50 ns", "p99 ns"});
    common::Json report;
    report.set("entries", static_cast<uint64_t>(entries));
    report.set("hardware_threads", static_cast<uint64_t>(hw));
    report.set("seconds_per_point", seconds);
    std::vector<common::Json> points;

    double base_rps = 0.0;
    double scaling_at_max = 0.0;
    int max_threads = 0;
    for (int threads : thread_counts) {
        obs::Histogram lookup_ns;
        const double rps = readerThroughput(cache, keys, threads,
                                            seconds, false, &lookup_ns);
        const double mixed_rps =
            readerThroughput(cache, keys, threads, seconds, true);
        if (threads == 1)
            base_rps = rps;
        const double scaling = rps / std::max(base_rps, 1e-9);
        if (threads >= max_threads) {
            max_threads = threads;
            scaling_at_max = scaling;
        }
        table.addRow({std::to_string(threads), TextTable::num(rps, 0),
                      TextTable::num(scaling, 2) + "x",
                      TextTable::num(mixed_rps, 0),
                      TextTable::num(lookup_ns.quantile(0.50), 0),
                      TextTable::num(lookup_ns.quantile(0.99), 0)});
        common::Json point;
        point.set("threads", static_cast<uint64_t>(threads));
        point.set("reqs_per_s", rps);
        point.set("scaling_vs_1", scaling);
        point.set("reqs_per_s_with_writer", mixed_rps);
        point.set("lookup_p50_ns", lookup_ns.quantile(0.50));
        point.set("lookup_p99_ns", lookup_ns.quantile(0.99));
        points.push_back(std::move(point));
    }
    table.print();
    report.set("points", common::Json(std::move(points)));

    const serve::CacheStats stats = cache.stats();
    ensure(stats.misses == 0,
           "cache_contention: pure-reader phases must not miss");
    ensure(stats.hits + stats.misses > 0, "no lookups recorded");

    // Hardware-aware gate: perfect scaling is impossible beyond the
    // physical core count, so the requirement never exceeds 40% of the
    // usable cores (16-thread perfect scaling on >=16 cores would be
    // 16x; we ask for 6x of it, and proportionally less on smaller
    // runners — a 1-core container trivially passes with 0.4x).
    const double min_scaling = args.getDouble("min-scaling");
    const double required = std::min(
        min_scaling,
        0.4 * static_cast<double>(std::min<unsigned>(
                  static_cast<unsigned>(max_threads), hw)));
    report.set("min_scaling_requested", min_scaling);
    report.set("min_scaling_effective", required);
    report.set("scaling_at_max_threads", scaling_at_max);
    report.set("gated", !smoke && min_scaling > 0.0);

    const std::string path = args.getString("json");
    std::ofstream out(path);
    if (!out)
        fatal("cannot write JSON report '" + path + "'");
    out << report.dump(2) << "\n";
    std::printf("\nJSON report written to %s\n", path.c_str());

    if (!smoke && min_scaling > 0.0 && scaling_at_max < required) {
        std::fprintf(stderr,
                     "cache_contention: %d-thread reader scaling "
                     "%.2fx is below the required %.2fx (requested "
                     "%.2fx, %u hardware threads)\n",
                     max_threads, scaling_at_max, required, min_scaling,
                     hw);
        return 3;
    }
    return 0;
}

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
