/**
 * @file
 * Figure 8 reproduction: kernel-level prediction error per operator
 * family (BMM, fully-connected, element-wise, softmax, layer norm),
 * averaged over every kernel of the Figure-7 workloads.
 */

#include <cstdio>

#include "baselines/habitat.hpp"
#include "baselines/li.hpp"
#include "baselines/roofline.hpp"
#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "eval/harness.hpp"

using namespace neusight;

int
main()
{
    setQuiet(false);
    inform("Figure 8: per-operator kernel errors...");
    core::NeuSight &neusight = bench::nvidiaNeuSight();
    const auto &corpus = bench::nvidiaCorpus();
    baselines::RooflinePredictor roofline;
    baselines::LiPredictor li;
    li.train(corpus);
    baselines::HabitatPredictor habitat;
    habitat.train(corpus);

    // A representative slice of the Figure-7 sweep (every model once,
    // both an in-distribution and a held-out GPU).
    std::vector<eval::WorkloadCase> cases;
    for (const auto &model : graph::paperWorkloads()) {
        eval::WorkloadCase c;
        c.model = model;
        c.batch = model.name == "GPT3-2.7B" ? 1 : 4;
        c.oodModel = model.name == "GPT3-2.7B";
        cases.push_back(c);
    }
    const std::vector<gpusim::GpuSpec> gpus = {
        gpusim::findGpu("V100"), gpusim::findGpu("A100-40GB"),
        gpusim::findGpu("L4"), gpusim::findGpu("H100")};

    const auto errors = eval::perOperatorErrors(
        cases, gpus, {&neusight, &roofline, &habitat, &li});

    TextTable table("Figure 8: per-operator prediction error",
                    {"Operator", "NeuSight", "Roofline", "Habitat",
                     "Li et al."});
    CsvWriter csv(bench::csvPath("fig08_per_operator"),
                  {"operator", "predictor", "error_pct"});
    for (gpusim::OpType type :
         {gpusim::OpType::BatchedMatmul, gpusim::OpType::FullyConnected,
          gpusim::OpType::Elementwise, gpusim::OpType::Softmax,
          gpusim::OpType::LayerNorm}) {
        if (!errors.count(type))
            continue;
        std::vector<std::string> row = {gpusim::opTypeName(type)};
        for (const char *p :
             {"NeuSight", "Roofline", "Habitat", "Li et al."}) {
            const double err = errors.at(type).at(p);
            row.push_back(TextTable::pct(err));
            csv.writeRow({gpusim::opTypeName(type), p,
                          CsvWriter::fmt(err, 1)});
        }
        table.addRow(row);
    }
    table.print();
    std::printf("\nPaper reports: NeuSight 13.8%% (BMM) / 13.9%% (FC); "
                "Habitat 123.2%% / 799.3%%; Li et al. 30.0%% / 152.6%%; "
                "roofline ~34%% everywhere.\n");
    return 0;
}
