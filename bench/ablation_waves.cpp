/**
 * @file
 * Ablation (DESIGN.md Section 7): the -beta/numWaves occupancy term of
 * Eq. 7. Without it, utilization is a constant per kernel and the
 * low-occupancy regime (few waves, Figure 5's left side) is
 * mispredicted. Compared at fixed shape across batch sizes, which sweep
 * the wave count exactly like the Figure-5/Table-2 studies.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "gpusim/device.hpp"

using namespace neusight;

int
main()
{
    setQuiet(false);
    inform("Ablation: training the no-wave-term variant...");
    const auto &corpus = bench::nvidiaCorpus();

    core::NeuSight &full = bench::nvidiaNeuSight();
    core::PredictorConfig no_waves_cfg;
    no_waves_cfg.waveTerm = false;
    core::NeuSight no_waves(no_waves_cfg);
    no_waves.train(corpus);

    const gpusim::GpuSpec &h100 = gpusim::findGpu("H100");
    const gpusim::Device device(h100);

    TextTable table("Ablation: occupancy term of Eq. 7, "
                    "(256x256)x(256x256) BMM on H100 across batch",
                    {"Batch", "Waves", "Measured ms", "Full err",
                     "No-wave-term err"});
    CsvWriter csv(bench::csvPath("ablation_waves"),
                  {"batch", "waves", "measured_ms", "full_err_pct",
                   "no_wave_err_pct"});

    RunningMean full_low;
    RunningMean ablated_low;
    for (uint64_t batch : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
        const auto desc = gpusim::makeBmm(batch, 256, 256, 256);
        const auto launch = device.profileKernel(desc);
        const double measured = launch.latencyMs;
        const double err_full = absPercentageError(
            full.predictKernelMs(desc, h100), measured);
        const double err_ablated = absPercentageError(
            no_waves.predictKernelMs(desc, h100), measured);
        if (launch.numWaves <= 2) {
            full_low.add(err_full);
            ablated_low.add(err_ablated);
        }
        table.addRow({std::to_string(batch),
                      std::to_string(launch.numWaves),
                      TextTable::num(measured, 4),
                      TextTable::pct(err_full),
                      TextTable::pct(err_ablated)});
        csv.writeRow({std::to_string(batch),
                      std::to_string(launch.numWaves),
                      CsvWriter::fmt(measured, 5),
                      CsvWriter::fmt(err_full, 1),
                      CsvWriter::fmt(err_ablated, 1)});
    }
    table.print();
    std::printf("\nLow-occupancy (<=2 waves) mean error: full %.1f%%, "
                "no-wave-term %.1f%%.\n",
                full_low.value(), ablated_low.value());
    return 0;
}
