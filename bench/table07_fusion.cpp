/**
 * @file
 * Table 7 reproduction: inference latency prediction with operator
 * fusion (torch.compile-style add+LN and GEMM+activation fusion) for
 * BERT-Large (batch 8/16) and GPT2-Large (batch 4/8) on L4, A100-40GB
 * and H100 — measured latency, NeuSight prediction and error, fused and
 * non-fused.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "eval/oracle.hpp"
#include "graph/fusion.hpp"
#include "graph/models.hpp"

using namespace neusight;

int
main()
{
    setQuiet(false);
    core::NeuSight &neusight = bench::nvidiaNeuSight();
    const eval::SimulatorOracle oracle;

    const std::vector<std::pair<std::string, uint64_t>> workloads = {
        {"BERT-Large", 8}, {"BERT-Large", 16}, {"GPT2-Large", 4},
        {"GPT2-Large", 8}};
    const std::vector<std::string> gpu_names = {"L4", "A100-40GB",
                                                "H100"};

    TextTable table("Table 7: inference latency with operator fusion",
                    {"Model", "Batch", "GPU", "Meas non-fused",
                     "Pred non-fused", "Meas fused", "Pred fused"});
    CsvWriter csv(bench::csvPath("table07_fusion"),
                  {"model", "batch", "gpu", "fused", "measured_ms",
                   "predicted_ms", "error_pct"});

    RunningMean fused_err;
    for (const auto &[model_name, batch] : workloads) {
        const auto &model = graph::findModel(model_name);
        const auto plain = graph::buildInferenceGraph(model, batch);
        const auto fused = graph::fuseGraph(plain);
        for (const auto &gname : gpu_names) {
            const gpusim::GpuSpec &gpu = gpusim::findGpu(gname);
            const double meas_plain = oracle.predictGraphMs(plain, gpu);
            const double pred_plain = neusight.predictGraphMs(plain, gpu);
            const double meas_fused = oracle.predictGraphMs(fused, gpu);
            const double pred_fused = neusight.predictGraphMs(fused, gpu);
            const double err_plain =
                absPercentageError(pred_plain, meas_plain);
            const double err_fused =
                absPercentageError(pred_fused, meas_fused);
            fused_err.add(err_fused);
            auto cell = [](double pred, double err) {
                return TextTable::num(pred, 1) + " (" +
                       TextTable::pct(err) + ")";
            };
            table.addRow({model_name, std::to_string(batch), gname,
                          TextTable::num(meas_plain, 1),
                          cell(pred_plain, err_plain),
                          TextTable::num(meas_fused, 1),
                          cell(pred_fused, err_fused)});
            csv.writeRow({model_name, std::to_string(batch), gname, "0",
                          CsvWriter::fmt(meas_plain, 2),
                          CsvWriter::fmt(pred_plain, 2),
                          CsvWriter::fmt(err_plain, 1)});
            csv.writeRow({model_name, std::to_string(batch), gname, "1",
                          CsvWriter::fmt(meas_fused, 2),
                          CsvWriter::fmt(pred_fused, 2),
                          CsvWriter::fmt(err_fused, 1)});
        }
    }
    table.print();
    std::printf("\nMean fused-model error: %.1f%% (paper: 15.7%% across "
                "all fused models).\n",
                fused_err.value());
    return 0;
}
