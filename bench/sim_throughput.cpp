/**
 * @file
 * Event-simulator throughput and correctness bench: events/s of the
 * discrete-event engine on the flagship lowered schedules, the
 * closed-form parity check that anchors the simulator's numbers
 * (golden GPT2-Large pin, tight relative tolerance), and the
 * zero-bubble gate (the simulator-only schedule must strictly beat
 * 1F1B on at least the pinned config). Writes a BENCH_sim.json
 * artifact for CI and exits nonzero when parity or the zero-bubble
 * win is lost.
 *
 *   bench_sim_throughput --json BENCH_sim.json --parity-tol 1e-3
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "common/argparse.hpp"
#include "common/json.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "dist/collective.hpp"
#include "dist/parallel.hpp"
#include "eval/oracle.hpp"
#include "graph/models.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace neusight;

double
secondsSince(const std::chrono::steady_clock::time_point &start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

double
relErr(double a, double b)
{
    return std::fabs(a - b) / std::max(std::fabs(b), 1e-12);
}

} // namespace

int
run(int argc, const char *const *argv)
{
    common::ArgParser args(
        "bench_sim_throughput",
        "event-engine events/s, closed-form parity, and the "
        "zero-bubble gate");
    args.addInt("reps", 50, "timed repetitions of each simulation");
    args.addString("json", "BENCH_sim.json", "JSON report output path");
    args.addDouble("parity-tol", 1e-3,
                   "fail (exit 3) when the simulated golden pin "
                   "diverges from the closed form by more than this "
                   "relative error");
    if (!args.parse(argc, argv))
        return 0;
    setQuiet(false);
    const int reps = static_cast<int>(args.getInt("reps"));
    if (reps < 1)
        fatal("--reps must be at least 1");
    const double tol = args.getDouble("parity-tol");

    // The oracle predictor keeps stage pricing cheap and deterministic;
    // the engine under test is the event loop, not the MLP.
    const eval::SimulatorOracle oracle;
    const dist::SimCollectives comms("A100-NVLink");
    dist::ServerConfig server;
    server.systemName = "A100-NVLink";
    server.gpuName = "A100-40GB";
    server.numGpus = 8;
    const graph::ModelConfig &model = graph::findModel("GPT2-Large");
    const uint64_t global_batch = 16;
    common::Json report;

    // ------------------------------------------------------------------
    // 1. Engine throughput: simulate the golden hybrid and a deeper
    // interleaved schedule back to back, counting processed events.
    // Stage prices are memoized across reps, so after the first
    // iteration the wall-clock is the event engine itself.
    // ------------------------------------------------------------------
    dist::HybridConfig golden;
    golden.tpDegree = 2;
    golden.ppDegree = 2;
    golden.dpDegree = 2;
    golden.numMicroBatches = 4;
    golden.schedule = dist::PipelineSchedule::OneFOneB;

    dist::HybridConfig deep;
    deep.tpDegree = 1;
    deep.ppDegree = 4;
    deep.dpDegree = 2;
    deep.numMicroBatches = 8;
    deep.schedule = dist::PipelineSchedule::Interleaved1F1B;
    deep.virtualStagesPerGpu = 2;

    dist::StagePriceMemo memo;
    uint64_t events = 0;
    uint64_t tasks = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
        for (const dist::HybridConfig *hy : {&golden, &deep}) {
            const sim::SimResult res =
                sim::simulateHybrid(oracle, comms, server, model,
                                    global_batch, *hy, sim::SimOptions{},
                                    &memo);
            events += res.events;
            tasks += res.tasks;
        }
    }
    const double sim_s = secondsSince(t0);
    const double events_per_s =
        static_cast<double>(events) / std::max(sim_s, 1e-9);

    // ------------------------------------------------------------------
    // 2. Parity: the golden pin through both engines.
    // ------------------------------------------------------------------
    const sim::SimResult sim_golden = sim::simulateHybrid(
        oracle, comms, server, model, global_batch, golden, {}, &memo);
    const dist::HybridResult closed_golden = dist::hybridTrainingMs(
        oracle, comms, server, model, global_batch, golden, &memo);
    const double parity_err =
        relErr(sim_golden.hybrid.latencyMs, closed_golden.latencyMs);
    const bool parity_ok = parity_err <= tol;

    // ------------------------------------------------------------------
    // 3. The zero-bubble gate: on the deep pipeline, the split-backward
    // schedule must strictly beat 1F1B (that is the simulator's value
    // statement — a schedule no closed form prices, shown to win).
    // ------------------------------------------------------------------
    dist::HybridConfig pipe = deep;
    pipe.schedule = dist::PipelineSchedule::OneFOneB;
    pipe.virtualStagesPerGpu = 1;
    dist::HybridConfig zb = pipe;
    zb.schedule = dist::PipelineSchedule::ZeroBubble;
    const sim::SimResult one_f = sim::simulateHybrid(
        oracle, comms, server, model, global_batch, pipe, {}, &memo);
    const sim::SimResult zero_b = sim::simulateHybrid(
        oracle, comms, server, model, global_batch, zb, {}, &memo);
    const bool zb_ok =
        zero_b.hybrid.latencyMs < one_f.hybrid.latencyMs &&
        zero_b.hybrid.bubbleMs < one_f.hybrid.bubbleMs;

    TextTable table("Event-simulator bench (GPT2-Large, batch 16, "
                    "8x A100-40GB, " + std::to_string(reps) + " reps)",
                    {"metric", "value"});
    table.addRow({"events/s", TextTable::num(events_per_s, 0)});
    table.addRow({"events simulated", std::to_string(events)});
    table.addRow({"tasks lowered", std::to_string(tasks)});
    table.addRow({"golden pin sim (ms)",
                  TextTable::num(sim_golden.hybrid.latencyMs, 3)});
    table.addRow({"golden pin closed (ms)",
                  TextTable::num(closed_golden.latencyMs, 3)});
    table.addRow({"parity rel err",
                  TextTable::num(parity_err * 100.0, 4) + " %"});
    table.addRow({"1F1B pp4 (ms)",
                  TextTable::num(one_f.hybrid.latencyMs, 1)});
    table.addRow({"zero-bubble pp4 (ms)",
                  TextTable::num(zero_b.hybrid.latencyMs, 1)});
    table.addRow({"bubble 1F1B -> ZB (ms)",
                  TextTable::num(one_f.hybrid.bubbleMs, 1) + " -> " +
                      TextTable::num(zero_b.hybrid.bubbleMs, 1)});
    table.print();

    report.set("model", model.name);
    report.set("server", "8x A100-40GB");
    report.set("global_batch", global_batch);
    report.set("reps", static_cast<uint64_t>(reps));
    report.set("events_per_s", events_per_s);
    report.set("events", events);
    report.set("tasks", tasks);
    common::Json parity;
    parity.set("sim_ms", sim_golden.hybrid.latencyMs);
    parity.set("closed_ms", closed_golden.latencyMs);
    parity.set("rel_err", parity_err);
    parity.set("tolerance", tol);
    parity.set("pass", parity_ok);
    report.set("parity", std::move(parity));
    common::Json zbj;
    zbj.set("one_f_one_b_ms", one_f.hybrid.latencyMs);
    zbj.set("zero_bubble_ms", zero_b.hybrid.latencyMs);
    zbj.set("one_f_one_b_bubble_ms", one_f.hybrid.bubbleMs);
    zbj.set("zero_bubble_bubble_ms", zero_b.hybrid.bubbleMs);
    zbj.set("pass", zb_ok);
    report.set("zero_bubble", std::move(zbj));

    const std::string path = args.getString("json");
    std::ofstream out(path);
    if (!out)
        fatal("cannot write JSON report '" + path + "'");
    out << report.dump(2) << "\n";
    std::printf("\nJSON report written to %s\n", path.c_str());

    if (!parity_ok) {
        std::fprintf(stderr,
                     "sim_throughput: golden-pin parity %.3g exceeds "
                     "the %.3g tolerance\n",
                     parity_err, tol);
        return 3;
    }
    if (!zb_ok) {
        std::fprintf(stderr,
                     "sim_throughput: zero-bubble failed to beat 1F1B "
                     "(%.1f ms vs %.1f ms)\n",
                     zero_b.hybrid.latencyMs, one_f.hybrid.latencyMs);
        return 4;
    }
    return 0;
}

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
