/**
 * @file
 * Figure 7 reproduction (the headline evaluation): inference and training
 * latency prediction percentage error of NeuSight vs the roofline,
 * Habitat, and Li et al. baselines across the six Table-5 workloads, two
 * batch sizes each, on all eight NVIDIA GPUs. H100, L4 and A100-80GB are
 * held out of every training set; GPT3-2.7B is the out-of-distribution
 * model.
 */

#include <cstdio>

#include "baselines/habitat.hpp"
#include "baselines/li.hpp"
#include "baselines/roofline.hpp"
#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "eval/harness.hpp"

using namespace neusight;

namespace {

void
runPhase(bool training, const std::vector<const graph::LatencyPredictor *>
                            &predictors,
         CsvWriter &csv)
{
    const char *phase = training ? "training" : "inference";
    const auto cases = eval::paperEvaluationCases(training);
    std::vector<gpusim::GpuSpec> gpus;
    for (const auto &gpu : gpusim::deviceDatabase())
        if (gpu.vendor == gpusim::Vendor::Nvidia)
            gpus.push_back(gpu);

    const auto results = eval::evaluateCases(cases, gpus, predictors);

    TextTable table(std::string("Figure 7: ") + phase +
                        " latency prediction error (percentage error)",
                    {"Model", "Batch", "GPU", "Measured ms", "NeuSight",
                     "Roofline", "Habitat", "Li et al."});
    for (const auto &r : results) {
        std::vector<std::string> row = {
            r.modelName + (r.oodModel ? " [OOD]" : ""),
            std::to_string(r.batch),
            r.gpuName + (r.oodGpu ? " [OOD]" : ""),
            TextTable::num(r.measuredMs, 1)};
        for (const char *p :
             {"NeuSight", "Roofline", "Habitat", "Li et al."}) {
            const double err =
                absPercentageError(r.predictedMs.at(p), r.measuredMs);
            row.push_back(TextTable::pct(err));
            csv.writeRow({phase, r.modelName, std::to_string(r.batch),
                          r.gpuName, p, CsvWriter::fmt(r.measuredMs, 3),
                          CsvWriter::fmt(r.predictedMs.at(p), 3),
                          CsvWriter::fmt(err, 2),
                          (r.oodGpu || r.oodModel) ? "1" : "0"});
        }
        table.addRow(row);
    }
    table.print();

    const auto overall = eval::endToEndError(results);
    const auto ood = eval::outOfDistributionError(results);
    TextTable summary(std::string("Figure 7 summary (") + phase + ")",
                      {"Predictor", "Mean error", "OOD-only error"});
    for (const char *p :
         {"NeuSight", "Roofline", "Habitat", "Li et al."}) {
        summary.addRow({p, TextTable::pct(overall.at(p)),
                        TextTable::pct(ood.at(p))});
    }
    summary.print();
    std::printf("\n");
}

} // namespace

int
main()
{
    setQuiet(false);
    inform("Figure 7: preparing predictors (cached after first run)...");
    core::NeuSight &neusight = bench::nvidiaNeuSight();

    const auto &corpus = bench::nvidiaCorpus();
    baselines::RooflinePredictor roofline;
    baselines::LiPredictor li;
    li.train(corpus);
    baselines::HabitatPredictor habitat;
    habitat.train(corpus);

    const std::vector<const graph::LatencyPredictor *> predictors = {
        &neusight, &roofline, &habitat, &li};

    CsvWriter csv(bench::csvPath("fig07_end_to_end"),
                  {"phase", "model", "batch", "gpu", "predictor",
                   "measured_ms", "predicted_ms", "error_pct", "ood"});
    runPhase(false, predictors, csv);
    runPhase(true, predictors, csv);

    std::printf("Paper reports (all NVIDIA GPUs): inference 9.7%% "
                "(NeuSight), 31.2%% (roofline), 220.9%% (Habitat), "
                "61.2%% (Li et al.); training 7.3%% / 31.9%% / 725.8%% / "
                "58.3%%.\n");
    return 0;
}
