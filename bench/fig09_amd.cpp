/**
 * @file
 * Figure 9 reproduction: cross-vendor generalization. NeuSight is
 * trained on AMD MI100 + MI210 data only and evaluated on MI250 (held
 * out) plus the training GPUs, for five models, inference and training.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "eval/harness.hpp"

using namespace neusight;

namespace {

void
runPhase(core::NeuSight &neusight, bool training, CsvWriter &csv,
         RunningMean &phase_err)
{
    const char *phase = training ? "training" : "inference";
    std::vector<eval::WorkloadCase> cases;
    for (const char *name : {"BERT-Large", "GPT2-Large", "GPT3-XL",
                             "OPT-1.3B", "GPT3-2.7B"}) {
        for (uint64_t batch : {2u, 4u}) {
            eval::WorkloadCase c;
            c.model = graph::findModel(name);
            c.batch = batch;
            c.training = training;
            c.oodModel = std::string(name) == "GPT3-2.7B";
            cases.push_back(c);
        }
    }
    std::vector<gpusim::GpuSpec> gpus;
    for (const char *name : {"MI100", "MI210", "MI250"})
        gpus.push_back(gpusim::findGpu(name));

    const auto results = eval::evaluateCases(cases, gpus, {&neusight});

    TextTable table(std::string("Figure 9: AMD ") + phase +
                        " prediction error (trained on MI100+MI210)",
                    {"Model", "Batch", "GPU", "Measured ms",
                     "Predicted ms", "Error"});
    for (const auto &r : results) {
        const double pred = r.predictedMs.at("NeuSight");
        const double err = absPercentageError(pred, r.measuredMs);
        phase_err.add(err);
        table.addRow({r.modelName, std::to_string(r.batch),
                      r.gpuName + (r.oodGpu ? " [OOD]" : ""),
                      TextTable::num(r.measuredMs, 1),
                      TextTable::num(pred, 1), TextTable::pct(err)});
        csv.writeRow({phase, r.modelName, std::to_string(r.batch),
                      r.gpuName, CsvWriter::fmt(r.measuredMs, 3),
                      CsvWriter::fmt(pred, 3), CsvWriter::fmt(err, 1)});
    }
    table.print();
    std::printf("\n");
}

} // namespace

int
main()
{
    setQuiet(false);
    inform("Figure 9: training the AMD NeuSight (cached)...");
    core::NeuSight &neusight = bench::amdNeuSight();

    CsvWriter csv(bench::csvPath("fig09_amd"),
                  {"phase", "model", "batch", "gpu", "measured_ms",
                   "predicted_ms", "error_pct"});
    RunningMean inf_err;
    RunningMean train_err;
    runPhase(neusight, false, csv, inf_err);
    runPhase(neusight, true, csv, train_err);

    std::printf("Mean error: inference %.1f%%, training %.1f%% "
                "(paper: 8.8%% and 15.7%%).\n",
                inf_err.value(), train_err.value());
    return 0;
}
