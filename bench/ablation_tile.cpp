/**
 * @file
 * Ablation (DESIGN.md Section 7): tile decomposition vs direct
 * kernel-level prediction. The direct variant is exactly the Habitat
 * MLP (same training corpus, same GPU features, latency as the target);
 * the tile variant is NeuSight. Isolates the contribution of predicting
 * per-tile utilization instead of whole-kernel latency (Section 3.2).
 */

#include <cstdio>

#include "baselines/habitat.hpp"
#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "gpusim/device.hpp"

using namespace neusight;

namespace {

void
sweep(const graph::LatencyPredictor &predictor,
      const gpusim::GpuSpec &gpu, uint64_t lo, uint64_t hi,
      RunningMean &acc)
{
    const gpusim::Device device(gpu);
    for (uint64_t d = lo; d <= hi; d *= 2) {
        for (uint64_t batch : {1u, 8u, 32u}) {
            const auto desc = gpusim::makeBmm(batch, d, d, d);
            acc.add(absPercentageError(
                predictor.predictKernelMs(desc, gpu),
                device.measureKernelMs(desc)));
        }
    }
}

} // namespace

int
main()
{
    setQuiet(false);
    core::NeuSight &neusight = bench::nvidiaNeuSight();
    baselines::HabitatPredictor direct;
    direct.train(bench::nvidiaCorpus());

    TextTable table("Ablation: tile-granularity vs direct kernel "
                    "prediction (BMM error)",
                    {"GPU", "Dims", "NeuSight (tiles)", "Direct MLP"});
    CsvWriter csv(bench::csvPath("ablation_tile"),
                  {"gpu", "dims", "tile_err_pct", "direct_err_pct"});

    for (const char *gpu_name : {"V100", "A100-40GB", "H100", "L4"}) {
        const gpusim::GpuSpec &gpu = gpusim::findGpu(gpu_name);
        for (const auto &[label, lo, hi] :
             {std::tuple<const char *, uint64_t, uint64_t>{"64..1024", 64,
                                                           1024},
              std::tuple<const char *, uint64_t, uint64_t>{
                  "2048..4096 [OOD]", 2048, 4096}}) {
            RunningMean tile_err;
            RunningMean direct_err;
            sweep(neusight, gpu, lo, hi, tile_err);
            sweep(direct, gpu, lo, hi, direct_err);
            table.addRow({gpu_name, label,
                          TextTable::pct(tile_err.value()),
                          TextTable::pct(direct_err.value())});
            csv.writeRow({gpu_name, label,
                          CsvWriter::fmt(tile_err.value(), 1),
                          CsvWriter::fmt(direct_err.value(), 1)});
        }
    }
    table.print();
    return 0;
}
