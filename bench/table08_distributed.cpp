/**
 * @file
 * Table 8 reproduction: distributed training latency on two 4-GPU
 * servers — A100-40GB x 4 (NVLink, 600 GB/s) and H100 x 4 (DGX,
 * 900 GB/s) — for GPT2-Large (global batch 4 and 16) and GPT3-XL
 * (batch 4), under data / tensor / pipeline parallelism with a single
 * micro-batch. Ground truth: simulator + SimCollectives; forecast:
 * NeuSight + the Section-5.1 link-utilization estimator calibrated on
 * the A100 NVLink system.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "dist/parallel.hpp"
#include "eval/oracle.hpp"

using namespace neusight;

int
main()
{
    setQuiet(false);
    core::NeuSight &neusight = bench::nvidiaNeuSight();
    const eval::SimulatorOracle oracle;
    const dist::EstimatedCollectives estimator("A100-NVLink", 600.0);

    std::vector<dist::ServerConfig> servers(2);
    servers[0].systemName = "A100-NVLink";
    servers[0].gpuName = "A100-40GB";
    servers[0].numGpus = 4;
    servers[1].systemName = "H100-DGX";
    servers[1].gpuName = "H100";
    servers[1].numGpus = 4;

    const std::vector<std::pair<std::string, uint64_t>> workloads = {
        {"GPT2-Large", 4}, {"GPT2-Large", 16}, {"GPT3-XL", 4}};

    TextTable table("Table 8: distributed training latency prediction "
                    "(single micro-batch)",
                    {"Model", "Global batch", "Server", "Strategy",
                     "Measured ms", "Predicted ms", "Error"});
    CsvWriter csv(bench::csvPath("table08_distributed"),
                  {"model", "global_batch", "server", "strategy",
                   "measured_ms", "predicted_ms", "error_pct", "oom"});

    RunningMean mean_err;
    for (const auto &[model_name, batch] : workloads) {
        const auto &model = graph::findModel(model_name);
        for (const auto &server : servers) {
            const dist::SimCollectives truth_comms(server.systemName);
            for (dist::Parallelism strategy :
                 {dist::Parallelism::Data, dist::Parallelism::Tensor,
                  dist::Parallelism::Pipeline}) {
                const auto truth = dist::distributedTrainingMs(
                    oracle, truth_comms, server, model, batch, strategy);
                const auto guess = dist::distributedTrainingMs(
                    neusight, estimator, server, model, batch, strategy);
                if (truth.oom || guess.oom) {
                    table.addRow({model_name, std::to_string(batch),
                                  server.systemName,
                                  dist::parallelismName(strategy), "OOM",
                                  "OOM", "-"});
                    csv.writeRow({model_name, std::to_string(batch),
                                  server.systemName,
                                  dist::parallelismName(strategy), "", "",
                                  "", "1"});
                    continue;
                }
                const double err = absPercentageError(guess.latencyMs,
                                                      truth.latencyMs);
                mean_err.add(err);
                table.addRow({model_name, std::to_string(batch),
                              server.systemName,
                              dist::parallelismName(strategy),
                              TextTable::num(truth.latencyMs, 1),
                              TextTable::num(guess.latencyMs, 1),
                              TextTable::pct(err)});
                csv.writeRow({model_name, std::to_string(batch),
                              server.systemName,
                              dist::parallelismName(strategy),
                              CsvWriter::fmt(truth.latencyMs, 2),
                              CsvWriter::fmt(guess.latencyMs, 2),
                              CsvWriter::fmt(err, 1), "0"});
            }
        }
    }
    table.print();
    std::printf("\nMean error over non-OOM cells: %.1f%% (paper: 7.7%% "
                "overall; 6.7%% H100 server, 10.5%% A100 server).\n",
                mean_err.value());
    return 0;
}
