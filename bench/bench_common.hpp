/**
 * @file
 * Shared plumbing for the table/figure bench binaries: cached trained
 * frameworks, the default (scaled) corpus configuration, and output-file
 * helpers. Every bench prints the paper's rows as a text table and also
 * writes them as CSV next to the binary.
 */

#ifndef NEUSIGHT_BENCH_COMMON_HPP
#define NEUSIGHT_BENCH_COMMON_HPP

#include <map>
#include <string>

#include "core/predictor.hpp"
#include "dataset/dataset.hpp"

namespace neusight::bench {

/** Default scaled sampler (DESIGN.md Section 4). */
inline dataset::SamplerConfig
defaultSampler()
{
    return dataset::SamplerConfig{};
}

/**
 * NeuSight trained on the five NVIDIA training GPUs, cached on disk so
 * consecutive bench binaries reuse one training run.
 */
inline core::NeuSight &
nvidiaNeuSight()
{
    static core::NeuSight framework = core::NeuSight::trainOrLoad(
        "neusight_nvidia.bin", gpusim::nvidiaTrainingSet(),
        defaultSampler());
    return framework;
}

/** NeuSight trained on MI100 + MI210 (the Figure-9 study). */
inline core::NeuSight &
amdNeuSight()
{
    dataset::SamplerConfig sampler = defaultSampler();
    sampler.seed += 17;
    static core::NeuSight framework = core::NeuSight::trainOrLoad(
        "neusight_amd.bin", gpusim::amdTrainingSet(), sampler);
    return framework;
}

/** The NVIDIA training corpus (regenerated; deterministic by seed). */
inline const std::map<gpusim::OpType, dataset::OperatorDataset> &
nvidiaCorpus()
{
    static const auto corpus = dataset::generateOperatorData(
        gpusim::nvidiaTrainingSet(), defaultSampler());
    return corpus;
}

/** CSV output path for a bench ("<name>.csv" in the working directory). */
inline std::string
csvPath(const std::string &bench_name)
{
    return bench_name + ".csv";
}

} // namespace neusight::bench

#endif // NEUSIGHT_BENCH_COMMON_HPP
