/**
 * @file
 * Ablation (DESIGN.md Section 7): remove the performance-law bounds.
 * Three NeuSight variants are trained on the same corpus —
 *   (a) full (sigmoid bound + wave term, the paper's design),
 *   (b) no sigmoid bound (MLP emits unconstrained utilization), and
 *   (c) no wave term (constant utilization per kernel) —
 * then compared on in-distribution and out-of-distribution BMM/FC
 * kernels on held-out GPUs. The paper's claim (Section 4.2): the bounds
 * are what keep extrapolation sane.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "gpusim/device.hpp"

using namespace neusight;

namespace {

struct Variant
{
    const char *name;
    core::NeuSight framework;
};

/** MAPE of a variant on a shape sweep on one GPU. */
void
sweepErrors(core::NeuSight &framework, const gpusim::GpuSpec &gpu,
            bool ood, RunningMean &acc)
{
    const gpusim::Device device(gpu);
    const std::vector<uint64_t> dims =
        ood ? std::vector<uint64_t>{2048, 3072, 4096}
            : std::vector<uint64_t>{256, 512, 1024};
    for (uint64_t d : dims) {
        for (uint64_t batch : {2u, 8u}) {
            const auto bmm = gpusim::makeBmm(batch, d, d, d);
            acc.add(absPercentageError(
                framework.predictKernelMs(bmm, gpu),
                device.measureKernelMs(bmm)));
            const auto fc = gpusim::makeLinear(batch * 512, d, 4 * d);
            acc.add(absPercentageError(
                framework.predictKernelMs(fc, gpu),
                device.measureKernelMs(fc)));
        }
    }
}

} // namespace

int
main()
{
    setQuiet(false);
    inform("Ablation: training three NeuSight variants...");
    const auto &corpus = bench::nvidiaCorpus();

    core::PredictorConfig full_cfg;
    core::PredictorConfig no_sigmoid = full_cfg;
    no_sigmoid.sigmoidBound = false;
    core::PredictorConfig no_waves = full_cfg;
    no_waves.waveTerm = false;

    std::vector<Variant> variants;
    variants.push_back({"Full NeuSight", core::NeuSight(full_cfg)});
    variants.push_back({"No sigmoid bound", core::NeuSight(no_sigmoid)});
    variants.push_back({"No wave term", core::NeuSight(no_waves)});
    for (auto &v : variants)
        v.framework.train(corpus);

    TextTable table("Ablation: performance-law bounds "
                    "(BMM + FC kernel error)",
                    {"Variant", "In-dist (V100/A100)",
                     "OOD dims+GPUs (H100/L4)"});
    CsvWriter csv(bench::csvPath("ablation_bounds"),
                  {"variant", "in_dist_err_pct", "ood_err_pct"});

    for (auto &v : variants) {
        RunningMean in_dist;
        RunningMean out_dist;
        sweepErrors(v.framework, gpusim::findGpu("V100"), false, in_dist);
        sweepErrors(v.framework, gpusim::findGpu("A100-40GB"), false,
                    in_dist);
        sweepErrors(v.framework, gpusim::findGpu("H100"), true, out_dist);
        sweepErrors(v.framework, gpusim::findGpu("L4"), true, out_dist);
        table.addRow({v.name, TextTable::pct(in_dist.value()),
                      TextTable::pct(out_dist.value())});
        csv.writeRow({v.name, CsvWriter::fmt(in_dist.value(), 1),
                      CsvWriter::fmt(out_dist.value(), 1)});
    }
    table.print();
    std::printf("\nExpected: the full design dominates out of "
                "distribution; the unbounded variant degrades most.\n");
    return 0;
}
