/**
 * @file
 * Figure 10 reproduction: adapting NeuSight to a new numeric type and
 * hardware unit. FP16 tensor-core batched matmuls (NxN)x(NxN) on H100:
 * NeuSight's features are re-derived with halved traffic and the tensor
 * core's peak FLOPS (Section 6.2), with no retraining.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "gpusim/device.hpp"

using namespace neusight;

int
main()
{
    setQuiet(false);
    core::NeuSight &neusight = bench::nvidiaNeuSight();
    const gpusim::GpuSpec &h100 = gpusim::findGpu("H100");
    const gpusim::Device device(h100);

    TextTable table("Figure 10: FP16 Tensor Core (NxN)x(NxN) BMM on H100",
                    {"N", "Batch", "Measured ms", "Predicted ms",
                     "Error"});
    CsvWriter csv(bench::csvPath("fig10_fp16_tensorcore"),
                  {"n", "batch", "measured_ms", "predicted_ms",
                   "error_pct"});

    RunningMean mean_err;
    for (uint64_t n : {512u, 1024u, 2048u, 4096u}) {
        for (uint64_t batch : {1u, 4u, 16u, 64u}) {
            const auto desc = gpusim::makeBmm(batch, n, n, n,
                                              gpusim::DataType::Fp16,
                                              true);
            const double measured = device.measureKernelMs(desc);
            const double predicted =
                neusight.predictKernelMs(desc, h100);
            const double err = absPercentageError(predicted, measured);
            mean_err.add(err);
            table.addRow({std::to_string(n), std::to_string(batch),
                          TextTable::num(measured, 3),
                          TextTable::num(predicted, 3),
                          TextTable::pct(err)});
            csv.writeRow({std::to_string(n), std::to_string(batch),
                          CsvWriter::fmt(measured, 4),
                          CsvWriter::fmt(predicted, 4),
                          CsvWriter::fmt(err, 1)});
        }
    }
    table.print();
    std::printf("\nMean FP16 tensor-core error: %.1f%% (paper: ~13%%).\n",
                mean_err.value());
    return 0;
}
