/**
 * @file
 * LLM-serving planner: the paper's first-token metric covers prefill;
 * this example extends the forecast to the full serving picture —
 * prefill latency plus per-token decode latency against a growing KV
 * cache — and compares GPUs on time-to-first-token and steady-state
 * tokens/second without running on any of them. Everything flows
 * through one api::ForecastEngine: typed inference/decode requests,
 * the kernel-prediction cache, and the model-graph cache, exactly the
 * path the forecast server runs in production.
 */

#include <cstdio>

#include "api/engine.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "graph/models.hpp"

using namespace neusight;

namespace {

/** Forecast or die loudly — a silent zero would poison every row. */
double
forecastMs(const api::ForecastEngine &engine,
           const api::ForecastRequest &request)
{
    const api::ForecastResult result = engine.forecast(request);
    if (!result.ok)
        fatal("forecast failed: " + result.error);
    return result.latencyMs;
}

} // namespace

int
main()
{
    setQuiet(true);
    const auto &model = graph::findModel("GPT3-XL");
    const uint64_t batch = 4;
    const uint64_t generate_tokens = 128;

    // Trained on the five NVIDIA training GPUs; H100/L4/A100-80GB are
    // held out, exactly the unseen-GPU scenario of the paper. Serving
    // forecasts repeat kernels heavily — every decode step shares
    // almost its whole graph with the previous context length — so the
    // engine's kernel-prediction cache does the heavy lifting.
    const api::ForecastEngine engine(
        api::EngineConfig().cache(16384));

    api::ForecastRequest request;
    request.model = model.name;
    request.batch = batch;

    std::printf("Serving %s, batch %llu, prompt %llu tokens, "
                "generating %llu tokens\n\n",
                model.name.c_str(),
                static_cast<unsigned long long>(batch),
                static_cast<unsigned long long>(model.seq),
                static_cast<unsigned long long>(generate_tokens));

    TextTable table(
        "Forecasted serving profile (no execution on any target GPU)",
        {"gpu", "prefill (ms)", "ms/token @ctx", "tokens/s", "KV cache"});
    for (const char *name : {"V100", "A100-40GB", "A100-80GB", "L4",
                             "H100"}) {
        request.gpu = api::ForecastEngine::resolveGpu(name);

        // Time to first token: the paper's prefill latency metric.
        request.kind = api::RequestKind::Inference;
        const double prefill_ms = forecastMs(engine, request);

        // Steady-state decode: average the per-token forecast over the
        // generation window (the KV cache grows every step).
        request.kind = api::RequestKind::DecodeStep;
        double decode_total_ms = 0.0;
        for (uint64_t t = 0; t < generate_tokens; t += 16) {
            request.pastLen = model.seq + t;
            decode_total_ms += 16.0 * forecastMs(engine, request);
        }
        request.pastLen = 0;
        const double ms_per_token =
            decode_total_ms / static_cast<double>(generate_tokens);
        const double kv_gb =
            graph::kvCacheBytes(model, batch,
                                model.seq + generate_tokens) /
            1e9;

        table.addRow({name, TextTable::num(prefill_ms, 1),
                      TextTable::num(ms_per_token, 2),
                      TextTable::num(batch * 1000.0 / ms_per_token, 0),
                      TextTable::num(kv_gb, 2) + " GB"});
    }
    table.print();

    std::printf("\nDecode is memory-bound: per-token latency tracks "
                "memory bandwidth, while prefill tracks peak FLOPS —\n"
                "the two phases can favor different GPUs, which is why "
                "both forecasts matter when sizing a deployment.\n");

    const api::CacheStats stats = engine.cacheStats();
    std::printf("\nPrediction cache: %llu hits / %llu misses "
                "(%.1f%% hit rate) — repeated decode-step kernels are "
                "forecast once per GPU, not once per context length.\n",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                100.0 * stats.hitRate());
    return 0;
}
