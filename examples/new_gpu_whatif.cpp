/**
 * @file
 * What-if forecasting for a GPU that does not exist yet — the paper's
 * headline use case (Section 1: "new model architectures on new GPUs").
 * We define a hypothetical next-generation part from spec-sheet numbers
 * alone (the paper notes Blackwell's memory size, bandwidth and peak
 * FLOPS were public before launch) and forecast every Table-5 workload
 * on it, next to H100 and A100 forecasts for context.
 */

#include <cstdio>

#include "common/json.hpp"
#include "common/table.hpp"
#include "core/predictor.hpp"
#include "gpusim/spec_io.hpp"
#include "graph/models.hpp"

int
main()
{
    using namespace neusight;

    core::NeuSight neusight = core::NeuSight::trainOrLoad(
        "neusight_nvidia.bin", gpusim::nvidiaTrainingSet(),
        dataset::SamplerConfig{});

    // A hypothetical "next-gen" part described the way a user of the
    // neusight-predict tool would: a JSON spec sheet with only publicly
    // announced numbers (~1.8x H100 compute, 8 TB/s HBM, bigger L2).
    const gpusim::GpuSpec nextgen = gpusim::gpuSpecFromJson(
        common::Json::parse(R"({
            "name": "NextGen-X", "vendor": "nvidia", "year": 2025,
            "peak_fp32_tflops": 120.0, "fp16_tensor_tflops": 1800.0,
            "memory_size_gb": 192.0, "memory_bw_gbps": 8000.0,
            "num_sms": 160, "l2_cache_mb": 64.0,
            "interconnect_gbps": 1800.0
        })"));

    const gpusim::GpuSpec &h100 = gpusim::findGpu("H100");
    const gpusim::GpuSpec &a100 = gpusim::findGpu("A100-80GB");

    TextTable table("Inference forecast (batch 8) on a hypothetical "
                    "next-gen GPU",
                    {"Model", "A100-80GB ms", "H100 ms", "NextGen-X ms",
                     "Speedup vs H100"});
    for (const auto &model : graph::paperWorkloads()) {
        const auto g = graph::buildInferenceGraph(model, 8);
        const double on_a100 = neusight.predictGraphMs(g, a100);
        const double on_h100 = neusight.predictGraphMs(g, h100);
        const double on_next = neusight.predictGraphMs(g, nextgen);
        table.addRow({model.name, TextTable::num(on_a100, 1),
                      TextTable::num(on_h100, 1),
                      TextTable::num(on_next, 1),
                      TextTable::num(on_h100 / on_next, 2) + "x"});
    }
    table.print();
    std::printf("\nNo NextGen-X silicon exists: the forecast uses only "
                "spec-sheet features, exactly how NeuSight forecast "
                "H100 from pre-launch documentation.\n");
    return 0;
}
