/**
 * @file
 * CNN forecasting: the paper motivates learned prediction with the cost
 * of cycle-accurate simulation — "up to 18 hours to simulate ResNet-50
 * with a batch size of 256" (Section 1). This example forecasts
 * ResNet-50 and VGG-16 across batch sizes and GPUs, timing the forecast
 * itself to make the speed argument concrete, and demonstrates that the
 * transformer-trained predictor transfers to convolutional workloads
 * through the implicit-GEMM lowering.
 */

#include <chrono>
#include <cstdio>

#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/predictor.hpp"
#include "graph/cnn.hpp"
#include "graph/models.hpp"

using namespace neusight;

int
main()
{
    setQuiet(true);
    const core::NeuSight neusight = core::NeuSight::trainOrLoad(
        "neusight_nvidia.bin", gpusim::nvidiaTrainingSet(),
        dataset::SamplerConfig{});

    std::printf("ResNet-50 parameters: %.1f M (torchvision: 25.6 M)\n\n",
                graph::resNet50ParameterCount() / 1e6);

    const auto start = std::chrono::steady_clock::now();

    TextTable table("ResNet-50 / VGG-16 inference forecasts (ms)",
                    {"model", "batch", "V100", "A100-40GB", "L4", "H100"});
    for (const char *model : {"ResNet-50", "VGG-16"}) {
        for (uint64_t batch : {8u, 64u, 256u}) {
            const graph::KernelGraph g =
                model == std::string("ResNet-50")
                    ? graph::buildResNet50Graph(batch)
                    : graph::buildVgg16Graph(batch);
            std::vector<std::string> row = {model, std::to_string(batch)};
            for (const char *gpu : {"V100", "A100-40GB", "L4", "H100"})
                row.push_back(TextTable::num(
                    neusight.predictGraphMs(g, gpusim::findGpu(gpu)), 1));
            table.addRow(std::move(row));
        }
    }
    table.print();

    // Training-iteration forecast (conv backward = giant-reduction
    // GEMMs, a kernel class entirely absent from the training corpus).
    const auto train_graph = graph::buildResNet50TrainingGraph(64);
    TextTable train("ResNet-50 training iteration, batch 64",
                    {"gpu", "forecast (ms)"});
    for (const char *gpu : {"V100", "A100-40GB", "H100"})
        train.addRow({gpu,
                      TextTable::num(neusight.predictGraphMs(
                                         train_graph, gpusim::findGpu(gpu)),
                                     1)});
    std::printf("\n");
    train.print();

    const double forecast_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    std::printf("\nAll %d forecasts took %.2f s total — the workload the "
                "paper quotes at ~18 h\nin a cycle-accurate simulator "
                "(Accel-Sim, ResNet-50 @ 256) forecasts here in\n"
                "milliseconds, which is the point of a learned "
                "tile-granularity model.\n",
                6 * 4 + 3, forecast_s);
    return 0;
}
