/**
 * @file
 * Parallelism planning on a multi-GPU server (paper Section 5.1):
 * forecast one training iteration of GPT3-XL under data, tensor, and
 * pipeline parallelism on a 4x A100-40GB NVLink server and a 4x H100
 * DGX, and report the best strategy per server — including
 * configurations that only some strategies can fit in memory. Then go
 * beyond single axes: sweep every composed TP x PP x DP strategy
 * (micro-batching, pipeline schedules, activation recomputation) on
 * the memory-bound server and print the ranked plan.
 */

#include <cstdio>

#include "common/table.hpp"
#include "core/predictor.hpp"
#include "dist/parallel.hpp"
#include "serve/prediction_cache.hpp"

int
main()
{
    using namespace neusight;

    core::NeuSight neusight = core::NeuSight::trainOrLoad(
        "neusight_nvidia.bin", gpusim::nvidiaTrainingSet(),
        dataset::SamplerConfig{});
    const dist::EstimatedCollectives comms("A100-NVLink", 600.0);

    std::vector<dist::ServerConfig> servers(2);
    servers[0].systemName = "A100-NVLink";
    servers[0].gpuName = "A100-40GB";
    servers[0].numGpus = 4;
    servers[1].systemName = "H100-DGX";
    servers[1].gpuName = "H100";
    servers[1].numGpus = 4;

    const graph::ModelConfig &model = graph::findModel("GPT3-XL");
    const uint64_t global_batch = 4;

    TextTable table("GPT3-XL training-iteration forecast, global batch 4,"
                    " single micro-batch",
                    {"Server", "Strategy", "Forecast ms"});
    for (const auto &server : servers) {
        const char *best_name = nullptr;
        double best_ms = 0.0;
        for (dist::Parallelism strategy :
             {dist::Parallelism::Data, dist::Parallelism::Tensor,
              dist::Parallelism::Pipeline}) {
            const auto result = dist::distributedTrainingMs(
                neusight, comms, server, model, global_batch, strategy);
            if (result.oom) {
                table.addRow({server.systemName,
                              dist::parallelismName(strategy), "OOM"});
                continue;
            }
            table.addRow({server.systemName,
                          dist::parallelismName(strategy),
                          TextTable::num(result.latencyMs, 1)});
            if (best_name == nullptr || result.latencyMs < best_ms) {
                best_name = dist::parallelismName(strategy);
                best_ms = result.latencyMs;
            }
        }
        if (best_name != nullptr)
            std::printf("Best on %s: %s (%.1f ms forecast)\n",
                        server.systemName.c_str(), best_name, best_ms);
    }
    std::printf("\n");
    table.print();

    // The strategy sweep: compose the axes instead of picking one.
    // GPT3-XL at a production batch is memory-tight on the 40 GB A100,
    // where hybrid splits (and recomputation) earn their keep. The
    // sweep forecasts hundreds of graph variants that share almost all
    // kernel shapes, so memoize per-kernel predictions first.
    neusight.attachCache(
        std::make_shared<serve::PredictionCache>(1 << 16));
    const uint64_t sweep_batch = 16;
    const auto plan = dist::sweepStrategies(neusight, comms, servers[0],
                                            model, sweep_batch);
    TextTable sweep_table(
        model.name + " strategy sweep on 4x A100-40GB (global batch " +
            std::to_string(sweep_batch) + ", top 5 of " +
            std::to_string(plan.size()) + " runnable)",
        {"Rank", "Strategy", "Micro", "Schedule", "Recompute",
         "Forecast ms", "Mem GB/GPU"});
    for (size_t i = 0; i < plan.size() && i < 5; ++i) {
        const auto &e = plan[i];
        sweep_table.addRow(
            {std::to_string(i + 1), e.config.describe(),
             std::to_string(e.config.numMicroBatches),
             e.config.ppDegree > 1
                 ? dist::pipelineScheduleName(e.config.schedule)
                 : "-",
             e.config.recomputeActivations ? "yes" : "no",
             TextTable::num(e.result.latencyMs, 1),
             TextTable::num(e.result.memoryBytes / 1e9, 1)});
    }
    std::printf("\n");
    sweep_table.print();
    return 0;
}
