/**
 * @file
 * GPU selection under a latency SLO (paper Section 3, use case (b):
 * "utilizing estimates to identify GPUs that meet the performance
 * requirements"). Forecasts GPT2-Large batch-8 inference on every GPU in
 * the database — including ones never profiled — and reports which meet
 * a 500 ms budget.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "core/predictor.hpp"
#include "graph/models.hpp"

int
main()
{
    using namespace neusight;

    core::NeuSight neusight = core::NeuSight::trainOrLoad(
        "neusight_nvidia.bin", gpusim::nvidiaTrainingSet(),
        dataset::SamplerConfig{});

    const double slo_ms = 500.0;
    const graph::ModelConfig &model = graph::findModel("GPT2-Large");
    const uint64_t batch = 8;
    const graph::KernelGraph g = graph::buildInferenceGraph(model, batch);
    const double mem_needed = graph::modelMemoryBytes(model, batch, false);

    struct Row
    {
        std::string gpu;
        int year;
        double ms;
        bool fits;
        bool unseen;
    };
    std::vector<Row> rows;
    for (const auto &gpu : gpusim::deviceDatabase()) {
        if (gpu.vendor != gpusim::Vendor::Nvidia)
            continue;
        Row row;
        row.gpu = gpu.name;
        row.year = gpu.year;
        row.fits = mem_needed <= gpu.memBytes();
        row.unseen = !gpu.inTrainingSet;
        row.ms = row.fits ? neusight.predictGraphMs(g, gpu) : 0.0;
        rows.push_back(row);
    }
    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        return a.ms < b.ms;
    });

    TextTable table("GPT2-Large b8 inference forecast vs a 500 ms SLO",
                    {"GPU", "Year", "Predicted ms", "Meets SLO"});
    for (const auto &row : rows) {
        if (!row.fits) {
            table.addRow({row.gpu, std::to_string(row.year), "OOM", "no"});
            continue;
        }
        table.addRow({row.gpu + (row.unseen ? " (never profiled)" : ""),
                      std::to_string(row.year), TextTable::num(row.ms, 1),
                      row.ms <= slo_ms ? "YES" : "no"});
    }
    table.print();

    // The oldest (cheapest) GPU that still meets the SLO.
    const Row *pick = nullptr;
    for (const auto &row : rows)
        if (row.fits && row.ms <= slo_ms &&
            (pick == nullptr || row.year < pick->year))
            pick = &row;
    if (pick != nullptr)
        std::printf("\nRecommendation: %s (oldest part meeting the SLO "
                    "at %.1f ms predicted).\n",
                    pick->gpu.c_str(), pick->ms);
    else
        std::printf("\nNo GPU in the database meets the SLO.\n");
    return 0;
}
