/**
 * @file
 * Quickstart: forecast the inference latency of GPT3-XL on an H100 —
 * a GPU the predictor was never trained on. Mirrors the paper artifact's
 * basic test (scripts/example/gpt3_inference_h100.sh), driven through
 * the library's one entry point: api::ForecastEngine answers the same
 * typed request twice, once with the trained NeuSight backend and once
 * with the simulator ground truth ("oracle"), selected per request.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "api/engine.hpp"
#include "common/logging.hpp"

int
main()
{
    using namespace neusight;

    // 1. The engine hosts the predictor registry: the "neusight"
    //    backend trains on the five older-generation NVIDIA GPUs (P4,
    //    P100, V100, T4, A100-40GB) — or loads the cached file — on
    //    first use. H100 data is never used.
    const api::ForecastEngine engine;

    // 2. Describe the workload as a typed request: GPT3-XL, batch 2,
    //    first-token inference on the unseen GPU.
    api::ForecastRequest request;
    request.kind = api::RequestKind::Inference;
    request.model = "GPT3-XL";
    request.batch = 2;
    request.gpu = api::ForecastEngine::resolveGpu("H100");

    // 3. Forecast on the unseen GPU.
    const api::ForecastResult predicted = engine.forecast(request);
    if (!predicted.ok)
        fatal("forecast failed: " + predicted.error);
    std::printf("GPT3-XL inference graph: %zu kernels\n",
                predicted.kernelCount);
    std::printf("Predicted latency on H100:  %8.1f ms\n",
                predicted.latencyMs);

    // 4. Compare against the measurement substrate by re-asking the
    //    same request from the simulator-oracle backend (in a real
    //    deployment this is the number you do not have).
    request.backend = "oracle";
    const api::ForecastResult measured = engine.forecast(request);
    if (!measured.ok)
        fatal("forecast failed: " + measured.error);
    std::printf("Measured latency on H100:   %8.1f ms  (error %.1f%%)\n",
                measured.latencyMs,
                (predicted.latencyMs - measured.latencyMs) /
                    measured.latencyMs * 100.0);
    return 0;
}
