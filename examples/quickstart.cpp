/**
 * @file
 * Quickstart: forecast the inference latency of GPT3-XL on an H100 —
 * a GPU the predictor was never trained on. Mirrors the paper artifact's
 * basic test (scripts/example/gpt3_inference_h100.sh).
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/predictor.hpp"
#include "dataset/dataset.hpp"
#include "eval/oracle.hpp"
#include "graph/models.hpp"

int
main()
{
    using namespace neusight;

    // 1. Train NeuSight on the five older-generation NVIDIA GPUs
    //    (P4, P100, V100, T4, A100-40GB), or load a cached model.
    //    H100 data is never used.
    core::NeuSight neusight = core::NeuSight::trainOrLoad(
        "neusight_nvidia.bin", gpusim::nvidiaTrainingSet(),
        dataset::SamplerConfig{});

    // 2. Describe the workload: GPT3-XL, batch 2, first-token inference.
    const graph::ModelConfig &model = graph::findModel("GPT3-XL");
    const graph::KernelGraph g = graph::buildInferenceGraph(model, 2);
    std::printf("GPT3-XL inference graph: %zu kernels, %.1f GFLOP\n",
                g.computeNodeCount(), g.totalFlops() / 1e9);

    // 3. Forecast on the unseen GPU.
    const gpusim::GpuSpec &h100 = gpusim::findGpu("H100");
    const double predicted_ms = neusight.predictGraphMs(g, h100);
    std::printf("Predicted latency on H100:  %8.1f ms\n", predicted_ms);

    // 4. Compare against the measurement substrate (in a real deployment
    //    this is the number you do not have).
    const eval::SimulatorOracle oracle;
    const double measured_ms = oracle.predictGraphMs(g, h100);
    std::printf("Measured latency on H100:   %8.1f ms  (error %.1f%%)\n",
                measured_ms,
                (predicted_ms - measured_ms) / measured_ms * 100.0);
    return 0;
}
