/**
 * @file
 * Property sweeps of the simulator across every GPU of Table 4: for each
 * device, the execution model must satisfy the physical invariants the
 * paper builds on (determinism, the compute roofline, bounded
 * utilization, wave arithmetic consistency, occupancy monotonicity,
 * overhead accounting, datapath selection).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "gpusim/device.hpp"
#include "gpusim/tile_policy.hpp"

namespace neusight::gpusim {
namespace {

class PerGpu : public ::testing::TestWithParam<const char *>
{
  protected:
    const GpuSpec &gpu() const { return findGpu(GetParam()); }
};

std::vector<KernelDesc>
probeKernels()
{
    return {
        makeBmm(1, 64, 64, 64),
        makeBmm(16, 1024, 1024, 512),
        makeBmm(4, 2048, 2048, 2048),
        makeLinear(512, 1024, 4096),
        makeLinear(8192, 2048, 2048),
        makeElementwise("add", 1 << 20, 2, 1.0),
        makeElementwise("gelu", 1 << 18, 1, 8.0),
        makeSoftmax(8192, 1024),
        makeLayerNorm(16384, 2048),
        makeMemoryOp("embedding", 1e7),
    };
}

TEST_P(PerGpu, SpecIsComplete)
{
    const GpuSpec &g = gpu();
    EXPECT_GT(g.peakFp32Tflops, 0.0);
    EXPECT_GT(g.memoryBwGBps, 0.0);
    EXPECT_GT(g.memorySizeGB, 0.0);
    EXPECT_GT(g.numSms, 0);
    EXPECT_GT(g.l2CacheMB, 0.0);
    EXPECT_GE(g.matrixFp32Tflops, g.peakFp32Tflops);
    EXPECT_GT(g.interconnectGBps, 0.0);
}

TEST_P(PerGpu, MeasurementsAreDeterministic)
{
    const Device dev(gpu());
    for (const auto &desc : probeKernels())
        EXPECT_DOUBLE_EQ(dev.measureKernelMs(desc),
                         dev.measureKernelMs(desc))
            << desc.summary();
}

TEST_P(PerGpu, ComputeRooflineNeverBeaten)
{
    const Device dev(gpu());
    for (const auto &desc : probeKernels()) {
        const double bound_ms =
            desc.flops / effectivePeakFlops(desc, gpu()) * 1e3;
        EXPECT_GE(dev.measureKernelMs(desc), bound_ms * 0.999)
            << desc.summary();
    }
}

TEST_P(PerGpu, UtilizationBounded)
{
    const Device dev(gpu());
    for (const auto &desc : probeKernels()) {
        const KernelLaunch launch = dev.profileKernel(desc);
        EXPECT_GT(launch.utilization, 0.0) << desc.summary();
        EXPECT_LT(launch.utilization, 1.0) << desc.summary();
    }
}

TEST_P(PerGpu, WaveArithmeticConsistent)
{
    const Device dev(gpu());
    for (const auto &desc : probeKernels()) {
        const KernelLaunch launch = dev.profileKernel(desc);
        ASSERT_EQ(launch.tile.dims.size(), desc.outDims.size())
            << desc.summary();
        EXPECT_EQ(launch.numTiles,
                  TilePolicy::numTiles(desc, launch.tile.dims));
        EXPECT_EQ(launch.numWaves,
                  TilePolicy::numWaves(launch.numTiles, gpu().numSms));
        EXPECT_GE(launch.numWaves, 1u);
        EXPECT_LE(launch.numWaves, launch.numTiles);
    }
}

TEST_P(PerGpu, LatencyIncludesLaunchOverhead)
{
    const Device dev(gpu());
    for (const auto &desc : probeKernels()) {
        const KernelLaunch launch = dev.profileKernel(desc);
        EXPECT_GT(launch.overheadMs, 0.0);
        EXPECT_GE(launch.latencyMs, launch.overheadMs) << desc.summary();
    }
}

TEST_P(PerGpu, ThroughputRampsWithOccupancy)
{
    // Achieved FLOPS at 16x the batch must exceed achieved FLOPS at 1x
    // (paper Fig. 5: more waves hide more latency).
    const Device dev(gpu());
    const auto small = makeBmm(1, 256, 256, 256);
    const auto large = makeBmm(64, 256, 256, 256);
    const double tput_small =
        small.flops / dev.measureKernelMs(small);
    const double tput_large =
        large.flops / dev.measureKernelMs(large);
    EXPECT_GT(tput_large, tput_small);
}

TEST_P(PerGpu, Fp16NeverSlowerThanFp32ForGemm)
{
    const Device dev(gpu());
    const auto fp32 = makeBmm(8, 1024, 1024, 1024);
    const bool has_tensor = gpu().fp16Flops() > 0.0;
    const auto fp16 = makeBmm(8, 1024, 1024, 1024, DataType::Fp16,
                              has_tensor);
    // 5% headroom: measurement noise is +/-2% on each kernel.
    EXPECT_LE(dev.measureKernelMs(fp16),
              dev.measureKernelMs(fp32) * 1.05);
}

TEST_P(PerGpu, TileSelectionIsDeterministicAndRankPreserving)
{
    for (const auto &desc : probeKernels()) {
        const TileInfo a = TilePolicy::select(desc, gpu());
        const TileInfo b = TilePolicy::select(desc, gpu());
        EXPECT_EQ(a.dims, b.dims) << desc.summary();
        ASSERT_EQ(a.dims.size(), desc.outDims.size());
        for (size_t i = 0; i < a.dims.size(); ++i)
            EXPECT_GE(a.dims[i], 1u);
        EXPECT_GT(a.flopsPerTile, 0.0);
        EXPECT_GT(a.memBytesPerTile, 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(AllTable4Gpus, PerGpu,
                         ::testing::Values("P4", "P100", "V100", "T4",
                                           "A100-40GB", "A100-80GB", "L4",
                                           "H100", "MI100", "MI210",
                                           "MI250"));

} // namespace
} // namespace neusight::gpusim
